file(REMOVE_RECURSE
  "CMakeFiles/test_weakref.dir/test_weakref.cpp.o"
  "CMakeFiles/test_weakref.dir/test_weakref.cpp.o.d"
  "test_weakref"
  "test_weakref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weakref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
