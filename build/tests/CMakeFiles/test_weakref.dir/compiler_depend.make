# Empty compiler generated dependencies file for test_weakref.
# This may be replaced when dependencies are built.
