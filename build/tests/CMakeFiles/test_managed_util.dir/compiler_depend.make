# Empty compiler generated dependencies file for test_managed_util.
# This may be replaced when dependencies are built.
