file(REMOVE_RECURSE
  "CMakeFiles/test_managed_util.dir/test_managed_util.cpp.o"
  "CMakeFiles/test_managed_util.dir/test_managed_util.cpp.o.d"
  "test_managed_util"
  "test_managed_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_managed_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
