# Empty dependencies file for test_worklist.
# This may be replaced when dependencies are built.
