file(REMOVE_RECURSE
  "CMakeFiles/test_assert_instances.dir/test_assert_instances.cpp.o"
  "CMakeFiles/test_assert_instances.dir/test_assert_instances.cpp.o.d"
  "test_assert_instances"
  "test_assert_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assert_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
