# Empty dependencies file for test_assert_instances.
# This may be replaced when dependencies are built.
