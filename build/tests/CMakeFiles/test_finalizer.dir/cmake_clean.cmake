file(REMOVE_RECURSE
  "CMakeFiles/test_finalizer.dir/test_finalizer.cpp.o"
  "CMakeFiles/test_finalizer.dir/test_finalizer.cpp.o.d"
  "test_finalizer"
  "test_finalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
