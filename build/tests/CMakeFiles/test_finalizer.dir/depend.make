# Empty dependencies file for test_finalizer.
# This may be replaced when dependencies are built.
