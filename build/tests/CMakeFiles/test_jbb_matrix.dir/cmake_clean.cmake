file(REMOVE_RECURSE
  "CMakeFiles/test_jbb_matrix.dir/test_jbb_matrix.cpp.o"
  "CMakeFiles/test_jbb_matrix.dir/test_jbb_matrix.cpp.o.d"
  "test_jbb_matrix"
  "test_jbb_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jbb_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
