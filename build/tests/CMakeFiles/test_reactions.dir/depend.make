# Empty dependencies file for test_reactions.
# This may be replaced when dependencies are built.
