file(REMOVE_RECURSE
  "CMakeFiles/test_reactions.dir/test_reactions.cpp.o"
  "CMakeFiles/test_reactions.dir/test_reactions.cpp.o.d"
  "test_reactions"
  "test_reactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
