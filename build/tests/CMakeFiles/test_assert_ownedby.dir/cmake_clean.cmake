file(REMOVE_RECURSE
  "CMakeFiles/test_assert_ownedby.dir/test_assert_ownedby.cpp.o"
  "CMakeFiles/test_assert_ownedby.dir/test_assert_ownedby.cpp.o.d"
  "test_assert_ownedby"
  "test_assert_ownedby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assert_ownedby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
