# Empty dependencies file for test_assert_ownedby.
# This may be replaced when dependencies are built.
