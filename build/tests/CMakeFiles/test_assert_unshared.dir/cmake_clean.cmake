file(REMOVE_RECURSE
  "CMakeFiles/test_assert_unshared.dir/test_assert_unshared.cpp.o"
  "CMakeFiles/test_assert_unshared.dir/test_assert_unshared.cpp.o.d"
  "test_assert_unshared"
  "test_assert_unshared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assert_unshared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
