# Empty dependencies file for test_assert_unshared.
# This may be replaced when dependencies are built.
