file(REMOVE_RECURSE
  "CMakeFiles/test_assert_dead.dir/test_assert_dead.cpp.o"
  "CMakeFiles/test_assert_dead.dir/test_assert_dead.cpp.o.d"
  "test_assert_dead"
  "test_assert_dead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assert_dead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
