# Empty compiler generated dependencies file for test_assert_dead.
# This may be replaced when dependencies are built.
