file(REMOVE_RECURSE
  "CMakeFiles/test_heap_query.dir/test_heap_query.cpp.o"
  "CMakeFiles/test_heap_query.dir/test_heap_query.cpp.o.d"
  "test_heap_query"
  "test_heap_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
