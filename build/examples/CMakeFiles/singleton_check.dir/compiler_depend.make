# Empty compiler generated dependencies file for singleton_check.
# This may be replaced when dependencies are built.
