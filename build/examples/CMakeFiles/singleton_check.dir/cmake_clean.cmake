file(REMOVE_RECURSE
  "CMakeFiles/singleton_check.dir/singleton_check.cpp.o"
  "CMakeFiles/singleton_check.dir/singleton_check.cpp.o.d"
  "singleton_check"
  "singleton_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singleton_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
