file(REMOVE_RECURSE
  "CMakeFiles/order_leak.dir/order_leak.cpp.o"
  "CMakeFiles/order_leak.dir/order_leak.cpp.o.d"
  "order_leak"
  "order_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
