# Empty compiler generated dependencies file for order_leak.
# This may be replaced when dependencies are built.
