# Empty compiler generated dependencies file for heap_doctor.
# This may be replaced when dependencies are built.
