file(REMOVE_RECURSE
  "CMakeFiles/heap_doctor.dir/heap_doctor.cpp.o"
  "CMakeFiles/heap_doctor.dir/heap_doctor.cpp.o.d"
  "heap_doctor"
  "heap_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
