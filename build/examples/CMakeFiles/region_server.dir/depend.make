# Empty dependencies file for region_server.
# This may be replaced when dependencies are built.
