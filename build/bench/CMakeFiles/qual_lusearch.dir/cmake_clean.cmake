file(REMOVE_RECURSE
  "CMakeFiles/qual_lusearch.dir/bench_util.cpp.o"
  "CMakeFiles/qual_lusearch.dir/bench_util.cpp.o.d"
  "CMakeFiles/qual_lusearch.dir/qual_lusearch.cpp.o"
  "CMakeFiles/qual_lusearch.dir/qual_lusearch.cpp.o.d"
  "qual_lusearch"
  "qual_lusearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qual_lusearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
