# Empty compiler generated dependencies file for qual_lusearch.
# This may be replaced when dependencies are built.
