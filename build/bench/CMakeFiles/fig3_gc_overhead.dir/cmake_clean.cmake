file(REMOVE_RECURSE
  "CMakeFiles/fig3_gc_overhead.dir/bench_util.cpp.o"
  "CMakeFiles/fig3_gc_overhead.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig3_gc_overhead.dir/fig3_gc_overhead.cpp.o"
  "CMakeFiles/fig3_gc_overhead.dir/fig3_gc_overhead.cpp.o.d"
  "fig3_gc_overhead"
  "fig3_gc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
