# Empty dependencies file for fig3_gc_overhead.
# This may be replaced when dependencies are built.
