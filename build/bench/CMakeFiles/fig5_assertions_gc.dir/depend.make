# Empty dependencies file for fig5_assertions_gc.
# This may be replaced when dependencies are built.
