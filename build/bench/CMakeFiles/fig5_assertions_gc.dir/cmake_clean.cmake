file(REMOVE_RECURSE
  "CMakeFiles/fig5_assertions_gc.dir/bench_util.cpp.o"
  "CMakeFiles/fig5_assertions_gc.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig5_assertions_gc.dir/fig5_assertions_gc.cpp.o"
  "CMakeFiles/fig5_assertions_gc.dir/fig5_assertions_gc.cpp.o.d"
  "fig5_assertions_gc"
  "fig5_assertions_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_assertions_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
