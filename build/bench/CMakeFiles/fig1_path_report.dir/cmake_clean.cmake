file(REMOVE_RECURSE
  "CMakeFiles/fig1_path_report.dir/bench_util.cpp.o"
  "CMakeFiles/fig1_path_report.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig1_path_report.dir/fig1_path_report.cpp.o"
  "CMakeFiles/fig1_path_report.dir/fig1_path_report.cpp.o.d"
  "fig1_path_report"
  "fig1_path_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_path_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
