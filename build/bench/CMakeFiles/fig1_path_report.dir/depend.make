# Empty dependencies file for fig1_path_report.
# This may be replaced when dependencies are built.
