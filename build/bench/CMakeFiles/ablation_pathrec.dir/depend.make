# Empty dependencies file for ablation_pathrec.
# This may be replaced when dependencies are built.
