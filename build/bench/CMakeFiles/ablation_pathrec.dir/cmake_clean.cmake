file(REMOVE_RECURSE
  "CMakeFiles/ablation_pathrec.dir/ablation_pathrec.cpp.o"
  "CMakeFiles/ablation_pathrec.dir/ablation_pathrec.cpp.o.d"
  "CMakeFiles/ablation_pathrec.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_pathrec.dir/bench_util.cpp.o.d"
  "ablation_pathrec"
  "ablation_pathrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pathrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
