# Empty compiler generated dependencies file for micro_mechanisms.
# This may be replaced when dependencies are built.
