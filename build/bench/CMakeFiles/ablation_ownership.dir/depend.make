# Empty dependencies file for ablation_ownership.
# This may be replaced when dependencies are built.
