# Empty compiler generated dependencies file for qual_swapleak.
# This may be replaced when dependencies are built.
