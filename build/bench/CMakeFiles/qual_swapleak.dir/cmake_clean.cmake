file(REMOVE_RECURSE
  "CMakeFiles/qual_swapleak.dir/bench_util.cpp.o"
  "CMakeFiles/qual_swapleak.dir/bench_util.cpp.o.d"
  "CMakeFiles/qual_swapleak.dir/qual_swapleak.cpp.o"
  "CMakeFiles/qual_swapleak.dir/qual_swapleak.cpp.o.d"
  "qual_swapleak"
  "qual_swapleak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qual_swapleak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
