file(REMOVE_RECURSE
  "CMakeFiles/qual_jbb_leaks.dir/bench_util.cpp.o"
  "CMakeFiles/qual_jbb_leaks.dir/bench_util.cpp.o.d"
  "CMakeFiles/qual_jbb_leaks.dir/qual_jbb_leaks.cpp.o"
  "CMakeFiles/qual_jbb_leaks.dir/qual_jbb_leaks.cpp.o.d"
  "qual_jbb_leaks"
  "qual_jbb_leaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qual_jbb_leaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
