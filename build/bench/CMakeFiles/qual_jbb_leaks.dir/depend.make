# Empty dependencies file for qual_jbb_leaks.
# This may be replaced when dependencies are built.
