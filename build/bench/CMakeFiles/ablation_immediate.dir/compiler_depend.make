# Empty compiler generated dependencies file for ablation_immediate.
# This may be replaced when dependencies are built.
