file(REMOVE_RECURSE
  "CMakeFiles/ablation_immediate.dir/ablation_immediate.cpp.o"
  "CMakeFiles/ablation_immediate.dir/ablation_immediate.cpp.o.d"
  "CMakeFiles/ablation_immediate.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_immediate.dir/bench_util.cpp.o.d"
  "ablation_immediate"
  "ablation_immediate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_immediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
