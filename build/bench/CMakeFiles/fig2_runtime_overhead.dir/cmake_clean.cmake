file(REMOVE_RECURSE
  "CMakeFiles/fig2_runtime_overhead.dir/bench_util.cpp.o"
  "CMakeFiles/fig2_runtime_overhead.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig2_runtime_overhead.dir/fig2_runtime_overhead.cpp.o"
  "CMakeFiles/fig2_runtime_overhead.dir/fig2_runtime_overhead.cpp.o.d"
  "fig2_runtime_overhead"
  "fig2_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
