file(REMOVE_RECURSE
  "CMakeFiles/gcassert_workloads.dir/workloads/driver.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/driver.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/jbbemu.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/jbbemu.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/long_btree.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/long_btree.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/lusearch.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/lusearch.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/managed_util.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/managed_util.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/minidb.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/minidb.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/registry.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/registry.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/swapleak.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/swapleak.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/synthetic.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/synthetic.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/workloads/workload.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/workloads/workload.cpp.o.d"
  "libgcassert_workloads.a"
  "libgcassert_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
