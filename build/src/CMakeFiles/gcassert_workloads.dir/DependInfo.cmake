
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/driver.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/driver.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/driver.cpp.o.d"
  "/root/repo/src/workloads/jbbemu.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/jbbemu.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/jbbemu.cpp.o.d"
  "/root/repo/src/workloads/long_btree.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/long_btree.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/long_btree.cpp.o.d"
  "/root/repo/src/workloads/lusearch.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/lusearch.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/lusearch.cpp.o.d"
  "/root/repo/src/workloads/managed_util.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/managed_util.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/managed_util.cpp.o.d"
  "/root/repo/src/workloads/minidb.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/minidb.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/minidb.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/swapleak.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/swapleak.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/swapleak.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/synthetic.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/synthetic.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/gcassert_workloads.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/gcassert_workloads.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gcassert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
