file(REMOVE_RECURSE
  "libgcassert_workloads.a"
)
