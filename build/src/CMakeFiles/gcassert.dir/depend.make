# Empty dependencies file for gcassert.
# This may be replaced when dependencies are built.
