
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assertions/assertion_table.cpp" "src/CMakeFiles/gcassert.dir/assertions/assertion_table.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/assertions/assertion_table.cpp.o.d"
  "/root/repo/src/assertions/engine.cpp" "src/CMakeFiles/gcassert.dir/assertions/engine.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/assertions/engine.cpp.o.d"
  "/root/repo/src/assertions/ownership.cpp" "src/CMakeFiles/gcassert.dir/assertions/ownership.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/assertions/ownership.cpp.o.d"
  "/root/repo/src/assertions/reaction.cpp" "src/CMakeFiles/gcassert.dir/assertions/reaction.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/assertions/reaction.cpp.o.d"
  "/root/repo/src/assertions/violation.cpp" "src/CMakeFiles/gcassert.dir/assertions/violation.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/assertions/violation.cpp.o.d"
  "/root/repo/src/detectors/cork.cpp" "src/CMakeFiles/gcassert.dir/detectors/cork.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/detectors/cork.cpp.o.d"
  "/root/repo/src/detectors/probes.cpp" "src/CMakeFiles/gcassert.dir/detectors/probes.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/detectors/probes.cpp.o.d"
  "/root/repo/src/detectors/staleness.cpp" "src/CMakeFiles/gcassert.dir/detectors/staleness.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/detectors/staleness.cpp.o.d"
  "/root/repo/src/gc/collector.cpp" "src/CMakeFiles/gcassert.dir/gc/collector.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/collector.cpp.o.d"
  "/root/repo/src/gc/gc_stats.cpp" "src/CMakeFiles/gcassert.dir/gc/gc_stats.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/gc_stats.cpp.o.d"
  "/root/repo/src/gc/mutator.cpp" "src/CMakeFiles/gcassert.dir/gc/mutator.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/mutator.cpp.o.d"
  "/root/repo/src/gc/path_recorder.cpp" "src/CMakeFiles/gcassert.dir/gc/path_recorder.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/path_recorder.cpp.o.d"
  "/root/repo/src/gc/roots.cpp" "src/CMakeFiles/gcassert.dir/gc/roots.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/roots.cpp.o.d"
  "/root/repo/src/gc/worklist.cpp" "src/CMakeFiles/gcassert.dir/gc/worklist.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/gc/worklist.cpp.o.d"
  "/root/repo/src/heap/block.cpp" "src/CMakeFiles/gcassert.dir/heap/block.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/heap/block.cpp.o.d"
  "/root/repo/src/heap/heap.cpp" "src/CMakeFiles/gcassert.dir/heap/heap.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/heap/heap.cpp.o.d"
  "/root/repo/src/heap/object.cpp" "src/CMakeFiles/gcassert.dir/heap/object.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/heap/object.cpp.o.d"
  "/root/repo/src/heap/size_classes.cpp" "src/CMakeFiles/gcassert.dir/heap/size_classes.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/heap/size_classes.cpp.o.d"
  "/root/repo/src/heap/verifier.cpp" "src/CMakeFiles/gcassert.dir/heap/verifier.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/heap/verifier.cpp.o.d"
  "/root/repo/src/runtime/config.cpp" "src/CMakeFiles/gcassert.dir/runtime/config.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/runtime/config.cpp.o.d"
  "/root/repo/src/runtime/handle.cpp" "src/CMakeFiles/gcassert.dir/runtime/handle.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/runtime/handle.cpp.o.d"
  "/root/repo/src/runtime/heap_query.cpp" "src/CMakeFiles/gcassert.dir/runtime/heap_query.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/runtime/heap_query.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/gcassert.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/CMakeFiles/gcassert.dir/support/logging.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/support/logging.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/gcassert.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/gcassert.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "src/CMakeFiles/gcassert.dir/support/stopwatch.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/support/stopwatch.cpp.o.d"
  "/root/repo/src/support/strutil.cpp" "src/CMakeFiles/gcassert.dir/support/strutil.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/support/strutil.cpp.o.d"
  "/root/repo/src/types/type_descriptor.cpp" "src/CMakeFiles/gcassert.dir/types/type_descriptor.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/types/type_descriptor.cpp.o.d"
  "/root/repo/src/types/type_registry.cpp" "src/CMakeFiles/gcassert.dir/types/type_registry.cpp.o" "gcc" "src/CMakeFiles/gcassert.dir/types/type_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
