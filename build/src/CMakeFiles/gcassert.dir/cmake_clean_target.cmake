file(REMOVE_RECURSE
  "libgcassert.a"
)
