/**
 * @file
 * Figure 2 reproduction: run-time overhead of the GC-assertion
 * *infrastructure* (no assertions added). Each benchmark runs under
 * the Base configuration (checks compiled out of the trace loop)
 * and the Infrastructure configuration (checks compiled in, path
 * recording on), and the table reports normalized total execution
 * time.
 *
 * Paper: overall execution time increases by 2.75% (geomean);
 * mutator time by 1.12%.
 */

#include <cstdio>

#include "bench_util.h"
#include "support/logging.h"

using namespace gcassert;
using namespace gcassert::bench;

int
main()
{
    CaptureLogSink quiet;
    printHeader("Figure 2",
                "run-time overhead of the assertion infrastructure "
                "(Base vs Infrastructure)",
                "total time +2.75% geomean, mutator time +1.12%");

    DriverOptions options = figureOptions();
    std::vector<OverheadRow> total_rows;
    std::vector<OverheadRow> mutator_rows;

    for (const std::string &name : figureSuite()) {
        PairedRuns runs = runInterleaved(name, BenchConfig::Base,
                                         BenchConfig::Infrastructure,
                                         options);
        total_rows.push_back(
            makeRow(name, runs.baselineTotal, runs.treatmentTotal));
        mutator_rows.push_back(
            makeRow(name, runs.baselineMutator, runs.treatmentMutator));
        std::fprintf(stderr, "  [fig2] %s done\n", name.c_str());
    }

    printOverheadTable("Figure 2a: total execution time",
                       "execution time", "Base", "Infrastructure",
                       total_rows);
    printOverheadTable("Figure 2b: mutator time", "mutator time", "Base",
                       "Infrastructure", mutator_rows);
    return 0;
}
