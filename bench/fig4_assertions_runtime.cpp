/**
 * @file
 * Figure 4 reproduction: run-time overhead with real GC assertions
 * added. The two instrumented benchmarks of the paper — _209_db
 * (minidb) and pseudojbb (jbbemu) — run under Base, Infrastructure
 * and WithAssertions, and the table reports normalized total
 * execution time plus the section 3.1.2 assertion activity counts.
 *
 * Paper: _209_db +1.02% vs Base (+0.47% vs Infrastructure) with
 * 695 assert-dead and 15,553 assert-ownedby calls (~15,274 ownees
 * checked per GC); pseudojbb +1.84% vs Base (+2.47% vs
 * Infrastructure) with 1 assert-instances and 31,038
 * assert-ownedby calls (~420 ownees per GC).
 */

#include <cstdio>

#include "bench_util.h"
#include "support/logging.h"

using namespace gcassert;
using namespace gcassert::bench;

int
main()
{
    CaptureLogSink quiet;
    printHeader("Figure 4",
                "run-time overhead with GC assertions added "
                "(Base vs Infrastructure vs WithAssertions)",
                "_209_db +1.02%, pseudojbb +1.84% vs Base");

    DriverOptions options = figureOptions();
    std::vector<OverheadRow> vs_base;
    std::vector<OverheadRow> vs_infra;

    for (const std::string &name : {std::string("minidb"),
                                    std::string("jbbemu")}) {
        PairedRuns vb = runInterleaved(name, BenchConfig::Base,
                                       BenchConfig::WithAssertions,
                                       options);
        PairedRuns vi = runInterleaved(name, BenchConfig::Infrastructure,
                                       BenchConfig::WithAssertions,
                                       options);
        RunSummary with = vb.treatmentLast;

        vs_base.push_back(
            makeRow(name, vb.baselineTotal, vb.treatmentTotal));
        vs_infra.push_back(
            makeRow(name, vi.baselineTotal, vi.treatmentTotal));

        std::printf("\n%s assertion activity (whole run, last repeat):\n",
                    name.c_str());
        std::printf("  assert-dead calls:      %llu\n",
                    static_cast<unsigned long long>(
                        with.assertStats.assertDeadCalls));
        std::printf("  assert-ownedby calls:   %llu\n",
                    static_cast<unsigned long long>(
                        with.assertStats.assertOwnedByCalls));
        std::printf("  assert-instances calls: %llu\n",
                    static_cast<unsigned long long>(
                        with.assertStats.assertInstancesCalls));
        std::printf("  ownees checked per GC:  %.0f\n",
                    with.owneeChecksPerGc);
        std::printf("  violations reported:    %llu\n",
                    static_cast<unsigned long long>(with.violations));
        std::fprintf(stderr, "  [fig4] %s done\n", name.c_str());
    }

    printOverheadTable("Figure 4a: total time, WithAssertions vs Base",
                       "execution time", "Base", "WithAssertions",
                       vs_base);
    printOverheadTable(
        "Figure 4b: total time, WithAssertions vs Infrastructure",
        "execution time", "Infrastructure", "WithAssertions", vs_infra);
    return 0;
}
