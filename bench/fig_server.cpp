/**
 * @file
 * Server-workload scaling bench: requests/s and GC pause percentiles
 * for the heavy-traffic request/response simulation, armed (one
 * assert-alldead region per request) vs disarmed, across mutator
 * thread counts and collector configurations (plain, generational,
 * incremental recheck, parallel mark/sweep, all-on).
 *
 * Not a figure from the paper — the paper's workloads are single-
 * threaded — but the natural scaling successor to the jbbemu
 * benchmark: it answers "what does arming a region assertion on
 * every request cost under real concurrent traffic?" in requests/s
 * and pause-time terms. A final leak-mode run doubles as an
 * end-to-end detection check: every injected leak must surface as
 * exactly one alldead violation.
 *
 * Knobs: GCASSERT_BENCH_SERVER_REQUESTS (requests per thread per
 * point, default 30000 so the 4-thread points exercise >= 120k
 * request cycles), GCASSERT_BENCH_JSON (ledger path override).
 *
 * Exit status 1 when a tripwire fails: lost requests, spurious
 * verdicts in a clean run, missed or phantom leak detections, or
 * (at the default request count) fewer than 100k armed request
 * cycles at 4 threads.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "workloads/server.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

struct ConfigPoint {
    const char *name;
    void (*apply)(RuntimeConfig &);
};

const ConfigPoint kConfigs[] = {
    {"plain", [](RuntimeConfig &) {}},
    {"generational",
     [](RuntimeConfig &c) {
         c.generational = true;
         c.nurseryKb = 256;
     }},
    {"incremental", [](RuntimeConfig &c) { c.incrementalAssert = true; }},
    {"parallel",
     [](RuntimeConfig &c) {
         c.markThreads = 4;
         c.sweepThreads = 2;
         c.recordPaths = false;
     }},
    {"all-on",
     [](RuntimeConfig &c) {
         c.generational = true;
         c.nurseryKb = 256;
         c.incrementalAssert = true;
         c.markThreads = 4;
         c.sweepThreads = 2;
         c.recordPaths = false;
         c.tlab = true;
         c.lazySweep = true;
     }},
};

struct Measurement {
    uint32_t threads = 0;
    std::string config;
    bool armed = false;
    uint64_t requests = 0;
    double seconds = 0.0;
    double requestsPerSec = 0.0;
    uint64_t latencyP50 = 0;
    uint64_t latencyP99 = 0;
    uint64_t pauseP50 = 0;
    uint64_t pauseP99 = 0;
    uint64_t pauseMax = 0;
    uint64_t fullGcs = 0;
    uint64_t verdicts = 0;
};

uint64_t
verdictCount(const Runtime &rt)
{
    uint64_t n = 0;
    for (const Violation &v : rt.violations())
        if (!assertionKindContextOnly(v.kind))
            ++n;
    return n;
}

Measurement
measure(uint32_t threads, const ConfigPoint &cfg, bool armed,
        uint32_t requests_per_thread)
{
    ServerOptions options;
    options.threads = threads;
    options.requestsPerThread = requests_per_thread;
    options.leakEveryN = 0;
    auto server = makeServerWithOptions(options);

    RuntimeConfig config =
        RuntimeConfig::infra(2 * server->minHeapBytes());
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    // Arm telemetry (for the pause histograms) without per-GC census
    // work or an SLO budget.
    config.observe.censusEvery = 1000000;
    config.observe.pauseBudgetNanos = 0;
    cfg.apply(config);

    Runtime rt(config);
    server->setup(rt);
    if (armed)
        server->enableAssertions(rt);
    server->iterate(rt);
    rt.collect();

    Measurement m;
    m.threads = threads;
    m.config = cfg.name;
    m.armed = armed;
    m.requests = server->requestsCompleted();
    m.seconds = server->busySeconds();
    m.requestsPerSec =
        m.seconds > 0.0 ? static_cast<double>(m.requests) / m.seconds
                        : 0.0;
    PauseHistogram latency = server->latencySnapshot();
    m.latencyP50 = latency.percentile(50.0);
    m.latencyP99 = latency.percentile(99.0);
    const PauseHistogram &pauses = rt.telemetry()->pauseSlo().full();
    m.pauseP50 = pauses.percentile(50.0);
    m.pauseP99 = pauses.percentile(99.0);
    m.pauseMax = pauses.max();
    m.fullGcs = rt.collections();
    m.verdicts = verdictCount(rt);
    server->teardown(rt);
    return m;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Server scaling",
                "requests/s and GC pauses, per-request alldead regions "
                "armed vs disarmed, across mutator threads and "
                "collector configs",
                "n/a (scaling extension; supersedes jbbemu as the "
                "scaling benchmark)");

    const uint64_t default_requests = 30000;
    const uint32_t requests_per_thread = static_cast<uint32_t>(
        envOr("GCASSERT_BENCH_SERVER_REQUESTS", default_requests));
    const bool full_size = requests_per_thread >= default_requests;
    const unsigned cores = std::thread::hardware_concurrency();
    std::fprintf(stderr,
                 "  requests/thread: %u, host cores: %u\n",
                 requests_per_thread, cores);

    std::vector<Measurement> points;
    bool failed = false;
    for (uint32_t threads : {1u, 2u, 4u}) {
        for (const ConfigPoint &cfg : kConfigs) {
            for (bool armed : {false, true}) {
                Measurement m = measure(threads, cfg, armed,
                                        requests_per_thread);
                points.push_back(m);
                uint64_t expected =
                    uint64_t{threads} * requests_per_thread;
                if (m.requests != expected) {
                    std::fprintf(stderr,
                                 "  ERROR: %s/%u/%s lost requests "
                                 "(%llu of %llu)\n",
                                 cfg.name, threads,
                                 armed ? "armed" : "disarmed",
                                 static_cast<unsigned long long>(
                                     m.requests),
                                 static_cast<unsigned long long>(
                                     expected));
                    failed = true;
                }
                if (m.verdicts != 0) {
                    std::fprintf(stderr,
                                 "  ERROR: clean %s/%u/%s run reported "
                                 "%llu verdicts\n",
                                 cfg.name, threads,
                                 armed ? "armed" : "disarmed",
                                 static_cast<unsigned long long>(
                                     m.verdicts));
                    failed = true;
                }
            }
        }
    }

    std::printf("\n  threads  config        armed  req/s      p99 lat us"
                "  gc p99 us  gcs\n");
    std::printf("  -------  ------------  -----  ---------  ----------"
                "  ---------  ---\n");
    for (const Measurement &m : points)
        std::printf("  %7u  %-12s  %5s  %9.0f  %10.1f  %9.1f  %3llu\n",
                    m.threads, m.config.c_str(),
                    m.armed ? "yes" : "no", m.requestsPerSec,
                    static_cast<double>(m.latencyP99) / 1e3,
                    static_cast<double>(m.pauseP99) / 1e3,
                    static_cast<unsigned long long>(m.fullGcs));

    // Tripwire: the shipped configuration must sustain >= 100k armed
    // request cycles across >= 4 mutator threads.
    if (full_size) {
        for (const Measurement &m : points)
            if (m.threads >= 4 && m.armed && m.requests < 100000) {
                std::fprintf(stderr,
                             "  ERROR: armed 4-thread point served "
                             "only %llu cycles (< 100k)\n",
                             static_cast<unsigned long long>(
                                 m.requests));
                failed = true;
            }
    }

    // Leak-mode validation: every injected leak must be caught and
    // attributed by the following collection.
    uint64_t leak_injected = 0, leak_caught = 0;
    {
        ServerOptions options;
        options.threads = 4;
        options.requestsPerThread =
            requests_per_thread < 5000 ? requests_per_thread : 5000;
        options.leakEveryN = 500;
        auto server = makeServerWithOptions(options);
        Runtime rt(RuntimeConfig::infra(2 * server->minHeapBytes()));
        server->setup(rt);
        server->enableAssertions(rt);
        server->iterate(rt);
        rt.collect();
        leak_injected = server->leaksInjected();
        for (const Violation &v : rt.violations())
            if (v.kind == AssertionKind::AllDead)
                ++leak_caught;
        server->teardown(rt);
    }
    std::printf("\n  leak mode: injected %llu, caught %llu\n",
                static_cast<unsigned long long>(leak_injected),
                static_cast<unsigned long long>(leak_caught));
    if (leak_injected == 0 || leak_caught != leak_injected) {
        std::fprintf(stderr,
                     "  ERROR: leak detection mismatch (injected %llu, "
                     "caught %llu)\n",
                     static_cast<unsigned long long>(leak_injected),
                     static_cast<unsigned long long>(leak_caught));
        failed = true;
    }

    JsonWriter w;
    w.beginObject()
        .field("bench", "server")
        .field("requestsPerThread", uint64_t{requests_per_thread})
        .field("hostCores", uint64_t{cores})
        .key("points")
        .beginArray();
    for (const Measurement &m : points) {
        w.beginObject()
            .field("threads", m.threads)
            .field("config", m.config)
            .field("armed", m.armed)
            .field("requests", m.requests)
            .field("seconds", m.seconds)
            .field("requestsPerSec", m.requestsPerSec)
            .field("latencyP50Nanos", m.latencyP50)
            .field("latencyP99Nanos", m.latencyP99)
            .field("gcPauseP50Nanos", m.pauseP50)
            .field("gcPauseP99Nanos", m.pauseP99)
            .field("gcPauseMaxNanos", m.pauseMax)
            .field("fullGcs", m.fullGcs)
            .field("verdicts", m.verdicts)
            .endObject();
    }
    w.endArray()
        .key("leakMode")
        .beginObject()
        .field("injected", leak_injected)
        .field("caught", leak_caught)
        .endObject()
        .endObject();
    emitBenchJson(w.str(), "BENCH_server.json");

    return failed ? 1 : 0;
}
