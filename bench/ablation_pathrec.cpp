/**
 * @file
 * Ablation: cost of the tagged-worklist path recording (paper
 * section 2.7). The paper states the system "can maintain full path
 * information with no measurable overhead"; this bench measures GC
 * time with path recording on vs off (infrastructure on in both).
 */

#include <cstdio>

#include "bench_util.h"
#include "support/logging.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

/** Like runWorkload, but with explicit recordPaths control. */
RunSummary
runWithPaths(const std::string &name, bool record_paths,
             const DriverOptions &options)
{
    RunSummary summary;
    summary.workload = name;
    for (uint32_t repeat = 0; repeat < options.repeats; ++repeat) {
        auto workload = WorkloadRegistry::instance().create(name);
        RuntimeConfig config =
            RuntimeConfig::infra(2 * workload->minHeapBytes());
        config.recordPaths = record_paths;
        Runtime runtime(config);
        workload->setup(runtime);
        for (uint32_t i = 0; i < options.warmupIterations; ++i)
            workload->iterate(runtime);
        uint64_t gc0 = runtime.gcStats().totalGc.elapsedNanos();
        uint64_t t0 = nowNanos();
        for (uint32_t i = 0; i < options.measuredIterations; ++i)
            workload->iterate(runtime);
        uint64_t t1 = nowNanos();
        uint64_t gc1 = runtime.gcStats().totalGc.elapsedNanos();
        summary.totalSeconds.add(static_cast<double>(t1 - t0) / 1e9);
        summary.gcSeconds.add(static_cast<double>(gc1 - gc0) / 1e9);
        workload->teardown(runtime);
    }
    return summary;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Ablation: path recording",
                "GC time with tagged-worklist path maintenance on vs off",
                "\"no measurable overhead\" (section 2.7)");

    DriverOptions options = figureOptions();
    std::vector<OverheadRow> rows;
    for (const std::string &name : figureSuite()) {
        RunSummary off = runWithPaths(name, false, options);
        RunSummary on = runWithPaths(name, true, options);
        if (off.gcSeconds.mean() <= 0.0)
            continue;
        rows.push_back(makeRow(name, off.gcSeconds, on.gcSeconds));
        std::fprintf(stderr, "  [pathrec] %s done\n", name.c_str());
    }
    printOverheadTable("GC time: paths-off vs paths-on", "GC time",
                       "paths-off", "paths-on", rows);
    return 0;
}
