/**
 * @file
 * Section 3.2.3 reproduction: the SwapLeak program from the Sun
 * Developer Network post. assert-dead on the swapped-out SObjects
 * produces reports whose path exposes the hidden inner-class
 * reference:
 *
 *   SArray -> SObject -> SObject$Rep -> SObject
 */

#include <cstdio>

#include "support/logging.h"
#include "workloads/registry.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet;
    std::printf("Qualitative reproduction of section 3.2.3: SwapLeak\n\n");

    auto workload = WorkloadRegistry::instance().create("swapleak");
    Runtime runtime(RuntimeConfig::infra(2 * workload->minHeapBytes()));
    workload->setup(runtime);
    workload->enableAssertions(runtime);
    for (int i = 0; i < 2; ++i)
        workload->iterate(runtime);
    runtime.collect();

    size_t matching = 0;
    bool printed = false;
    for (const Violation &v : runtime.violations()) {
        if (v.kind != AssertionKind::Dead || v.path.size() < 4)
            continue;
        size_t n = v.path.size();
        bool hidden_ref_shape = v.path[n - 4].typeName == "SArray" &&
            v.path[n - 3].typeName == "SObject" &&
            v.path[n - 2].typeName == "SObject$Rep" &&
            v.path[n - 1].typeName == "SObject";
        if (!hidden_ref_shape)
            continue;
        ++matching;
        if (!printed) {
            std::printf("%s\n", v.toString().c_str());
            printed = true;
        }
    }
    std::printf("reports with the hidden-reference path shape: %zu of "
                "%zu violations\n",
                matching, runtime.violations().size());
    std::printf("\nPaper: \"This warning explains the problem... the Rep "
                "instance maintains a pointer to a different SObject, "
                "one that we expected to be unreachable.\"\n");
    workload->teardown(runtime);
    return matching > 0 ? 0 : 1;
}
