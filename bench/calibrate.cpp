/**
 * @file
 * Calibration tool: runs every workload at 2x its declared minimum
 * heap and reports live size, allocation churn, GCs per iteration
 * and iteration latency, so the workload constants can be tuned to
 * the paper's methodology (regular collections at 2x min heap).
 */

#include <cstdio>

#include "support/logging.h"
#include "support/stopwatch.h"
#include "support/strutil.h"
#include "workloads/registry.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet; // swallow violation warnings

    std::printf("%-12s %10s %10s %10s %8s %10s %8s\n", "workload",
                "minheap", "live", "churn/it", "gcs/it", "it-ms",
                "gc-ms/it");
    for (const std::string &name : WorkloadRegistry::instance().names()) {
        auto workload = WorkloadRegistry::instance().create(name);
        Runtime runtime(
            RuntimeConfig::infra(2 * workload->minHeapBytes()));
        workload->setup(runtime);
        workload->iterate(runtime); // warmup

        uint64_t alloc_before = runtime.heap().totalAllocatedBytes();
        uint64_t gcs_before = runtime.collections();
        uint64_t gcns_before =
            runtime.gcStats().totalGc.elapsedNanos();
        constexpr int kIters = 4;
        uint64_t t0 = nowNanos();
        for (int i = 0; i < kIters; ++i)
            workload->iterate(runtime);
        uint64_t t1 = nowNanos();

        double churn = static_cast<double>(
                           runtime.heap().totalAllocatedBytes() -
                           alloc_before) / kIters;
        double gcs = static_cast<double>(runtime.collections() -
                                         gcs_before) / kIters;
        double it_ms = static_cast<double>(t1 - t0) / 1e6 / kIters;
        double gc_ms = static_cast<double>(
                           runtime.gcStats().totalGc.elapsedNanos() -
                           gcns_before) / 1e6 / kIters;

        std::printf("%-12s %10s %10s %10s %8.2f %10.2f %8.2f\n",
                    name.c_str(),
                    humanBytes(workload->minHeapBytes()).c_str(),
                    humanBytes(runtime.heap().usedBytes()).c_str(),
                    humanBytes(static_cast<uint64_t>(churn)).c_str(),
                    gcs, it_ms, gc_ms);
        workload->teardown(runtime);
    }
    return 0;
}
