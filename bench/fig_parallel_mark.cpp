/**
 * @file
 * Parallel-mark scalability sweep: trace-phase time for 1/2/4/8
 * marker threads over a large shared random graph.
 *
 * Not a figure from the paper (which uses a sequential collector);
 * this bench characterizes the work-stealing mark phase added on
 * top: the table reports per-GC mark time, speedup over the
 * sequential trace, and steal counts. Meaningful speedups need real
 * cores — the binary prints the host's concurrency so single-core CI
 * results are not misread as a scalability regression.
 *
 * Knobs: GCASSERT_BENCH_REPEATS (measured GCs per thread count,
 * default 5), GCASSERT_BENCH_OBJECTS (graph size, default 400000).
 */

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/rng.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** Mark time and steal count for one thread-count configuration. */
struct SweepPoint {
    uint32_t threads = 1;
    double markSecondsPerGc = 0.0;
    double stealsPerGc = 0.0;
    uint64_t marked = 0;
};

/**
 * Build the standard graph (seed-determined, identical across
 * configurations) and measure the average trace-phase time over the
 * requested number of collections.
 */
SweepPoint
measure(uint32_t threads, uint64_t num_objects, uint64_t repeats)
{
    RuntimeConfig config;
    config.heap.budgetBytes = 2ull * 1024 * 1024 * 1024;
    config.infrastructure = true;
    config.recordPaths = false;
    config.markThreads = threads;
    Runtime rt(config);

    TypeId node_type =
        rt.types().define("Node").refs({"left", "right"}).scalars(8).build();
    TypeId array_type = rt.types().define("Array").array().build();

    // A mostly-live random graph: an array spine keeps object
    // batches reachable, node edges create the shared subtrees and
    // cycles that make tracing memory-bound.
    Rng rng(0xfeed);
    const uint64_t spine_len = 1024;
    Handle spine(rt, rt.allocArrayRaw(array_type,
                                      static_cast<uint32_t>(spine_len)),
                 "spine");
    std::vector<Object *> objs;
    objs.reserve(num_objects);
    for (uint64_t i = 0; i < num_objects; ++i) {
        Object *obj = rt.allocRaw(node_type);
        objs.push_back(obj);
        if (i < spine_len)
            spine->setRef(static_cast<uint32_t>(i), obj);
    }
    for (uint64_t i = 0; i < num_objects; ++i) {
        objs[i]->setRef(0, objs[rng.below(num_objects)]);
        if (rng.chance(0.9))
            objs[i]->setRef(1, objs[rng.below(num_objects)]);
    }

    rt.collect(); // warmup: faults pages, settles block lists

    GcStats &stats = rt.gcStats();
    double start_trace = stats.tracePhase.elapsedSeconds();
    uint64_t start_steals = stats.markSteals;
    uint64_t start_marked = stats.objectsMarked;
    for (uint64_t i = 0; i < repeats; ++i)
        rt.collect();

    SweepPoint point;
    point.threads = threads;
    point.markSecondsPerGc =
        (stats.tracePhase.elapsedSeconds() - start_trace) /
        static_cast<double>(repeats);
    point.stealsPerGc =
        static_cast<double>(stats.markSteals - start_steals) /
        static_cast<double>(repeats);
    point.marked = (stats.objectsMarked - start_marked) / repeats;
    return point;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Parallel mark",
                "trace-phase time vs marker-thread count on a large "
                "shared random graph",
                "n/a (extension beyond the paper's sequential collector)");

    const uint64_t num_objects = envOr("GCASSERT_BENCH_OBJECTS", 400000);
    const uint64_t repeats = envOr("GCASSERT_BENCH_REPEATS", 5);
    const unsigned cores = std::thread::hardware_concurrency();

    std::fprintf(stderr,
                 "  objects: %llu, repeats: %llu, host cores: %u\n",
                 static_cast<unsigned long long>(num_objects),
                 static_cast<unsigned long long>(repeats), cores);
    if (cores < 2)
        std::fprintf(stderr,
                     "  NOTE: single-core host; expect no speedup (the "
                     "sweep still validates correctness/termination)\n");

    std::vector<SweepPoint> points;
    for (uint32_t threads : {1u, 2u, 4u, 8u})
        points.push_back(measure(threads, num_objects, repeats));

    std::printf("\n  threads   mark ms/GC   speedup   steals/GC   marked\n");
    std::printf("  -------   ----------   -------   ---------   ------\n");
    const double base = points.front().markSecondsPerGc;
    for (const SweepPoint &p : points)
        std::printf("  %7u   %10.3f   %6.2fx   %9.1f   %6llu\n",
                    p.threads, p.markSecondsPerGc * 1e3,
                    base / p.markSecondsPerGc, p.stealsPerGc,
                    static_cast<unsigned long long>(p.marked));

    // JSON record for the repo's BENCH_ ledger.
    JsonWriter w;
    w.beginObject()
        .field("bench", "parallel_mark")
        .field("objects", num_objects)
        .field("repeats", repeats)
        .field("hostCores", cores)
        .key("points")
        .beginArray();
    for (const SweepPoint &p : points) {
        w.beginObject()
            .field("threads", p.threads)
            .field("markMsPerGc", p.markSecondsPerGc * 1e3)
            .field("stealsPerGc", p.stealsPerGc)
            .field("marked", p.marked)
            .endObject();
    }
    w.endArray().endObject();
    emitBenchJson(w.str(), "BENCH_parallel_mark.json");

    // The graph is identical across configurations, so divergent
    // mark counts indicate a tracer bug, not noise.
    for (const SweepPoint &p : points) {
        if (p.marked != points.front().marked) {
            std::fprintf(stderr,
                         "  ERROR: mark count diverges at %u threads "
                         "(%llu vs %llu)\n",
                         p.threads,
                         static_cast<unsigned long long>(p.marked),
                         static_cast<unsigned long long>(
                             points.front().marked));
            return 1;
        }
    }
    return 0;
}
