/**
 * @file
 * Micro-benchmarks (google-benchmark) for the individual mechanisms
 * whose costs the paper reasons about:
 *
 *  - allocation, with and without the per-allocation region check
 *    (section 2.3.2);
 *  - the GC trace loop per live object, Base vs Infrastructure
 *    (header-bit checks + instance tallying, sections 2.3-2.4);
 *  - the ownee sorted-array binary search (section 2.5.2);
 *  - assertion registration calls (header-bit writes);
 *  - handle (root) registration;
 *  - per-object sweep dispatch: the templated hot loop vs the
 *    legacy std::function path (regression guard for the hoist);
 *  - the TLAB allocation fast path vs the locked path.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "assertions/ownership.h"
#include "heap/block.h"
#include "support/logging.h"
#include "runtime/runtime.h"

namespace gcassert {
namespace {

/** A runtime + node type bundle for the micro benches. */
struct Env {
    explicit Env(bool infrastructure, uint64_t heap_bytes = 512ull << 20)
    {
        RuntimeConfig config;
        config.heap.budgetBytes = heap_bytes;
        config.infrastructure = infrastructure;
        config.recordPaths = infrastructure;
        runtime = std::make_unique<Runtime>(config);
        nodeType = runtime->types()
                       .define("Node")
                       .refCount(2)
                       .scalars(8)
                       .build();
        arrayType = runtime->types().define("Array").array().build();
    }

    std::unique_ptr<Runtime> runtime;
    TypeId nodeType = kInvalidTypeId;
    TypeId arrayType = kInvalidTypeId;
};

void
BM_Allocation(benchmark::State &state)
{
    Env env(state.range(0) != 0);
    Runtime &rt = *env.runtime;
    uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.allocRaw(env.nodeType));
        if (++n % 100000 == 0) {
            state.PauseTiming();
            rt.collect(); // keep the heap from growing unboundedly
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_Allocation)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("infra");

void
BM_AllocationInRegion(benchmark::State &state)
{
    Env env(true);
    Runtime &rt = *env.runtime;
    rt.startRegion();
    uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.allocRaw(env.nodeType));
        if (++n % 100000 == 0) {
            state.PauseTiming();
            rt.assertAllDead();
            rt.collect();
            rt.startRegion();
            state.ResumeTiming();
        }
    }
    rt.assertAllDead();
}
BENCHMARK(BM_AllocationInRegion);

/** Trace cost per live object: a rooted linked list of N nodes. */
void
BM_TracePerObject(benchmark::State &state)
{
    Env env(state.range(1) != 0);
    Runtime &rt = *env.runtime;
    int64_t population = state.range(0);
    Handle head(rt, rt.allocRaw(env.nodeType), "head");
    Object *tail = head.get();
    for (int64_t i = 1; i < population; ++i) {
        Object *next = rt.allocRaw(env.nodeType);
        tail->setRef(0, next);
        tail = next;
    }
    for (auto _ : state)
        rt.collect();
    state.SetItemsProcessed(state.iterations() * population);
}
BENCHMARK(BM_TracePerObject)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"live", "infra"});

/** Ownership-phase cost on top of the trace. */
void
BM_TraceWithOwnership(benchmark::State &state)
{
    Env env(true);
    Runtime &rt = *env.runtime;
    int64_t ownees = state.range(0);
    Handle owner(rt, rt.allocArrayRaw(env.arrayType,
                                      static_cast<uint32_t>(ownees)),
                 "owner");
    for (int64_t i = 0; i < ownees; ++i) {
        Object *e = rt.allocRaw(env.nodeType);
        owner->setRef(static_cast<uint32_t>(i), e);
        rt.assertOwnedBy(owner.get(), e);
    }
    for (auto _ : state)
        rt.collect();
    state.SetItemsProcessed(state.iterations() * ownees);
}
BENCHMARK(BM_TraceWithOwnership)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->ArgName("ownees");

void
BM_OwneeBinarySearch(benchmark::State &state)
{
    Env env(true);
    Runtime &rt = *env.runtime;
    int64_t ownees = state.range(0);
    OwnershipTable table;
    Object *owner = rt.allocRaw(env.nodeType);
    std::vector<Object *> members;
    for (int64_t i = 0; i < ownees; ++i) {
        Object *e = rt.allocRaw(env.nodeType);
        table.addPair(owner, e);
        members.push_back(e);
    }
    size_t cursor = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.isOwneeOf(owner, members[cursor]));
        cursor = (cursor + 1) % members.size();
    }
}
BENCHMARK(BM_OwneeBinarySearch)
    ->Arg(1000)
    ->Arg(100000)
    ->ArgName("ownees");

void
BM_AssertDeadCall(benchmark::State &state)
{
    Env env(true);
    Runtime &rt = *env.runtime;
    Object *obj = rt.allocRaw(env.nodeType);
    Handle root(rt, obj, "pin");
    for (auto _ : state) {
        rt.assertDead(obj);
        obj->clearFlag(kDeadBit);
    }
}
BENCHMARK(BM_AssertDeadCall);

/**
 * Per-object sweep cost with half the block dying each round.
 * Arg 0: the templated sweepWith hot loop (what Heap::sweep runs).
 * Arg 1: the legacy std::function dispatch (the pre-hoist shape,
 * kept as Block::sweep for direct users). The guard: the template
 * must never be slower than the std::function path.
 */
void
BM_SweepDispatch(benchmark::State &state)
{
    const bool dynamic = state.range(0) != 0;
    Block block(64);
    const std::function<void(Object *)> fn = [](Object *obj) {
        benchmark::DoNotOptimize(obj);
    };
    uint64_t sink = 0;
    for (auto _ : state) {
        // Refill the cells freed by the previous round and mark
        // every other object; identical work in both variants.
        while (void *cell = block.allocateCell())
            static_cast<Object *>(cell)->format(0, 2, 8);
        size_t i = 0;
        block.forEachObject([&](Object *obj) {
            if ((i++ & 1) == 0)
                obj->setFlag(kMarkBit);
        });
        if (dynamic)
            sink += block.sweep(fn);
        else
            sink += block.sweepWith(
                [](Object *obj) { benchmark::DoNotOptimize(obj); });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() *
                            (Block::kBlockBytes / 64));
}
BENCHMARK(BM_SweepDispatch)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("dynamic");

/** Allocation through the TLAB fast path (shared lock + bump). */
void
BM_AllocationTlab(benchmark::State &state)
{
    RuntimeConfig config;
    config.heap.budgetBytes = 512ull << 20;
    config.infrastructure = false;
    config.recordPaths = false;
    config.tlab = state.range(0) != 0;
    Runtime rt(config);
    TypeId node =
        rt.types().define("Node").refCount(2).scalars(8).build();
    uint64_t n = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.allocRaw(node));
        if (++n % 100000 == 0) {
            state.PauseTiming();
            rt.collect();
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_AllocationTlab)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("tlab");

void
BM_HandleRegistration(benchmark::State &state)
{
    Env env(true);
    Runtime &rt = *env.runtime;
    Object *obj = rt.allocRaw(env.nodeType);
    Handle pin(rt, obj, "pin");
    for (auto _ : state) {
        Handle h(rt, obj, "bench");
        benchmark::DoNotOptimize(h.get());
    }
}
BENCHMARK(BM_HandleRegistration);

} // namespace
} // namespace gcassert

int
main(int argc, char **argv)
{
    // Violations and GC chatter would pollute the bench output.
    gcassert::CaptureLogSink quiet;
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
