/**
 * @file
 * Figure 3 reproduction: GC-time overhead of the GC-assertion
 * infrastructure. Same runs as Figure 2, but the metric is time
 * spent inside collections.
 *
 * Paper: GC time increases by 13.36% (geomean), worst case 30%
 * (bloat, the most pointer-dense benchmark; our analog is
 * graphchurn).
 */

#include <cstdio>

#include "bench_util.h"
#include "support/logging.h"

using namespace gcassert;
using namespace gcassert::bench;

int
main()
{
    CaptureLogSink quiet;
    printHeader("Figure 3",
                "GC-time overhead of the assertion infrastructure "
                "(Base vs Infrastructure)",
                "GC time +13.36% geomean, worst case +30% (bloat)");

    DriverOptions options = figureOptions();
    std::vector<OverheadRow> rows;

    for (const std::string &name : figureSuite()) {
        PairedRuns runs = runInterleaved(name, BenchConfig::Base,
                                         BenchConfig::Infrastructure,
                                         options);
        if (runs.baselineGc.mean() <= 0.0) {
            std::fprintf(stderr,
                         "  [fig3] %s skipped: no GC in measured window\n",
                         name.c_str());
            continue;
        }
        rows.push_back(makeRow(name, runs.baselineGc, runs.treatmentGc));
        std::fprintf(stderr, "  [fig3] %s done\n", name.c_str());
    }

    printOverheadTable("Figure 3: GC time", "GC time", "Base",
                       "Infrastructure", rows);
    return 0;
}
