/**
 * @file
 * Backgraph overhead + leak-hunt bench: the server workload with the
 * always-on why-alive backgraph off vs on, across mutator thread
 * counts, plus a find-leak phase where injected leaks must be named
 * by allocation site with *no* armed assertion regions.
 *
 * Not a figure from the paper — the backgraph is the bdwgc-style
 * extension (see DESIGN.md "Backgraph & leak hunting") — but it pins
 * the cost story the same way fig_server pins region assertions:
 * requests/s and full-GC pause percentiles, comparable point for
 * point against BENCH_server.json's disarmed rows.
 *
 * Knobs: GCASSERT_BENCH_SERVER_REQUESTS (requests per thread per
 * point, default 30000), GCASSERT_BENCH_JSON (ledger path override).
 *
 * Exit status 1 when a tripwire fails: lost requests, an assertion
 * verdict in a region-free run, backgraph-on throughput below 1/20
 * of the off baseline, backgraph-on full-GC pause p99 above 20x the
 * off baseline (+50ms slack), a leak phase that fails to name the
 * injected site, or a clean phase that reports any leak trend.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "workloads/server.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

struct Measurement {
    uint32_t threads = 0;
    bool backgraph = false;
    uint64_t requests = 0;
    double seconds = 0.0;
    double requestsPerSec = 0.0;
    uint64_t pauseP50 = 0;
    uint64_t pauseP99 = 0;
    uint64_t pauseMax = 0;
    uint64_t fullGcs = 0;
    uint64_t verdicts = 0;
    uint64_t bgNodes = 0;
    uint64_t bgEdgeRecords = 0;
};

uint64_t
verdictCount(const Runtime &rt)
{
    uint64_t n = 0;
    for (const Violation &v : rt.violations())
        if (!assertionKindContextOnly(v.kind))
            ++n;
    return n;
}

Measurement
measure(uint32_t threads, bool backgraph, uint32_t requests_per_thread)
{
    ServerOptions options;
    options.threads = threads;
    options.requestsPerThread = requests_per_thread;
    options.leakEveryN = 0;
    auto server = makeServerWithOptions(options);

    RuntimeConfig config =
        RuntimeConfig::infra(2 * server->minHeapBytes());
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    // Arm telemetry (for the pause histograms) without per-GC census
    // work or an SLO budget.
    config.observe.censusEvery = 1000000;
    config.observe.pauseBudgetNanos = 0;
    config.backgraph = backgraph;

    Runtime rt(config);
    server->setup(rt);
    // No enableAssertions(): the point is the cost of the backgraph
    // feed alone, on plain region-free traffic.
    server->iterate(rt);
    rt.collect();

    Measurement m;
    m.threads = threads;
    m.backgraph = backgraph;
    m.requests = server->requestsCompleted();
    m.seconds = server->busySeconds();
    m.requestsPerSec =
        m.seconds > 0.0 ? static_cast<double>(m.requests) / m.seconds
                        : 0.0;
    const PauseHistogram &pauses = rt.telemetry()->pauseSlo().full();
    m.pauseP50 = pauses.percentile(50.0);
    m.pauseP99 = pauses.percentile(99.0);
    m.pauseMax = pauses.max();
    m.fullGcs = rt.collections();
    m.verdicts = verdictCount(rt);
    if (rt.backgraph()) {
        m.bgNodes = rt.backgraph()->nodeCount();
        m.bgEdgeRecords = rt.backgraph()->edgeRecords();
    }
    server->teardown(rt);
    return m;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Backgraph overhead + leak hunt",
                "server requests/s and GC pauses with the why-alive "
                "backgraph off vs on, then site-naming find-leak "
                "phases with no armed regions",
                "n/a (bdwgc-style backgraph extension)");

    const uint32_t requests_per_thread = static_cast<uint32_t>(
        envOr("GCASSERT_BENCH_SERVER_REQUESTS", 30000));
    const unsigned cores = std::thread::hardware_concurrency();
    std::fprintf(stderr, "  requests/thread: %u, host cores: %u\n",
                 requests_per_thread, cores);

    std::vector<Measurement> points;
    bool failed = false;
    for (uint32_t threads : {1u, 2u, 4u}) {
        for (bool backgraph : {false, true}) {
            Measurement m =
                measure(threads, backgraph, requests_per_thread);
            points.push_back(m);
            uint64_t expected = uint64_t{threads} * requests_per_thread;
            if (m.requests != expected) {
                std::fprintf(stderr,
                             "  ERROR: %u-thread %s run lost requests "
                             "(%llu of %llu)\n",
                             threads, backgraph ? "on" : "off",
                             static_cast<unsigned long long>(m.requests),
                             static_cast<unsigned long long>(expected));
                failed = true;
            }
            if (m.verdicts != 0) {
                std::fprintf(stderr,
                             "  ERROR: region-free %u-thread %s run "
                             "reported %llu verdicts\n",
                             threads, backgraph ? "on" : "off",
                             static_cast<unsigned long long>(m.verdicts));
                failed = true;
            }
        }
    }

    std::printf("\n  threads  backgraph  req/s      gc p99 us  gcs  "
                "bg nodes  bg edge recs\n");
    std::printf("  -------  ---------  ---------  ---------  ---  "
                "--------  ------------\n");
    for (const Measurement &m : points)
        std::printf("  %7u  %9s  %9.0f  %9.1f  %3llu  %8llu  %12llu\n",
                    m.threads, m.backgraph ? "on" : "off",
                    m.requestsPerSec,
                    static_cast<double>(m.pauseP99) / 1e3,
                    static_cast<unsigned long long>(m.fullGcs),
                    static_cast<unsigned long long>(m.bgNodes),
                    static_cast<unsigned long long>(m.bgEdgeRecords));

    // Overhead tripwires: generous — the backgraph serializes every
    // reference write through the barrier slow path when armed, so
    // the bound is "still usable", not "free". Off/on pairs share a
    // thread count and request schedule.
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
        const Measurement &off = points[i];
        const Measurement &on = points[i + 1];
        if (on.requestsPerSec < off.requestsPerSec / 20.0) {
            std::fprintf(stderr,
                         "  ERROR: %u-thread backgraph-on throughput "
                         "%.0f req/s below 1/20 of off baseline %.0f\n",
                         on.threads, on.requestsPerSec,
                         off.requestsPerSec);
            failed = true;
        }
        // The armed pause grows linearly with the edge-record feed
        // (sweep-time pruning + the post-GC trend BFS touch every
        // record), so the cap is normalized per record — measured
        // ~1 us/record on a 1-core host, capped at 5 us/record with
        // a 50 ms flat allowance so tiny feeds aren't noise-bound.
        uint64_t pause_cap = off.pauseP99 + 50000000ull +
                             5000ull * on.bgEdgeRecords;
        if (on.pauseP99 > pause_cap) {
            std::fprintf(stderr,
                         "  ERROR: %u-thread backgraph-on pause p99 "
                         "%llu ns above cap %llu ns "
                         "(%llu edge records)\n",
                         on.threads,
                         static_cast<unsigned long long>(on.pauseP99),
                         static_cast<unsigned long long>(pause_cap),
                         static_cast<unsigned long long>(
                             on.bgEdgeRecords));
            failed = true;
        }
    }

    // Leak phase: injected leaks, no armed regions — the trend
    // detector alone must name the leaking allocation site.
    uint64_t leak_injected = 0, leak_reports = 0;
    bool leak_named = false;
    {
        ServerOptions options;
        options.threads = 2;
        options.requestsPerThread =
            requests_per_thread < 1000 ? requests_per_thread : 1000;
        options.leakEveryN = 100;
        auto server = makeServerWithOptions(options);
        RuntimeConfig config =
            RuntimeConfig::infra(4 * server->minHeapBytes());
        config.backgraph = true;
        config.backgraphWindow = 3;
        Runtime rt(config);
        server->setup(rt);
        for (int round = 0; round < 5; ++round) {
            server->iterate(rt);
            rt.collect();
        }
        leak_injected = server->leaksInjected();
        for (const Violation &v : rt.violations())
            if (v.kind == AssertionKind::LeakGrowth) {
                ++leak_reports;
                if (v.message.find("srv.request.node") !=
                    std::string::npos)
                    leak_named = true;
            }
        server->teardown(rt);
    }
    std::printf("\n  leak phase: injected %llu, trend reports %llu, "
                "site named: %s\n",
                static_cast<unsigned long long>(leak_injected),
                static_cast<unsigned long long>(leak_reports),
                leak_named ? "yes" : "NO");
    if (leak_injected == 0 || !leak_named) {
        std::fprintf(stderr,
                     "  ERROR: leak phase failed to name "
                     "srv.request.node (injected %llu)\n",
                     static_cast<unsigned long long>(leak_injected));
        failed = true;
    }

    // Clean phase: same shape, zero injected leaks — no trend report
    // may fire.
    uint64_t clean_reports = 0;
    {
        ServerOptions options;
        options.threads = 2;
        options.requestsPerThread =
            requests_per_thread < 1000 ? requests_per_thread : 1000;
        options.leakEveryN = 0;
        auto server = makeServerWithOptions(options);
        RuntimeConfig config =
            RuntimeConfig::infra(4 * server->minHeapBytes());
        config.backgraph = true;
        config.backgraphWindow = 3;
        Runtime rt(config);
        server->setup(rt);
        for (int round = 0; round < 5; ++round) {
            server->iterate(rt);
            rt.collect();
        }
        for (const Violation &v : rt.violations())
            if (v.kind == AssertionKind::LeakGrowth)
                ++clean_reports;
        server->teardown(rt);
    }
    std::printf("  clean phase: trend reports %llu\n",
                static_cast<unsigned long long>(clean_reports));
    if (clean_reports != 0) {
        std::fprintf(stderr,
                     "  ERROR: clean phase raised %llu leak-trend "
                     "reports\n",
                     static_cast<unsigned long long>(clean_reports));
        failed = true;
    }

    JsonWriter w;
    w.beginObject()
        .field("bench", "backgraph")
        .field("requestsPerThread", uint64_t{requests_per_thread})
        .field("hostCores", uint64_t{cores})
        .key("points")
        .beginArray();
    for (const Measurement &m : points) {
        w.beginObject()
            .field("threads", m.threads)
            .field("backgraph", m.backgraph)
            .field("requests", m.requests)
            .field("seconds", m.seconds)
            .field("requestsPerSec", m.requestsPerSec)
            .field("gcPauseP50Nanos", m.pauseP50)
            .field("gcPauseP99Nanos", m.pauseP99)
            .field("gcPauseMaxNanos", m.pauseMax)
            .field("fullGcs", m.fullGcs)
            .field("verdicts", m.verdicts)
            .field("backgraphNodes", m.bgNodes)
            .field("backgraphEdgeRecords", m.bgEdgeRecords)
            .endObject();
    }
    w.endArray()
        .key("leakPhase")
        .beginObject()
        .field("injected", leak_injected)
        .field("trendReports", leak_reports)
        .field("siteNamed", leak_named)
        .endObject()
        .key("cleanPhase")
        .beginObject()
        .field("trendReports", clean_reports)
        .endObject()
        .endObject();
    emitBenchJson(w.str(), "BENCH_backgraph.json");

    return failed ? 1 : 0;
}
