/**
 * @file
 * Live-endpoint overhead bench: server-workload throughput with the
 * telemetry endpoint off vs armed-and-polled, interleaved pairs.
 *
 * The endpoint's design claim is that observation is (nearly) free
 * for the observed program: the serving thread never takes the
 * runtime lock, publishers only copy already-maintained accumulators
 * at phase boundaries, and a polling client touches published copies
 * only. This bench prices the whole treatment honestly — endpoint
 * armed on an ephemeral port, census every GC, *and* a live HTTP
 * poller hammering /metrics, /series, /census, /violations and
 * /why_alive throughout the run, every response validated with the
 * in-tree JSON parser.
 *
 * Tripwires (exit 1):
 *  - geomean armed/off throughput ratio above the overhead budget
 *    (default 1.02, i.e. <= 2% slowdown; GCASSERT_BENCH_LIVE_MAX_
 *    OVERHEAD overrides, in percent),
 *  - any mid-run response that fails to parse, or a poller that
 *    never got a response,
 *  - a /why_alive answer for a named server site that never reaches
 *    a root,
 *  - a final /metrics sequence number that disagrees with the
 *    seq-stamped teardown metrics document,
 *  - lost requests or spurious verdicts on either side.
 *
 * Knobs: GCASSERT_BENCH_LIVE_REQUESTS (requests per thread per run,
 * default 12000), GCASSERT_BENCH_LIVE_PAIRS (interleaved off/armed
 * pairs, default 5), GCASSERT_BENCH_JSON (ledger path override).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/net.h"
#include "support/stats.h"
#include "workloads/server.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** Rotating poll targets; /why_alive uses a long-lived site the
 *  server workload registers in setup() (pool buffers stay rooted
 *  for the whole run, so a published path exists at every GC). */
const char *const kPollTargets[] = {
    "/metrics", "/series", "/census", "/violations",
    "/why_alive?site=srv.pool.buffer",
};

struct PollStats {
    uint64_t polls = 0;
    uint64_t parseFailures = 0;
    uint64_t transportFailures = 0;
    bool whyAliveRootReached = false;
};

/** Poll the endpoint until @p stop, validating every response. */
void
pollLoop(uint16_t port, std::atomic<bool> &stop, PollStats &stats)
{
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        const char *target = kPollTargets[next % 5];
        ++next;
        std::string body, error;
        int status = 0;
        if (!httpGet(port, target, body, &status, &error)) {
            ++stats.transportFailures;
        } else {
            ++stats.polls;
            JsonValue root;
            if (!jsonParse(body, root, &error)) {
                ++stats.parseFailures;
                std::fprintf(stderr,
                             "  ERROR: %s returned unparseable JSON: "
                             "%s\n",
                             target, error.c_str());
            } else if (status == 200 && root.find("rootReached") &&
                       root.find("rootReached")->boolean) {
                stats.whyAliveRootReached = true;
            }
        }
        // A dashboard-like cadence: fast enough that every run gets
        // many validated responses, slow enough that the client's
        // own CPU (connect + parse) stays a background load.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

struct RunResult {
    double requestsPerSec = 0.0;
    uint64_t requests = 0;
    uint64_t verdicts = 0;
    PollStats poll;
    bool seqMatched = true;
};

RunResult
runOnce(bool live, uint32_t threads, uint32_t requests_per_thread,
        const std::string &sink)
{
    ServerOptions options;
    options.threads = threads;
    options.requestsPerThread = requests_per_thread;
    options.leakEveryN = 0;
    auto server = makeServerWithOptions(options);

    // Both sides carry identical observability work (census every
    // GC, backgraph site tracking, a teardown metrics sink): the
    // treatment isolates the *endpoint* — the serving thread, the
    // publish copies, and a live polling client — not the cost of
    // the features it exposes.
    RuntimeConfig config =
        RuntimeConfig::infra(2 * server->minHeapBytes());
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink = sink;
    config.observe.censusEvery = 1;
    config.observe.pauseBudgetNanos = 0;
    config.observe.livePort = live ? kAutoLivePort : 0;
    config.backgraph = true; // /why_alive needs site tracking

    RunResult r;
    uint64_t final_seq = 0;
    {
        Runtime rt(config);
        server->setup(rt);
        server->enableAssertions(rt);

        std::atomic<bool> stop{false};
        std::thread poller;
        if (live && rt.livePort() != 0)
            poller = std::thread(
                [&] { pollLoop(rt.livePort(), stop, r.poll); });

        server->iterate(rt);
        rt.collect();

        if (poller.joinable()) {
            stop.store(true, std::memory_order_relaxed);
            poller.join();
            // The teardown metrics document must name the same
            // sequence number the endpoint would serve right now.
            std::string body;
            int status = 0;
            if (httpGet(rt.livePort(), "/metrics", body, &status)) {
                JsonValue root;
                std::string error;
                if (jsonParse(body, root, &error) && root.find("seq"))
                    final_seq =
                        static_cast<uint64_t>(root.find("seq")->number);
            }
        }

        r.requests = server->requestsCompleted();
        r.requestsPerSec =
            server->busySeconds() > 0.0
                ? static_cast<double>(r.requests) / server->busySeconds()
                : 0.0;
        for (const Violation &v : rt.violations())
            if (!assertionKindContextOnly(v.kind))
                ++r.verdicts;
        server->teardown(rt);
    }

    if (live && final_seq != 0) {
        FILE *f = std::fopen(sink.c_str(), "rb");
        if (!f) {
            r.seqMatched = false;
        } else {
            std::string doc;
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
                doc.append(buf, n);
            std::fclose(f);
            JsonValue root;
            std::string error;
            r.seqMatched = jsonParse(doc, root, &error) &&
                           root.find("seq") &&
                           static_cast<uint64_t>(
                               root.find("seq")->number) == final_seq;
        }
        std::remove(sink.c_str());
    }
    return r;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Live endpoint overhead",
                "server throughput, telemetry endpoint off vs armed "
                "with a polling HTTP client validating every response",
                "n/a (observability extension; the endpoint must stay "
                "within the overhead budget)");

    const uint32_t requests_per_thread = static_cast<uint32_t>(
        envOr("GCASSERT_BENCH_LIVE_REQUESTS", 12000));
    const uint32_t pairs = static_cast<uint32_t>(
        envOr("GCASSERT_BENCH_LIVE_PAIRS", 5));
    const double max_overhead_pct = static_cast<double>(
        envOr("GCASSERT_BENCH_LIVE_MAX_OVERHEAD", 2));
    const uint32_t threads = 4;
    const std::string sink = "BENCH_live_metrics_tmp.json";

    std::fprintf(stderr,
                 "  threads: %u, requests/thread: %u, pairs: %u, "
                 "budget: %.1f%%\n",
                 threads, requests_per_thread, pairs,
                 max_overhead_pct);

    bool failed = false;
    std::vector<double> ratios;
    SampleSet off_rps, on_rps;
    uint64_t polls = 0, parse_failures = 0;
    bool why_alive_ok = false, seq_ok = true;

    std::printf("\n  pair  off req/s  armed req/s  armed/off  polls\n");
    std::printf("  ----  ---------  -----------  ---------  -----\n");
    for (uint32_t pair = 0; pair < pairs; ++pair) {
        RunResult off =
            runOnce(false, threads, requests_per_thread, sink);
        RunResult on =
            runOnce(true, threads, requests_per_thread, sink);
        const uint64_t expected =
            uint64_t{threads} * requests_per_thread;
        for (const RunResult *r : {&off, &on}) {
            if (r->requests != expected) {
                std::fprintf(stderr, "  ERROR: lost requests\n");
                failed = true;
            }
            if (r->verdicts != 0) {
                std::fprintf(stderr,
                             "  ERROR: clean run reported verdicts\n");
                failed = true;
            }
        }
        if (off.requestsPerSec <= 0.0 || on.requestsPerSec <= 0.0) {
            std::fprintf(stderr, "  ERROR: unmeasurable pair\n");
            failed = true;
            continue;
        }
        double ratio = off.requestsPerSec / on.requestsPerSec;
        ratios.push_back(ratio);
        off_rps.add(off.requestsPerSec);
        on_rps.add(on.requestsPerSec);
        polls += on.poll.polls;
        parse_failures +=
            on.poll.parseFailures + on.poll.transportFailures;
        why_alive_ok |= on.poll.whyAliveRootReached;
        seq_ok &= on.seqMatched;
        std::printf("  %4u  %9.0f  %11.0f  %9.4f  %5llu\n", pair,
                    off.requestsPerSec, on.requestsPerSec, ratio,
                    static_cast<unsigned long long>(on.poll.polls));
    }

    double overhead = ratios.empty() ? 0.0 : geomean(ratios);
    std::printf("\n  geomean armed/off: %.4f (budget %.4f)\n", overhead,
                1.0 + max_overhead_pct / 100.0);
    std::printf("  polls: %llu, parse failures: %llu, why_alive "
                "root-reached: %s, teardown seq agreed: %s\n",
                static_cast<unsigned long long>(polls),
                static_cast<unsigned long long>(parse_failures),
                why_alive_ok ? "yes" : "no", seq_ok ? "yes" : "no");

    if (overhead > 1.0 + max_overhead_pct / 100.0) {
        std::fprintf(stderr,
                     "  ERROR: endpoint overhead %.2f%% exceeds the "
                     "%.1f%% budget\n",
                     (overhead - 1.0) * 100.0, max_overhead_pct);
        failed = true;
    }
    if (polls == 0 || parse_failures != 0) {
        std::fprintf(stderr,
                     "  ERROR: poller served %llu responses with %llu "
                     "failures\n",
                     static_cast<unsigned long long>(polls),
                     static_cast<unsigned long long>(parse_failures));
        failed = true;
    }
    if (!why_alive_ok) {
        std::fprintf(stderr,
                     "  ERROR: /why_alive never answered a rootward "
                     "path for srv.request\n");
        failed = true;
    }
    if (!seq_ok) {
        std::fprintf(stderr,
                     "  ERROR: teardown metrics seq disagreed with the "
                     "endpoint's final /metrics\n");
        failed = true;
    }

    JsonWriter w;
    w.beginObject()
        .field("bench", "live")
        .field("threads", threads)
        .field("requestsPerThread", uint64_t{requests_per_thread})
        .field("pairs", uint64_t{pairs})
        .field("offReqPerSecMean",
               off_rps.count() ? off_rps.mean() : 0.0)
        .field("armedReqPerSecMean",
               on_rps.count() ? on_rps.mean() : 0.0)
        .field("geomeanArmedOverOff", overhead)
        .field("overheadBudgetPct", max_overhead_pct)
        .field("withinBudget",
               overhead <= 1.0 + max_overhead_pct / 100.0)
        .field("polls", polls)
        .field("pollFailures", parse_failures)
        .field("whyAliveRootReached", why_alive_ok)
        .field("teardownSeqAgreed", seq_ok)
        .endObject();
    emitBenchJson(w.str(), "BENCH_live.json");

    return failed ? 1 : 0;
}
