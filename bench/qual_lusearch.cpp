/**
 * @file
 * Section 3.2.2 reproduction: lusearch opens one IndexSearcher per
 * thread against the Lucene performance recommendation;
 * assert-instances(IndexSearcher, 1) reports 32 live instances.
 */

#include <cstdio>

#include "support/logging.h"
#include "workloads/registry.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet;
    std::printf("Qualitative reproduction of section 3.2.2: lusearch "
                "IndexSearcher instances\n\n");

    auto workload = WorkloadRegistry::instance().create("lusearch");
    Runtime runtime(RuntimeConfig::infra(2 * workload->minHeapBytes()));
    workload->setup(runtime);
    workload->enableAssertions(runtime);
    for (int i = 0; i < 3; ++i)
        workload->iterate(runtime);
    workload->teardown(runtime);

    std::printf("assert-instances(IndexSearcher, 1) reports across %llu "
                "collections:\n",
                static_cast<unsigned long long>(runtime.collections()));
    size_t reports = 0;
    size_t at32 = 0;
    for (const Violation &v : runtime.violations()) {
        if (v.kind != AssertionKind::Instances)
            continue;
        ++reports;
        if (v.message.find("32 instances") != std::string::npos)
            ++at32;
        if (reports <= 5)
            std::printf("  GC #%llu: %s\n",
                        static_cast<unsigned long long>(v.gcNumber),
                        v.message.c_str());
    }
    std::printf("  ... %zu reports total, %zu of them at the full 32 "
                "instances\n",
                reports, at32);
    std::printf("\nPaper: \"for most of the benchmark's execution, 32 "
                "instances of IndexSearcher are live, one for each "
                "thread performing searches.\"\n");
    return reports > 0 ? 0 : 1;
}
