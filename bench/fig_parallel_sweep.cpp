/**
 * @file
 * Parallel/lazy sweep characterization: sweep-phase time for 1/2/4/8
 * sweeper threads, and stop-the-world pause comparison between eager
 * and lazy sweeping, on a garbage-heavy workload.
 *
 * Not a figure from the paper (which uses a sequential collector);
 * this bench characterizes the sharded sweep and the incremental
 * (allocation-time) reclamation added on top. Each measured GC is
 * preceded by a fresh crop of unreachable objects spread over many
 * blocks and size classes, so the sweep phase dominates and the
 * shard partition has real work to split. In lazy mode the sweep
 * phase only runs the per-object accounting and defers free-list
 * reconstruction to the allocation slow path, so the GC pause drops
 * and the deferred cost rides on (untimed) mutator progress — the
 * classic lazy-sweeping trade the table makes visible.
 *
 * Knobs: GCASSERT_BENCH_REPEATS (measured GCs per configuration,
 * default 5), GCASSERT_BENCH_OBJECTS (garbage objects per GC,
 * default 300000), GCASSERT_BENCH_JSON (path for the JSON record,
 * default BENCH_parallel_sweep.json; empty string disables).
 *
 * Exit status 1 if any configuration's per-GC freed-object count
 * diverges (the workload is identical, so divergence is a sweeper
 * bug) — the same tripwire fig_parallel_mark uses for marking.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/stopwatch.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** One (threads, mode) configuration's measurements. */
struct SweepPoint {
    uint32_t threads = 1;
    bool lazy = false;
    double sweepMsPerGc = 0.0;
    double maxPauseMs = 0.0;
    uint64_t sweptPerGc = 0;
};

/**
 * Run `repeats` garbage-heavy collections and report the average
 * sweep-phase time and the worst full-collection pause. The garbage
 * crop is seed-determined and identical across configurations.
 */
SweepPoint
measure(uint32_t threads, bool lazy, uint64_t num_objects,
        uint64_t repeats)
{
    RuntimeConfig config;
    config.heap.budgetBytes = 4ull * 1024 * 1024 * 1024;
    config.infrastructure = false;
    config.recordPaths = false;
    config.sweepThreads = threads;
    config.lazySweep = lazy;
    Runtime rt(config);

    TypeId node_type =
        rt.types().define("Node").refs({"left", "right"}).scalars(8).build();
    TypeId record_type =
        rt.types().define("Record").refs({"a"}).scalars(200).build();
    TypeId blob_type = rt.types().define("Blob").array().build();

    // A modest retained set so the sweep also skips live survivors.
    std::vector<Handle> retained;
    for (int i = 0; i < 2000; ++i)
        retained.emplace_back(rt, rt.allocRaw(node_type), "retained");

    auto dropGarbage = [&](uint64_t round) {
        // Unreachable crop spread over several size classes; the
        // seed is per-round but identical across configurations.
        Rng crop(0xdead ^ round);
        for (uint64_t i = 0; i < num_objects; ++i) {
            switch (crop.below(8)) {
            case 0:
                rt.allocRaw(record_type);
                break;
            case 1:
                rt.allocScalarRaw(blob_type, static_cast<uint32_t>(
                                                 crop.range(24, 2000)));
                break;
            default:
                rt.allocRaw(node_type);
                break;
            }
        }
    };

    dropGarbage(0);
    rt.collect(); // warmup: faults pages, settles block lists

    GcStats &stats = rt.gcStats();
    double start_sweep = stats.sweepPhase.elapsedSeconds();
    uint64_t start_swept = stats.objectsSwept;
    double max_pause = 0.0;
    for (uint64_t round = 1; round <= repeats; ++round) {
        dropGarbage(round);
        uint64_t begin = nowNanos();
        rt.collect();
        double pause = static_cast<double>(nowNanos() - begin) / 1e9;
        if (pause > max_pause)
            max_pause = pause;
    }

    SweepPoint point;
    point.threads = threads;
    point.lazy = lazy;
    point.sweepMsPerGc =
        (stats.sweepPhase.elapsedSeconds() - start_sweep) * 1e3 /
        static_cast<double>(repeats);
    point.maxPauseMs = max_pause * 1e3;
    point.sweptPerGc = (stats.objectsSwept - start_swept) / repeats;
    return point;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Parallel / lazy sweep",
                "sweep-phase time vs sweeper-thread count, and "
                "eager-vs-lazy pause on a garbage-heavy workload",
                "n/a (extension beyond the paper's sequential collector)");

    const uint64_t num_objects = envOr("GCASSERT_BENCH_OBJECTS", 300000);
    const uint64_t repeats = envOr("GCASSERT_BENCH_REPEATS", 5);
    const unsigned cores = std::thread::hardware_concurrency();

    std::fprintf(stderr,
                 "  garbage objects/GC: %llu, repeats: %llu, host "
                 "cores: %u\n",
                 static_cast<unsigned long long>(num_objects),
                 static_cast<unsigned long long>(repeats), cores);
    if (cores < 2)
        std::fprintf(stderr,
                     "  NOTE: single-core host; expect no speedup (the "
                     "sweep still validates correctness/termination)\n");

    std::vector<SweepPoint> points;
    for (bool lazy : {false, true})
        for (uint32_t threads : {1u, 2u, 4u, 8u})
            points.push_back(
                measure(threads, lazy, num_objects, repeats));

    const double eager_base = points.front().sweepMsPerGc;
    std::printf("\n  mode    threads   sweep ms/GC   speedup   "
                "max pause ms   swept/GC\n");
    std::printf("  -----   -------   -----------   -------   "
                "------------   --------\n");
    for (const SweepPoint &p : points)
        std::printf("  %-5s   %7u   %11.3f   %6.2fx   %12.3f   %8llu\n",
                    p.lazy ? "lazy" : "eager", p.threads,
                    p.sweepMsPerGc, eager_base / p.sweepMsPerGc,
                    p.maxPauseMs,
                    static_cast<unsigned long long>(p.sweptPerGc));

    // JSON record for the repo's BENCH_ ledger.
    JsonWriter w;
    w.beginObject()
        .field("bench", "parallel_sweep")
        .field("garbageObjects", num_objects)
        .field("repeats", repeats)
        .field("hostCores", cores)
        .key("points")
        .beginArray();
    for (const SweepPoint &p : points) {
        w.beginObject()
            .field("threads", p.threads)
            .field("lazy", p.lazy)
            .field("sweepMsPerGc", p.sweepMsPerGc)
            .field("maxPauseMs", p.maxPauseMs)
            .field("sweptPerGc", p.sweptPerGc)
            .endObject();
    }
    w.endArray().endObject();
    emitBenchJson(w.str(), "BENCH_parallel_sweep.json");

    // Identical workload => identical per-GC freed counts; anything
    // else is a sweeper bug, not noise.
    for (const SweepPoint &p : points) {
        if (p.sweptPerGc != points.front().sweptPerGc) {
            std::fprintf(stderr,
                         "  ERROR: swept count diverges at %u threads "
                         "%s (%llu vs %llu)\n",
                         p.threads, p.lazy ? "lazy" : "eager",
                         static_cast<unsigned long long>(p.sweptPerGc),
                         static_cast<unsigned long long>(
                             points.front().sweptPerGc));
            return 1;
        }
    }
    return 0;
}
