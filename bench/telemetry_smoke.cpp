/**
 * @file
 * CI telemetry smoke checker: runs the figure workload suite with
 * every observability knob on (phase tracing, metrics, census every
 * GC), validates each emitted JSON artifact with the in-tree parser,
 * and enforces an overhead tripwire against interleaved knobs-off
 * runs of the same workloads.
 *
 * Checks per workload:
 *  - the Chrome trace file parses, has a traceEvents array, and
 *    contains at least one full_gc span with mark/sweep sub-phases;
 *  - the census snapshot is present, internally consistent (row sums
 *    equal totals), and serializes to valid JSON;
 *  - the metrics snapshot parses and its gc.collections gauge agrees
 *    with GcStats;
 *  - every violation's toJson() (with provenance) parses;
 *  - the per-assertion cost gauges (assert.cost.{mark,finish}.*)
 *    sum to within GCASSERT_SMOKE_MAX_ATTRIB_DELTA_PCT (default 5%)
 *    of the mark+finish wall-clock spans from the trace — sequential
 *    marking only, since parallel workers tally CPU time that
 *    legitimately exceeds the wall-clock span;
 *  - when GCASSERT_PAUSE_BUDGET_US arms a generous (>= 1 s) pause
 *    budget, no pause-SLO violation may fire;
 *  - across the whole suite, the assertion kinds that do per-GC
 *    work (instances, ownedby) carry non-zero attributed cost.
 *
 * Tripwire: the geometric-mean slowdown of telemetry-on over
 * telemetry-off runs must stay at or below
 * GCASSERT_SMOKE_MAX_OVERHEAD_PCT (default 2%). Honors the usual
 * GCASSERT_GENERATIONAL / GCASSERT_SWEEP_THREADS / ... env defaults,
 * so the CI matrix reuses one binary for every leg.
 *
 * Exit status: 0 on success, 1 on any validation failure or a
 * tripped overhead bound.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "observe/assert_cost.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/stats.h"
#include "support/strutil.h"
#include "support/stopwatch.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

int failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
    ++failures;
}

/** Parse @p text, failing the run (with context) on error. */
bool
parseChecked(const std::string &text, const std::string &what,
             JsonValue &out)
{
    std::string error;
    if (!jsonParse(text, out, &error)) {
        fail(what + ": invalid JSON: " + error);
        return false;
    }
    return true;
}

std::string
readFile(const std::string &path)
{
    std::string out;
    if (FILE *f = std::fopen(path.c_str(), "rb")) {
        char buf[65536];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            out.append(buf, n);
        std::fclose(f);
    }
    return out;
}

/** Which assertion kinds carried non-zero cost anywhere in the suite. */
bool kindSeen[kNumAssertCostKinds] = {};

/**
 * Check the per-assertion cost gauges against the phase spans they
 * partition: summed across all six kinds and both phases, the
 * attribution must reproduce the cumulative mark+finish wall-clock
 * time recorded in the trace. Exact by construction for sequential
 * marking (the "other" bucket absorbs the span remainder), so any
 * drift beyond the tolerance means the merge or gauge wiring lost
 * tallies. Skipped for parallel marking, where per-worker CPU time
 * legitimately exceeds the wall-clock span.
 */
void
validateAttribution(const std::string &name, Runtime &rt,
                    bool sequential_mark, double max_delta_pct)
{
    JsonValue metrics;
    if (!parseChecked(rt.telemetry()->metrics().toJson(),
                      name + ": metrics", metrics))
        return;
    const JsonValue *gauges = metrics.find("gauges");
    if (!gauges) {
        fail(name + ": metrics snapshot has no gauges");
        return;
    }
    double attrib = 0.0;
    for (size_t i = 0; i < kNumAssertCostKinds; ++i) {
        std::string kind =
            assertCostKindName(static_cast<AssertCostKind>(i));
        double kind_total = 0.0;
        for (const char *phase : {"mark", "finish"}) {
            std::string key = std::string("assert.cost.") + phase +
                              "." + kind + "_nanos";
            const JsonValue *g = gauges->find(key);
            if (!g || !g->isNumber()) {
                fail(name + ": missing gauge " + key);
                return;
            }
            kind_total += g->number;
        }
        attrib += kind_total;
        if (kind_total > 0.0)
            kindSeen[i] = true;
    }

    TraceRecorder *recorder = rt.telemetry()->recorder();
    if (!recorder) {
        fail(name + ": attribution check needs an active trace");
        return;
    }
    JsonValue trace;
    if (!parseChecked(recorder->toJson(), name + ": live trace",
                      trace))
        return;
    const JsonValue *events = trace.find("traceEvents");
    double span_nanos = 0.0;
    if (events && events->isArray())
        for (const JsonValue &ev : events->array) {
            const JsonValue *nm = ev.find("name");
            const JsonValue *ph = ev.find("ph");
            const JsonValue *dur = ev.find("dur");
            if (nm && nm->isString() && ph && ph->string == "X" &&
                dur && dur->isNumber() &&
                (nm->string == "mark" || nm->string == "finish"))
                span_nanos += dur->number * 1000.0; // dur is in us
        }
    if (span_nanos <= 0.0) {
        fail(name + ": trace has no mark/finish spans to attribute");
        return;
    }
    if (!sequential_mark)
        return;
    double delta_pct =
        std::fabs(attrib - span_nanos) / span_nanos * 100.0;
    if (delta_pct > max_delta_pct)
        fail(format("%s: attribution sum %.0f ns vs mark+finish "
                    "spans %.0f ns (%.2f%% apart, bound %.2f%%)",
                    name.c_str(), attrib, span_nanos, delta_pct,
                    max_delta_pct));
}

/** Validate the in-runtime artifacts (census, metrics, violations). */
void
validateRuntimeArtifacts(const std::string &name, Runtime &rt)
{
    CensusSnapshot census = rt.latestCensus();
    if (census.empty()) {
        fail(name + ": no census despite censusEvery=1");
    } else {
        uint64_t objects = 0, bytes = 0;
        for (const CensusRow &row : census.rows) {
            objects += row.liveObjects;
            bytes += row.liveBytes;
        }
        if (objects != census.totalObjects ||
            bytes != census.totalBytes)
            fail(name + ": census rows disagree with totals");
        JsonValue parsed;
        parseChecked(census.toJson(), name + ": census", parsed);
    }

    JsonValue metrics;
    if (parseChecked(rt.telemetry()->metrics().toJson(),
                     name + ": metrics", metrics)) {
        const JsonValue *gauges = metrics.find("gauges");
        const JsonValue *collections =
            gauges ? gauges->find("gc.collections") : nullptr;
        if (!collections ||
            collections->number !=
                static_cast<double>(rt.gcStats().collections))
            fail(name + ": gc.collections gauge disagrees with stats");
    }

    // A generous armed budget (>= 1 s) must never be blown by the
    // figure workloads; a pause-SLO report here means the tracker is
    // firing spuriously or a pause regressed by orders of magnitude.
    const uint64_t pause_budget =
        rt.telemetry()->pauseSlo().budgetNanos();
    for (const Violation &v : rt.violations()) {
        JsonValue parsed;
        if (!parseChecked(v.toJson(), name + ": violation", parsed))
            break;
        if (v.provenanceJson.empty()) {
            fail(name + ": violation missing provenance");
            break;
        }
        if (v.kind == AssertionKind::PauseSlo &&
            pause_budget >= 1000000000ull)
            fail(name + ": pause-SLO violation under a generous (" +
                 std::to_string(pause_budget / 1000000000ull) +
                 " s) budget: " + v.message);
    }
}

/** Validate the flushed Chrome trace file. */
void
validateTraceFile(const std::string &name, const std::string &path,
                  bool expect_minor)
{
    JsonValue root;
    if (!parseChecked(readFile(path), name + ": trace file", root))
        return;
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray() || events->array.empty()) {
        fail(name + ": trace has no traceEvents");
        return;
    }
    bool full = false, mark = false, sweep = false, minor = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *nm = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        if (!nm || !nm->isString() || !ph || !ts || !ts->isNumber()) {
            fail(name + ": malformed trace event");
            return;
        }
        if (ph->string == "X") {
            const JsonValue *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0) {
                fail(name + ": X event without a valid dur");
                return;
            }
        }
        full |= nm->string == "full_gc";
        mark |= nm->string == "mark";
        sweep |= nm->string == "sweep";
        minor |= nm->string == "minor_gc";
    }
    if (!full || !mark || !sweep)
        fail(name + ": trace missing full_gc/mark/sweep spans");
    if (expect_minor && !minor)
        fail(name + ": generational run produced no minor_gc span");
}

/**
 * One measured workload run. Telemetry-on runs also validate every
 * artifact; validation happens outside the timed region so the
 * tripwire measures the recording cost, not the checking cost.
 */
double
runOnce(const std::string &name, bool telemetry, uint32_t iterations)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    std::string trace_path = "telemetry_smoke_" + name + ".trace.json";
    if (telemetry) {
        config.observe.traceFile = trace_path;
        config.observe.metricsSink =
            "telemetry_smoke_" + name + ".metrics.json";
        config.observe.censusEvery = 1;
    } else {
        config.observe.traceFile.clear();
        config.observe.metricsSink.clear();
        config.observe.censusEvery = 0;
    }

    double seconds = 0.0;
    uint64_t minors = 0;
    {
        Runtime rt(config);
        uint64_t t0 = nowNanos();
        workload->setup(rt);
        workload->enableAssertions(rt);
        for (uint32_t i = 0; i < iterations; ++i)
            workload->iterate(rt);
        workload->teardown(rt);
        rt.collect();
        seconds = static_cast<double>(nowNanos() - t0) * 1e-9;
        minors = rt.gcStats().minorCollections;
        if (telemetry) {
            validateRuntimeArtifacts(name, rt);
            double max_delta_pct = [] {
                const char *env =
                    std::getenv("GCASSERT_SMOKE_MAX_ATTRIB_DELTA_PCT");
                return env ? std::atof(env) : 5.0;
            }();
            validateAttribution(name, rt, config.markThreads == 1,
                                max_delta_pct);
        }
    } // destructor flushes the trace and metrics files
    if (telemetry) {
        validateTraceFile(name, trace_path, minors > 0);
        std::remove(trace_path.c_str());
        std::remove(
            ("telemetry_smoke_" + name + ".metrics.json").c_str());
    }
    return seconds;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    std::printf("telemetry smoke: JSON validation + overhead tripwire\n");

    const uint64_t repeats = envOr("GCASSERT_SMOKE_REPEATS", 3);
    const uint64_t iterations = envOr("GCASSERT_SMOKE_ITERATIONS", 2);
    const double max_overhead_pct = [] {
        const char *env = std::getenv("GCASSERT_SMOKE_MAX_OVERHEAD_PCT");
        return env ? std::atof(env) : 2.0;
    }();

    std::vector<double> medians;
    std::printf("\n  %-14s %10s %10s %9s\n", "workload", "off ms",
                "on ms", "overhead");
    for (const std::string &name : figureSuite()) {
        SampleSet ratios;
        double off_med = 0.0, on_med = 0.0;
        SampleSet off_samples, on_samples;
        for (uint64_t r = 0; r < repeats; ++r) {
            double off = runOnce(name, false,
                                 static_cast<uint32_t>(iterations));
            double on = runOnce(name, true,
                                static_cast<uint32_t>(iterations));
            off_samples.add(off);
            on_samples.add(on);
            if (off > 0)
                ratios.add(on / off);
        }
        off_med = off_samples.median();
        on_med = on_samples.median();
        double ratio = ratios.empty() ? 1.0 : ratios.median();
        medians.push_back(ratio);
        std::printf("  %-14s %8.1f   %8.1f   %+7.2f%%\n", name.c_str(),
                    off_med * 1e3, on_med * 1e3, (ratio - 1.0) * 100.0);
    }

    // The figure workloads collectively exercise instances and
    // ownedby assertions, which do per-GC work whether or not they
    // fire; each must have accrued attributed cost somewhere in the
    // suite or the attribution plumbing is dark. (Dead assertions on
    // a clean run cost nothing attributable: a flagged object that is
    // genuinely dead is never marked, so deadCheck never runs on it.)
    for (AssertCostKind kind :
         {AssertCostKind::Instances, AssertCostKind::OwnedBy})
        if (!kindSeen[static_cast<size_t>(kind)])
            fail(std::string("suite-wide: no attributed cost for "
                             "assertion kind ") +
                 assertCostKindName(kind));

    double gm = geomean(medians);
    std::printf("\n  geomean telemetry overhead: %+.2f%% (bound: "
                "%.2f%%)\n", (gm - 1.0) * 100.0, max_overhead_pct);
    if ((gm - 1.0) * 100.0 > max_overhead_pct) {
        std::fprintf(stderr,
                     "  FAIL: telemetry overhead %.2f%% exceeds the "
                     "%.2f%% tripwire\n",
                     (gm - 1.0) * 100.0, max_overhead_pct);
        ++failures;
    }

    if (failures) {
        std::fprintf(stderr, "\ntelemetry smoke: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("\ntelemetry smoke: all checks passed\n");
    return 0;
}
