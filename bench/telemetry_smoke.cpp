/**
 * @file
 * CI telemetry smoke checker: runs the figure workload suite with
 * every observability knob on (phase tracing, metrics, census every
 * GC), validates each emitted JSON artifact with the in-tree parser,
 * and enforces an overhead tripwire against interleaved knobs-off
 * runs of the same workloads.
 *
 * Checks per workload:
 *  - the Chrome trace file parses, has a traceEvents array, and
 *    contains at least one full_gc span with mark/sweep sub-phases;
 *  - the census snapshot is present, internally consistent (row sums
 *    equal totals), and serializes to valid JSON;
 *  - the metrics snapshot parses and its gc.collections gauge agrees
 *    with GcStats;
 *  - every violation's toJson() (with provenance) parses.
 *
 * Tripwire: the geometric-mean slowdown of telemetry-on over
 * telemetry-off runs must stay at or below
 * GCASSERT_SMOKE_MAX_OVERHEAD_PCT (default 2%). Honors the usual
 * GCASSERT_GENERATIONAL / GCASSERT_SWEEP_THREADS / ... env defaults,
 * so the CI matrix reuses one binary for every leg.
 *
 * Exit status: 0 on success, 1 on any validation failure or a
 * tripped overhead bound.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/stats.h"
#include "support/stopwatch.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

int failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
    ++failures;
}

/** Parse @p text, failing the run (with context) on error. */
bool
parseChecked(const std::string &text, const std::string &what,
             JsonValue &out)
{
    std::string error;
    if (!jsonParse(text, out, &error)) {
        fail(what + ": invalid JSON: " + error);
        return false;
    }
    return true;
}

std::string
readFile(const std::string &path)
{
    std::string out;
    if (FILE *f = std::fopen(path.c_str(), "rb")) {
        char buf[65536];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            out.append(buf, n);
        std::fclose(f);
    }
    return out;
}

/** Validate the in-runtime artifacts (census, metrics, violations). */
void
validateRuntimeArtifacts(const std::string &name, Runtime &rt)
{
    CensusSnapshot census = rt.latestCensus();
    if (census.empty()) {
        fail(name + ": no census despite censusEvery=1");
    } else {
        uint64_t objects = 0, bytes = 0;
        for (const CensusRow &row : census.rows) {
            objects += row.liveObjects;
            bytes += row.liveBytes;
        }
        if (objects != census.totalObjects ||
            bytes != census.totalBytes)
            fail(name + ": census rows disagree with totals");
        JsonValue parsed;
        parseChecked(census.toJson(), name + ": census", parsed);
    }

    JsonValue metrics;
    if (parseChecked(rt.telemetry()->metrics().toJson(),
                     name + ": metrics", metrics)) {
        const JsonValue *gauges = metrics.find("gauges");
        const JsonValue *collections =
            gauges ? gauges->find("gc.collections") : nullptr;
        if (!collections ||
            collections->number !=
                static_cast<double>(rt.gcStats().collections))
            fail(name + ": gc.collections gauge disagrees with stats");
    }

    for (const Violation &v : rt.violations()) {
        JsonValue parsed;
        if (!parseChecked(v.toJson(), name + ": violation", parsed))
            break;
        if (v.provenanceJson.empty()) {
            fail(name + ": violation missing provenance");
            break;
        }
    }
}

/** Validate the flushed Chrome trace file. */
void
validateTraceFile(const std::string &name, const std::string &path,
                  bool expect_minor)
{
    JsonValue root;
    if (!parseChecked(readFile(path), name + ": trace file", root))
        return;
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray() || events->array.empty()) {
        fail(name + ": trace has no traceEvents");
        return;
    }
    bool full = false, mark = false, sweep = false, minor = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *nm = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        if (!nm || !nm->isString() || !ph || !ts || !ts->isNumber()) {
            fail(name + ": malformed trace event");
            return;
        }
        if (ph->string == "X") {
            const JsonValue *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0) {
                fail(name + ": X event without a valid dur");
                return;
            }
        }
        full |= nm->string == "full_gc";
        mark |= nm->string == "mark";
        sweep |= nm->string == "sweep";
        minor |= nm->string == "minor_gc";
    }
    if (!full || !mark || !sweep)
        fail(name + ": trace missing full_gc/mark/sweep spans");
    if (expect_minor && !minor)
        fail(name + ": generational run produced no minor_gc span");
}

/**
 * One measured workload run. Telemetry-on runs also validate every
 * artifact; validation happens outside the timed region so the
 * tripwire measures the recording cost, not the checking cost.
 */
double
runOnce(const std::string &name, bool telemetry, uint32_t iterations)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    std::string trace_path = "telemetry_smoke_" + name + ".trace.json";
    if (telemetry) {
        config.observe.traceFile = trace_path;
        config.observe.metricsSink =
            "telemetry_smoke_" + name + ".metrics.json";
        config.observe.censusEvery = 1;
    } else {
        config.observe.traceFile.clear();
        config.observe.metricsSink.clear();
        config.observe.censusEvery = 0;
    }

    double seconds = 0.0;
    uint64_t minors = 0;
    {
        Runtime rt(config);
        uint64_t t0 = nowNanos();
        workload->setup(rt);
        workload->enableAssertions(rt);
        for (uint32_t i = 0; i < iterations; ++i)
            workload->iterate(rt);
        workload->teardown(rt);
        rt.collect();
        seconds = static_cast<double>(nowNanos() - t0) * 1e-9;
        minors = rt.gcStats().minorCollections;
        if (telemetry)
            validateRuntimeArtifacts(name, rt);
    } // destructor flushes the trace and metrics files
    if (telemetry) {
        validateTraceFile(name, trace_path, minors > 0);
        std::remove(trace_path.c_str());
        std::remove(
            ("telemetry_smoke_" + name + ".metrics.json").c_str());
    }
    return seconds;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    std::printf("telemetry smoke: JSON validation + overhead tripwire\n");

    const uint64_t repeats = envOr("GCASSERT_SMOKE_REPEATS", 3);
    const uint64_t iterations = envOr("GCASSERT_SMOKE_ITERATIONS", 2);
    const double max_overhead_pct = [] {
        const char *env = std::getenv("GCASSERT_SMOKE_MAX_OVERHEAD_PCT");
        return env ? std::atof(env) : 2.0;
    }();

    std::vector<double> medians;
    std::printf("\n  %-14s %10s %10s %9s\n", "workload", "off ms",
                "on ms", "overhead");
    for (const std::string &name : figureSuite()) {
        SampleSet ratios;
        double off_med = 0.0, on_med = 0.0;
        SampleSet off_samples, on_samples;
        for (uint64_t r = 0; r < repeats; ++r) {
            double off = runOnce(name, false,
                                 static_cast<uint32_t>(iterations));
            double on = runOnce(name, true,
                                static_cast<uint32_t>(iterations));
            off_samples.add(off);
            on_samples.add(on);
            if (off > 0)
                ratios.add(on / off);
        }
        off_med = off_samples.median();
        on_med = on_samples.median();
        double ratio = ratios.empty() ? 1.0 : ratios.median();
        medians.push_back(ratio);
        std::printf("  %-14s %8.1f   %8.1f   %+7.2f%%\n", name.c_str(),
                    off_med * 1e3, on_med * 1e3, (ratio - 1.0) * 100.0);
    }

    double gm = geomean(medians);
    std::printf("\n  geomean telemetry overhead: %+.2f%% (bound: "
                "%.2f%%)\n", (gm - 1.0) * 100.0, max_overhead_pct);
    if ((gm - 1.0) * 100.0 > max_overhead_pct) {
        std::fprintf(stderr,
                     "  FAIL: telemetry overhead %.2f%% exceeds the "
                     "%.2f%% tripwire\n",
                     (gm - 1.0) * 100.0, max_overhead_pct);
        ++failures;
    }

    if (failures) {
        std::fprintf(stderr, "\ntelemetry smoke: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("\ntelemetry smoke: all checks passed\n");
    return 0;
}
