/**
 * @file
 * Ablation: deferred batched assertion checks vs QVM-style
 * immediate heap probes (paper section 4.1). Both answer the same N
 * "is this object dead now?" questions over identical heaps; the
 * immediate version triggers a collection per probe, the deferred
 * version batches everything into the regularly scheduled GCs.
 */

#include <cstdio>

#include "detectors/probes.h"
#include "support/logging.h"
#include "support/stopwatch.h"
#include "support/strutil.h"
#include "workloads/registry.h"

using namespace gcassert;

namespace {

/** Build a fresh runtime with a linked-node type; returns time. */
struct Setup {
    std::unique_ptr<Runtime> runtime;
    TypeId nodeType;
};

Setup
makeRuntime()
{
    Setup setup;
    RuntimeConfig config;
    config.heap.budgetBytes = 16ull * 1024 * 1024;
    setup.runtime = std::make_unique<Runtime>(config);
    setup.nodeType = setup.runtime->types()
                         .define("Node")
                         .refCount(2)
                         .scalars(8)
                         .build();
    return setup;
}

/** Allocate a live population plus one garbage object per probe. */
double
runDeferred(uint32_t probes, uint32_t population)
{
    Setup setup = makeRuntime();
    Runtime &rt = *setup.runtime;
    Handle keep(rt, rt.allocArrayRaw(
                        rt.types().define("Keep[]").array().build(),
                        population),
                "population");
    for (uint32_t i = 0; i < population; ++i)
        keep->setRef(i, rt.allocRaw(setup.nodeType));

    Stopwatch watch;
    watch.start();
    for (uint32_t i = 0; i < probes; ++i) {
        Object *garbage = rt.allocRaw(setup.nodeType);
        rt.assertDead(garbage); // deferred to the next GC
    }
    rt.collect(); // one batched check
    watch.stop();
    return watch.elapsedSeconds();
}

double
runImmediate(uint32_t probes, uint32_t population)
{
    Setup setup = makeRuntime();
    Runtime &rt = *setup.runtime;
    Handle keep(rt, rt.allocArrayRaw(
                        rt.types().define("Keep[]").array().build(),
                        population),
                "population");
    for (uint32_t i = 0; i < population; ++i)
        keep->setRef(i, rt.allocRaw(setup.nodeType));
    ImmediateProbes detector(rt);

    Stopwatch watch;
    watch.start();
    for (uint32_t i = 0; i < probes; ++i) {
        Object *garbage = rt.allocRaw(setup.nodeType);
        detector.probeDead(garbage); // one GC per probe
    }
    watch.stop();
    return watch.elapsedSeconds();
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    std::printf("Ablation: deferred GC assertions vs QVM-style immediate "
                "probes\n");
    std::printf("(paper section 4.1: QVM \"triggers a garbage collection "
                "for each heap probe..., incurring a hefty overhead\"; "
                "GC assertions batch\n checks onto scheduled "
                "collections)\n\n");

    constexpr uint32_t kPopulation = 50000;
    std::printf("%10s %16s %16s %10s\n", "probes", "deferred (ms)",
                "immediate (ms)", "speedup");
    for (uint32_t probes : {16u, 64u, 256u, 1024u}) {
        double deferred = runDeferred(probes, kPopulation);
        double immediate = runImmediate(probes, kPopulation);
        std::printf("%10u %16.2f %16.2f %9.1fx\n", probes,
                    deferred * 1e3, immediate * 1e3,
                    deferred > 0 ? immediate / deferred : 0.0);
    }
    std::printf("\nExpected shape: immediate cost grows linearly with the "
                "number of probes\n(one full-heap collection each); the "
                "deferred batch stays near one GC.\n");
    return 0;
}
