/**
 * @file
 * Figure 1 reproduction: the full-path error report. Runs the
 * jbbemu workload with the Jump & McKinley orderTable leak present
 * and assert-dead placed at the end of delivery processing, then
 * prints the first resulting report — the same shape as the
 * paper's Figure 1:
 *
 *   Company -> Object[] -> Warehouse -> Object[] -> District ->
 *   longBTree -> longBTreeNode -> Object[] -> Order
 */

#include <cstdio>

#include "support/logging.h"
#include "workloads/jbbemu.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet;
    std::printf("Figure 1: example of full-path error reporting\n");
    std::printf("(dead Order still reachable from the orderTable "
                "B-tree)\n\n");

    JbbOptions options;
    options.fixCustomerLastOrder = true; // isolate the orderTable leak
    options.fixOldCompanyDrag = true;
    options.removeFromOrderTable = false; // the seeded defect
    options.assertOwnership = false;
    options.assertCompanySingleton = false;
    options.assertDeadOldCompany = false;

    auto workload = makeJbbEmuWithOptions(options);
    Runtime runtime(RuntimeConfig::infra(2 * workload->minHeapBytes()));
    workload->setup(runtime);
    workload->enableAssertions(runtime);
    for (int i = 0; i < 2; ++i)
        workload->iterate(runtime);
    runtime.collect();

    // Print the first report whose path runs through the B-tree.
    for (const Violation &v : runtime.violations()) {
        if (v.kind != AssertionKind::Dead)
            continue;
        bool through_btree = false;
        for (const auto &hop : v.path)
            through_btree |=
                hop.typeName.find("longBTree") != std::string::npos;
        if (!through_btree)
            continue;
        std::printf("%s\n", v.toString().c_str());
        std::printf("(reported in GC #%llu; %zu violations total in "
                    "this run)\n",
                    static_cast<unsigned long long>(v.gcNumber),
                    runtime.violations().size());
        workload->teardown(runtime);
        return 0;
    }

    std::printf("ERROR: expected at least one Order report through the "
                "orderTable\n");
    workload->teardown(runtime);
    return 1;
}
