/**
 * @file
 * Generational pause characterization: minor (nursery) collection
 * pause vs full mark-sweep pause on the leak-heavy workloads
 * (swapleak, jbbemu).
 *
 * Not a figure from the paper (which uses a full-heap collector);
 * this bench characterizes the nursery generation added on top. Each
 * workload runs with generational mode on and a small nursery; after
 * every iteration one explicitly-timed minor collection and one
 * explicitly-timed full collection are interleaved, so both pause
 * populations see the same mutator state. The point of the table is
 * the paper-motivated trade: assertion verdicts only come from full
 * collections, but the nursery keeps reclamation pauses small
 * between checking points.
 *
 * Knobs: GCASSERT_BENCH_REPEATS (timed minor/full pairs per
 * workload, default 8), GCASSERT_BENCH_NURSERY_KB (nursery size,
 * default 512), GCASSERT_BENCH_JSON (path for the JSON record,
 * default BENCH_generational.json; empty string disables).
 *
 * Exit status 1 if any workload's average minor pause is not below
 * its average full pause — the nursery exists to shorten pauses, so
 * anything else is a regression, not noise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/stopwatch.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** One workload's paired pause measurements. */
struct GenPoint {
    std::string workload;
    double minorMsAvg = 0.0;
    double minorMsMax = 0.0;
    double fullMsAvg = 0.0;
    double fullMsMax = 0.0;
    uint64_t minorCollections = 0;
    uint64_t fullCollections = 0;
    uint64_t nurseryPromoted = 0;
};

/**
 * Run `repeats` iterations of the workload, timing one minor and one
 * full collection after each so both populations sample the same
 * heap states.
 */
GenPoint
measure(const std::string &name, uint64_t repeats, uint64_t nursery_kb)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    config.recordPaths = false;
    config.generational = true;
    config.nurseryKb = static_cast<uint32_t>(nursery_kb);
    Runtime rt(config);

    workload->setup(rt);
    workload->iterate(rt); // warmup: faults pages, settles block lists
    rt.collect();

    double minor_total = 0.0, minor_max = 0.0;
    double full_total = 0.0, full_max = 0.0;
    for (uint64_t round = 0; round < repeats; ++round) {
        workload->iterate(rt);

        uint64_t begin = nowNanos();
        rt.collectMinor();
        double minor_ms =
            static_cast<double>(nowNanos() - begin) / 1e6;
        minor_total += minor_ms;
        if (minor_ms > minor_max)
            minor_max = minor_ms;

        workload->iterate(rt);

        begin = nowNanos();
        rt.collect();
        double full_ms = static_cast<double>(nowNanos() - begin) / 1e6;
        full_total += full_ms;
        if (full_ms > full_max)
            full_max = full_ms;
    }
    workload->teardown(rt);

    GenPoint point;
    point.workload = name;
    point.minorMsAvg = minor_total / static_cast<double>(repeats);
    point.minorMsMax = minor_max;
    point.fullMsAvg = full_total / static_cast<double>(repeats);
    point.fullMsMax = full_max;
    point.minorCollections = rt.gcStats().minorCollections;
    point.fullCollections = rt.gcStats().collections;
    point.nurseryPromoted = rt.gcStats().nurseryPromoted;
    return point;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Generational pauses",
                "minor (nursery) vs full mark-sweep pause on the "
                "leak-heavy workloads",
                "n/a (extension beyond the paper's full-heap collector)");

    const uint64_t repeats = envOr("GCASSERT_BENCH_REPEATS", 8);
    const uint64_t nursery_kb = envOr("GCASSERT_BENCH_NURSERY_KB", 512);
    std::fprintf(stderr, "  repeats: %llu, nursery: %llu KB\n",
                 static_cast<unsigned long long>(repeats),
                 static_cast<unsigned long long>(nursery_kb));

    std::vector<GenPoint> points;
    for (const char *name : {"swapleak", "jbbemu"})
        points.push_back(measure(name, repeats, nursery_kb));

    std::printf("\n  workload   minor ms (avg/max)   full ms (avg/max)"
                "   ratio   minors   promoted\n");
    std::printf("  --------   ------------------   -----------------"
                "   -----   ------   --------\n");
    for (const GenPoint &p : points)
        std::printf("  %-8s   %8.3f / %7.3f   %8.3f / %6.3f   "
                    "%5.2f   %6llu   %8llu\n",
                    p.workload.c_str(), p.minorMsAvg, p.minorMsMax,
                    p.fullMsAvg, p.fullMsMax,
                    p.fullMsAvg > 0 ? p.minorMsAvg / p.fullMsAvg : 0.0,
                    static_cast<unsigned long long>(p.minorCollections),
                    static_cast<unsigned long long>(p.nurseryPromoted));

    // JSON record for the repo's BENCH_ ledger.
    JsonWriter w;
    w.beginObject()
        .field("bench", "generational")
        .field("repeats", repeats)
        .field("nurseryKb", nursery_kb)
        .key("points")
        .beginArray();
    for (const GenPoint &p : points) {
        w.beginObject()
            .field("workload", p.workload)
            .field("minorMsAvg", p.minorMsAvg)
            .field("minorMsMax", p.minorMsMax)
            .field("fullMsAvg", p.fullMsAvg)
            .field("fullMsMax", p.fullMsMax)
            .field("minorCollections", p.minorCollections)
            .field("fullCollections", p.fullCollections)
            .field("nurseryPromoted", p.nurseryPromoted)
            .endObject();
    }
    w.endArray().endObject();
    emitBenchJson(w.str(), "BENCH_generational.json");

    // The nursery exists to shorten reclamation pauses; a minor
    // pause at or above the full pause is a regression, not noise.
    for (const GenPoint &p : points) {
        if (p.minorMsAvg >= p.fullMsAvg) {
            std::fprintf(stderr,
                         "  ERROR: minor pause (%.3f ms) not below "
                         "full pause (%.3f ms) on %s\n",
                         p.minorMsAvg, p.fullMsAvg,
                         p.workload.c_str());
            return 1;
        }
    }
    return 0;
}
