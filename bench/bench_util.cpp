#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/stats.h"
#include "support/strutil.h"

namespace gcassert {
namespace bench {

std::vector<std::string>
figureSuite()
{
    return {"binarytrees", "graphchurn", "stringstorm", "treewalk",
            "mapstress",   "arraybloat", "minidb",      "jbbemu",
            "lusearch",    "swapleak"};
}

DriverOptions
figureOptions()
{
    DriverOptions options;
    options.warmupIterations = 2;
    options.measuredIterations = 8;
    options.repeats = 6;
    if (const char *env = std::getenv("GCASSERT_BENCH_REPEATS"))
        options.repeats = static_cast<uint32_t>(std::atoi(env));
    if (const char *env = std::getenv("GCASSERT_BENCH_MEASURED"))
        options.measuredIterations =
            static_cast<uint32_t>(std::atoi(env));
    if (options.repeats == 0)
        options.repeats = 1;
    if (options.measuredIterations == 0)
        options.measuredIterations = 1;
    return options;
}

OverheadRow
makeRow(const std::string &workload, const SampleSet &baseline,
        const SampleSet &treatment)
{
    OverheadRow row;
    row.workload = workload;
    row.baselineSeconds = baseline.median();
    row.treatmentSeconds = treatment.median();

    if (baseline.count() == treatment.count() && baseline.count() > 1) {
        // Paired protocol: per-repeat ratios.
        SampleSet ratios;
        for (size_t i = 0; i < baseline.count(); ++i) {
            double b = baseline.samples()[i];
            if (b > 0)
                ratios.add(treatment.samples()[i] / b);
        }
        if (!ratios.empty()) {
            row.normalized = ratios.median();
            row.ci = (ratios.percentile(75.0) - ratios.percentile(25.0)) /
                2.0;
            return row;
        }
    }

    row.normalized = row.baselineSeconds > 0
        ? row.treatmentSeconds / row.baselineSeconds
        : 0.0;
    double rel_b = row.baselineSeconds > 0
        ? baseline.ciHalfWidth(0.90) / row.baselineSeconds
        : 0.0;
    double rel_t = row.treatmentSeconds > 0
        ? treatment.ciHalfWidth(0.90) / row.treatmentSeconds
        : 0.0;
    row.ci =
        row.normalized * std::sqrt(rel_b * rel_b + rel_t * rel_t);
    return row;
}

PairedRuns
runInterleaved(const std::string &workload, BenchConfig baseline,
               BenchConfig treatment, const DriverOptions &options)
{
    PairedRuns runs;
    DriverOptions one = options;
    one.repeats = 1;
    for (uint32_t repeat = 0; repeat < options.repeats; ++repeat) {
        RunSummary b = runWorkload(workload, baseline, one);
        RunSummary t = runWorkload(workload, treatment, one);
        runs.baselineTotal.add(b.totalSeconds.samples()[0]);
        runs.treatmentTotal.add(t.totalSeconds.samples()[0]);
        runs.baselineGc.add(b.gcSeconds.samples()[0]);
        runs.treatmentGc.add(t.gcSeconds.samples()[0]);
        runs.baselineMutator.add(b.mutatorSeconds.samples()[0]);
        runs.treatmentMutator.add(t.mutatorSeconds.samples()[0]);
        if (repeat == options.repeats - 1)
            runs.treatmentLast = t;
    }
    return runs;
}

void
printOverheadTable(const std::string &title, const std::string &metric,
                   const std::string &baseline_name,
                   const std::string &treatment_name,
                   const std::vector<OverheadRow> &rows)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("(normalized %s: %s = 100; median of paired repeats, "
                "+- interquartile half-range)\n\n",
                metric.c_str(), baseline_name.c_str());
    std::printf("%-14s %12s %14s %12s %12s\n", "benchmark",
                baseline_name.c_str(), treatment_name.c_str(),
                "overhead", "+- spread");

    std::vector<double> normalized;
    for (const auto &row : rows) {
        normalized.push_back(row.normalized);
        std::printf("%-14s %10.1f ms %12.1f ms %12s %11.1f%%\n",
                    row.workload.c_str(), row.baselineSeconds * 1e3,
                    row.treatmentSeconds * 1e3,
                    percentDelta(row.normalized).c_str(),
                    row.ci * 100.0);
    }
    double gm = geomean(normalized);
    std::printf("%-14s %12s %14s %12s\n", "geomean", "", "",
                percentDelta(gm).c_str());
}

void
printHeader(const std::string &figure, const std::string &what,
            const std::string &paper_result)
{
    std::printf("==========================================================="
                "=====\n");
    std::printf("%s: %s\n", figure.c_str(), what.c_str());
    std::printf("Paper result: %s\n", paper_result.c_str());
    std::printf("(absolute times differ: this substrate is a from-scratch "
                "C++ runtime,\n not Jikes RVM on a Pentium-M; the *shape* "
                "is the reproduction target)\n");
    std::printf("==========================================================="
                "=====\n");
}

void
emitBenchJson(const std::string &json, const char *default_path)
{
    std::printf("\n  %s\n", json.c_str());
    const char *env = std::getenv("GCASSERT_BENCH_JSON");
    std::string path = env ? env : default_path;
    if (path.empty())
        return;
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::fprintf(stderr, "  JSON written to %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "  WARNING: cannot write %s\n",
                     path.c_str());
    }
}

} // namespace bench
} // namespace gcassert
