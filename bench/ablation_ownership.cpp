/**
 * @file
 * Ablation: cost scaling of the ownership phase (paper section
 * 2.5.2: per-ownee binary searches give an n log n worst case that
 * is "negligible in practice"). Sweeps the number of ownees in a
 * minidb-shaped heap and reports GC time and ownee checks per
 * collection.
 */

#include <cstdio>

#include "support/logging.h"
#include "support/stopwatch.h"
#include "workloads/managed_util.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet;
    std::printf("Ablation: ownership-phase scaling with the number of "
                "owner/ownee pairs\n\n");
    std::printf("%10s %14s %14s %16s %14s\n", "ownees", "gc w/o (ms)",
                "gc with (ms)", "ownee checks/GC", "overhead");

    for (uint32_t ownees : {0u, 1000u, 4000u, 16000u, 64000u}) {
        // Build a container of `ownees` elements plus unrelated
        // ballast so the trace has fixed non-ownee work.
        RuntimeConfig config;
        config.heap.budgetBytes = 256ull * 1024 * 1024;
        Runtime runtime(config);
        ManagedVectorOps vec(runtime, "Own");
        TypeId element = runtime.types()
                             .define("Element")
                             .refCount(1)
                             .scalars(16)
                             .build();
        Handle container(runtime, vec.create(ownees + 1), "container");
        for (uint32_t i = 0; i < ownees; ++i)
            vec.push(container.get(), runtime.allocRaw(element));
        // Ballast: 50k plain objects.
        Handle ballast(runtime, vec.create(50001), "ballast");
        for (uint32_t i = 0; i < 50000; ++i)
            vec.push(ballast.get(), runtime.allocRaw(element));

        // GC time without assertions.
        constexpr int kGcs = 10;
        Stopwatch without;
        without.start();
        for (int i = 0; i < kGcs; ++i)
            runtime.collect();
        without.stop();

        // Register ownership and measure again.
        for (uint32_t i = 0; i < ownees; ++i)
            runtime.assertOwnedBy(container.get(),
                                  vec.get(container.get(), i));
        Stopwatch with;
        with.start();
        for (int i = 0; i < kGcs; ++i)
            runtime.collect();
        with.stop();

        double wo = without.elapsedSeconds() * 1e3 / kGcs;
        double wi = with.elapsedSeconds() * 1e3 / kGcs;
        double checks = ownees
            ? static_cast<double>(
                  runtime.gcStats().owneeChecksLastGc)
            : 0.0;
        std::printf("%10u %14.3f %14.3f %16.0f %13.1f%%\n", ownees, wo,
                    wi, checks, wo > 0 ? (wi / wo - 1.0) * 100.0 : 0.0);
    }
    std::printf("\nExpected shape: overhead grows roughly linearly (with "
                "a log factor from the\nbinary searches) in the ownee "
                "count; the paper checked ~15k ownees per GC in\n_209_db "
                "at ~30%% extra GC time.\n");
    return 0;
}
