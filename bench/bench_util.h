/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries:
 * standard driver options, normalized-overhead tables in the style
 * of the paper's Figures 2-5, and environment-variable knobs so a
 * quick run can be requested (GCASSERT_BENCH_REPEATS etc.).
 */

#ifndef GCASSERT_BENCH_BENCH_UTIL_H
#define GCASSERT_BENCH_BENCH_UTIL_H

#include <string>
#include <vector>

#include "workloads/driver.h"

namespace gcassert {
namespace bench {

/** The Figure 2/3 benchmark suite (stand-ins documented in
 *  DESIGN.md). */
std::vector<std::string> figureSuite();

/**
 * Driver options for the figure benches: 2 warmup iterations, a
 * 4-iteration measured window, repeats from GCASSERT_BENCH_REPEATS
 * (default 8).
 */
DriverOptions figureOptions();

/** One row of a normalized comparison table. */
struct OverheadRow {
    std::string workload;
    /** Normalized value (treatment / baseline). */
    double normalized;
    /** Uncertainty half-width of the normalized value. */
    double ci;
    /** Raw baseline and treatment medians (seconds). */
    double baselineSeconds;
    double treatmentSeconds;
};

/**
 * Compute a normalized row from two sample sets.
 *
 * When the sets have equal sizes (the interleaved-pair protocol),
 * the estimate is the median of per-repeat ratios and the
 * uncertainty is the ratios' interquartile half-range — robust
 * against the scheduling jitter of shared hosts. Otherwise it falls
 * back to the ratio of means with first-order CI propagation.
 */
OverheadRow makeRow(const std::string &workload, const SampleSet &baseline,
                    const SampleSet &treatment);

/** Both configurations' aggregated samples from interleaved runs. */
struct PairedRuns {
    SampleSet baselineTotal, treatmentTotal;
    SampleSet baselineGc, treatmentGc;
    SampleSet baselineMutator, treatmentMutator;
    /** Full summary of the final treatment repeat (for counters). */
    RunSummary treatmentLast;
};

/**
 * Run @p repeats interleaved baseline/treatment pairs (B T B T ...)
 * so slow drift in host load cancels out of the paired ratios.
 */
PairedRuns runInterleaved(const std::string &workload,
                          BenchConfig baseline, BenchConfig treatment,
                          const DriverOptions &options);

/**
 * Print a Figures 2-5 style table: one row per benchmark with the
 * normalized value (baseline = 100) and CI, then the geometric
 * mean.
 *
 * @param title Table heading.
 * @param metric "execution time" or "GC time".
 * @param baseline_name e.g. "Base".
 * @param treatment_name e.g. "Infrastructure".
 */
void printOverheadTable(const std::string &title,
                        const std::string &metric,
                        const std::string &baseline_name,
                        const std::string &treatment_name,
                        const std::vector<OverheadRow> &rows);

/** Banner with the binary's purpose and the paper reference. */
void printHeader(const std::string &figure, const std::string &what,
                 const std::string &paper_result);

/**
 * Emit a bench JSON record: echo @p json to stdout and write it to
 * GCASSERT_BENCH_JSON (default @p default_path; the empty string
 * disables the file). @p json should come from a JsonWriter so the
 * whole BENCH_ ledger shares one serializer.
 */
void emitBenchJson(const std::string &json, const char *default_path);

} // namespace bench
} // namespace gcassert

#endif // GCASSERT_BENCH_BENCH_UTIL_H
