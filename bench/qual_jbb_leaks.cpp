/**
 * @file
 * Section 3.2.1 reproduction: the three SPEC JBB2000 defects, found
 * by GC assertions. Runs jbbemu four ways — fully repaired, and
 * with each defect re-enabled in isolation — and reports what the
 * assertions caught.
 */

#include <cstdio>

#include "support/logging.h"
#include "workloads/jbbemu.h"

using namespace gcassert;

namespace {

struct ScenarioResult {
    size_t deadOrders = 0;
    size_t deadCompanies = 0;
    size_t instancesCompany = 0;
    size_t ownedByOrders = 0;
    size_t other = 0;
    std::string samplePath;
};

ScenarioResult
run(const JbbOptions &options)
{
    CaptureLogSink quiet;
    auto workload = makeJbbEmuWithOptions(options);
    Runtime runtime(RuntimeConfig::infra(2 * workload->minHeapBytes()));
    workload->setup(runtime);
    workload->enableAssertions(runtime);
    for (int i = 0; i < 3; ++i)
        workload->iterate(runtime);
    runtime.collect();

    ScenarioResult result;
    for (const Violation &v : runtime.violations()) {
        if (v.kind == AssertionKind::Dead && v.offendingType == "Order")
            ++result.deadOrders;
        else if (v.kind == AssertionKind::Dead &&
                 v.offendingType == "Company")
            ++result.deadCompanies;
        else if (v.kind == AssertionKind::Instances &&
                 v.offendingType == "Company")
            ++result.instancesCompany;
        else if (v.kind == AssertionKind::OwnedBy &&
                 v.offendingType == "Order")
            ++result.ownedByOrders;
        else
            ++result.other;
        if (result.samplePath.empty() && !v.path.empty())
            result.samplePath = v.toString();
    }
    workload->teardown(runtime);
    return result;
}

void
report(const char *title, const ScenarioResult &r, bool show_path)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("  assert-dead(Order) violations:      %zu\n",
                r.deadOrders);
    std::printf("  assert-dead(Company) violations:    %zu\n",
                r.deadCompanies);
    std::printf("  assert-instances(Company,1) hits:   %zu\n",
                r.instancesCompany);
    std::printf("  assert-ownedby(Order) violations:   %zu\n",
                r.ownedByOrders);
    std::printf("  other:                              %zu\n", r.other);
    if (show_path && !r.samplePath.empty())
        std::printf("  sample report:\n%s\n", r.samplePath.c_str());
}

} // namespace

int
main()
{
    std::printf("Qualitative reproduction of section 3.2.1: SPEC JBB2000 "
                "defects\n");

    JbbOptions fixed;
    fixed.fixCustomerLastOrder = true;
    fixed.fixOldCompanyDrag = true;
    fixed.removeFromOrderTable = true;
    report("repaired program (all fixes applied)", run(fixed), false);

    JbbOptions last_order = fixed;
    last_order.fixCustomerLastOrder = false;
    report("defect 1: Customer.lastOrder keeps destroyed Orders",
           run(last_order), true);

    JbbOptions drag = fixed;
    drag.fixOldCompanyDrag = false;
    report("defect 2: oldCompany drag (previous Company kept live)",
           run(drag), false);

    JbbOptions table_leak = fixed;
    table_leak.removeFromOrderTable = false;
    report("defect 3: Orders never removed from the orderTable "
           "(Jump & McKinley)",
           run(table_leak), true);

    std::printf("\nExpected shape (paper): defect 1 -> dead Orders with "
                "paths through Customer;\ndefect 2 -> dead Company + "
                "Company instance count 2; defect 3 -> dead Orders\n"
                "with paths through the longBTree orderTable; repaired "
                "program -> silence.\n");
    return 0;
}
