/**
 * @file
 * Figure 5 reproduction: GC-time overhead with real GC assertions
 * added, for the two instrumented benchmarks.
 *
 * Paper: _209_db GC time +49.7% vs Base (+30.1% vs Infrastructure)
 * — the cost of checking ~15k ownee objects per collection;
 * pseudojbb +15.3% vs Base (+4.40% vs Infrastructure), with only
 * ~420 ownees checked per GC.
 */

#include <cstdio>

#include "bench_util.h"
#include "support/logging.h"

using namespace gcassert;
using namespace gcassert::bench;

int
main()
{
    CaptureLogSink quiet;
    printHeader("Figure 5",
                "GC-time overhead with GC assertions added "
                "(Base vs Infrastructure vs WithAssertions)",
                "_209_db +49.7%, pseudojbb +15.3% vs Base");

    DriverOptions options = figureOptions();
    std::vector<OverheadRow> vs_base;
    std::vector<OverheadRow> vs_infra;

    for (const std::string &name : {std::string("minidb"),
                                    std::string("jbbemu")}) {
        PairedRuns vb = runInterleaved(name, BenchConfig::Base,
                                       BenchConfig::WithAssertions,
                                       options);
        PairedRuns vi = runInterleaved(name, BenchConfig::Infrastructure,
                                       BenchConfig::WithAssertions,
                                       options);
        RunSummary with = vb.treatmentLast;

        vs_base.push_back(makeRow(name, vb.baselineGc, vb.treatmentGc));
        vs_infra.push_back(
            makeRow(name, vi.baselineGc, vi.treatmentGc));
        std::printf("\n%s: ownees checked per GC: %.0f; collections in "
                    "measured window: %llu\n",
                    name.c_str(), with.owneeChecksPerGc,
                    static_cast<unsigned long long>(with.collections));
        std::fprintf(stderr, "  [fig5] %s done\n", name.c_str());
    }

    printOverheadTable("Figure 5a: GC time, WithAssertions vs Base",
                       "GC time", "Base", "WithAssertions", vs_base);
    printOverheadTable(
        "Figure 5b: GC time, WithAssertions vs Infrastructure", "GC time",
        "Infrastructure", "WithAssertions", vs_infra);
    return 0;
}
