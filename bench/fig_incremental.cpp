/**
 * @file
 * Incremental-recheck cost characterization: armed-assertion full-GC
 * cost with the per-region property cache on vs off on the leak-heavy
 * workloads (jbbemu, swapleak).
 *
 * Not a figure from the paper; this bench characterizes the
 * RuntimeConfig::incrementalAssert extension. Each workload runs
 * twice with identical assertion sets. The mutating phase (workload
 * iterations between collections) shows the cache under churn; the
 * low-mutation phase (repeated collections with the mutator idle)
 * is where caching pays: the uncached collector re-tallies every
 * live object per GC, the cached one merges clean-region summaries
 * and re-verifies only dirtied regions.
 *
 * Reported per configuration: the instances/volume attribution
 * bucket (assert.cost mark+finish, the work the cache moves and
 * shrinks), average full-GC pause, and the cache hit/invalidation
 * counters.
 *
 * Knobs: GCASSERT_BENCH_REPEATS (iterations per phase, default 8),
 * GCASSERT_BENCH_JSON (path for the JSON record, default
 * BENCH_incremental.json; empty string disables).
 *
 * A third, synthetic "lowmut" point allocates one large tracked
 * population (a rooted 40k-node list under assert-instances /
 * assert-volume) and then only collects: per uncached GC the mark
 * phase re-tallies every one of those objects, while the cached
 * merge touches 1024 region slots regardless of population — the
 * regime the cache is built for, and the point the cost tripwire
 * anchors to (the workload points track too few objects for the
 * instances bucket to dominate; they are informational).
 *
 * Exit status 1 when a tripwire fires on the low-mutation phase:
 *  - with caching on, clean-region merges must dominate (hits > 0
 *    and invalidations <= hits) — a cache that keeps invalidating on
 *    an idle heap is doing more per-region work than no cache;
 *  - on the lowmut point, the cached instances-bucket cost
 *    (assert.cost mark+finish) must be below the uncached cost —
 *    caching exists to shrink exactly that bucket.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/stopwatch.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** One workload x {cached, uncached} measurement. */
struct IncrPoint {
    std::string workload;
    bool incremental = false;
    /** Mutating phase: workload iterations between collections. */
    double churnPauseMsAvg = 0.0;
    double churnInstancesMs = 0.0;
    /** Low-mutation phase: repeated collections, mutator idle. */
    double idlePauseMsAvg = 0.0;
    double idleInstancesMs = 0.0;
    uint64_t idleCacheHits = 0;
    uint64_t idleCacheInvalidations = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheInvalidations = 0;
};

/** Instances-bucket nanos across both phases (mark + finish). */
uint64_t
instancesNanos(const Runtime &rt)
{
    const Telemetry *t = const_cast<Runtime &>(rt).telemetry();
    if (!t)
        return 0;
    const AssertCostAttribution &ac = t->assertCost();
    return ac.markNanos(AssertCostKind::Instances) +
           ac.finishNanos(AssertCostKind::Instances);
}

IncrPoint
measure(const std::string &name, bool incremental, uint64_t repeats)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    config.recordPaths = false;
    config.incrementalAssert = incremental;
    // Arm cost attribution (telemetry) without census or trace
    // overhead: any() needs one knob, the cadence never triggers.
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    config.observe.pauseBudgetNanos = 0;
    config.observe.censusEvery = 1u << 30;
    Runtime rt(config);

    workload->setup(rt);
    workload->enableAssertions(rt);
    workload->iterate(rt); // warmup: faults pages, settles block lists
    rt.collect();

    IncrPoint point;
    point.workload = name;
    point.incremental = incremental;

    // --- Mutating phase -------------------------------------------
    uint64_t cost_begin = instancesNanos(rt);
    double pause_total = 0.0;
    for (uint64_t round = 0; round < repeats; ++round) {
        workload->iterate(rt);
        uint64_t begin = nowNanos();
        rt.collect();
        pause_total += static_cast<double>(nowNanos() - begin) / 1e6;
    }
    point.churnPauseMsAvg = pause_total / static_cast<double>(repeats);
    point.churnInstancesMs =
        static_cast<double>(instancesNanos(rt) - cost_begin) / 1e6;

    // --- Low-mutation phase ---------------------------------------
    // One settling collection first: the last iteration's garbage
    // frees here, churning its regions; the measured collections
    // then see a genuinely idle heap.
    rt.collect();
    cost_begin = instancesNanos(rt);
    uint64_t hits_begin = rt.assertionStats().cacheHits;
    uint64_t inval_begin = rt.assertionStats().cacheInvalidations;
    pause_total = 0.0;
    for (uint64_t round = 0; round < repeats; ++round) {
        uint64_t begin = nowNanos();
        rt.collect();
        pause_total += static_cast<double>(nowNanos() - begin) / 1e6;
    }
    point.idlePauseMsAvg = pause_total / static_cast<double>(repeats);
    point.idleInstancesMs =
        static_cast<double>(instancesNanos(rt) - cost_begin) / 1e6;
    point.idleCacheHits = rt.assertionStats().cacheHits - hits_begin;
    point.idleCacheInvalidations =
        rt.assertionStats().cacheInvalidations - inval_begin;

    workload->teardown(rt);
    point.cacheHits = rt.assertionStats().cacheHits;
    point.cacheInvalidations = rt.assertionStats().cacheInvalidations;
    return point;
}

/**
 * The synthetic low-mutation point: a stable rooted 40k-node list
 * under assert-instances and assert-volume, then idle collections
 * only. The churn phase is the build; the idle phase is where the
 * uncached collector pays a per-object tally per GC and the cached
 * one a population-independent region merge.
 */
IncrPoint
measureLowMutation(bool incremental, uint64_t repeats)
{
    constexpr uint64_t kNodes = 40000;
    RuntimeConfig config = RuntimeConfig::infra(256ull * 1024 * 1024);
    config.recordPaths = false;
    config.incrementalAssert = incremental;
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    config.observe.pauseBudgetNanos = 0;
    config.observe.censusEvery = 1u << 30;
    Runtime rt(config);

    TypeId node =
        rt.types().define("Node").refs({"next"}).scalars(48).build();
    rt.assertInstances(node, kNodes + 1);
    rt.assertVolume(node, 1ull << 40);

    IncrPoint point;
    point.workload = "lowmut";
    point.incremental = incremental;

    Handle head(rt, rt.allocRaw(node), "head");
    Object *tail = head.get();
    uint64_t cost_begin = instancesNanos(rt);
    uint64_t begin = nowNanos();
    for (uint64_t i = 1; i < kNodes; ++i) {
        Object *next = rt.allocRaw(node);
        rt.writeRef(tail, 0, next);
        tail = next;
    }
    rt.collect();
    point.churnPauseMsAvg =
        static_cast<double>(nowNanos() - begin) / 1e6;
    point.churnInstancesMs =
        static_cast<double>(instancesNanos(rt) - cost_begin) / 1e6;

    cost_begin = instancesNanos(rt);
    uint64_t hits_begin = rt.assertionStats().cacheHits;
    uint64_t inval_begin = rt.assertionStats().cacheInvalidations;
    double pause_total = 0.0;
    for (uint64_t round = 0; round < repeats; ++round) {
        begin = nowNanos();
        rt.collect();
        pause_total += static_cast<double>(nowNanos() - begin) / 1e6;
    }
    point.idlePauseMsAvg = pause_total / static_cast<double>(repeats);
    point.idleInstancesMs =
        static_cast<double>(instancesNanos(rt) - cost_begin) / 1e6;
    point.idleCacheHits = rt.assertionStats().cacheHits - hits_begin;
    point.idleCacheInvalidations =
        rt.assertionStats().cacheInvalidations - inval_begin;
    point.cacheHits = rt.assertionStats().cacheHits;
    point.cacheInvalidations = rt.assertionStats().cacheInvalidations;
    return point;
}

} // namespace

int
main()
{
    CaptureLogSink quiet;
    printHeader("Incremental assertion recheck",
                "armed-assertion full-GC cost, per-region property "
                "cache on vs off",
                "n/a (extension beyond the paper's per-GC re-checks)");

    const uint64_t repeats = envOr("GCASSERT_BENCH_REPEATS", 8);
    std::fprintf(stderr, "  repeats: %llu\n",
                 static_cast<unsigned long long>(repeats));

    std::vector<IncrPoint> points;
    for (const char *name : {"jbbemu", "swapleak"}) {
        points.push_back(measure(name, false, repeats));
        points.push_back(measure(name, true, repeats));
    }
    points.push_back(measureLowMutation(false, repeats));
    points.push_back(measureLowMutation(true, repeats));

    std::printf("\n  workload   cache   churn pause/inst ms   "
                "idle pause/inst ms   idle hits/inval\n");
    std::printf("  --------   -----   -------------------   "
                "------------------   ---------------\n");
    for (const IncrPoint &p : points)
        std::printf("  %-8s   %-5s   %8.3f / %8.3f   %8.3f / %8.3f"
                    "   %6llu / %6llu\n",
                    p.workload.c_str(), p.incremental ? "on" : "off",
                    p.churnPauseMsAvg, p.churnInstancesMs,
                    p.idlePauseMsAvg, p.idleInstancesMs,
                    static_cast<unsigned long long>(p.idleCacheHits),
                    static_cast<unsigned long long>(
                        p.idleCacheInvalidations));

    // JSON record for the repo's BENCH_ ledger.
    JsonWriter w;
    w.beginObject()
        .field("bench", "incremental")
        .field("repeats", repeats)
        .key("points")
        .beginArray();
    for (const IncrPoint &p : points) {
        w.beginObject()
            .field("workload", p.workload)
            .field("incremental", p.incremental)
            .field("churnPauseMsAvg", p.churnPauseMsAvg)
            .field("churnInstancesMs", p.churnInstancesMs)
            .field("idlePauseMsAvg", p.idlePauseMsAvg)
            .field("idleInstancesMs", p.idleInstancesMs)
            .field("idleCacheHits", p.idleCacheHits)
            .field("idleCacheInvalidations", p.idleCacheInvalidations)
            .field("cacheHits", p.cacheHits)
            .field("cacheInvalidations", p.cacheInvalidations)
            .endObject();
    }
    w.endArray().endObject();
    emitBenchJson(w.str(), "BENCH_incremental.json");

    // Tripwires (low-mutation phase only; the churn phase is
    // workload-dependent and informational).
    int status = 0;
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
        const IncrPoint &off = points[i];
        const IncrPoint &on = points[i + 1];
        // Cached runs must do no more per-region recheck work than
        // uncached ones (which re-tally everything, every GC): on an
        // idle heap, clean-region merges dominate re-snapshots.
        if (on.idleCacheHits == 0 ||
            on.idleCacheInvalidations > on.idleCacheHits) {
            std::fprintf(stderr,
                         "  ERROR: %s idle phase: cache not dominated "
                         "by clean merges (hits=%llu inval=%llu)\n",
                         on.workload.c_str(),
                         static_cast<unsigned long long>(
                             on.idleCacheHits),
                         static_cast<unsigned long long>(
                             on.idleCacheInvalidations));
            status = 1;
        }
        // The cost win is only claimed where the tracked population
        // dominates the region count (the synthetic point); the
        // workload points track a handful of objects, so their
        // instances bucket is measurement noise either way.
        if (on.workload == "lowmut" &&
            on.idleInstancesMs >= off.idleInstancesMs) {
            std::fprintf(stderr,
                         "  ERROR: lowmut idle phase: cached instances "
                         "cost (%.3f ms) not below uncached (%.3f ms)\n",
                         on.idleInstancesMs, off.idleInstancesMs);
            status = 1;
        }
    }
    return status;
}
