/**
 * @file
 * Ablation: precision of GC assertions vs heuristic leak detectors
 * (paper sections 1 and 4: "more accurate than heuristics"). All
 * three tools observe the same program — jbbemu with the
 * Customer.lastOrder leak — and the bench reports what each one
 * tells the programmer:
 *
 *  - GC assertions: exact violation with a full instance-level path
 *    as soon as the first collection after the defect runs.
 *  - Staleness: a *suggestion list* including false positives (cold
 *    but needed objects), only after the staleness threshold.
 *  - Cork-style growth differencing: a *type name* after several
 *    collections of monotone growth, with no instances or paths.
 */

#include <cstdio>
#include <map>

#include "detectors/cork.h"
#include "detectors/staleness.h"
#include "support/logging.h"
#include "workloads/jbbemu.h"

using namespace gcassert;

int
main()
{
    CaptureLogSink quiet;
    std::printf("Ablation: GC assertions vs heuristic leak detectors on "
                "the JBB Customer.lastOrder leak\n\n");

    JbbOptions options;
    options.fixCustomerLastOrder = false; // the defect under study
    options.fixOldCompanyDrag = true;
    options.removeFromOrderTable = true;
    options.assertCompanySingleton = false;
    options.assertDeadOldCompany = false;

    auto workload = makeJbbEmuWithOptions(options);
    Runtime runtime(RuntimeConfig::infra(2 * workload->minHeapBytes()));
    StalenessDetector staleness(runtime, 2);
    CorkDetector cork(runtime, 4, 0.6);

    workload->setup(runtime);
    workload->enableAssertions(runtime);
    for (int i = 0; i < 4; ++i) {
        workload->iterate(runtime);
        runtime.collect();
        cork.sample();
    }

    // --- GC assertions ---
    size_t exact = 0;
    uint64_t first_gc = 0;
    bool with_path = false;
    for (const Violation &v : runtime.violations()) {
        if (v.offendingType != "Order")
            continue;
        ++exact;
        if (first_gc == 0)
            first_gc = v.gcNumber;
        with_path |= !v.path.empty();
    }
    std::printf("GC assertions:\n");
    std::printf("  violations on Order instances: %zu (first in GC #%llu, "
                "full path: %s)\n",
                exact, static_cast<unsigned long long>(first_gc),
                with_path ? "yes" : "no");
    std::printf("  false positives: 0 by construction (every report is a "
                "programmer-expectation mismatch)\n\n");

    // --- Staleness ---
    auto stale = staleness.findStale();
    std::map<std::string, size_t> stale_by_type;
    for (const auto &report : stale)
        ++stale_by_type[report.typeName];
    std::printf("Staleness detector (threshold 2 GCs, no touch "
                "instrumentation beyond allocation):\n");
    std::printf("  %zu stale objects suggested across %zu types:\n",
                stale.size(), stale_by_type.size());
    size_t shown = 0;
    for (const auto &[type, count] : stale_by_type) {
        if (++shown > 8) {
            std::printf("    ...\n");
            break;
        }
        std::printf("    %-24s %zu\n", type.c_str(), count);
    }
    std::printf("  the leaked Orders are in there, but so is every cold "
                "live structure -> the\n  programmer must triage "
                "manually (the paper's precision argument).\n\n");

    // --- Cork ---
    auto growing = cork.findGrowing();
    std::printf("Cork-style growth differencing (4-sample window):\n");
    if (growing.empty()) {
        std::printf("  no persistently growing types in the window (the "
                    "leak is bounded per company\n  generation, which "
                    "defeats slope heuristics entirely)\n");
    } else {
        for (const auto &report : growing)
            std::printf("  growing type: %-24s %s -> %s over %zu/%zu "
                        "samples (types only, no instances)\n",
                        report.typeName.c_str(),
                        std::to_string(report.bytesFirst).c_str(),
                        std::to_string(report.bytesLast).c_str(),
                        report.growthSamples, report.windowSamples);
    }
    workload->teardown(runtime);
    return 0;
}
