/**
 * @file
 * Top-level runtime configuration.
 *
 * The three benchmark configurations of the paper map onto this
 * struct directly:
 *
 *  - "Base":           infrastructure = false
 *  - "Infrastructure": infrastructure = true (no assertions added)
 *  - "WithAssertions": infrastructure = true + workload assertions
 */

#ifndef GCASSERT_RUNTIME_CONFIG_H
#define GCASSERT_RUNTIME_CONFIG_H

#include <string>

#include "assertions/engine.h"
#include "heap/heap.h"
#include "observe/telemetry.h"

namespace gcassert {

/** @name CI matrix defaults
 *
 * Environment-driven *defaults* for the sweep/alloc knobs, so the CI
 * matrix can run the whole test suite in every sweep configuration
 * without touching each test: GCASSERT_MARK_THREADS and
 * GCASSERT_SWEEP_THREADS (integers), GCASSERT_LAZY_SWEEP and
 * GCASSERT_TLAB (0/1). They only seed the default member
 * initializers below — code that sets the fields explicitly (e.g.
 * the differential harnesses pinning a configuration) is unaffected.
 *  @{ */
uint32_t defaultMarkThreads();
uint32_t defaultSweepThreads();
bool defaultLazySweep();
bool defaultTlabEnabled();
bool defaultGenerational();
uint32_t defaultNurseryKb();
bool defaultIncrementalAssert();
bool defaultBackgraph();
uint32_t defaultBackgraphInDegreeCap();
uint32_t defaultBackgraphWindow();
/** @} */

/**
 * Configuration for a Runtime instance.
 */
struct RuntimeConfig {
    /** Heap budget and growth policy. */
    HeapConfig heap;

    /**
     * Compile the assertion-checking infrastructure into the GC
     * trace loop. When false the runtime behaves like an unmodified
     * collector and assertion calls are ignored (with a one-time
     * warning).
     */
    bool infrastructure = true;

    /** Maintain tagged-worklist path recording for reports. */
    bool recordPaths = true;

    /**
     * Marker threads for the GC trace phase (see
     * CollectorConfig::markThreads). 1 keeps the sequential DFS.
     * Values > 1 require recordPaths = false; otherwise each
     * collection downgrades to a single-threaded trace with a
     * logged warning. Defaults to $GCASSERT_MARK_THREADS or 1.
     */
    uint32_t markThreads = defaultMarkThreads();

    /**
     * Sweep workers for the GC sweep phase (see
     * CollectorConfig::sweepThreads). Defaults to
     * $GCASSERT_SWEEP_THREADS or 1.
     */
    uint32_t sweepThreads = defaultSweepThreads();

    /**
     * Lazy sweeping (see CollectorConfig::lazySweep). Defaults to
     * $GCASSERT_LAZY_SWEEP or false.
     */
    bool lazySweep = defaultLazySweep();

    /**
     * Per-mutator allocation buffers: allocRaw/allocLocal bump-
     * allocate from blocks leased to the calling mutator under a
     * shared lock, taking the exclusive lock only to refill, collect
     * or allocate large objects. Defaults to $GCASSERT_TLAB or
     * false.
     */
    bool tlab = defaultTlabEnabled();

    /**
     * Generational (nursery) collection: new objects join a logical
     * nursery, the write barrier records mature-to-nursery edges in a
     * remembered set, and minor collections reclaim short-lived
     * garbage between full GCs without whole-heap traces. Assertion
     * verdicts are unchanged — minor GCs perform no checks, and the
     * full GC promotes the nursery wholesale before running exactly
     * the non-generational algorithm. Defaults to
     * $GCASSERT_GENERATIONAL or false.
     */
    bool generational = defaultGenerational();

    /**
     * Nursery size in KiB: a minor collection triggers when this
     * many bytes of young objects have accumulated (checked at
     * allocation entry). Only meaningful with generational = true.
     * Defaults to $GCASSERT_NURSERY_KB or 4096.
     */
    uint32_t nurseryKb = defaultNurseryKb();

    /**
     * Incremental assertion recheck: cache per-region summaries for
     * the cacheable assertion kinds (assert-instances / assert-volume
     * tallies, assert-unshared in-degree bits, assert-ownedby ownee
     * counts) and at each full GC re-verify only regions whose cards
     * were dirtied — or that saw allocations, frees or promotions —
     * since the last collection, merging cached summaries for clean
     * regions. Verdicts are bit-identical with the feature on or off;
     * only where the checking work happens changes (the mark-phase
     * tallies move to a post-sweep merge proportional to dirty
     * regions). Requires infrastructure = true to have any effect.
     * Defaults to $GCASSERT_INCREMENTAL_ASSERT or false.
     */
    bool incrementalAssert = defaultIncrementalAssert();

    /**
     * Always-on why-alive backgraph + leak detectors
     * (detectors/backgraph): maintain a bounded backwards points-to
     * graph from the write-barrier stream, answer
     * Runtime::whyAlive() at any time, and report allocation sites
     * whose root-path height or survivor count grows monotonically
     * across full collections. Verdict-neutral: GC cadence, freed
     * sets and assertion verdicts are bit-identical on or off; leak
     * findings arrive as context-only LeakGrowth violations.
     * Defaults to $GCASSERT_BACKGRAPH or false.
     */
    bool backgraph = defaultBackgraph();

    /**
     * Backgraph per-node in-degree cap: predecessor entries kept
     * before a node saturates into a pseudo-root (the access-graph
     * bound). Defaults to $GCASSERT_BACKGRAPH_INDEGREE_CAP or 8.
     */
    uint32_t backgraphInDegreeCap = defaultBackgraphInDegreeCap();

    /**
     * Backgraph trend window: consecutive growing full-GC samples
     * before an allocation site is reported as leaking. Defaults to
     * $GCASSERT_BACKGRAPH_WINDOW or 3.
     */
    uint32_t backgraphWindow = defaultBackgraphWindow();

    /** Engine behaviour switches. */
    EngineOptions engine;

    /**
     * Observability knobs (trace file, metrics sink, census cadence).
     * All default-off; the environment seeds the defaults via
     * GCASSERT_TRACE_FILE / GCASSERT_METRICS / GCASSERT_CENSUS_EVERY
     * just like the sweep/alloc knobs above.
     */
    ObserveConfig observe;

    /** Log one line per collection. */
    bool verboseGc = false;

    /** @return a Base configuration with the given heap budget. */
    static RuntimeConfig base(uint64_t heap_bytes);

    /** @return an Infrastructure configuration (checks on). */
    static RuntimeConfig infra(uint64_t heap_bytes);

    /**
     * @return an Infrastructure configuration with @p threads
     * parallel markers (path recording off, since the tagged
     * worklist is inherently sequential).
     */
    static RuntimeConfig parallel(uint64_t heap_bytes, uint32_t threads);
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_CONFIG_H
