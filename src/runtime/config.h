/**
 * @file
 * Top-level runtime configuration.
 *
 * The three benchmark configurations of the paper map onto this
 * struct directly:
 *
 *  - "Base":           infrastructure = false
 *  - "Infrastructure": infrastructure = true (no assertions added)
 *  - "WithAssertions": infrastructure = true + workload assertions
 */

#ifndef GCASSERT_RUNTIME_CONFIG_H
#define GCASSERT_RUNTIME_CONFIG_H

#include <string>

#include "assertions/engine.h"
#include "heap/heap.h"

namespace gcassert {

/**
 * Configuration for a Runtime instance.
 */
struct RuntimeConfig {
    /** Heap budget and growth policy. */
    HeapConfig heap;

    /**
     * Compile the assertion-checking infrastructure into the GC
     * trace loop. When false the runtime behaves like an unmodified
     * collector and assertion calls are ignored (with a one-time
     * warning).
     */
    bool infrastructure = true;

    /** Maintain tagged-worklist path recording for reports. */
    bool recordPaths = true;

    /**
     * Marker threads for the GC trace phase (see
     * CollectorConfig::markThreads). 1 keeps the sequential DFS.
     * Values > 1 require recordPaths = false; otherwise each
     * collection downgrades to a single-threaded trace with a
     * logged warning.
     */
    uint32_t markThreads = 1;

    /** Engine behaviour switches. */
    EngineOptions engine;

    /** Log one line per collection. */
    bool verboseGc = false;

    /** @return a Base configuration with the given heap budget. */
    static RuntimeConfig base(uint64_t heap_bytes);

    /** @return an Infrastructure configuration (checks on). */
    static RuntimeConfig infra(uint64_t heap_bytes);

    /**
     * @return an Infrastructure configuration with @p threads
     * parallel markers (path recording off, since the tagged
     * worklist is inherently sequential).
     */
    static RuntimeConfig parallel(uint64_t heap_bytes, uint32_t threads);
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_CONFIG_H
