#include "runtime/config.h"

namespace gcassert {

RuntimeConfig
RuntimeConfig::base(uint64_t heap_bytes)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = false;
    config.recordPaths = false;
    return config;
}

RuntimeConfig
RuntimeConfig::infra(uint64_t heap_bytes)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = true;
    config.recordPaths = true;
    return config;
}

RuntimeConfig
RuntimeConfig::parallel(uint64_t heap_bytes, uint32_t threads)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = true;
    config.recordPaths = false;
    config.markThreads = threads;
    return config;
}

} // namespace gcassert
