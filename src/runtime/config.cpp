#include "runtime/config.h"

#include "support/env.h"

namespace gcassert {

// Every default below caches the environment on first read (first
// use wins) and parses through the shared validating envUint(): a
// malformed value warns once and falls back to the documented
// default instead of silently becoming 0.

uint32_t
defaultMarkThreads()
{
    static const uint32_t threads = static_cast<uint32_t>(
        envUint("GCASSERT_MARK_THREADS", 1));
    return threads ? threads : 1;
}

uint32_t
defaultSweepThreads()
{
    static const uint32_t threads = static_cast<uint32_t>(
        envUint("GCASSERT_SWEEP_THREADS", 1));
    return threads ? threads : 1;
}

bool
defaultLazySweep()
{
    static const bool lazy = envUint("GCASSERT_LAZY_SWEEP", 0) != 0;
    return lazy;
}

bool
defaultTlabEnabled()
{
    static const bool tlab = envUint("GCASSERT_TLAB", 0) != 0;
    return tlab;
}

bool
defaultGenerational()
{
    static const bool generational =
        envUint("GCASSERT_GENERATIONAL", 0) != 0;
    return generational;
}

uint32_t
defaultNurseryKb()
{
    static const uint32_t kb = static_cast<uint32_t>(
        envUint("GCASSERT_NURSERY_KB", 4096));
    return kb ? kb : 4096;
}

bool
defaultIncrementalAssert()
{
    static const bool incremental =
        envUint("GCASSERT_INCREMENTAL_ASSERT", 0) != 0;
    return incremental;
}

bool
defaultBackgraph()
{
    static const bool backgraph =
        envUint("GCASSERT_BACKGRAPH", 0) != 0;
    return backgraph;
}

uint32_t
defaultBackgraphInDegreeCap()
{
    static const uint32_t cap = static_cast<uint32_t>(
        envUint("GCASSERT_BACKGRAPH_INDEGREE_CAP", 8));
    return cap ? cap : 8;
}

uint32_t
defaultBackgraphWindow()
{
    static const uint32_t window = static_cast<uint32_t>(
        envUint("GCASSERT_BACKGRAPH_WINDOW", 3));
    return window ? window : 3;
}

RuntimeConfig
RuntimeConfig::base(uint64_t heap_bytes)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = false;
    config.recordPaths = false;
    return config;
}

RuntimeConfig
RuntimeConfig::infra(uint64_t heap_bytes)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = true;
    config.recordPaths = true;
    return config;
}

RuntimeConfig
RuntimeConfig::parallel(uint64_t heap_bytes, uint32_t threads)
{
    RuntimeConfig config;
    config.heap.budgetBytes = heap_bytes;
    config.infrastructure = true;
    config.recordPaths = false;
    config.markThreads = threads;
    return config;
}

} // namespace gcassert
