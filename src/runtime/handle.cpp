#include "runtime/handle.h"

#include "runtime/runtime.h"
#include "support/logging.h"

namespace gcassert {

Handle::Handle(Runtime &runtime, Object *obj, const char *name)
    : runtime_(&runtime)
{
    runtime_->addRoot(node_, obj, name);
}

Handle::Handle(const Handle &other) : runtime_(other.runtime_)
{
    if (runtime_)
        runtime_->addRoot(node_, other.node_.get(), other.node_.name());
}

Handle &
Handle::operator=(const Handle &other)
{
    if (this == &other)
        return *this;
    reset();
    runtime_ = other.runtime_;
    if (runtime_)
        runtime_->addRoot(node_, other.node_.get(), other.node_.name());
    return *this;
}

Handle::Handle(Handle &&other) noexcept : runtime_(other.runtime_)
{
    if (runtime_) {
        Object *obj = other.node_.get();
        const char *name = other.node_.name();
        other.reset();
        runtime_->addRoot(node_, obj, name);
    }
}

Handle &
Handle::operator=(Handle &&other) noexcept
{
    if (this == &other)
        return *this;
    reset();
    runtime_ = other.runtime_;
    if (runtime_) {
        Object *obj = other.node_.get();
        const char *name = other.node_.name();
        other.reset();
        runtime_->addRoot(node_, obj, name);
    }
    return *this;
}

Handle::~Handle()
{
    reset();
}

void
Handle::set(Object *obj)
{
    if (!runtime_)
        fatal("Handle::set on a null handle");
    node_.set(obj);
}

void
Handle::reset()
{
    if (runtime_) {
        runtime_->removeRoot(node_);
        runtime_ = nullptr;
    }
    node_.set(nullptr);
}

} // namespace gcassert
