/**
 * @file
 * The public facade of the gcassert runtime.
 *
 * A Runtime owns a managed heap, a type registry, roots, mutator
 * contexts, the mark-sweep collector, and the GC-assertion engine.
 * Programs define types, allocate objects, hold them via rooted
 * Handles, and add GC assertions that are checked at the next
 * collection.
 *
 * Thread safety: public entry points serialize on an internal
 * reader-writer lock, modelling a stop-the-world runtime. With
 * RuntimeConfig::tlab enabled, the allocation fast path takes the
 * lock *shared* and bump-allocates from blocks leased to the calling
 * mutator, so hot allocation scales with mutator threads; GC and
 * every other mutation still take it exclusive. Multithreaded
 * workloads register one MutatorContext per thread for per-thread
 * region state (assert-alldead), TLAB leases, and local roots.
 */

#ifndef GCASSERT_RUNTIME_RUNTIME_H
#define GCASSERT_RUNTIME_RUNTIME_H

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "assertions/engine.h"
#include "assertions/incremental.h"
#include "detectors/backgraph.h"
#include "gc/barrier.h"
#include "gc/collector.h"
#include "gc/mutator.h"
#include "gc/remset.h"
#include "gc/roots.h"
#include "heap/heap.h"
#include "runtime/config.h"
#include "runtime/handle.h"
#include "types/type_registry.h"

namespace gcassert {

class JsonWriter;
class LiveTelemetryServer;

/**
 * A complete managed runtime instance.
 */
class Runtime {
  public:
    explicit Runtime(RuntimeConfig config = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** @name Component access
     *  @{ */
    TypeRegistry &types() { return types_; }
    Heap &heap() { return heap_; }
    Collector &collector() { return collector_; }
    AssertionEngine &engine() { return engine_; }
    RootRegistry &roots() { return roots_; }
    MutatorRegistry &mutators() { return mutators_; }
    RememberedSet &remset() { return remset_; }
    const RuntimeConfig &config() const { return config_; }

    /** Telemetry bundle; nullptr when every observe knob is off. */
    Telemetry *telemetry() { return telemetry_.get(); }

    /** Incremental recheck cache; nullptr unless incrementalAssert
     *  (and the infrastructure) are enabled. */
    IncrementalAssertCache *incrementalCache()
    {
        return incremental_.get();
    }

    /** Why-alive backgraph; nullptr unless config.backgraph. */
    Backgraph *backgraph() { return backgraph_.get(); }
    /** @} */

    /** @name Observability
     *  @{ */

    /**
     * Request a heap census at the next full collection (regardless
     * of the censusEvery cadence). No-op without telemetry.
     */
    void requestCensus();

    /**
     * Latest heap census (empty() when none has been taken or
     * telemetry is off). Returns a copy; safe from any thread.
     */
    CensusSnapshot latestCensus() const;

    /**
     * Publish a live-endpoint snapshot now (metrics copy into the
     * history ring + per-named-site why-alive table), in addition
     * to the automatic per-full-GC publishes. Takes the exclusive
     * lock briefly — gauge readers touch non-atomic accumulators —
     * so workloads call it on a cadence, not per operation. No-op
     * without telemetry.
     */
    void publishTelemetry();

    /**
     * The live telemetry endpoint's bound port: the ephemeral
     * answer when livePort was kAutoLivePort ("auto"), 0 when the
     * endpoint is off or its bind failed.
     */
    uint16_t livePort() const;

    /** @} */

    /** The implicit main-thread mutator. */
    MutatorContext &mainMutator() { return mutators_.main(); }

    /** Register a mutator context for a worker thread. */
    MutatorContext &registerMutator(const std::string &name);

    /** @name Allocation
     *
     * Allocation may trigger a collection when the heap budget is
     * exhausted; callers must therefore keep every live object
     * reachable from a Handle or another live object *before*
     * allocating again (the usual managed-runtime contract).
     *  @{ */

    /**
     * Allocate a fixed-shape instance of @p type.
     *
     * @param type A non-array type id.
     * @param mutator Allocating mutator (nullptr = main), consulted
     *                for region tracking.
     * @param site Allocation-site tag for the backgraph's find-leak
     *             mode (see allocSite). 0 = untagged: with the
     *             backgraph on, the caller's return address is
     *             hashed into an anonymous site instead.
     * @return The new object (never nullptr; fatal on OOM).
     */
    Object *allocRaw(TypeId type, MutatorContext *mutator = nullptr,
                     uint32_t site = 0);

    /**
     * Allocate an instance of array type @p type with @p length
     * reference slots.
     */
    Object *allocArrayRaw(TypeId type, uint32_t length,
                          MutatorContext *mutator = nullptr,
                          uint32_t site = 0);

    /**
     * Allocate an instance of scalar-array type @p type with
     * @p scalar_bytes of payload and no reference slots (the analog
     * of a Java char[]/byte[]).
     */
    Object *allocScalarRaw(TypeId type, uint32_t scalar_bytes,
                           MutatorContext *mutator = nullptr,
                           uint32_t site = 0);

    /**
     * Rooted allocation: allocate and register the handle's root
     * under a single lock acquisition, so concurrent mutators can
     * never collect the new object before it is rooted. This is the
     * thread-safe allocation entry point; allocRaw returns an
     * unrooted pointer the caller must protect before the next
     * allocation.
     */
    Handle alloc(TypeId type, MutatorContext *mutator = nullptr);
    Handle allocArray(TypeId type, uint32_t length,
                      MutatorContext *mutator = nullptr);

    /**
     * Thread-locally rooted allocation: allocate (via the TLAB fast
     * path when enabled) and pin the object on @p mutator's
     * local-root roster in the same critical section, so a
     * collection triggered by another thread can never sweep it
     * before the caller links it into reachable structure. Release
     * the pins with dropLocalRoots(). This is the scalable analog of
     * alloc() for worker threads.
     */
    Object *allocLocal(TypeId type, MutatorContext *mutator = nullptr,
                       uint32_t site = 0);

    /** Release every object pinned by allocLocal on @p mutator. */
    void dropLocalRoots(MutatorContext *mutator = nullptr);

    /** @} */

    /** @name Why-alive backgraph (detectors/backgraph)
     *  @{ */

    /**
     * Register a named allocation site for the backgraph's leak
     * reports and return its tag, to be passed to allocRaw /
     * allocLocal. Returns 0 (the untagged site) when the backgraph
     * is off, so call sites need no gating.
     */
    uint32_t allocSite(const std::string &name);

    /**
     * What keeps @p obj alive right now: a rootward path from the
     * bounded backwards points-to graph. known=false when the
     * backgraph is off or the object predates it.
     */
    WhyAliveReport whyAlive(const Object *obj);

    /** @} */

    /**
     * Store a reference: src.refs[index] = target, through the write
     * barrier, under the shared lock (so the store can never race a
     * stop-the-world collection). This is the official reference-
     * write path — workloads and embedders should prefer it over
     * calling Object::setRef directly. Raw setRef remains sound (the
     * barrier hooks setRef itself), but only writeRef also excludes
     * a concurrent GC.
     */
    void writeRef(Object *src, uint32_t index, Object *target);

    /** Trigger a full collection now. */
    CollectionResult collect();

    /**
     * Trigger a minor (nursery-only) collection now. No-op result
     * with generational mode off (the nursery is always empty). See
     * Collector::minorCollect for semantics — no assertion checks,
     * verdicts stay with full collections.
     */
    MinorCollectionResult collectMinor();

    /**
     * Register (or clear, with an empty function) a finalizer for
     * @p obj. Finalizers run after the collection that found the
     * object unreachable, outside the GC-time accounting; the
     * object (and its subtree) survives that collection and may be
     * resurrected by the finalizer re-rooting it, otherwise it dies
     * at the next one.
     */
    void setFinalizer(Object *obj, std::function<void(Object *)> fn);

    /** Objects with a registered, not-yet-run finalizer. */
    size_t finalizableCount();

    /** @name GC assertions (paper section 2)
     *  @{ */

    /** assert-dead(p): @p obj must be unreachable at the next GC. */
    void assertDead(Object *obj);

    /**
     * start-region() on @p mutator (nullptr = main). A non-empty
     * @p label names the region in any alldead violation it later
     * produces (e.g. a server request id).
     */
    void startRegion(MutatorContext *mutator = nullptr,
                     std::string label = {});

    /** assert-alldead() on @p mutator (nullptr = main). */
    void assertAllDead(MutatorContext *mutator = nullptr);

    /** assert-instances(T, I). */
    void assertInstances(TypeId type, uint64_t limit);

    /** assert-volume(T, B): live T bytes must stay within budget. */
    void assertVolume(TypeId type, uint64_t bytes);

    /** assert-unshared(p). */
    void assertUnshared(Object *obj);

    /** assert-ownedby(owner, ownee). */
    void assertOwnedBy(Object *owner, Object *ownee);

    /** @} */

    /** Violations reported so far. */
    const std::vector<Violation> &violations() const
    {
        return engine_.violations();
    }

    GcStats &gcStats() { return collector_.stats(); }
    AssertionStats &assertionStats() { return engine_.stats(); }

    /** Total collections run. */
    uint64_t collections() const { return collector_.stats().collections; }

    /**
     * Register a hook invoked on every allocation (used by the
     * leak-detector baselines). Adds per-allocation cost only while
     * at least one hook is registered.
     */
    void addAllocHook(std::function<void(Object *)> hook);

    /** Register a hook invoked on every swept object. */
    void addFreeHook(std::function<void(Object *)> hook);

    /** True if any mutator currently has an open region (used by the
     *  heap verifier to validate region bits). */
    bool mainMutatorInRegionOrAny();

  private:
    friend class Handle;

    /** Allocation core; assumes the exclusive lock is held. */
    Object *allocLocked(TypeId type, uint32_t num_refs,
                        uint32_t scalar_bytes, MutatorContext *mutator,
                        uint32_t site);

    /**
     * TLAB slow path; assumes the exclusive lock is held. Refills
     * the mutator's lease for the object's size class (delegating
     * large objects to allocLocked) and retries through the same
     * collect-then-grow policy as allocLocked.
     */
    Object *tlabRefillAllocLocked(TypeId type, uint32_t num_refs,
                                  uint32_t scalar_bytes,
                                  MutatorContext &ctx, uint32_t site);

    /**
     * TLAB fast path: bump-allocate under the shared lock. Returns
     * nullptr when the slow path is required. Disabled while alloc
     * hooks are registered — hooks predate the shared path and may
     * assume serialization.
     */
    Object *tlabFastAlloc(TypeId type, MutatorContext *mutator,
                          bool retain_local, uint32_t site);

    /** Collection core; assumes the lock is held. */
    CollectionResult collectLocked();

    /**
     * Allocation-entry nursery check: when generational mode is on
     * and the nursery has outgrown nurseryKb, run a minor collection
     * before allocating — mirroring the full GC's collect-before-
     * allocate discipline, so a freshly returned object is never
     * collected by the trigger that its own allocation tripped.
     * Takes the exclusive lock itself; call before acquiring any.
     */
    void maybeMinorCollect();

    /** Warn once if an assertion is used with infrastructure off. */
    bool checkInfraEnabled(const char *what);

    /** Handle support (locks internally). */
    void addRoot(RootNode &node, Object *obj, const char *name);
    void removeRoot(RootNode &node);

    /** Register the standard gauge set and the violation observer. */
    void wireTelemetry();

    /**
     * Append a "whyAlive" field (rootward path for the violation's
     * offender) to an open provenance object. Returns false — and
     * appends nothing — when the backgraph is off or the violation
     * carries no offending address.
     */
    bool appendWhyAliveJson(JsonWriter &w, const Violation &v);

    RuntimeConfig config_;
    TypeRegistry types_;
    Heap heap_;
    RootRegistry roots_;
    MutatorRegistry mutators_;
    AssertionEngine engine_;
    /** Mature-to-nursery edges recorded by the write barrier. */
    RememberedSet remset_;
    /** Property-cached incremental recheck state; non-null iff
     *  config_.infrastructure && config_.incrementalAssert. Wired
     *  into the heap (region summaries), the engine (assertion
     *  hooks) and the collector (card stream + deferred verdict)
     *  before any allocation. Declared before collector_ so the
     *  collector's raw pointer never dangles. */
    std::unique_ptr<IncrementalAssertCache> incremental_;
    /** Why-alive backgraph; non-null iff config_.backgraph. Declared
     *  before collector_ so the collector's raw pointer never
     *  dangles (barrier_, its other feeder, tears down first). */
    std::unique_ptr<Backgraph> backgraph_;
    Collector collector_;
    /** Write-barrier slow-path entries attributed to this runtime
     *  (fed to the barrier scope; surfaced as a metrics counter). */
    std::atomic<uint64_t> barrierSlowHits_{0};
    /** Arms the global write barrier; non-null only in generational
     *  mode. Declared after collector_ so it unregisters first. */
    std::unique_ptr<BarrierScope> barrier_;
    /** Observability bundle; non-null iff config_.observe.any().
     *  Referenced (raw) by collector_ and the violation observer,
     *  both quiescent by the time the destructor flushes it. */
    std::unique_ptr<Telemetry> telemetry_;
    /** Live telemetry endpoint; non-null iff telemetry_ is set,
     *  observe.livePort != 0 and the bind succeeded. Declared after
     *  telemetry_ (and stopped explicitly in the destructor before
     *  the final flush) so the serving thread can never outlive the
     *  state it reads. */
    std::unique_ptr<LiveTelemetryServer> liveServer_;

    /** Run finalizers queued by the most recent collection. */
    void runPendingFinalizers();

    /** Drain pending finalizers if any are queued (lock-free check). */
    void maybeRunFinalizers();

    /** Reader-writer: shared = TLAB fast path, exclusive = the rest. */
    std::shared_mutex lock_;
    bool warnedInfraOff_ = false;
    std::vector<std::function<void(Object *)>> allocHooks_;
    std::atomic<bool> finalizersPending_{false};
    std::atomic<bool> finalizersRunning_{false};
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_RUNTIME_H
