#include "runtime/heap_query.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "runtime/runtime.h"

namespace gcassert {

HeapQuery::Found
HeapQuery::search(const Object *target) const
{
    Found found;
    // Parent edges for path reconstruction; nullptr parent marks a
    // root-referenced object.
    std::unordered_map<const Object *, const Object *> parent;
    std::unordered_map<const Object *, const char *> root_name;
    std::queue<const Object *> frontier;

    runtime_.roots().forEach([&](RootNode &node) {
        const Object *obj = node.get();
        if (!obj || parent.count(obj))
            return;
        parent.emplace(obj, nullptr);
        root_name.emplace(obj, node.name());
        frontier.push(obj);
    });

    const Object *hit = nullptr;
    if (parent.count(target))
        hit = target;
    while (!hit && !frontier.empty()) {
        const Object *current = frontier.front();
        frontier.pop();
        for (uint32_t i = 0; i < current->numRefs(); ++i) {
            const Object *child = current->ref(i);
            if (!child || parent.count(child))
                continue;
            parent.emplace(child, current);
            frontier.push(child);
            if (child == target) {
                hit = child;
                break;
            }
        }
    }
    if (!hit)
        return found;

    for (const Object *hop = hit; hop; hop = parent[hop])
        found.path.push_back(hop);
    std::reverse(found.path.begin(), found.path.end());
    found.rootName = root_name[found.path.front()];
    return found;
}

std::vector<PathEntry>
HeapQuery::pathTo(const Object *obj) const
{
    Found found = search(obj);
    std::vector<PathEntry> path;
    path.reserve(found.path.size());
    for (const Object *hop : found.path)
        path.push_back(PathEntry{
            runtime_.types().get(hop->typeId()).name(), hop});
    return path;
}

std::string
HeapQuery::rootNameFor(const Object *obj) const
{
    return search(obj).rootName;
}

bool
HeapQuery::reachable(const Object *obj) const
{
    return !search(obj).path.empty();
}

std::vector<TypeCensusRow>
HeapQuery::census() const
{
    std::unordered_map<TypeId, TypeCensusRow> rows;
    runtime_.heap().forEachObject([&](Object *obj) {
        auto [it, fresh] = rows.try_emplace(obj->typeId());
        if (fresh) {
            it->second.type = obj->typeId();
            it->second.typeName =
                runtime_.types().get(obj->typeId()).name();
            it->second.instances = 0;
            it->second.bytes = 0;
        }
        ++it->second.instances;
        it->second.bytes += obj->sizeBytes();
    });
    std::vector<TypeCensusRow> out;
    out.reserve(rows.size());
    for (auto &[type, row] : rows)
        out.push_back(std::move(row));
    std::sort(out.begin(), out.end(),
              [](const TypeCensusRow &a, const TypeCensusRow &b) {
                  return a.bytes > b.bytes;
              });
    return out;
}

uint64_t
HeapQuery::countInstances(TypeId type) const
{
    uint64_t count = 0;
    runtime_.heap().forEachObject([&](Object *obj) {
        if (obj->typeId() == type)
            ++count;
    });
    return count;
}

} // namespace gcassert
