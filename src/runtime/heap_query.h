/**
 * @file
 * On-demand heap introspection.
 *
 * GC assertions answer heap questions *at the next collection*;
 * HeapQuery answers them immediately, outside any collection, by
 * walking the live object graph directly. It complements the
 * assertion interface during interactive debugging: once a deferred
 * report names an object, pathTo() can re-derive a (shortest) root
 * path at any later point, and census() gives the per-type live
 * profile that heuristic tools like Cork work from.
 *
 * Queries do not allocate on the managed heap and do not disturb
 * collector state (they never touch mark bits).
 */

#ifndef GCASSERT_RUNTIME_HEAP_QUERY_H
#define GCASSERT_RUNTIME_HEAP_QUERY_H

#include <cstdint>
#include <string>
#include <vector>

#include "assertions/violation.h"
#include "heap/object.h"

namespace gcassert {

class Runtime;

/** One row of a live-heap census. */
struct TypeCensusRow {
    TypeId type;
    std::string typeName;
    uint64_t instances;
    uint64_t bytes;
};

/**
 * Immediate queries over the live heap.
 */
class HeapQuery {
  public:
    explicit HeapQuery(Runtime &runtime) : runtime_(runtime) {}

    /**
     * Shortest path from a registered root to @p obj, as PathEntry
     * hops (the same shape as violation reports). Empty when @p obj
     * is not reachable (or not currently allocated).
     *
     * Breadth-first, so the path is minimal in hop count — unlike
     * violation paths, which reflect the collector's depth-first
     * traversal order.
     */
    std::vector<PathEntry> pathTo(const Object *obj) const;

    /** Name of the root the pathTo() result starts from ("" if
     *  unreachable). */
    std::string rootNameFor(const Object *obj) const;

    /**
     * Per-type census of *allocated* objects, sorted by bytes
     * descending. Run right after a collection for an exact live
     * census (between collections it includes floating garbage).
     */
    std::vector<TypeCensusRow> census() const;

    /** Allocated instances of @p type (same caveat as census()). */
    uint64_t countInstances(TypeId type) const;

    /** True if @p obj is reachable from the registered roots. */
    bool reachable(const Object *obj) const;

  private:
    struct Found {
        std::vector<const Object *> path;
        std::string rootName;
    };

    /** BFS from the roots; stops early when @p target is found. */
    Found search(const Object *target) const;

    Runtime &runtime_;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_HEAP_QUERY_H
