#include "runtime/runtime.h"

#include "observe/live_server.h"
#include "runtime/handle.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

namespace {

/** Propagate runtime-level knobs into the nested heap config. */
RuntimeConfig
withDerivedHeapConfig(RuntimeConfig config)
{
    config.heap.generational = config.generational;
    return config;
}

} // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(withDerivedHeapConfig(std::move(config))),
      heap_(config_.heap),
      engine_(types_, mutators_, config_.engine),
      collector_(heap_, types_, roots_, mutators_, engine_, remset_,
                 CollectorConfig{config_.infrastructure,
                                 config_.recordPaths,
                                 config_.markThreads,
                                 config_.sweepThreads,
                                 config_.lazySweep})
{
    // Incremental recheck: wire the cache into every layer before any
    // allocation, so the region tallies see the whole object stream.
    if (config_.infrastructure && config_.incrementalAssert) {
        incremental_ =
            std::make_unique<IncrementalAssertCache>(heap_, types_);
        heap_.setRegionSummaries(&incremental_->table());
        engine_.setIncremental(incremental_.get());
        collector_.setIncrementalCache(incremental_.get());
    }
    // Why-alive backgraph: third write-barrier consumer; the
    // collector prunes dead edges during sweep and samples the leak
    // trends after each full collection's verdicts settle.
    if (config_.backgraph) {
        backgraph_ = std::make_unique<Backgraph>(
            types_, engine_,
            Backgraph::Config{config_.backgraphInDegreeCap,
                              config_.backgraphWindow});
        collector_.setBackgraph(backgraph_.get());
    }
    // The barrier arms for generational collection, for the
    // incremental recheck's all-writes card stream, for the
    // backgraph's full write stream, or any combination.
    if (config_.generational || incremental_ || backgraph_)
        barrier_ = std::make_unique<BarrierScope>(
            heap_, remset_, engine_, &barrierSlowHits_,
            /*track_all_writes=*/incremental_ != nullptr,
            backgraph_.get());
    if (config_.observe.any()) {
        telemetry_ = std::make_unique<Telemetry>(config_.observe);
        collector_.setTelemetry(telemetry_.get());
        wireTelemetry();
        if (config_.observe.livePort != 0) {
            // A failed bind (port taken) degrades to running
            // without the endpoint — the warn() from the listener
            // names the port — rather than failing the runtime.
            auto server = std::make_unique<LiveTelemetryServer>(
                *telemetry_, config_.observe.livePort);
            if (server->start()) {
                liveServer_ = std::move(server);
                if (config_.verboseGc)
                    inform(format(
                        "live telemetry endpoint on 127.0.0.1:%u",
                        unsigned{liveServer_->port()}));
            }
        }
    } else if (backgraph_) {
        // No telemetry, but the backgraph can still answer what
        // keeps a violation's offender alive — attach the lighter
        // observer variant with only the whyAlive enrichment.
        engine_.setViolationObserver([this](Violation &v) {
            JsonWriter w;
            w.beginObject();
            if (appendWhyAliveJson(w, v)) {
                w.endObject();
                v.provenanceJson = w.str();
            }
        });
    }
}

Runtime::~Runtime()
{
    // Stop the endpoint thread before flushing: the flush's metrics
    // publish and the serving thread both read the telemetry bundle,
    // and nothing may read it once members start destructing. The
    // teardown metrics snapshot is seq-stamped with the last
    // *published* snapshot (no new publish happens here), so the
    // endpoint's final /metrics response and the teardown document
    // agree on the sequence number.
    liveServer_.reset();
    if (telemetry_)
        telemetry_->flush();
}

void
Runtime::publishTelemetry()
{
    if (!telemetry_)
        return;
    // Exclusive: gauge readers touch non-atomic accumulators
    // (GcStats, remset tables) that mutators update under the
    // shared lock, so a shared-mode publish would race them.
    std::lock_guard<std::shared_mutex> guard(lock_);
    collector_.publishTelemetry();
}

uint16_t
Runtime::livePort() const
{
    return liveServer_ ? liveServer_->port() : 0;
}

void
Runtime::wireTelemetry()
{
    // Gauges read the accumulators the hot paths already maintain
    // (GcStats, heap atomics, remset sizes): registering them adds
    // zero cost to allocation or collection — sampling happens only
    // at snapshot()/publish() time.
    MetricsRegistry &m = telemetry_->metrics();
    const GcStats &gs = collector_.stats();
    m.gauge("gc.collections", [&gs] { return gs.collections; });
    m.gauge("gc.minor_collections", [&gs] { return gs.minorCollections; });
    m.gauge("gc.objects_marked", [&gs] { return gs.objectsMarked; });
    m.gauge("gc.objects_swept", [&gs] { return gs.objectsSwept; });
    m.gauge("gc.bytes_swept", [&gs] { return gs.bytesSwept; });
    m.gauge("gc.violations", [&gs] { return gs.violations; });
    m.gauge("gc.last_live_objects", [&gs] { return gs.lastLiveObjects; });
    m.gauge("gc.last_live_bytes", [&gs] { return gs.lastLiveBytes; });
    m.gauge("gc.total_pause_nanos",
            [&gs] { return gs.totalGc.elapsedNanos(); });
    m.gauge("gc.mark_steals", [&gs] { return gs.markSteals; });
    m.gauge("gc.nursery_promoted", [&gs] { return gs.nurseryPromoted; });
    const Heap &h = heap_;
    m.gauge("heap.used_bytes", [&h] { return h.usedBytes(); });
    m.gauge("heap.live_objects", [&h] { return h.liveObjects(); });
    m.gauge("heap.total_allocated_bytes",
            [&h] { return h.totalAllocatedBytes(); });
    m.gauge("heap.total_allocated_objects",
            [&h] { return h.totalAllocatedObjects(); });
    m.gauge("heap.tlab_allocs", [&h] { return h.tlabAllocs(); });
    m.gauge("heap.blocks_minted", [&h] { return h.blocksMinted(); });
    m.gauge("heap.nursery_bytes", [&h] { return h.nurseryBytes(); });
    const RememberedSet &rs = remset_;
    m.gauge("remset.sources", [&rs] { return uint64_t{rs.size()}; });
    m.gauge("remset.cards", [&rs] { return uint64_t{rs.cardCount()}; });
    m.gauge("remset.total_records", [&rs] { return rs.totalRecords(); });
    const std::atomic<uint64_t> &hits = barrierSlowHits_;
    m.gauge("barrier.slow_path_hits", [&hits] {
        return hits.load(std::memory_order_relaxed);
    });
    if (incremental_) {
        const AssertionStats &as = engine_.stats();
        m.gauge("assert.cache.hits", [&as] { return as.cacheHits; });
        m.gauge("assert.cache.invalidations",
                [&as] { return as.cacheInvalidations; });
    }
    if (backgraph_) {
        const Backgraph *bg = backgraph_.get();
        m.gauge("backgraph.nodes", [bg] { return bg->nodeCount(); });
        m.gauge("backgraph.edges", [bg] { return bg->edgeCount(); });
        m.gauge("backgraph.saturated_nodes",
                [bg] { return bg->saturatedCount(); });
        m.gauge("backgraph.sites", [bg] { return bg->siteCount(); });
        m.gauge("backgraph.edge_records",
                [bg] { return bg->edgeRecords(); });
        m.gauge("backgraph.pruned_edges",
                [bg] { return bg->prunedEdges(); });
        m.gauge("backgraph.growth_reports",
                [bg] { return bg->growthReports(); });
        m.gauge("backgraph.find_leak_reports",
                [bg] { return bg->findLeakReports(); });
    }

    // Live-endpoint bookkeeping: the bounded recent-violations ring
    // is a copy for the endpoint only (the engine's own record stays
    // unbounded — it is the verdict surface tests compare), so its
    // drop count is worth a gauge in long server runs.
    const ViolationRing &ring = telemetry_->violationRing();
    m.gauge("observe.violations_dropped",
            [&ring] { return ring.dropped(); });
    m.gauge("observe.snapshot_history_dropped", [this] {
        return telemetry_->history().dropped();
    });

    // Pause SLO: streaming percentiles per pause flavour plus the
    // budget and over-budget count.
    const PauseSloTracker &slo = telemetry_->pauseSlo();
    m.gauge("gc.pause.budget_nanos", [&slo] { return slo.budgetNanos(); });
    m.gauge("gc.pause.slo_violations",
            [&slo] { return slo.violationCount(); });
    m.gauge("gc.pause.full.count", [&slo] { return slo.full().count(); });
    m.gauge("gc.pause.full.p50_nanos",
            [&slo] { return slo.full().percentile(50.0); });
    m.gauge("gc.pause.full.p99_nanos",
            [&slo] { return slo.full().percentile(99.0); });
    m.gauge("gc.pause.full.max_nanos",
            [&slo] { return slo.full().max(); });
    m.gauge("gc.pause.minor.count",
            [&slo] { return slo.minor().count(); });
    m.gauge("gc.pause.minor.p50_nanos",
            [&slo] { return slo.minor().percentile(50.0); });
    m.gauge("gc.pause.minor.p99_nanos",
            [&slo] { return slo.minor().percentile(99.0); });
    m.gauge("gc.pause.minor.max_nanos",
            [&slo] { return slo.minor().max(); });

    // Per-assertion-kind cost attribution: one gauge per (phase,
    // kind) bucket; each phase's buckets sum to (within scope
    // overhead) that phase's cumulative span time.
    const AssertCostAttribution &ac = telemetry_->assertCost();
    for (size_t i = 0; i < kNumAssertCostKinds; ++i) {
        auto kind = static_cast<AssertCostKind>(i);
        std::string name = assertCostKindName(kind);
        m.gauge("assert.cost.mark." + name + "_nanos",
                [&ac, kind] { return ac.markNanos(kind); });
        m.gauge("assert.cost.finish." + name + "_nanos",
                [&ac, kind] { return ac.finishNanos(kind); });
    }

    // Violation provenance: enrich every report with the heap state
    // and latest census at the moment it fired, and drop an instant
    // event into the trace. Context only — the observer never writes
    // kind/message/gcNumber, so verdict streams are identical with
    // telemetry on or off.
    Telemetry *t = telemetry_.get();
    engine_.setViolationObserver([this, t](Violation &v) {
        t->metrics().counter("assert.violations_observed")->increment();
        JsonWriter w;
        w.beginObject()
            .field("heapUsedBytes", heap_.usedBytes())
            .field("heapLiveObjects", heap_.liveObjects())
            .field("nurseryBytes", heap_.nurseryBytes());
        if (v.offendingAddress) {
            const Object *obj =
                static_cast<const Object *>(v.offendingAddress);
            w.field("offenderInNursery", obj->testFlag(kNurseryBit));
        }
        CensusSnapshot census = t->latestCensus();
        if (!census.empty()) {
            w.field("censusGc", census.gcNumber);
            w.key("censusTop").valueRaw(census.topRowsJson(5));
        }
        appendWhyAliveJson(w, v);
        w.endObject();
        v.provenanceJson = w.str();
        t->violationRing().push(assertionKindName(v.kind), v.gcNumber,
                                v.message);
        if (TraceRecorder *tr = t->recorder()) {
            JsonWriter a;
            a.beginObject()
                .field("kind", assertionKindName(v.kind))
                .field("type", v.offendingType)
                .field("gc", v.gcNumber)
                .endObject();
            tr->instant("violation", "assert", nowNanos(), a.str());
        }
    });
}

bool
Runtime::appendWhyAliveJson(JsonWriter &w, const Violation &v)
{
    if (!backgraph_ || !v.offendingAddress)
        return false;
    WhyAliveReport why = backgraph_->whyAlive(
        static_cast<const Object *>(v.offendingAddress));
    if (!why.known)
        return false;
    JsonWriter inner;
    inner.beginObject()
        .field("rootReached", why.rootReached)
        .field("saturated", why.saturated);
    inner.key("path").beginArray();
    for (const PathEntry &hop : why.path)
        inner.value(hop.typeName);
    inner.endArray().endObject();
    w.key("whyAlive").valueRaw(inner.str());
    return true;
}

void
Runtime::requestCensus()
{
    if (!telemetry_)
        return;
    std::lock_guard<std::shared_mutex> guard(lock_);
    collector_.requestCensus();
}

CensusSnapshot
Runtime::latestCensus() const
{
    return telemetry_ ? telemetry_->latestCensus() : CensusSnapshot{};
}

MutatorContext &
Runtime::registerMutator(const std::string &name)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    return mutators_.create(name);
}

Object *
Runtime::tlabFastAlloc(TypeId type, MutatorContext *mutator,
                       bool retain_local, uint32_t site)
{
    std::shared_lock<std::shared_mutex> guard(lock_);
    // Alloc hooks (leak-detector side tables) predate the shared
    // path and assume serialized invocation, so their presence
    // forces the exclusive path.
    if (!allocHooks_.empty())
        return nullptr;
    const TypeDescriptor &desc = types_.get(type);
    if (desc.isArray())
        fatal(format("allocRaw: type '%s' is an array type; use "
                     "allocArrayRaw", desc.name().c_str()));
    MutatorContext &ctx = mutator ? *mutator : mutators_.main();
    Object *obj = heap_.tlabAllocate(ctx.tlab(), type, desc.fixedRefs(),
                                     desc.scalarBytes());
    if (obj) {
        // Pin before the shared lock drops: a GC acquiring the
        // exclusive lock afterwards sees the object rooted.
        if (retain_local)
            ctx.retainLocal(obj);
        if (config_.infrastructure)
            ctx.noteAllocation(obj);
        // Site tagging under the shared lock is safe: the backgraph
        // serializes on its own mutex.
        if (backgraph_)
            backgraph_->noteAlloc(obj, site);
    }
    return obj;
}

void
Runtime::maybeMinorCollect()
{
    if (!config_.generational)
        return;
    uint64_t threshold = uint64_t{config_.nurseryKb} * 1024;
    if (heap_.nurseryBytes() < threshold)
        return;
    std::lock_guard<std::shared_mutex> guard(lock_);
    // Re-check under the lock: another mutator may have collected.
    if (heap_.nurseryBytes() >= threshold)
        collector_.minorCollect();
}

Object *
Runtime::allocRaw(TypeId type, MutatorContext *mutator, uint32_t site)
{
    // Untagged allocation with the backgraph on: hash the caller's
    // return address into an anonymous allocation site, so find-leak
    // trends still name a stable per-call-site bucket.
    if (backgraph_ && site == 0)
        site = Backgraph::siteFromAddress(__builtin_return_address(0));
    maybeMinorCollect();
    Object *obj = nullptr;
    if (config_.tlab)
        obj = tlabFastAlloc(type, mutator, /*retain_local=*/false, site);
    if (!obj) {
        std::lock_guard<std::shared_mutex> guard(lock_);
        const TypeDescriptor &desc = types_.get(type);
        if (desc.isArray())
            fatal(format("allocRaw: type '%s' is an array type; use "
                         "allocArrayRaw", desc.name().c_str()));
        if (config_.tlab && allocHooks_.empty()) {
            MutatorContext &ctx = mutator ? *mutator : mutators_.main();
            obj = tlabRefillAllocLocked(type, desc.fixedRefs(),
                                        desc.scalarBytes(), ctx, site);
        } else {
            obj = allocLocked(type, desc.fixedRefs(), desc.scalarBytes(),
                              mutator, site);
        }
    }
    maybeRunFinalizers();
    return obj;
}

Object *
Runtime::allocLocal(TypeId type, MutatorContext *mutator, uint32_t site)
{
    if (backgraph_ && site == 0)
        site = Backgraph::siteFromAddress(__builtin_return_address(0));
    maybeMinorCollect();
    Object *obj = nullptr;
    if (config_.tlab)
        obj = tlabFastAlloc(type, mutator, /*retain_local=*/true, site);
    if (!obj) {
        std::lock_guard<std::shared_mutex> guard(lock_);
        const TypeDescriptor &desc = types_.get(type);
        if (desc.isArray())
            fatal(format("allocLocal: type '%s' is an array type; use "
                         "allocArray", desc.name().c_str()));
        MutatorContext &ctx = mutator ? *mutator : mutators_.main();
        obj = config_.tlab && allocHooks_.empty()
            ? tlabRefillAllocLocked(type, desc.fixedRefs(),
                                    desc.scalarBytes(), ctx, site)
            : allocLocked(type, desc.fixedRefs(), desc.scalarBytes(),
                          &ctx, site);
        ctx.retainLocal(obj);
    }
    maybeRunFinalizers();
    return obj;
}

void
Runtime::dropLocalRoots(MutatorContext *mutator)
{
    // Shared suffices: the roster is thread-affine, and holding the
    // lock (in any mode) excludes a concurrent collection.
    std::shared_lock<std::shared_mutex> guard(lock_);
    (mutator ? *mutator : mutators_.main()).dropLocalRoots();
}

Object *
Runtime::allocArrayRaw(TypeId type, uint32_t length,
                       MutatorContext *mutator, uint32_t site)
{
    if (backgraph_ && site == 0)
        site = Backgraph::siteFromAddress(__builtin_return_address(0));
    maybeMinorCollect();
    std::lock_guard<std::shared_mutex> guard(lock_);
    const TypeDescriptor &desc = types_.get(type);
    if (!desc.isArray())
        fatal(format("allocArrayRaw: type '%s' is not an array type",
                     desc.name().c_str()));
    return allocLocked(type, length, desc.scalarBytes(), mutator, site);
}

Object *
Runtime::allocScalarRaw(TypeId type, uint32_t scalar_bytes,
                        MutatorContext *mutator, uint32_t site)
{
    if (backgraph_ && site == 0)
        site = Backgraph::siteFromAddress(__builtin_return_address(0));
    maybeMinorCollect();
    std::lock_guard<std::shared_mutex> guard(lock_);
    const TypeDescriptor &desc = types_.get(type);
    if (!desc.isArray())
        fatal(format("allocScalarRaw: type '%s' is not an array type",
                     desc.name().c_str()));
    return allocLocked(type, 0, scalar_bytes, mutator, site);
}

Handle
Runtime::alloc(TypeId type, MutatorContext *mutator)
{
    maybeMinorCollect();
    // Allocate and root under one lock acquisition: a concurrent
    // mutator's collection can never observe the new object
    // unrooted.
    Handle handle;
    {
        std::lock_guard<std::shared_mutex> guard(lock_);
        const TypeDescriptor &desc = types_.get(type);
        if (desc.isArray())
            fatal(format("alloc: type '%s' is an array type; use "
                         "allocArray", desc.name().c_str()));
        Object *obj = allocLocked(type, desc.fixedRefs(),
                                  desc.scalarBytes(), mutator,
                                  /*site=*/0);
        handle.runtime_ = this;
        roots_.add(handle.node_, obj, "local");
    }
    return handle;
}

Handle
Runtime::allocArray(TypeId type, uint32_t length, MutatorContext *mutator)
{
    maybeMinorCollect();
    Handle handle;
    {
        std::lock_guard<std::shared_mutex> guard(lock_);
        const TypeDescriptor &desc = types_.get(type);
        if (!desc.isArray())
            fatal(format("allocArray: type '%s' is not an array type",
                         desc.name().c_str()));
        Object *obj = allocLocked(type, length, desc.scalarBytes(),
                                  mutator, /*site=*/0);
        handle.runtime_ = this;
        roots_.add(handle.node_, obj, "local");
    }
    return handle;
}

Object *
Runtime::allocLocked(TypeId type, uint32_t num_refs,
                     uint32_t scalar_bytes, MutatorContext *mutator,
                     uint32_t site)
{
    Object *obj = heap_.allocate(type, num_refs, scalar_bytes);
    if (!obj) {
        // Budget exhausted: collect, then retry; grow as a last
        // resort when the config allows it.
        collectLocked();
        obj = heap_.allocate(type, num_refs, scalar_bytes);
        while (!obj && config_.heap.allowGrowth) {
            uint64_t grown = static_cast<uint64_t>(
                static_cast<double>(heap_.budgetBytes()) *
                config_.heap.growthFactor);
            if (grown <= heap_.budgetBytes())
                grown = heap_.budgetBytes() + Block::kBlockBytes;
            heap_.setBudgetBytes(grown);
            obj = heap_.allocate(type, num_refs, scalar_bytes);
        }
        if (!obj)
            fatal(format("out of memory: budget %s, live %s",
                         humanBytes(heap_.budgetBytes()).c_str(),
                         humanBytes(heap_.usedBytes()).c_str()));
    }
    if (config_.infrastructure) {
        // The paper's per-allocation region check (section 2.3.2).
        MutatorContext &ctx = mutator ? *mutator : mutators_.main();
        ctx.noteAllocation(obj);
    }
    if (backgraph_)
        backgraph_->noteAlloc(obj, site);
    for (const auto &hook : allocHooks_)
        hook(obj);
    return obj;
}

Object *
Runtime::tlabRefillAllocLocked(TypeId type, uint32_t num_refs,
                               uint32_t scalar_bytes, MutatorContext &ctx,
                               uint32_t site)
{
    uint32_t size = Object::sizeFor(num_refs, scalar_bytes);
    size_t size_class = sizeClassFor(size);
    if (size_class >= kNumSizeClasses)
        return allocLocked(type, num_refs, scalar_bytes, &ctx, site);

    // A fresh lease always has free cells, so a failure after the
    // refill can only be the budget: apply the same collect-then-
    // grow policy as allocLocked. Leased blocks survive collections,
    // so the lease stays valid across collectLocked().
    heap_.refillTlab(ctx.tlab(), size_class);
    Object *obj =
        heap_.tlabAllocate(ctx.tlab(), type, num_refs, scalar_bytes);
    if (!obj) {
        collectLocked();
        heap_.refillTlab(ctx.tlab(), size_class);
        obj = heap_.tlabAllocate(ctx.tlab(), type, num_refs,
                                 scalar_bytes);
        while (!obj && config_.heap.allowGrowth) {
            uint64_t grown = static_cast<uint64_t>(
                static_cast<double>(heap_.budgetBytes()) *
                config_.heap.growthFactor);
            if (grown <= heap_.budgetBytes())
                grown = heap_.budgetBytes() + Block::kBlockBytes;
            heap_.setBudgetBytes(grown);
            obj = heap_.tlabAllocate(ctx.tlab(), type, num_refs,
                                     scalar_bytes);
        }
        if (!obj)
            fatal(format("out of memory: budget %s, live %s",
                         humanBytes(heap_.budgetBytes()).c_str(),
                         humanBytes(heap_.usedBytes()).c_str()));
    }
    if (config_.infrastructure)
        ctx.noteAllocation(obj);
    if (backgraph_)
        backgraph_->noteAlloc(obj, site);
    return obj;
}

uint32_t
Runtime::allocSite(const std::string &name)
{
    return backgraph_ ? backgraph_->registerSite(name) : 0;
}

WhyAliveReport
Runtime::whyAlive(const Object *obj)
{
    if (!backgraph_)
        return {};
    // Shared lock: excludes a concurrent collection (whose sweep
    // mutates the graph) without serializing mutator allocation.
    std::shared_lock<std::shared_mutex> guard(lock_);
    return backgraph_->whyAlive(obj);
}

void
Runtime::addAllocHook(std::function<void(Object *)> hook)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    allocHooks_.push_back(std::move(hook));
}

void
Runtime::addFreeHook(std::function<void(Object *)> hook)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    collector_.addFreeHook(std::move(hook));
}

bool
Runtime::mainMutatorInRegionOrAny()
{
    bool any = false;
    mutators_.forEach(
        [&](MutatorContext &mutator) { any |= mutator.inRegion(); });
    return any;
}

void
Runtime::writeRef(Object *src, uint32_t index, Object *target)
{
    // Shared suffices: holding the lock in any mode excludes a
    // concurrent stop-the-world collection, and distinct mutators
    // write distinct slots (the usual data-race-freedom contract).
    // The write barrier fires inside setRef.
    std::shared_lock<std::shared_mutex> guard(lock_);
    src->setRef(index, target);
}

MinorCollectionResult
Runtime::collectMinor()
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    return collector_.minorCollect();
}

CollectionResult
Runtime::collect()
{
    CollectionResult result;
    {
        std::lock_guard<std::shared_mutex> guard(lock_);
        result = collectLocked();
    }
    if (finalizersPending_.load(std::memory_order_relaxed))
        runPendingFinalizers();
    return result;
}

void
Runtime::setFinalizer(Object *obj, std::function<void(Object *)> fn)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    collector_.registerFinalizer(obj, std::move(fn));
}

size_t
Runtime::finalizableCount()
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    return collector_.finalizableCount();
}

void
Runtime::maybeRunFinalizers()
{
    if (finalizersPending_.load(std::memory_order_relaxed))
        runPendingFinalizers();
}

void
Runtime::runPendingFinalizers()
{
    // One runner at a time; re-entrant requests (a finalizer that
    // allocates and triggers a collection) are deferred to the
    // current drain loop.
    bool expected = false;
    if (!finalizersRunning_.compare_exchange_strong(expected, true))
        return;
    while (true) {
        std::vector<std::pair<Object *, std::function<void(Object *)>>>
            pending;
        {
            std::lock_guard<std::shared_mutex> guard(lock_);
            pending = collector_.takePendingFinalizers();
            if (pending.empty())
                finalizersPending_.store(false,
                                         std::memory_order_relaxed);
        }
        if (pending.empty())
            break;
        // Run outside the lock: finalizers may allocate, root, or
        // even re-register themselves.
        for (auto &[obj, finalizer] : pending)
            finalizer(obj);
    }
    finalizersRunning_.store(false);
}

CollectionResult
Runtime::collectLocked()
{
    CollectionResult result = collector_.collect();
    if (collector_.hasPendingFinalizers())
        finalizersPending_.store(true, std::memory_order_relaxed);
    if (config_.verboseGc) {
        inform(format(
            "GC #%llu: marked %llu, swept %llu (%s), live %s, "
            "%llu violation(s)",
            static_cast<unsigned long long>(
                collector_.stats().collections),
            static_cast<unsigned long long>(result.marked),
            static_cast<unsigned long long>(result.sweep.freedObjects),
            humanBytes(result.sweep.freedBytes).c_str(),
            humanBytes(result.sweep.liveBytes).c_str(),
            static_cast<unsigned long long>(result.violations)));
    }
    return result;
}

bool
Runtime::checkInfraEnabled(const char *what)
{
    if (config_.infrastructure)
        return true;
    if (!warnedInfraOff_) {
        warnedInfraOff_ = true;
        warn(format("%s ignored: the assertion infrastructure is "
                    "disabled in this configuration", what));
    }
    return false;
}

void
Runtime::assertDead(Object *obj)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-dead"))
        return;
    engine_.assertDead(obj);
}

void
Runtime::startRegion(MutatorContext *mutator, std::string label)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("start-region"))
        return;
    engine_.startRegion(mutator ? *mutator : mutators_.main(),
                        std::move(label));
}

void
Runtime::assertAllDead(MutatorContext *mutator)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-alldead"))
        return;
    engine_.assertAllDead(mutator ? *mutator : mutators_.main());
}

void
Runtime::assertInstances(TypeId type, uint64_t limit)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-instances"))
        return;
    engine_.assertInstances(type, limit);
}

void
Runtime::assertVolume(TypeId type, uint64_t bytes)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-volume"))
        return;
    engine_.assertVolume(type, bytes);
}

void
Runtime::assertUnshared(Object *obj)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-unshared"))
        return;
    engine_.assertUnshared(obj);
}

void
Runtime::assertOwnedBy(Object *owner, Object *ownee)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    if (!checkInfraEnabled("assert-ownedby"))
        return;
    engine_.assertOwnedBy(owner, ownee);
}

void
Runtime::addRoot(RootNode &node, Object *obj, const char *name)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    roots_.add(node, obj, name);
}

void
Runtime::removeRoot(RootNode &node)
{
    std::lock_guard<std::shared_mutex> guard(lock_);
    roots_.remove(node);
}

} // namespace gcassert
