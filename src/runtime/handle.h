/**
 * @file
 * Rooted object handles.
 *
 * A Handle models a local variable of a managed program: while the
 * Handle is alive, the object it references is a GC root. Handles
 * are cheap to create and destroy (intrusive-list registration, no
 * allocation) so they can be used for ordinary locals in workloads.
 */

#ifndef GCASSERT_RUNTIME_HANDLE_H
#define GCASSERT_RUNTIME_HANDLE_H

#include "gc/roots.h"
#include "heap/object.h"

namespace gcassert {

class Runtime;

/**
 * RAII GC root.
 */
class Handle {
  public:
    /** Null handle: roots nothing. */
    Handle() = default;

    /**
     * Root @p obj (which may be nullptr) in @p runtime.
     *
     * @param name Static label shown as the path origin in
     *             violation reports.
     */
    Handle(Runtime &runtime, Object *obj, const char *name = "handle");

    Handle(const Handle &other);
    Handle &operator=(const Handle &other);
    Handle(Handle &&other) noexcept;
    Handle &operator=(Handle &&other) noexcept;
    ~Handle();

    /** The referenced object (nullptr for a null handle). */
    Object *get() const { return node_.get(); }

    Object *operator->() const { return node_.get(); }
    Object &operator*() const { return *node_.get(); }
    explicit operator bool() const { return node_.get() != nullptr; }

    /** Retarget the root at @p obj. @pre not a null handle. */
    void set(Object *obj);

    /** Drop the registration; becomes a null handle. */
    void reset();

    /** Owning runtime (nullptr for a null handle). */
    Runtime *runtime() const { return runtime_; }

  private:
    /** Runtime::alloc fills a default handle under its own lock so
     *  allocation and rooting are atomic for concurrent mutators. */
    friend class Runtime;

    Runtime *runtime_ = nullptr;
    RootNode node_;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_HANDLE_H
