#include "assertions/assertion_table.h"

#include "support/strutil.h"

namespace gcassert {

std::string
AssertionStats::toString() const
{
    std::string out;
    auto line = [&](const char *label, uint64_t value) {
        out += format("%s %llu\n", padRight(label, 28).c_str(),
                      static_cast<unsigned long long>(value));
    };
    line("assert-dead calls:", assertDeadCalls);
    line("start-region calls:", startRegionCalls);
    line("assert-alldead calls:", assertAllDeadCalls);
    line("region objects flushed:", regionObjectsFlushed);
    line("assert-instances calls:", assertInstancesCalls);
    line("assert-volume calls:", assertVolumeCalls);
    line("assert-unshared calls:", assertUnsharedCalls);
    line("assert-ownedby calls:", assertOwnedByCalls);
    line("violations reported:", violationsReported);
    line("dead asserts satisfied:", deadAssertsSatisfied);
    line("ownee asserts satisfied:", owneeAssertsSatisfied);
    if (dirtyOwnersAtGc > 0 || dirtyUnsharedAtGc > 0) {
        line("dirty owners consumed:", dirtyOwnersAtGc);
        line("dirty unshared consumed:", dirtyUnsharedAtGc);
    }
    if (cacheHits > 0 || cacheInvalidations > 0) {
        line("region cache hits:", cacheHits);
        line("region cache invalidations:", cacheInvalidations);
    }
    return out;
}

} // namespace gcassert
