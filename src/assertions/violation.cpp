#include "assertions/violation.h"

#include <cinttypes>
#include <cstdio>

#include "support/json.h"
#include "support/strutil.h"

namespace gcassert {

const char *
assertionKindName(AssertionKind kind)
{
    switch (kind) {
      case AssertionKind::Dead: return "assert-dead";
      case AssertionKind::AllDead: return "assert-alldead";
      case AssertionKind::Instances: return "assert-instances";
      case AssertionKind::Volume: return "assert-volume";
      case AssertionKind::Unshared: return "assert-unshared";
      case AssertionKind::OwnedBy: return "assert-ownedby";
      case AssertionKind::OwnershipMisuse: return "ownership-misuse";
      case AssertionKind::PauseSlo: return "pause-slo";
      case AssertionKind::LeakGrowth: return "leak-growth";
      case AssertionKind::Staleness: return "staleness";
      case AssertionKind::TypeGrowth: return "type-growth";
    }
    return "?";
}

bool
assertionKindContextOnly(AssertionKind kind)
{
    switch (kind) {
      case AssertionKind::PauseSlo:
      case AssertionKind::LeakGrowth:
      case AssertionKind::Staleness:
      case AssertionKind::TypeGrowth:
        return true;
      default:
        return false;
    }
}

std::string
Violation::toString() const
{
    std::string out = "Warning: " + message + "\n";
    if (!offendingType.empty())
        out += "Type: " + offendingType + "\n";
    if (!path.empty()) {
        out += "Path to object:\n";
        if (!rootName.empty())
            out += "(root) " + rootName + " ->\n";
        std::vector<std::string> hops;
        hops.reserve(path.size());
        for (const auto &entry : path)
            hops.push_back(entry.typeName);
        out += join(hops, " ->\n") + "\n";
    }
    return out;
}

namespace {

std::string
addressString(const void *p)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR,
                  reinterpret_cast<uintptr_t>(p));
    return buf;
}

} // namespace

std::string
Violation::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("kind", assertionKindName(kind))
        .field("message", message)
        .field("type", offendingType)
        .field("root", rootName)
        .field("gc", gcNumber);
    if (offendingAddress)
        w.field("address", addressString(offendingAddress));
    w.key("path").beginArray();
    for (const PathEntry &entry : path) {
        w.beginObject()
            .field("type", entry.typeName)
            .field("address", addressString(entry.address))
            .endObject();
    }
    w.endArray();
    if (!provenanceJson.empty())
        w.key("provenance").valueRaw(provenanceJson);
    w.endObject();
    return w.str();
}

} // namespace gcassert
