#include "assertions/incremental.h"

#include "gc/remset.h"
#include "heap/heap.h"

namespace gcassert {

IncrementalAssertCache::IncrementalAssertCache(Heap &heap,
                                               TypeRegistry &types)
    : heap_(heap), types_(types)
{
}

void
IncrementalAssertCache::onTypeTracked(TypeId id)
{
    if (table_.columnOf(id) >= 0)
        return; // already tallied; re-tracking reuses the column
    int column = table_.ensureColumn(id);
    if (column < 0) {
        overflow_ = true;
        return;
    }
    // Instances allocated before tracking began: tally them once.
    // The walk runs under the runtime's exclusive lock, so no
    // allocation races it.
    heap_.forEachObject([&](Object *obj) {
        if (obj->typeId() == id)
            table_.noteBaseline(obj, column);
    });
}

void
IncrementalAssertCache::noteUnsharedAsserted(const Object *obj)
{
    table_.noteUnsharedTracked(obj, +1);
}

void
IncrementalAssertCache::noteOwneePair(const Object *owner,
                                      const Object *ownee)
{
    // The owner's region gains an ownership-subgraph edge; the
    // ownee's region gains a tracked ownee.
    table_.noteMutation(owner);
    table_.noteOwneeTracked(ownee, +1);
}

void
IncrementalAssertCache::noteFreed(const Object *obj)
{
    table_.noteFree(obj);
    if (obj->testFlag(kUnsharedBit))
        table_.noteUnsharedTracked(obj, -1);
    if (obj->testFlag(kOwneeBit))
        table_.noteOwneeTracked(obj, -1);
}

void
IncrementalAssertCache::consumeCards(const RememberedSet &remset)
{
    remset.forEachCard([&](uintptr_t card) {
        table_.noteMutation(
            reinterpret_cast<const void *>(card << kCardShift));
    });
}

IncrementalAssertCache::RecheckStats
IncrementalAssertCache::mergeAndSync()
{
    RegionSummaryTable::MergeOutcome merged = table_.merge();

    for (TypeId id : types_.trackedTypes()) {
        int column = table_.columnOf(id);
        if (column < 0)
            continue; // overflowed: handled by the walk below
        types_.bumpInstanceCountBy(id, table_.totalCount(column),
                                   table_.totalBytes(column));
    }

    if (overflow_) {
        const std::vector<uint8_t> &tracked = types_.trackedFlags();
        heap_.forEachObject([&](Object *obj) {
            TypeId id = obj->typeId();
            if (id < tracked.size() && tracked[id] &&
                table_.columnOf(id) < 0)
                types_.bumpInstanceCount(id, obj->sizeBytes());
        });
    }

    RecheckStats stats;
    stats.hits = merged.hits;
    stats.invalidations = merged.invalidations;
    return stats;
}

} // namespace gcassert
