/**
 * @file
 * Assertion-violation records.
 *
 * When the collector detects a violated assertion it produces a
 * Violation carrying the assertion kind, a message, and — for
 * violations detected during tracing — the complete path through the
 * heap from a root to the offending object, exactly as in the
 * paper's Figure 1.
 */

#ifndef GCASSERT_ASSERTIONS_VIOLATION_H
#define GCASSERT_ASSERTIONS_VIOLATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {

/** The assertion kinds the system supports. */
enum class AssertionKind {
    /** assert-dead: object should have been reclaimed. */
    Dead,
    /** assert-alldead: region allocation should have been reclaimed. */
    AllDead,
    /** assert-instances: too many live instances of a type. */
    Instances,
    /** assert-volume: live instances of a type exceed a byte budget. */
    Volume,
    /** assert-unshared: more than one incoming pointer. */
    Unshared,
    /** assert-ownedby: ownee not reachable through its owner. */
    OwnedBy,
    /**
     * Improper use of assert-ownedby detected at check time (owner
     * regions overlap), reported as a warning per section 2.5.2.
     */
    OwnershipMisuse,
    /**
     * A stop-the-world pause exceeded the configured SLO budget
     * (GCASSERT_PAUSE_BUDGET_US). Context-only: reported through the
     * same funnel for provenance, never forced or part of any
     * assertion verdict.
     */
    PauseSlo,
    /**
     * Backgraph growing-leak / find-leak report: an allocation
     * site's root-path height or survivor count grew monotonically
     * across the configured window of full collections. Context-only
     * (detectors/backgraph), never part of any assertion verdict.
     */
    LeakGrowth,
    /**
     * Staleness-detector report: an object went unread for the
     * configured number of collections (detectors/staleness),
     * funneled through the engine for provenance. Context-only.
     */
    Staleness,
    /**
     * Cork-style type-growth report: a type's live volume grew
     * across the sampling window (detectors/cork). Context-only.
     */
    TypeGrowth,
};

/** Short name for an assertion kind ("assert-dead" etc.). */
const char *assertionKindName(AssertionKind kind);

/**
 * True for the context-only report kinds (PauseSlo, LeakGrowth,
 * Staleness, TypeGrowth): findings routed through the violation
 * funnel for provenance that are never part of any assertion
 * verdict. Differential harnesses and exact verdict counts exclude
 * them.
 */
bool assertionKindContextOnly(AssertionKind kind);

/** One hop of a heap path in a report. */
struct PathEntry {
    /** Type name of the object at this hop. */
    std::string typeName;
    /** Object address (stable: the heap is non-moving). */
    const void *address = nullptr;
};

/**
 * A reported assertion violation.
 */
struct Violation {
    AssertionKind kind = AssertionKind::Dead;

    /** Human-readable description of what went wrong. */
    std::string message;

    /** Type name of the offending object ("" when not applicable). */
    std::string offendingType;

    /** Root or owner the path starts from ("" when no path). */
    std::string rootName;

    /** Root-to-object path; empty when unavailable (e.g. instances). */
    std::vector<PathEntry> path;

    /** Collection number (1-based) in which this was detected. */
    uint64_t gcNumber = 0;

    /**
     * Address of the offending object (stable: the heap is
     * non-moving), nullptr for type-level violations
     * (instances/volume) where no single object offends.
     */
    const void *offendingAddress = nullptr;

    /**
     * Provenance context attached by the telemetry layer's violation
     * observer (heap snapshot, region/nursery info, top census rows)
     * as a verbatim JSON object; empty when telemetry is off.
     */
    std::string provenanceJson;

    /**
     * Render in the style of the paper's Figure 1:
     *
     *   Warning: an object that was asserted dead is reachable.
     *   Type: Order
     *   Path to object:
     *   Company -> Object[] -> ... -> Order
     */
    std::string toString() const;

    /**
     * Full machine-readable report: kind, message, type, root, path,
     * GC number, offending address, and the provenance object when
     * present — all through the shared JSON writer.
     */
    std::string toJson() const;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_VIOLATION_H
