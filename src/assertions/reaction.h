/**
 * @file
 * Reaction policies for triggered assertions (paper section 2.6).
 *
 * The paper's system logs and continues; it names two other options
 * as future work — log-and-halt and *forcing the assertion true*
 * (nulling the references that keep a dead-asserted object alive).
 * This module implements all three, plus the programmatic
 * violation-handler interface also suggested in section 2.6.
 */

#ifndef GCASSERT_ASSERTIONS_REACTION_H
#define GCASSERT_ASSERTIONS_REACTION_H

#include <functional>
#include <vector>

#include "assertions/violation.h"

namespace gcassert {

/** What the runtime does when an assertion triggers. */
enum class Reaction {
    /** Log the violation and keep running (paper default). */
    LogContinue,
    /** Log and raise FatalError (non-recoverable violations). */
    LogHalt,
    /**
     * Make the assertion true: for lifetime assertions, null every
     * incoming reference so the object is reclaimed in this very
     * collection. Ignored (treated as LogContinue) for assertion
     * kinds that cannot be forced.
     */
    ForceTrue,
};

/** Callback invoked on every reported violation. */
using ViolationHandler = std::function<void(const Violation &)>;

/**
 * Per-kind reaction configuration plus user handlers.
 */
class ReactionPolicy {
  public:
    ReactionPolicy();

    /** Reaction for @p kind. */
    Reaction forKind(AssertionKind kind) const;

    /** Set the reaction for one kind. */
    void set(AssertionKind kind, Reaction reaction);

    /** Set the same reaction for every kind. */
    void setAll(Reaction reaction);

    /** Register a handler; handlers run on every violation. */
    void addHandler(ViolationHandler handler);

    /** Invoke all registered handlers. */
    void notify(const Violation &violation) const;

    /** @return true if ForceTrue is meaningful for @p kind. */
    static bool forcible(AssertionKind kind);

  private:
    static constexpr size_t kNumKinds = 8;
    Reaction reactions_[kNumKinds];
    std::vector<ViolationHandler> handlers_;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_REACTION_H
