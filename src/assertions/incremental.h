/**
 * @file
 * Property-cached incremental assertion rechecks (the Stulova-style
 * "cache verdicts, invalidate on mutation" optimisation applied to
 * the paper's GC assertions).
 *
 * The cache sits between three layers:
 *
 *  - the heap, which notes every allocation and nursery promotion
 *    into the RegionSummaryTable it is handed (heap/region_summary.h
 *    holds the per-region tallies and dirty flags);
 *  - the write barrier / remembered set, whose dirty-card stream the
 *    collector feeds to consumeCards() in each GC prologue (the
 *    second consumer of the card stream, beside the nursery);
 *  - the assertion engine, which routes frees, assert registrations
 *    and barrier dirtying here, and asks mergeAndSync() at the end
 *    of each full collection for exact live tallies of every tracked
 *    type, recomputed only for dirty regions.
 *
 * Verdict identity: the merged totals are maintained as exact
 * alloc/free counters, and an object is freed exactly when the trace
 * failed to mark it — so "post-sweep live instances" equals "marked
 * instances", the quantity the non-incremental mark loop tallies.
 * Dirtiness decides how much re-snapshot work the merge performs,
 * never what the totals are. assert-unshared in-degree bits and
 * assert-ownedby ownee counts are maintained as per-region summaries
 * for invalidation accounting and introspection; their verdicts stay
 * trace-authoritative (the ownership phase scans every owner, and
 * the trace re-checks every unshared object it re-encounters), so
 * arming the cache cannot change them either.
 */

#ifndef GCASSERT_ASSERTIONS_INCREMENTAL_H
#define GCASSERT_ASSERTIONS_INCREMENTAL_H

#include <cstdint>

#include "heap/region_summary.h"
#include "types/type_registry.h"

namespace gcassert {

class Heap;
class RememberedSet;

class IncrementalAssertCache {
  public:
    IncrementalAssertCache(Heap &heap, TypeRegistry &types);

    IncrementalAssertCache(const IncrementalAssertCache &) = delete;
    IncrementalAssertCache &
    operator=(const IncrementalAssertCache &) = delete;

    /** The region table the heap's allocation paths feed. */
    RegionSummaryTable &table() { return table_; }
    const RegionSummaryTable &table() const { return table_; }

    /** @name Engine-side hooks (runtime exclusive lock)
     *  @{ */

    /**
     * A type gained an assert-instances / assert-volume limit: assign
     * it a column and, if the column is new, tally the instances that
     * were allocated before tracking began with one heap walk. Types
     * beyond the column budget are remembered as overflowed; their
     * verdict tallies come from a full walk at merge time.
     */
    void onTypeTracked(TypeId id);

    /** assert-unshared registered on @p obj. */
    void noteUnsharedAsserted(const Object *obj);

    /** assert-ownedby pair registered. */
    void noteOwneePair(const Object *owner, const Object *ownee);

    /** Barrier dirtying (owner or unshared target written). */
    void noteMutated(const Object *obj) { table_.noteMutation(obj); }

    /** Sweep / minor-collection free (routed via the engine). */
    void noteFreed(const Object *obj);

    /** @} */

    /** @name Collector-side hooks (stopped world)
     *  @{ */

    /**
     * Consume the remembered set's dirty-card stream: every marked
     * card dirties its 64 KiB region and sets the region's in-degree
     * bit for the card's 1 KiB sub-window. Must run before the
     * collector clears the set.
     */
    void consumeCards(const RememberedSet &remset);

    struct RecheckStats {
        uint64_t hits = 0;
        uint64_t invalidations = 0;
    };

    /**
     * End-of-full-GC merge: re-snapshot dirty regions, then push the
     * merged per-type totals into the TypeRegistry's per-GC tallies
     * (the ones onGcStart reset and the skipped mark-phase tallies
     * left at zero), walking the heap once only if some tracked type
     * overflowed the column budget.
     */
    RecheckStats mergeAndSync();

    /** @} */

    /** True once any tracked type failed to win a column. */
    bool sawOverflow() const { return overflow_; }

  private:
    Heap &heap_;
    TypeRegistry &types_;
    RegionSummaryTable table_;
    bool overflow_ = false;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_INCREMENTAL_H
