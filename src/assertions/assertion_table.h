/**
 * @file
 * Assertion bookkeeping counters.
 *
 * The per-object assertion state lives in object-header spare bits
 * and the ownership table; what remains to track centrally is call
 * counts and per-GC activity, which the paper quotes in its
 * evaluation (e.g. "695 calls to assert-dead and 15,553 calls to
 * assert-ownedBy", "15,274 ownee objects checked per GC").
 */

#ifndef GCASSERT_ASSERTIONS_ASSERTION_TABLE_H
#define GCASSERT_ASSERTIONS_ASSERTION_TABLE_H

#include <cstdint>
#include <string>

namespace gcassert {

/**
 * Cumulative assertion-activity counters.
 */
struct AssertionStats {
    uint64_t assertDeadCalls = 0;
    uint64_t startRegionCalls = 0;
    uint64_t assertAllDeadCalls = 0;
    uint64_t regionObjectsFlushed = 0;
    uint64_t assertInstancesCalls = 0;
    uint64_t assertVolumeCalls = 0;
    uint64_t assertUnsharedCalls = 0;
    uint64_t assertOwnedByCalls = 0;

    /** Violations reported, by kind-independent total. */
    uint64_t violationsReported = 0;

    /** Dead-asserted objects that were (correctly) reclaimed. */
    uint64_t deadAssertsSatisfied = 0;

    /** Ownee assertions satisfied (ownee died before its owner). */
    uint64_t owneeAssertsSatisfied = 0;

    /** @name Barrier-fed incremental re-checking
     *  @{ */

    /** Mutated owners consumed from the dirty set at full GCs. */
    uint64_t dirtyOwnersAtGc = 0;

    /** Newly referenced assert-unshared objects consumed at full GCs. */
    uint64_t dirtyUnsharedAtGc = 0;

    /** @} */

    /** @name Property-cached incremental rechecks
     *  @{ */

    /** Clean regions whose cached summary was merged as-is. */
    uint64_t cacheHits = 0;

    /** Dirty regions re-snapshotted at full GCs. */
    uint64_t cacheInvalidations = 0;

    /** @} */

    /** Multi-line human-readable dump. */
    std::string toString() const;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_ASSERTION_TABLE_H
