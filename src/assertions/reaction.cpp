#include "assertions/reaction.h"

#include "support/logging.h"

namespace gcassert {

ReactionPolicy::ReactionPolicy()
{
    setAll(Reaction::LogContinue);
}

Reaction
ReactionPolicy::forKind(AssertionKind kind) const
{
    return reactions_[static_cast<size_t>(kind)];
}

void
ReactionPolicy::set(AssertionKind kind, Reaction reaction)
{
    if (reaction == Reaction::ForceTrue && !forcible(kind))
        fatal(std::string("ForceTrue is not supported for ") +
              assertionKindName(kind));
    reactions_[static_cast<size_t>(kind)] = reaction;
}

void
ReactionPolicy::setAll(Reaction reaction)
{
    for (size_t i = 0; i < kNumKinds; ++i) {
        auto kind = static_cast<AssertionKind>(i);
        if (reaction == Reaction::ForceTrue && !forcible(kind))
            reactions_[i] = Reaction::LogContinue;
        else
            reactions_[i] = reaction;
    }
}

void
ReactionPolicy::addHandler(ViolationHandler handler)
{
    handlers_.push_back(std::move(handler));
}

void
ReactionPolicy::notify(const Violation &violation) const
{
    for (const auto &handler : handlers_)
        handler(violation);
}

bool
ReactionPolicy::forcible(AssertionKind kind)
{
    // Only lifetime assertions can be forced by nulling incoming
    // references (paper section 2.6).
    return kind == AssertionKind::Dead || kind == AssertionKind::AllDead;
}

} // namespace gcassert
