/**
 * @file
 * Owner/ownee bookkeeping for assert-ownedby (paper section 2.5.2).
 *
 * The metadata is a pair of parallel arrays — owners, and one sorted
 * array of ownees per owner — giving one word per owner or ownee, as
 * in the paper. Ownee membership tests are binary searches by
 * address (the heap is non-moving, so addresses are stable keys).
 */

#ifndef GCASSERT_ASSERTIONS_OWNERSHIP_H
#define GCASSERT_ASSERTIONS_OWNERSHIP_H

#include <cstddef>
#include <functional>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/**
 * The owner/ownee pair table.
 */
class OwnershipTable {
  public:
    /**
     * Register an owner/ownee pair. Sets the kOwnerBit/kOwneeBit
     * header flags so the trace loop can test membership in O(1)
     * before doing any binary search. Duplicate pairs are ignored.
     *
     * @pre owner != ownee, both non-null.
     */
    void addPair(Object *owner, Object *ownee);

    /** @return true when no pairs are registered. */
    bool empty() const { return owners_.empty(); }

    size_t ownerCount() const { return owners_.size(); }

    /** Total ownees across all owners. */
    size_t owneeCount() const;

    /** @return true if @p ownee is registered under @p owner. */
    bool isOwneeOf(const Object *owner, const Object *ownee) const;

    /**
     * Header tag value (owner index + 1) for @p owner, or 0 if the
     * owner is not registered. The ownership scan compares this
     * against Object::ownerTag() for an O(1) membership test.
     */
    uint32_t ownerTagOf(const Object *owner) const;

    /**
     * Find the owner @p ownee is registered under.
     * @return The owner, or nullptr if @p ownee is not registered
     *         (possible when its kOwneeBit is stale).
     */
    Object *ownerOf(const Object *ownee) const;

    /** Visit each owner with its sorted ownee array. */
    void forEachOwner(
        const std::function<void(Object *, const std::vector<Object *> &)>
            &visit) const;

    /** Result of the post-trace prune. */
    struct PruneResult {
        /** Live ownees whose owner died in this collection. */
        std::vector<Object *> orphanedOwnees;
        /** Ownees removed because they died (assertions satisfied). */
        size_t deadOwnees = 0;
        /** Owners removed because they died. */
        size_t deadOwners = 0;
    };

    /**
     * Post-trace maintenance (run before sweep, while mark bits are
     * valid): drop dead ownees, and drop owners that are about to be
     * reclaimed, returning their surviving ownees so the engine can
     * flag them as having outlived their owner.
     */
    PruneResult prune();

    /** Remove every pair (used on engine reset). */
    void clear();

  private:
    size_t indexOfOwner(const Object *owner) const;

    /**
     * Sort (and deduplicate) the per-owner arrays if registrations
     * arrived since the last sort. Registration appends in O(1);
     * lookups amortize one O(n log n) sort per batch.
     */
    void ensureSorted() const;

    std::vector<Object *> owners_;
    /** Sorted ascending by address whenever dirty_ is false. */
    mutable std::vector<std::vector<Object *>> ownees_;
    mutable bool dirty_ = false;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_OWNERSHIP_H
