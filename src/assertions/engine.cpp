#include "assertions/engine.h"

#include <algorithm>

#include "assertions/incremental.h"
#include "observe/assert_cost.h"
#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

namespace {

/**
 * Rank kinds by the sequential trace's per-object checking order
 * (p2Visit: ownee check, then dead check, then unshared on
 * re-encounter), so same-object dedup keeps the violation the
 * sequential collector would have reported.
 */
int
kindRank(AssertionKind kind)
{
    switch (kind) {
    case AssertionKind::OwnedBy: return 0;
    case AssertionKind::OwnershipMisuse: return 1;
    case AssertionKind::AllDead: return 2;
    case AssertionKind::Dead: return 3;
    case AssertionKind::Unshared: return 4;
    default: return 5;
    }
}

} // namespace

AssertionEngine::AssertionEngine(TypeRegistry &types,
                                 MutatorRegistry &mutators,
                                 EngineOptions options)
    : types_(types), mutators_(mutators), options_(options)
{
}

void
AssertionEngine::assertDead(Object *obj)
{
    if (!obj)
        fatal("assert-dead called on null");
    obj->setFlag(kDeadBit);
    ++stats_.assertDeadCalls;
}

void
AssertionEngine::startRegion(MutatorContext &mutator, std::string label)
{
    if (mutator.inRegion())
        fatal(format("start-region: mutator '%s' is already in a region",
                     mutator.name().c_str()));
    mutator.setInRegion(true);
    mutator.regionLabel_ = std::move(label);
    ++stats_.startRegionCalls;
}

void
AssertionEngine::assertAllDead(MutatorContext &mutator)
{
    if (!mutator.inRegion())
        fatal(format("assert-alldead: mutator '%s' has no active region",
                     mutator.name().c_str()));
    mutator.setInRegion(false);
    std::vector<Object *> queue = mutator.takeRegionQueue();
    // Flushing the queue reuses assert-dead's mechanism: one header
    // bit per object, no extra metadata survives the flush. The
    // kRegionBit is retained so a violation is attributed to
    // assert-alldead rather than assert-dead.
    for (Object *obj : queue)
        obj->setFlag(kDeadBit);
    // Labeled regions additionally remember which region each
    // flushed object came from, so a violation can name it. The map
    // only grows until the next full trace consumes every verdict.
    if (!mutator.regionLabel_.empty()) {
        for (Object *obj : queue)
            regionLabels_[obj] = mutator.regionLabel_;
        mutator.regionLabel_.clear();
    }
    stats_.regionObjectsFlushed += queue.size();
    ++stats_.assertAllDeadCalls;
}

void
AssertionEngine::assertInstances(TypeId type, uint64_t limit)
{
    types_.trackInstances(type, limit);
    if (incremental_)
        incremental_->onTypeTracked(type);
    ++stats_.assertInstancesCalls;
}

void
AssertionEngine::assertVolume(TypeId type, uint64_t bytes)
{
    types_.trackVolume(type, bytes);
    if (incremental_)
        incremental_->onTypeTracked(type);
    ++stats_.assertVolumeCalls;
}

void
AssertionEngine::assertUnshared(Object *obj)
{
    if (!obj)
        fatal("assert-unshared called on null");
    // Region bookkeeping counts objects whose kUnsharedBit is set, so
    // only a first-time assertion bumps the tally.
    bool newly_tracked = !obj->testFlag(kUnsharedBit);
    obj->setFlag(kUnsharedBit);
    if (incremental_ && newly_tracked)
        incremental_->noteUnsharedAsserted(obj);
    ++stats_.assertUnsharedCalls;
}

void
AssertionEngine::assertOwnedBy(Object *owner, Object *ownee)
{
    // Same first-time gate as assert-unshared: duplicate pairs are
    // ignored by the table, and the region tally mirrors kOwneeBit.
    bool newly_tracked = ownee && !ownee->testFlag(kOwneeBit);
    ownership_.addPair(owner, ownee);
    if (incremental_ && newly_tracked)
        incremental_->noteOwneePair(owner, ownee);
    ++stats_.assertOwnedByCalls;
}

void
AssertionEngine::onGcStart(uint64_t gc_number)
{
    gcNumber_ = gc_number;
    reportedThisGc_.clear();
    types_.resetInstanceCounts();
    // Clear per-GC ownership scan state.
    ownership_.forEachOwner(
        [](Object *owner, const std::vector<Object *> &ownees) {
            owner->clearFlag(kOwnerScanBit);
            for (Object *ownee : ownees)
                ownee->clearFlag(kOwnedBit);
        });
}

void
AssertionEngine::checkTrackedTypeLimits()
{
    for (TypeId id : types_.trackedTypes()) {
        const TypeDescriptor &desc = types_.get(id);
        if (desc.instanceCount() > desc.instanceLimit()) {
            Violation v;
            v.kind = AssertionKind::Instances;
            v.offendingType = desc.name();
            v.gcNumber = gcNumber_;
            v.message = format(
                "%llu instances of %s are live; the limit is "
                "%llu.",
                static_cast<unsigned long long>(
                    desc.instanceCount()),
                desc.name().c_str(),
                static_cast<unsigned long long>(
                    desc.instanceLimit()));
            report(std::move(v));
        }
        if (desc.volumeBytes() > desc.volumeLimit()) {
            Violation v;
            v.kind = AssertionKind::Volume;
            v.offendingType = desc.name();
            v.gcNumber = gcNumber_;
            v.message = format(
                "live %s instances total %llu bytes; the budget "
                "is %llu bytes.",
                desc.name().c_str(),
                static_cast<unsigned long long>(
                    desc.volumeBytes()),
                static_cast<unsigned long long>(
                    desc.volumeLimit()));
            report(std::move(v));
        }
    }
}

void
AssertionEngine::onTraceDone(AssertCostTallies *cost)
{
    // Instance- and volume-limit checks (paper: "at the end of GC,
    // we iterate through our list of tracked types"). In incremental
    // mode the tallies are not ready until the sweep has run the free
    // hooks, so the identical loop runs from onPostSweep instead —
    // nothing reports violations in between, so the per-GC violation
    // stream is unchanged.
    if (!incremental_) {
        CostScope scope(cost, AssertCostKind::Instances);
        checkTrackedTypeLimits();
    }

    // Region queues: drop entries that died in this collection so
    // the queues never hold dangling pointers. Region labels are all
    // consumed by now — every flushed object was either reported
    // during this trace or is about to be swept — so the map resets
    // before lazy sweeping can recycle any of its addresses.
    {
        CostScope scope(cost, AssertCostKind::AllDead);
        mutators_.forEach(
            [](MutatorContext &mutator) { mutator.pruneRegionQueue(); });
        regionLabels_.clear();
    }

    // Ownership table: drop satisfied pairs; convert ownees that
    // survived a reclaimed owner into orphan dead-assertions. They
    // may be live only because the ownership phase itself traced
    // them, so the verdict is deferred: if the *next* collection
    // still finds them reachable (now necessarily from real roots),
    // the dead check reports them as assert-ownedby violations with
    // a full path; if they die, the assertion was satisfied.
    {
        CostScope scope(cost, AssertCostKind::OwnedBy);
        OwnershipTable::PruneResult pruned = ownership_.prune();
        stats_.owneeAssertsSatisfied += pruned.deadOwnees;
        if (options_.orphanedOwneeIsViolation) {
            for (Object *ownee : pruned.orphanedOwnees) {
                ownee->setFlag(kDeadBit);
                ownee->setFlag(kOrphanBit);
            }
        }

        // Consume the owner half of the barrier-fed dirty sets: this
        // trace has re-checked everything they pointed at, so the
        // latches reset and the next mutator window starts clean.
        // Entries are still valid here — the sweep has not run, and
        // the minor GC pins dirty objects.
        stats_.dirtyOwnersAtGc += dirtyOwners_.size();
        for (Object *owner : dirtyOwners_)
            owner->clearFlagsAtomic(kWriteDirtyBit);
        dirtyOwners_.clear();
    }

    // And the unshared half, under its own attribution bucket.
    {
        CostScope scope(cost, AssertCostKind::Unshared);
        stats_.dirtyUnsharedAtGc += dirtyUnshared_.size();
        for (Object *obj : dirtyUnshared_)
            obj->clearFlagsAtomic(kWriteDirtyBit);
        dirtyUnshared_.clear();
    }
}

void
AssertionEngine::onPostSweep(AssertCostTallies *cost)
{
    if (!incremental_)
        return;
    CostScope scope(cost, AssertCostKind::Instances);
    IncrementalAssertCache::RecheckStats merged =
        incremental_->mergeAndSync();
    stats_.cacheHits += merged.hits;
    stats_.cacheInvalidations += merged.invalidations;
    checkTrackedTypeLimits();
}

void
AssertionEngine::noteOwnerMutated(Object *owner)
{
    dirtyOwners_.push_back(owner);
    if (incremental_)
        incremental_->noteMutated(owner);
}

void
AssertionEngine::noteUnsharedTargetMutated(Object *obj)
{
    dirtyUnshared_.push_back(obj);
    if (incremental_)
        incremental_->noteMutated(obj);
}

void
AssertionEngine::onObjectFreed(Object *obj)
{
    if (incremental_)
        incremental_->noteFreed(obj);
    if (obj->testFlag(kOrphanBit))
        ++stats_.owneeAssertsSatisfied;
    else if (obj->testFlag(kDeadBit))
        ++stats_.deadAssertsSatisfied;
}

void
AssertionEngine::report(Violation violation)
{
    ++stats_.violationsReported;
    Reaction reaction = reactions_.forKind(violation.kind);
    // Enrich before recording so the stored violation carries the
    // provenance; the observer adds context only, never verdicts.
    if (violationObserver_)
        violationObserver_(violation);
    violations_.push_back(violation);
    warn(violation.toString());
    reactions_.notify(violations_.back());
    if (reaction == Reaction::LogHalt)
        fatal(std::string("halting on ") +
              assertionKindName(violation.kind) + " violation: " +
              violation.message);
}

bool
AssertionEngine::alreadyReported(const Object *obj)
{
    return !reportedThisGc_.insert(obj).second;
}

void
AssertionEngine::reportPending(std::vector<PendingViolation> pending)
{
    std::sort(pending.begin(), pending.end(),
              [](const PendingViolation &a, const PendingViolation &b) {
                  if (a.obj != b.obj)
                      return a.obj < b.obj;
                  return kindRank(a.kind) < kindRank(b.kind);
              });
    for (PendingViolation &pv : pending) {
        if (alreadyReported(pv.obj))
            continue;
        Violation v;
        v.kind = pv.kind;
        v.offendingType = typeNameOf(pv.obj);
        v.offendingAddress = pv.obj;
        v.gcNumber = gcNumber_;
        v.message = std::move(pv.message);
        report(std::move(v));
    }
}

std::string
AssertionEngine::typeNameOf(const Object *obj) const
{
    return types_.get(obj->typeId()).name();
}

} // namespace gcassert
