#include "assertions/ownership.h"

#include <algorithm>

#include "support/logging.h"

namespace gcassert {

namespace {

/** Sorted lookup by address. @pre sorted ascending. */
bool
containsSorted(const std::vector<Object *> &sorted, const Object *obj)
{
    auto it = std::lower_bound(sorted.begin(), sorted.end(), obj,
                               [](const Object *a, const Object *b) {
                                   return a < b;
                               });
    return it != sorted.end() && *it == obj;
}

} // namespace

void
OwnershipTable::addPair(Object *owner, Object *ownee)
{
    if (!owner || !ownee)
        fatal("assert-ownedby requires non-null owner and ownee");
    if (owner == ownee)
        fatal("assert-ownedby: an object cannot own itself");

    size_t idx = indexOfOwner(owner);
    if (idx == owners_.size()) {
        if (owners_.size() + 1 > kMaxOwnerTag)
            fatal("assert-ownedby: too many distinct owners");
        owners_.push_back(owner);
        ownees_.emplace_back();
        owner->setFlag(kOwnerBit);
    }
    // Registration is append-only: the per-owner arrays are sorted
    // lazily (once per GC or query batch), so the mutator-side cost
    // of assert-ownedby stays O(1) no matter how large the
    // container is. Duplicates are folded in by the sort.
    ownees_[idx].push_back(ownee);
    ownee->setFlag(kOwneeBit);
    // The header tag is the O(1) belongs-to-this-owner test used by
    // the ownership scan. Re-registration under another owner
    // retargets the tag (owner regions must be disjoint anyway).
    ownee->setOwnerTag(static_cast<uint32_t>(idx) + 1);
    dirty_ = true;
}

void
OwnershipTable::ensureSorted() const
{
    if (!dirty_)
        return;
    for (auto &list : ownees_) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    dirty_ = false;
}

size_t
OwnershipTable::owneeCount() const
{
    ensureSorted();
    size_t total = 0;
    for (const auto &list : ownees_)
        total += list.size();
    return total;
}

size_t
OwnershipTable::indexOfOwner(const Object *owner) const
{
    for (size_t i = 0; i < owners_.size(); ++i)
        if (owners_[i] == owner)
            return i;
    return owners_.size();
}

bool
OwnershipTable::isOwneeOf(const Object *owner, const Object *ownee) const
{
    ensureSorted();
    size_t idx = indexOfOwner(owner);
    if (idx == owners_.size())
        return false;
    return containsSorted(ownees_[idx], ownee);
}

uint32_t
OwnershipTable::ownerTagOf(const Object *owner) const
{
    size_t idx = indexOfOwner(owner);
    return idx == owners_.size() ? 0 : static_cast<uint32_t>(idx) + 1;
}

Object *
OwnershipTable::ownerOf(const Object *ownee) const
{
    ensureSorted();
    for (size_t i = 0; i < owners_.size(); ++i)
        if (containsSorted(ownees_[i], ownee))
            return owners_[i];
    return nullptr;
}

void
OwnershipTable::forEachOwner(
    const std::function<void(Object *, const std::vector<Object *> &)>
        &visit) const
{
    ensureSorted();
    for (size_t i = 0; i < owners_.size(); ++i)
        visit(owners_[i], ownees_[i]);
}

OwnershipTable::PruneResult
OwnershipTable::prune()
{
    ensureSorted();
    PruneResult result;
    size_t kept = 0;
    bool owners_moved = false;
    for (size_t i = 0; i < owners_.size(); ++i) {
        Object *owner = owners_[i];
        auto &list = ownees_[i];

        // Drop ownees that died: their assertion is satisfied.
        // Compaction preserves the sorted order.
        size_t live = 0;
        for (Object *ownee : list) {
            if (ownee->marked()) {
                list[live++] = ownee;
            } else {
                ownee->clearFlag(kOwneeBit);
                ++result.deadOwnees;
            }
        }
        list.resize(live);

        if (!owner->marked()) {
            // Owner dies in this collection: its surviving ownees
            // have outlived it.
            owner->clearFlag(kOwnerBit);
            ++result.deadOwners;
            for (Object *ownee : list) {
                ownee->clearFlag(kOwneeBit);
                ownee->setOwnerTag(0);
                result.orphanedOwnees.push_back(ownee);
            }
            owners_moved = true;
            continue;
        }
        if (list.empty()) {
            // Nothing left to check for this owner.
            owner->clearFlag(kOwnerBit);
            owners_moved = true;
            continue;
        }
        if (kept != i) {
            owners_[kept] = owner;
            ownees_[kept] = std::move(list);
        }
        ++kept;
    }
    owners_.resize(kept);
    ownees_.resize(kept);
    // Owner compaction invalidates the header tags; reassign them.
    // In the steady state (no owner died) nothing moved and the
    // pass is skipped entirely.
    if (owners_moved)
        for (size_t i = 0; i < owners_.size(); ++i)
            for (Object *ownee : ownees_[i])
                ownee->setOwnerTag(static_cast<uint32_t>(i) + 1);
    return result;
}

void
OwnershipTable::clear()
{
    for (size_t i = 0; i < owners_.size(); ++i) {
        owners_[i]->clearFlag(kOwnerBit);
        for (Object *ownee : ownees_[i]) {
            ownee->clearFlag(kOwneeBit);
            ownee->setOwnerTag(0);
        }
    }
    owners_.clear();
    ownees_.clear();
    dirty_ = false;
}

} // namespace gcassert
