/**
 * @file
 * The GC-assertion engine: the programmer-facing assertion calls and
 * the collector-facing check/report hooks.
 *
 * Executing an assertion merely records intent (header bits, region
 * queues, instance limits, owner/ownee pairs); all checking happens
 * during the next collection, piggybacked on tracing — the paper's
 * central idea.
 */

#ifndef GCASSERT_ASSERTIONS_ENGINE_H
#define GCASSERT_ASSERTIONS_ENGINE_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "assertions/assertion_table.h"
#include "assertions/ownership.h"
#include "assertions/reaction.h"
#include "assertions/violation.h"
#include "gc/mutator.h"
#include "types/type_registry.h"

namespace gcassert {

struct AssertCostTallies;
class IncrementalAssertCache;

/** Behavioural switches for the engine. */
struct EngineOptions {
    /**
     * Keep the dead bit set after a violation is reported so the
     * object is re-checked at every subsequent GC. Off by default:
     * one report per assert-dead call.
     */
    bool stickyDeadAssertions = false;

    /**
     * When an owner is reclaimed, convert its surviving ownees into
     * orphan dead-assertions: if the *next* collection still finds
     * one reachable, an assert-ownedby violation ("ownee outlived
     * its owner") is reported with a full path. The deferral avoids
     * false positives on ownees that were live only because the
     * ownership phase itself traced them. This is an extension: the
     * paper leaves the owner-death case unspecified. When off, such
     * pairs are dropped silently.
     */
    bool orphanedOwneeIsViolation = true;
};

/**
 * A violation detected by a parallel marker thread.
 *
 * The engine's report path is not thread-safe (and heap paths are
 * unavailable under parallel marking anyway), so workers record
 * these into private buffers; the collector merges the buffers after
 * the markers join and hands them to reportPending().
 */
struct PendingViolation {
    AssertionKind kind = AssertionKind::Dead;
    Object *obj = nullptr;
    std::string message;
};

/**
 * Records assertions, reports violations, and owns the assertion
 * metadata the collector consults while tracing.
 */
class AssertionEngine {
  public:
    AssertionEngine(TypeRegistry &types, MutatorRegistry &mutators,
                    EngineOptions options = {});

    AssertionEngine(const AssertionEngine &) = delete;
    AssertionEngine &operator=(const AssertionEngine &) = delete;

    /** @name Programmer API (invoked through the Runtime facade)
     *  @{ */

    /** assert-dead(p): @p obj must be unreachable at the next GC. */
    void assertDead(Object *obj);

    /**
     * start-region(): begin tracking allocations on @p mutator. A
     * non-empty @p label names the region in any later alldead
     * violation (e.g. a server request id); "" keeps the classic
     * unlabeled message.
     */
    void startRegion(MutatorContext &mutator, std::string label = {});

    /**
     * assert-alldead(): every object allocated in @p mutator's
     * active region must be unreachable at the next GC.
     */
    void assertAllDead(MutatorContext &mutator);

    /** assert-instances(T, I): at most @p limit live instances. */
    void assertInstances(TypeId type, uint64_t limit);

    /** assert-volume(T, B): live T objects total at most @p bytes. */
    void assertVolume(TypeId type, uint64_t bytes);

    /** assert-unshared(p): at most one incoming pointer. */
    void assertUnshared(Object *obj);

    /** assert-ownedby(p, q): @p ownee must not outlive @p owner. */
    void assertOwnedBy(Object *owner, Object *ownee);

    /** @} */

    /** @name Collector integration
     *  @{ */

    /** Reset per-GC state; remember the collection number. */
    void onGcStart(uint64_t gc_number);

    /**
     * Post-trace finish work (run while mark bits are valid, before
     * sweep): instance-limit checks, region-queue pruning, ownership
     * table pruning with orphaned-ownee reporting. When @p cost is
     * non-null, each sub-step's time is attributed to its assertion
     * kind.
     */
    void onTraceDone(AssertCostTallies *cost = nullptr);

    /**
     * Post-sweep finish work, incremental mode only: merge the
     * region-summary cache (re-snapshotting just the dirty regions),
     * sync the per-type tallies the skipped mark-phase checks left at
     * zero, and run exactly the instance/volume verdict loop that
     * onTraceDone runs non-incrementally. Runs after the sweep so the
     * alloc/free-maintained tallies equal the marked set — the same
     * quantity the mark loop would have counted — and before the
     * collector's per-GC violation accounting, so per-collection
     * violation counts are unchanged. No-op without a cache.
     */
    void onPostSweep(AssertCostTallies *cost = nullptr);

    /** Sweep hook: account for satisfied lifetime assertions. */
    void onObjectFreed(Object *obj);

    /**
     * Write-barrier hook: @p owner (an assert-ownedby owner) had a
     * reference slot written since the last collection. The next full
     * trace's ownership phase scans dirty owners first, so the
     * re-checks most likely to have changed verdicts run at the start
     * of the pause instead of wherever registration order put them.
     * Ownedness is independent of owner scan order (the truncation
     * queue of section 2.5.2 runs after *all* owner regions), so the
     * reordering affects scheduling only, never verdicts.
     *
     * The caller has already latched kWriteDirtyBit on @p owner, so
     * each owner is enqueued at most once per GC cycle. Serialized by
     * the barrier registry lock.
     */
    void noteOwnerMutated(Object *owner);

    /**
     * Write-barrier hook: a new reference was just stored to @p obj,
     * an assert-unshared object. The dirty set bounds which unshared
     * assertions could have gained a second incoming reference since
     * the last collection (surfaced in the stats); the trace itself
     * re-checks every unshared object it re-encounters regardless, so
     * the verdict authority stays with the full GC.
     */
    void noteUnsharedTargetMutated(Object *obj);

    /** Owners mutated since the last collection (barrier-fed). */
    const std::vector<Object *> &dirtyOwners() const
    {
        return dirtyOwners_;
    }

    /** Unshared targets newly referenced since the last collection. */
    const std::vector<Object *> &dirtyUnsharedTargets() const
    {
        return dirtyUnshared_;
    }

    /**
     * Report a violation. Applies the reaction policy: logs via
     * warn(), notifies handlers, and raises FatalError under
     * LogHalt. Returns after recording under LogContinue/ForceTrue.
     */
    void report(Violation violation);

    /**
     * Install an observer invoked on every violation before it is
     * recorded, free to *add* context (the telemetry layer fills
     * Violation::provenanceJson and emits a trace event here) but
     * expected never to alter the verdict fields — observers must not
     * change kind, message, or gcNumber, so verdict streams stay
     * identical with telemetry on or off. One observer; an empty
     * function clears it.
     */
    void setViolationObserver(std::function<void(Violation &)> observer)
    {
        violationObserver_ = std::move(observer);
    }

    /**
     * One-report-per-object-per-GC filter.
     * @return true if @p obj has already been reported this GC
     *         (and records it otherwise).
     */
    bool alreadyReported(const Object *obj);

    /**
     * Merge and report violations recorded by parallel markers.
     *
     * Racing workers can record the same object more than once (each
     * loser of a mark race records independently), so the buffer is
     * first sorted into a deterministic order — object address, then
     * the sequential trace's checking order (ownee, dead, unshared)
     * — and then filtered through the same one-report-per-object
     * gate the sequential trace uses. The resulting violation
     * multiset is identical to a sequential collection's, modulo
     * heap paths.
     */
    void reportPending(std::vector<PendingViolation> pending);

    /** @} */

    /** All violations reported so far (across collections). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Drop recorded violations (report counters are unaffected). */
    void clearViolations() { violations_.clear(); }

    ReactionPolicy &reactions() { return reactions_; }
    const ReactionPolicy &reactions() const { return reactions_; }

    OwnershipTable &ownership() { return ownership_; }
    const OwnershipTable &ownership() const { return ownership_; }

    AssertionStats &stats() { return stats_; }
    const AssertionStats &stats() const { return stats_; }

    /**
     * Attach (or detach, with nullptr) the incremental recheck cache.
     * While attached, the assertion entry points and free hooks keep
     * its region summaries current, onTraceDone's instance/volume
     * checks are deferred to onPostSweep, and the collector skips its
     * mark-phase tallies.
     */
    void setIncremental(IncrementalAssertCache *cache)
    {
        incremental_ = cache;
    }

    IncrementalAssertCache *incremental() const { return incremental_; }

    const EngineOptions &options() const { return options_; }

    /** Type name helper for reports. */
    std::string typeNameOf(const Object *obj) const;

    /**
     * Label of the labeled region @p obj was flushed from, or
     * nullptr for unlabeled regions. Written only by assertAllDead
     * (under the runtime's exclusive lock) and cleared at the end of
     * every full trace, so reads during a collection — including by
     * parallel markers — see a frozen map.
     */
    const std::string *
    regionLabelOf(const Object *obj) const
    {
        auto it = regionLabels_.find(obj);
        return it == regionLabels_.end() ? nullptr : &it->second;
    }

    /** Current collection number (0 before the first GC). */
    uint64_t gcNumber() const { return gcNumber_; }

  private:
    /**
     * The instance/volume verdict loop, shared verbatim by
     * onTraceDone (classic mode) and onPostSweep (incremental mode)
     * so the two paths cannot drift apart in message text or report
     * order.
     */
    void checkTrackedTypeLimits();

    TypeRegistry &types_;
    MutatorRegistry &mutators_;
    EngineOptions options_;

    ReactionPolicy reactions_;
    OwnershipTable ownership_;
    AssertionStats stats_;

    std::vector<Violation> violations_;
    std::unordered_set<const Object *> reportedThisGc_;
    /** Flushed-object -> region label for labeled regions. Every
     *  entry is settled (reported or swept) by the end of the next
     *  full trace, so onTraceDone clears the map wholesale — no
     *  stale label can outlive an address reuse. */
    std::unordered_map<const Object *, std::string> regionLabels_;
    uint64_t gcNumber_ = 0;
    /** Telemetry enrichment hook (see setViolationObserver). */
    std::function<void(Violation &)> violationObserver_;

    /** @name Barrier-fed dirty sets (consumed by onTraceDone)
     *  @{ */
    std::vector<Object *> dirtyOwners_;
    std::vector<Object *> dirtyUnshared_;
    /** @} */

    /** Incremental recheck cache (null = classic whole-heap checks). */
    IncrementalAssertCache *incremental_ = nullptr;
};

} // namespace gcassert

#endif // GCASSERT_ASSERTIONS_ENGINE_H
