/**
 * @file
 * The type registry: defines and looks up runtime types, and keeps
 * the list of instance-tracked types checked at the end of each GC
 * (paper section 2.4.1).
 */

#ifndef GCASSERT_TYPES_TYPE_REGISTRY_H
#define GCASSERT_TYPES_TYPE_REGISTRY_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/type_descriptor.h"

namespace gcassert {

class TypeRegistry;

/**
 * Fluent builder for type definitions:
 *
 * @code
 * TypeId order = registry.define("Order")
 *     .refs({"customer", "items"})
 *     .scalars(32)
 *     .build();
 * @endcode
 */
class TypeBuilder {
  public:
    TypeBuilder(TypeRegistry &registry, std::string name);

    /** Declare named reference slots. */
    TypeBuilder &refs(std::vector<std::string> names);

    /** Declare @p count anonymous reference slots. */
    TypeBuilder &refCount(uint32_t count);

    /** Declare @p bytes of scalar payload. */
    TypeBuilder &scalars(uint32_t bytes);

    /** Mark the type as a variable-length reference array. */
    TypeBuilder &array();

    /** Mark the type as a weak reference (slot 0 is the weak edge). */
    TypeBuilder &weak();

    /** Register the type and return its id. */
    TypeId build();

  private:
    TypeRegistry &registry_;
    std::string name_;
    std::vector<std::string> refNames_;
    uint32_t refCount_ = 0;
    bool namedRefs_ = false;
    uint32_t scalarBytes_ = 0;
    bool isArray_ = false;
    bool weak_ = false;
};

/**
 * Registry of all runtime types. TypeIds are dense indices, so the
 * collector's per-object descriptor lookup is a single array access.
 */
class TypeRegistry {
  public:
    TypeRegistry();

    /** Begin defining a new type. Names must be unique. */
    TypeBuilder define(const std::string &name);

    /** Descriptor for @p id. Panics on an invalid id. */
    TypeDescriptor &get(TypeId id);
    const TypeDescriptor &get(TypeId id) const;

    /** Descriptor by name, or nullptr if not defined. */
    TypeDescriptor *findByName(const std::string &name);

    /** Number of defined types. */
    size_t size() const { return types_.size(); }

    /**
     * Set an assert-instances limit on @p id and remember the type
     * in the tracked list.
     */
    void trackInstances(TypeId id, uint64_t limit);

    /** Remove the instance limit for @p id. */
    void untrackInstances(TypeId id);

    /**
     * Set an assert-volume limit (total live bytes) on @p id and
     * remember the type in the tracked list.
     */
    void trackVolume(TypeId id, uint64_t bytes);

    /** Remove the volume limit for @p id. */
    void untrackVolume(TypeId id);

    /** Types with an active instance limit. */
    const std::vector<TypeId> &trackedTypes() const
    {
        return trackedTypes_;
    }

    /**
     * Dense per-type "is a weak-reference type" flags, indexed by
     * TypeId, plus a cheap any-weak-types-at-all test for the trace
     * loop.
     */
    const std::vector<uint8_t> &weakFlags() const { return weakFlags_; }
    bool hasWeakTypes() const { return hasWeakTypes_; }

    /**
     * Dense per-type "is instance-tracked" flags, indexed by TypeId.
     * The collector's trace loop consults this instead of the full
     * descriptor so the common untracked case is one byte load (the
     * header-bit-cheap spirit of the paper's checks).
     */
    const std::vector<uint8_t> &trackedFlags() const
    {
        return trackedFlags_;
    }

    /** Bump the per-GC tallies of @p id (trace-loop fast path). */
    void
    bumpInstanceCount(TypeId id, uint64_t bytes)
    {
        types_[id]->bumpInstanceCount(bytes);
    }

    /** Merge a parallel marker's per-type tallies (finish phase). */
    void
    bumpInstanceCountBy(TypeId id, uint64_t count, uint64_t bytes)
    {
        types_[id]->bumpInstanceCountBy(count, bytes);
    }

    /** Zero the per-GC instance counts of tracked types. */
    void resetInstanceCounts();

  private:
    friend class TypeBuilder;

    TypeId registerType(std::string name, uint32_t fixed_refs,
                        uint32_t scalar_bytes, bool is_array,
                        std::vector<std::string> ref_names, bool weak);

    std::vector<std::unique_ptr<TypeDescriptor>> types_;
    std::unordered_map<std::string, TypeId> byName_;
    std::vector<TypeId> trackedTypes_;
    std::vector<uint8_t> trackedFlags_;
    std::vector<uint8_t> weakFlags_;
    bool hasWeakTypes_ = false;
};

} // namespace gcassert

#endif // GCASSERT_TYPES_TYPE_REGISTRY_H
