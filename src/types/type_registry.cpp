#include "types/type_registry.h"

#include <algorithm>

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

TypeBuilder::TypeBuilder(TypeRegistry &registry, std::string name)
    : registry_(registry), name_(std::move(name))
{
}

TypeBuilder &
TypeBuilder::refs(std::vector<std::string> names)
{
    refNames_ = std::move(names);
    refCount_ = static_cast<uint32_t>(refNames_.size());
    namedRefs_ = true;
    return *this;
}

TypeBuilder &
TypeBuilder::refCount(uint32_t count)
{
    refCount_ = count;
    namedRefs_ = false;
    refNames_.clear();
    return *this;
}

TypeBuilder &
TypeBuilder::scalars(uint32_t bytes)
{
    scalarBytes_ = bytes;
    return *this;
}

TypeBuilder &
TypeBuilder::array()
{
    isArray_ = true;
    return *this;
}

TypeBuilder &
TypeBuilder::weak()
{
    weak_ = true;
    return *this;
}

TypeId
TypeBuilder::build()
{
    return registry_.registerType(std::move(name_), refCount_,
                                  scalarBytes_, isArray_,
                                  std::move(refNames_), weak_);
}

TypeRegistry::TypeRegistry() = default;

TypeBuilder
TypeRegistry::define(const std::string &name)
{
    return TypeBuilder(*this, name);
}

TypeId
TypeRegistry::registerType(std::string name, uint32_t fixed_refs,
                           uint32_t scalar_bytes, bool is_array,
                           std::vector<std::string> ref_names, bool weak)
{
    if (byName_.count(name))
        fatal(format("type '%s' is already defined", name.c_str()));
    TypeId id = static_cast<TypeId>(types_.size());
    types_.push_back(std::make_unique<TypeDescriptor>(
        id, name, fixed_refs, scalar_bytes, is_array,
        std::move(ref_names), weak));
    byName_.emplace(std::move(name), id);
    trackedFlags_.push_back(0);
    weakFlags_.push_back(weak ? 1 : 0);
    hasWeakTypes_ |= weak;
    return id;
}

TypeDescriptor &
TypeRegistry::get(TypeId id)
{
    if (id >= types_.size())
        panic(format("invalid TypeId %u (registry has %zu types)", id,
                     types_.size()));
    return *types_[id];
}

const TypeDescriptor &
TypeRegistry::get(TypeId id) const
{
    if (id >= types_.size())
        panic(format("invalid TypeId %u (registry has %zu types)", id,
                     types_.size()));
    return *types_[id];
}

TypeDescriptor *
TypeRegistry::findByName(const std::string &name)
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : types_[it->second].get();
}

void
TypeRegistry::trackInstances(TypeId id, uint64_t limit)
{
    TypeDescriptor &desc = get(id);
    desc.setInstanceLimit(limit);
    trackedFlags_[id] = 1;
    if (std::find(trackedTypes_.begin(), trackedTypes_.end(), id) ==
        trackedTypes_.end())
        trackedTypes_.push_back(id);
}

void
TypeRegistry::untrackInstances(TypeId id)
{
    TypeDescriptor &desc = get(id);
    desc.clearInstanceLimit();
    if (!desc.volumeTracked()) {
        trackedFlags_[id] = 0;
        trackedTypes_.erase(
            std::remove(trackedTypes_.begin(), trackedTypes_.end(), id),
            trackedTypes_.end());
    }
}

void
TypeRegistry::trackVolume(TypeId id, uint64_t bytes)
{
    TypeDescriptor &desc = get(id);
    desc.setVolumeLimit(bytes);
    trackedFlags_[id] = 1;
    if (std::find(trackedTypes_.begin(), trackedTypes_.end(), id) ==
        trackedTypes_.end())
        trackedTypes_.push_back(id);
}

void
TypeRegistry::untrackVolume(TypeId id)
{
    TypeDescriptor &desc = get(id);
    desc.clearVolumeLimit();
    if (!desc.tracked()) {
        trackedFlags_[id] = 0;
        trackedTypes_.erase(
            std::remove(trackedTypes_.begin(), trackedTypes_.end(), id),
            trackedTypes_.end());
    }
}

void
TypeRegistry::resetInstanceCounts()
{
    for (TypeId id : trackedTypes_)
        get(id).resetInstanceCount();
}

} // namespace gcassert
