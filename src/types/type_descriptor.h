/**
 * @file
 * Runtime type descriptors — the analog of Jikes RVM's RVMClass.
 *
 * A TypeDescriptor records the shape of instances (reference-slot
 * count and scalar payload size), optional slot names for readable
 * error paths, and the two words of assert-instances metadata the
 * paper adds per class: the instance limit and the per-GC instance
 * count (section 2.4.1).
 */

#ifndef GCASSERT_TYPES_TYPE_DESCRIPTOR_H
#define GCASSERT_TYPES_TYPE_DESCRIPTOR_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/** Sentinel meaning no assert-instances limit is set for the type. */
constexpr uint64_t kNoInstanceLimit =
    std::numeric_limits<uint64_t>::max();

/** Sentinel meaning no assert-volume limit is set for the type. */
constexpr uint64_t kNoVolumeLimit =
    std::numeric_limits<uint64_t>::max();

/**
 * Describes one runtime type.
 *
 * Fixed-shape types have a constant number of reference slots and
 * scalar bytes; array types have per-instance slot counts (the
 * descriptor's fixedRefs/scalarBytes then give the element shape
 * hint and are not used for allocation sizing).
 */
class TypeDescriptor {
  public:
    TypeDescriptor(TypeId id, std::string name, uint32_t fixed_refs,
                   uint32_t scalar_bytes, bool is_array,
                   std::vector<std::string> ref_names,
                   bool weak = false);

    TypeId id() const { return id_; }
    const std::string &name() const { return name_; }

    /** Reference slots of a fixed-shape instance. */
    uint32_t fixedRefs() const { return fixedRefs_; }

    /** Scalar payload bytes of a fixed-shape instance. */
    uint32_t scalarBytes() const { return scalarBytes_; }

    /** True for variable-length (array) types. */
    bool isArray() const { return isArray_; }

    /**
     * True for weak-reference types: reference slot 0 is a *weak*
     * edge — the collector does not trace through it, and clears it
     * when the referent is reclaimed. Remaining slots are strong.
     */
    bool isWeak() const { return weak_; }

    /**
     * Index of the named reference slot.
     * Calls fatal() if the name is unknown — slot names are part of
     * the type definition, so a miss is a caller bug surfaced early.
     */
    uint32_t slotIndex(const std::string &ref_name) const;

    /** Names of reference slots (may be empty if unnamed). */
    const std::vector<std::string> &refNames() const { return refNames_; }

    /** @name assert-instances metadata (two words per class)
     *  @{ */
    bool tracked() const { return instanceLimit_ != kNoInstanceLimit; }
    uint64_t instanceLimit() const { return instanceLimit_; }
    void setInstanceLimit(uint64_t limit) { instanceLimit_ = limit; }
    void clearInstanceLimit() { instanceLimit_ = kNoInstanceLimit; }

    uint64_t instanceCount() const { return instanceCount_; }
    void resetInstanceCount()
    {
        instanceCount_ = 0;
        volumeBytes_ = 0;
    }
    void
    bumpInstanceCount(uint64_t bytes = 0)
    {
        ++instanceCount_;
        volumeBytes_ += bytes;
    }

    /**
     * Fold one parallel marker's private tallies into the shared
     * counters (finish phase, single-threaded again).
     */
    void
    bumpInstanceCountBy(uint64_t count, uint64_t bytes)
    {
        instanceCount_ += count;
        volumeBytes_ += bytes;
    }
    /** @} */

    /** @name assert-volume metadata (section 2.4's "total volume")
     *  @{ */
    bool volumeTracked() const { return volumeLimit_ != kNoVolumeLimit; }
    uint64_t volumeLimit() const { return volumeLimit_; }
    void setVolumeLimit(uint64_t bytes) { volumeLimit_ = bytes; }
    void clearVolumeLimit() { volumeLimit_ = kNoVolumeLimit; }
    uint64_t volumeBytes() const { return volumeBytes_; }
    /** @} */

  private:
    TypeId id_;
    std::string name_;
    uint32_t fixedRefs_;
    uint32_t scalarBytes_;
    bool isArray_;
    bool weak_;
    std::vector<std::string> refNames_;

    uint64_t instanceLimit_ = kNoInstanceLimit;
    uint64_t instanceCount_ = 0;
    uint64_t volumeLimit_ = kNoVolumeLimit;
    uint64_t volumeBytes_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_TYPES_TYPE_DESCRIPTOR_H
