#include "types/type_descriptor.h"

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

TypeDescriptor::TypeDescriptor(TypeId id, std::string name,
                               uint32_t fixed_refs, uint32_t scalar_bytes,
                               bool is_array,
                               std::vector<std::string> ref_names,
                               bool weak)
    : id_(id),
      name_(std::move(name)),
      fixedRefs_(fixed_refs),
      scalarBytes_(scalar_bytes),
      isArray_(is_array),
      weak_(weak),
      refNames_(std::move(ref_names))
{
    if (!refNames_.empty() && refNames_.size() != fixedRefs_)
        fatal(format("type '%s': %zu slot names given for %u slots",
                     name_.c_str(), refNames_.size(), fixedRefs_));
    if (weak_ && (fixedRefs_ == 0 || isArray_))
        fatal(format("type '%s': weak types need a fixed slot 0 to "
                     "hold the referent", name_.c_str()));
}

uint32_t
TypeDescriptor::slotIndex(const std::string &ref_name) const
{
    for (size_t i = 0; i < refNames_.size(); ++i)
        if (refNames_[i] == ref_name)
            return static_cast<uint32_t>(i);
    fatal(format("type '%s' has no reference slot named '%s'",
                 name_.c_str(), ref_name.c_str()));
}

} // namespace gcassert
