/**
 * @file
 * jbbemu — the SPEC JBB2000 / pseudojbb analog.
 *
 * Emulates the three-tier order-processing benchmark: a Company of
 * Warehouses, each with Districts whose orderTable is a managed
 * B-tree (longBTree) keyed by order id; Customers place Orders that
 * are inserted into the table and later processed and destroyed by
 * delivery transactions. The main loop destroys and recreates the
 * Company each iteration, exactly like pseudojbb.
 *
 * The three defects the paper found in SPEC JBB2000 are seeded and
 * individually toggleable (section 3.2.1):
 *
 *  1. Customer.lastOrder keeps destroyed Orders reachable
 *     (fixCustomerLastOrder repairs it).
 *  2. The oldCompany local keeps the previous Company live through
 *     the whole next iteration — memory drag
 *     (fixOldCompanyDrag repairs it).
 *  3. Orders are never removed from the orderTable during delivery —
 *     the Jump & McKinley leak (removeFromOrderTable repairs it).
 */

#ifndef GCASSERT_WORKLOADS_JBBEMU_H
#define GCASSERT_WORKLOADS_JBBEMU_H

#include <cstdint>
#include <memory>

#include "workloads/workload.h"

namespace gcassert {

/** Leak toggles and scale knobs for jbbemu. */
struct JbbOptions {
    /** Clear Customer.lastOrder when its Order is destroyed. */
    bool fixCustomerLastOrder = true;
    /** Null the oldCompany reference after destroying it. */
    bool fixOldCompanyDrag = true;
    /** Remove delivered Orders from the orderTable. */
    bool removeFromOrderTable = true;

    /** assert-dead destroyed Orders (paper's first experiment). */
    bool assertDeadOnDestroy = true;
    /** assert-ownedby(orderTable, order) on insert (second). */
    bool assertOwnership = true;
    /** assert-instances(Company, 1) (third). */
    bool assertCompanySingleton = true;
    /** assert-dead the previous Company when it is destroyed. */
    bool assertDeadOldCompany = true;

    /**
     * Destroy and recreate the Company every N iterate() calls. The
     * real pseudojbb rebuilds once per (multi-minute) benchmark
     * iteration; our iterations are milliseconds, so the perf
     * default rebuilds less often to keep the company churn rate
     * proportionate.
     */
    uint32_t iterationsPerCompany = 1;

    uint32_t warehouses = 2;
    uint32_t districtsPerWarehouse = 5;
    uint32_t customers = 200;
    uint32_t initialOrdersPerDistrict = 200;
    uint32_t transactionsPerIteration = 20000;
};

/** Factory with explicit options (tests, qualitative benches). */
std::unique_ptr<Workload> makeJbbEmuWithOptions(const JbbOptions &options);

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_JBBEMU_H
