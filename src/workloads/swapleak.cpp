/**
 * @file
 * swapleak — the Sun Developer Network "garbage collection dilemma"
 * program (paper section 3.2.3).
 *
 * SObject has a non-static inner class Rep; every Rep therefore
 * carries a hidden reference to the enclosing SObject instance that
 * created it. The main loop fills an array with SObjects, then
 * repeatedly allocates fresh SObjects and swap()s Rep fields with
 * array elements. The user expects the fresh SObjects to die after
 * the swap, but each one remains reachable through
 *
 *   SArray -> SObject -> SObject$Rep -> SObject
 *
 * because the swapped-in Rep's hidden enclosing-instance reference
 * points at the fresh SObject.
 */

#include <cstdint>

#include "support/rng.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {

namespace {

class SwapLeakWorkload : public Workload {
  public:
    const char *name() const override { return "swapleak"; }

    const char *
    description() const override
    {
        return "inner-class hidden-reference leak from the Sun forum "
               "post (SwapLeak)";
    }

    uint64_t minHeapBytes() const override { return 1ull * 1024 * 1024; }

    void setup(Runtime &runtime) override;
    void iterate(Runtime &runtime) override;
    void teardown(Runtime &runtime) override;

    /** Swap count per iteration (exposed for tests). */
    static constexpr uint32_t kObjects = 600;
    static constexpr uint32_t kSwapsPerIteration = 2000;

  private:
    /** new SObject(): also allocates its Rep, whose hidden reference
     *  points back at the new SObject (inner-class semantics). */
    Object *makeSObject(Runtime &runtime);

    /** SObject.swap(other): exchange rep fields. */
    void swap(Runtime &runtime, Object *a, Object *b);

    TypeId sobjectType_ = kInvalidTypeId;
    TypeId repType_ = kInvalidTypeId;
    TypeId arrayType_ = kInvalidTypeId;
    TypeId scratchType_ = kInvalidTypeId;

    uint32_t sobjectRepSlot_ = 0;
    uint32_t repEnclosingSlot_ = 0;

    Rng rng_{0x5a4b};
    Handle array_;
};

void
SwapLeakWorkload::setup(Runtime &runtime)
{
    sobjectType_ = runtime.types()
                       .define("SObject")
                       .refs({"rep"})
                       .scalars(8)
                       .build();
    // The "this$0" slot is the hidden enclosing-instance reference
    // javac adds to every non-static inner class.
    repType_ = runtime.types()
                   .define("SObject$Rep")
                   .refs({"this$0"})
                   .scalars(8)
                   .build();
    arrayType_ = runtime.types().define("SArray").array().build();
    scratchType_ =
        runtime.types().define("SScratch").array().build();

    sobjectRepSlot_ = runtime.types().get(sobjectType_).slotIndex("rep");
    repEnclosingSlot_ =
        runtime.types().get(repType_).slotIndex("this$0");

    array_ = Handle(runtime, runtime.allocArrayRaw(arrayType_, kObjects),
                    "swapleak.array");
    for (uint32_t i = 0; i < kObjects; ++i)
        runtime.writeRef(array_.get(), i, makeSObject(runtime));
}

Object *
SwapLeakWorkload::makeSObject(Runtime &runtime)
{
    Object *sobject = runtime.allocRaw(sobjectType_);
    Handle guard(runtime, sobject, "swapleak.new");
    Object *rep = runtime.allocRaw(repType_);
    runtime.writeRef(rep, repEnclosingSlot_, sobject);
    runtime.writeRef(sobject, sobjectRepSlot_, rep);
    return sobject;
}

void
SwapLeakWorkload::swap(Runtime &runtime, Object *a, Object *b)
{
    Object *tmp = a->ref(sobjectRepSlot_);
    runtime.writeRef(a, sobjectRepSlot_, b->ref(sobjectRepSlot_));
    runtime.writeRef(b, sobjectRepSlot_, tmp);
}

void
SwapLeakWorkload::iterate(Runtime &runtime)
{
    for (uint32_t s = 0; s < kSwapsPerIteration; ++s) {
        uint32_t slot = static_cast<uint32_t>(rng_.below(kObjects));
        Object *fresh = makeSObject(runtime);
        Handle guard(runtime, fresh, "swapleak.fresh");
        swap(runtime, array_->ref(slot), fresh);
        // The user believes `fresh` is garbage now...
        if (assertionsEnabled_)
            runtime.assertDead(fresh);
        // ...but the Rep that was swapped into the array element
        // still holds a hidden reference to it.

        // The forum program also did real work per loop step; model
        // that with a transient scratch buffer so the heap turns
        // over and collections happen regularly.
        Object *scratch = runtime.allocScalarRaw(scratchType_, 512);
        scratch->setScalar<uint64_t>(0, s);
    }
}

void
SwapLeakWorkload::teardown(Runtime &runtime)
{
    (void)runtime;
    array_.reset();
}

} // namespace

std::unique_ptr<Workload>
makeSwapLeak()
{
    return std::make_unique<SwapLeakWorkload>();
}

} // namespace gcassert
