/**
 * @file
 * The benchmark driver: runs workloads under the paper's three
 * configurations and collects timing samples with the paper's
 * methodology (heap fixed at 2x the workload minimum, warmup
 * iterations before the measured one, repeated runs, 90% CIs).
 */

#ifndef GCASSERT_WORKLOADS_DRIVER_H
#define GCASSERT_WORKLOADS_DRIVER_H

#include <cstdint>
#include <string>

#include "assertions/assertion_table.h"
#include "support/stats.h"
#include "workloads/registry.h"

namespace gcassert {

/** The paper's benchmark configurations (Figures 2-5). */
enum class BenchConfig {
    /** Unmodified collector: no assertion infrastructure. */
    Base,
    /** Infrastructure compiled in, no assertions added. */
    Infrastructure,
    /** Infrastructure plus the workload's assertions. */
    WithAssertions,
};

/** Display name ("Base", "Infrastructure", "WithAssertions"). */
const char *benchConfigName(BenchConfig config);

/** Driver knobs. */
struct DriverOptions {
    /** Iterations run before measurement (the paper uses 3). */
    uint32_t warmupIterations = 3;
    /** Iterations in the measured window. */
    uint32_t measuredIterations = 1;
    /** Independent repeats (fresh runtime each). */
    uint32_t repeats = 10;
    /** Swallow warnings during runs (violations still counted). */
    bool captureLog = true;
    /** Heap budget override in bytes; 0 = 2x workload minimum. */
    uint64_t heapBytesOverride = 0;
};

/** Aggregated result of repeated runs of one (workload, config). */
struct RunSummary {
    std::string workload;
    BenchConfig config = BenchConfig::Base;

    /** Measured-window wall-clock seconds, one sample per repeat. */
    SampleSet totalSeconds;
    /** GC seconds within the measured window. */
    SampleSet gcSeconds;
    /** Mutator seconds (total - gc). */
    SampleSet mutatorSeconds;

    /**
     * Work units (Workload::workUnitsCompleted) finished inside the
     * last repeat's measured window. 0 for workloads without a unit.
     */
    uint64_t workUnits = 0;
    /**
     * Work units per wall-clock second of the measured window only —
     * setup, warmup and teardown are excluded (the window is timed
     * with a Stopwatch bracketing just the measured iterations).
     * Empty when the workload defines no unit.
     */
    SampleSet workUnitsPerSec;

    /** Collections during the last repeat's measured window. */
    uint64_t collections = 0;
    /** Violations reported during the last repeat (whole run). */
    uint64_t violations = 0;
    /** Assertion activity of the last repeat (whole run). */
    AssertionStats assertStats;
    /** Average ownee checks per GC in the last repeat. */
    double owneeChecksPerGc = 0.0;
    /** Heap budget used. */
    uint64_t heapBytes = 0;
};

/**
 * Run @p workload_name under @p config.
 *
 * Each repeat constructs a fresh runtime and workload, runs the
 * warmup iterations, then times the measured iterations.
 */
RunSummary runWorkload(const std::string &workload_name,
                       BenchConfig config,
                       const DriverOptions &options = {});

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_DRIVER_H
