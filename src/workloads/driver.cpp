#include "workloads/driver.h"

#include <memory>

#include "support/logging.h"
#include "support/stopwatch.h"

namespace gcassert {

const char *
benchConfigName(BenchConfig config)
{
    switch (config) {
      case BenchConfig::Base: return "Base";
      case BenchConfig::Infrastructure: return "Infrastructure";
      case BenchConfig::WithAssertions: return "WithAssertions";
    }
    return "?";
}

namespace {

RuntimeConfig
runtimeConfigFor(BenchConfig config, uint64_t heap_bytes)
{
    switch (config) {
      case BenchConfig::Base:
        return RuntimeConfig::base(heap_bytes);
      case BenchConfig::Infrastructure:
      case BenchConfig::WithAssertions:
        return RuntimeConfig::infra(heap_bytes);
    }
    return RuntimeConfig::base(heap_bytes);
}

} // namespace

RunSummary
runWorkload(const std::string &workload_name, BenchConfig config,
            const DriverOptions &options)
{
    RunSummary summary;
    summary.workload = workload_name;
    summary.config = config;

    std::unique_ptr<CaptureLogSink> capture;
    if (options.captureLog)
        capture = std::make_unique<CaptureLogSink>();

    for (uint32_t repeat = 0; repeat < options.repeats; ++repeat) {
        std::unique_ptr<Workload> workload =
            WorkloadRegistry::instance().create(workload_name);

        uint64_t heap_bytes = options.heapBytesOverride
            ? options.heapBytesOverride
            : 2 * workload->minHeapBytes();
        summary.heapBytes = heap_bytes;

        Runtime runtime(runtimeConfigFor(config, heap_bytes));
        workload->setup(runtime);
        if (config == BenchConfig::WithAssertions)
            workload->enableAssertions(runtime);

        for (uint32_t i = 0; i < options.warmupIterations; ++i)
            workload->iterate(runtime);

        // Measured window. The stopwatch brackets exactly the
        // measured iterations, so every derived rate (units/s,
        // GC share) excludes setup, warmup and teardown time.
        uint64_t gc_nanos_before =
            runtime.gcStats().totalGc.elapsedNanos();
        uint64_t collections_before = runtime.collections();
        uint64_t units_before = workload->workUnitsCompleted();
        Stopwatch measured;
        measured.start();
        for (uint32_t i = 0; i < options.measuredIterations; ++i)
            workload->iterate(runtime);
        measured.stop();
        uint64_t gc_nanos_after =
            runtime.gcStats().totalGc.elapsedNanos();

        double total = measured.elapsedSeconds();
        double gc =
            static_cast<double>(gc_nanos_after - gc_nanos_before) / 1e9;
        summary.totalSeconds.add(total);
        summary.gcSeconds.add(gc);
        summary.mutatorSeconds.add(total - gc);
        summary.collections = runtime.collections() - collections_before;

        uint64_t units = workload->workUnitsCompleted() - units_before;
        summary.workUnits = units;
        if (units > 0 && total > 0.0)
            summary.workUnitsPerSec.add(
                static_cast<double>(units) / total);

        if (repeat == options.repeats - 1) {
            summary.violations =
                runtime.assertionStats().violationsReported;
            summary.assertStats = runtime.assertionStats();
            uint64_t gcs = runtime.collections();
            summary.owneeChecksPerGc = gcs
                ? static_cast<double>(runtime.gcStats().owneeChecks) /
                    static_cast<double>(gcs)
                : 0.0;
        }

        workload->teardown(runtime);
    }
    return summary;
}

} // namespace gcassert
