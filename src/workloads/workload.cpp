#include "workloads/workload.h"

namespace gcassert {

Workload::~Workload() = default;

void
Workload::enableAssertions(Runtime &runtime)
{
    (void)runtime;
    assertionsEnabled_ = true;
}

void
Workload::teardown(Runtime &runtime)
{
    (void)runtime;
}

uint64_t
Workload::workUnitsCompleted() const
{
    return 0;
}

} // namespace gcassert
