/**
 * @file
 * server — a request/response server simulation with per-request
 * assert-alldead regions.
 *
 * The paper's start-region / assert-alldead idiom (section 2.3.2)
 * maps exactly onto request lifetimes: everything a handler
 * allocates while serving a request should be garbage once the reply
 * is sent. This workload drives that idiom at scale — N real mutator
 * threads (the TLAB/shared-lock allocation path, not the coarse
 * one-big-mutex idiom of lusearch) serve request cycles with the
 * lifetime mix of a production server:
 *
 *  - per-request scratch graphs that must die at the reply,
 *  - session objects surviving many requests (with occasional
 *    profile replacement, i.e. mature garbage),
 *  - a shared LRU cache with eviction,
 *  - a connection pool of reusable buffers with slow replacement.
 *
 * With assertions enabled, every request is bracketed in a region
 * labeled with the request id; an injectable leak mode wires one
 * scratch node per N requests into a rooted leak list, so the next
 * full collection reports exactly one alldead violation *naming the
 * leaking request* — proving detection under concurrent traffic.
 *
 * Unlike the single-class workloads, the full class is declared here
 * so tests and benches can configure thread counts, inject leaks,
 * read request counters/latency percentiles, and drain the server
 * mid-flight.
 */

#ifndef GCASSERT_WORKLOADS_SERVER_H
#define GCASSERT_WORKLOADS_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "observe/pause_slo.h"
#include "runtime/handle.h"
#include "support/rng.h"
#include "workloads/workload.h"

namespace gcassert {

/** @name Environment-driven defaults
 * GCASSERT_SERVER_THREADS seeds the mutator-thread count (default 4,
 * clamped to [1, 64]); GCASSERT_SERVER_LEAK_EVERY seeds the leak
 * injection cadence (default 0 = no leaks). Explicit ServerOptions
 * fields override the environment, as with every other knob.
 *  @{ */
uint32_t defaultServerThreads();
uint32_t defaultServerLeakEvery();
/** @} */

/** Tuning knobs for the server simulation. */
struct ServerOptions {
    /** Mutator threads serving requests. */
    uint32_t threads = defaultServerThreads();

    /** Requests each thread serves per iterate() call. */
    uint32_t requestsPerThread = 2000;

    /** Long-lived sessions requests are routed across. */
    uint32_t sessions = 256;

    /** LRU cache capacity (entries); eviction beyond this. */
    uint32_t cacheCapacity = 128;

    /** Pooled connection buffers. */
    uint32_t poolBuffers = 16;

    /** Payload bytes per pooled buffer. */
    uint32_t bufferBytes = 1024;

    /**
     * Inject a leak every N requests per thread (a scratch node from
     * the request's region escapes into a rooted leak list). 0 = no
     * leaks. With assertions enabled each injected leak produces
     * exactly one alldead violation naming the leaking request.
     */
    uint32_t leakEveryN = defaultServerLeakEvery();

    /**
     * Publish a live-endpoint telemetry snapshot every N requests
     * per thread (Runtime::publishTelemetry), so dashboards see
     * fresh data between full GCs. 0 disables the cadence; the
     * default keeps it cheap (a no-op without telemetry, a brief
     * exclusive-lock snapshot with it).
     */
    uint32_t publishEvery = 1024;
};

/**
 * The server workload. See the file comment for the design; the
 * public surface beyond Workload exists for tests and benches.
 *
 * Thread model: iterate() launches options().threads OS threads,
 * each bound to its own registered MutatorContext. Thread-private
 * scratch goes through the genuinely concurrent allocLocal/writeRef
 * shared-lock path; the shared structures (sessions, cache, pool,
 * leak list) are serialized by one workload mutex, which nests
 * *outside* the runtime lock everywhere so the lock order is
 * consistent.
 *
 * When the runtime has telemetry, setup() registers
 * server.requests.{completed,per_sec} and
 * server.request.latency.{p50,p99,max}_nanos gauges; the workload
 * must then outlive the runtime (true for the driver, which tears
 * down the runtime first).
 */
class ServerWorkload : public Workload {
  public:
    explicit ServerWorkload(ServerOptions options = {});

    const char *name() const override { return "server"; }

    const char *
    description() const override
    {
        return "multithreaded request/response server with "
               "per-request assert-alldead regions, sessions, an LRU "
               "cache and a connection pool";
    }

    uint64_t minHeapBytes() const override;

    void setup(Runtime &runtime) override;
    void iterate(Runtime &runtime) override;
    void teardown(Runtime &runtime) override;

    uint64_t workUnitsCompleted() const override
    {
        return requestsCompleted();
    }

    const ServerOptions &options() const { return options_; }

    /** Requests fully served so far (all threads, all iterates). */
    uint64_t
    requestsCompleted() const
    {
        return requestsCompleted_.load(std::memory_order_relaxed);
    }

    /** Leaks injected so far (equals the expected alldead violation
     *  count when assertions are enabled throughout). */
    uint64_t
    leaksInjected() const
    {
        return leaksInjected_.load(std::memory_order_relaxed);
    }

    /** Region labels of every request a leak was injected into
     *  (assertion-enabled runs only; copied under the stats lock). */
    std::vector<std::string> leakedLabels() const;

    /** Merged per-request latency histogram (copy). */
    PauseHistogram latencySnapshot() const;

    /** Wall seconds spent inside iterate() so far (the denominator
     *  of the requests-per-second gauge). */
    double busySeconds() const;

    /**
     * Ask in-flight iterate() threads to drain: each finishes its
     * current request (closing its region) and exits its loop.
     * Clear with clearStop() before the next iterate().
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }
    void clearStop() { stop_.store(false, std::memory_order_relaxed); }

  private:
    void serveRequest(Runtime &runtime, MutatorContext &mutator,
                      uint32_t worker, uint64_t worker_seq, Rng &rng,
                      PauseHistogram &latency);

    void cacheLookupOrInsert(Runtime &runtime, MutatorContext &mutator,
                             uint64_t key);
    void cacheUnlink(Runtime &runtime, Object *entry);
    void cachePushFront(Runtime &runtime, Object *entry);

    ServerOptions options_;

    TypeId sessionType_ = kInvalidTypeId;
    TypeId userType_ = kInvalidTypeId;
    TypeId tableType_ = kInvalidTypeId;
    TypeId cacheType_ = kInvalidTypeId;
    TypeId entryType_ = kInvalidTypeId;
    TypeId valueType_ = kInvalidTypeId;
    TypeId bufferType_ = kInvalidTypeId;
    TypeId requestType_ = kInvalidTypeId;
    TypeId nodeType_ = kInvalidTypeId;
    TypeId leakListType_ = kInvalidTypeId;

    /** Named backgraph allocation-site tags for the per-request
     *  alloc paths (0 — untagged — when the backgraph is off). */
    uint32_t siteUser_ = 0;
    uint32_t siteCacheEntry_ = 0;
    uint32_t siteCacheValue_ = 0;
    uint32_t siteBuffer_ = 0;
    uint32_t siteRequest_ = 0;
    uint32_t siteRequestNode_ = 0;

    uint32_t sessionUserSlot_ = 0;
    uint32_t cacheHeadSlot_ = 0;
    uint32_t cacheTailSlot_ = 0;
    uint32_t entryValueSlot_ = 0;
    uint32_t entryPrevSlot_ = 0;
    uint32_t entryNextSlot_ = 0;
    uint32_t requestFirstSlot_ = 0;
    uint32_t nodeNextSlot_ = 0;
    uint32_t leakHeadSlot_ = 0;

    Handle sessionTable_;
    Handle cache_;
    Handle pool_;
    Handle leakList_;

    std::vector<MutatorContext *> workers_;

    /** Serializes the shared structures (sessions/cache/pool/leak
     *  list). Always acquired before any runtime lock. */
    std::mutex shared_;
    std::unordered_map<uint64_t, Object *> cacheIndex_;
    uint64_t cacheSize_ = 0;
    std::vector<uint32_t> poolFree_;
    uint64_t poolCheckouts_ = 0;

    /** Guards latency_ / leakedLabels_ / busyNanos_. */
    mutable std::mutex stats_;
    PauseHistogram latency_;
    std::vector<std::string> leakedLabels_;
    uint64_t busyNanos_ = 0;

    std::atomic<uint64_t> requestsCompleted_{0};
    std::atomic<uint64_t> leaksInjected_{0};
    std::atomic<bool> stop_{false};
    uint64_t iterations_ = 0;
};

/** Factory returning a concretely-typed server workload, so tests
 *  and benches can set options and read the test surface. */
std::unique_ptr<ServerWorkload>
makeServerWithOptions(const ServerOptions &options);

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_SERVER_H
