#include "workloads/managed_util.h"

#include <cstring>

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

ManagedVectorOps::ManagedVectorOps(Runtime &runtime,
                                   const std::string &prefix)
    : runtime_(runtime)
{
    vectorType_ = runtime_.types()
                      .define(prefix + "Vector")
                      .refs({"storage"})
                      .scalars(8)
                      .build();
    arrayType_ =
        runtime_.types().define(prefix + "Object[]").array().build();
    storageSlot_ = 0;
}

Object *
ManagedVectorOps::create(uint32_t initial_capacity) const
{
    if (initial_capacity == 0)
        initial_capacity = 1;
    Object *vec = runtime_.allocRaw(vectorType_);
    Handle root(runtime_, vec, "vector");
    Object *array = runtime_.allocArrayRaw(arrayType_, initial_capacity);
    runtime_.writeRef(vec, storageSlot_, array);
    setSize(vec, 0);
    return vec;
}

Object *
ManagedVectorOps::storage(const Object *vec) const
{
    return vec->ref(storageSlot_);
}

uint64_t
ManagedVectorOps::size(const Object *vec) const
{
    return vec->scalar<uint64_t>(0);
}

void
ManagedVectorOps::setSize(Object *vec, uint64_t size) const
{
    vec->setScalar<uint64_t>(0, size);
}

Object *
ManagedVectorOps::get(const Object *vec, uint64_t index) const
{
    if (index >= size(vec))
        panic(format("ManagedVector::get index %llu out of range %llu",
                     static_cast<unsigned long long>(index),
                     static_cast<unsigned long long>(size(vec))));
    return storage(vec)->ref(static_cast<uint32_t>(index));
}

void
ManagedVectorOps::set(Object *vec, uint64_t index, Object *value) const
{
    if (index >= size(vec))
        panic(format("ManagedVector::set index %llu out of range %llu",
                     static_cast<unsigned long long>(index),
                     static_cast<unsigned long long>(size(vec))));
    runtime_.writeRef(storage(vec), static_cast<uint32_t>(index), value);
}

void
ManagedVectorOps::push(Object *vec, Object *value) const
{
    uint64_t n = size(vec);
    Object *array = storage(vec);
    if (n == array->numRefs()) {
        // Grow: root the vector and the value across the allocation.
        Handle root_vec(runtime_, vec, "vector");
        Handle root_val(runtime_, value, "vector-push");
        uint32_t new_cap = array->numRefs() * 2;
        Object *grown = runtime_.allocArrayRaw(arrayType_, new_cap);
        array = storage(vec); // re-read: still valid (non-moving heap)
        for (uint32_t i = 0; i < n; ++i)
            runtime_.writeRef(grown, i, array->ref(i));
        runtime_.writeRef(vec, storageSlot_, grown);
        array = grown;
    }
    runtime_.writeRef(array, static_cast<uint32_t>(n), value);
    setSize(vec, n + 1);
}

void
ManagedVectorOps::removeAt(Object *vec, uint64_t index) const
{
    uint64_t n = size(vec);
    if (index >= n)
        panic("ManagedVector::removeAt index out of range");
    Object *array = storage(vec);
    for (uint64_t i = index + 1; i < n; ++i)
        runtime_.writeRef(array, static_cast<uint32_t>(i - 1),
                      array->ref(static_cast<uint32_t>(i)));
    runtime_.writeRef(array, static_cast<uint32_t>(n - 1), nullptr);
    setSize(vec, n - 1);
}

void
ManagedVectorOps::swapRemoveAt(Object *vec, uint64_t index) const
{
    uint64_t n = size(vec);
    if (index >= n)
        panic("ManagedVector::swapRemoveAt index out of range");
    Object *array = storage(vec);
    runtime_.writeRef(array, static_cast<uint32_t>(index),
                  array->ref(static_cast<uint32_t>(n - 1)));
    runtime_.writeRef(array, static_cast<uint32_t>(n - 1), nullptr);
    setSize(vec, n - 1);
}

void
ManagedVectorOps::clear(Object *vec) const
{
    uint64_t n = size(vec);
    Object *array = storage(vec);
    for (uint64_t i = 0; i < n; ++i)
        runtime_.writeRef(array, static_cast<uint32_t>(i), nullptr);
    setSize(vec, 0);
}

ManagedStringOps::ManagedStringOps(Runtime &runtime,
                                   const std::string &type_name)
    : runtime_(runtime)
{
    stringType_ = runtime_.types().define(type_name).array().build();
}

Object *
ManagedStringOps::create(const std::string &text) const
{
    uint32_t payload = 8 + static_cast<uint32_t>(text.size());
    Object *str = runtime_.allocScalarRaw(stringType_, payload);
    str->setScalar<uint64_t>(0, text.size());
    std::memcpy(str->scalarData() + 8, text.data(), text.size());
    return str;
}

std::string
ManagedStringOps::read(const Object *str) const
{
    uint64_t len = str->scalar<uint64_t>(0);
    return std::string(str->scalarData() + 8, len);
}

uint64_t
ManagedStringOps::length(const Object *str) const
{
    return str->scalar<uint64_t>(0);
}

} // namespace gcassert
