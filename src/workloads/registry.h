/**
 * @file
 * Name-to-factory registry for benchmark workloads.
 */

#ifndef GCASSERT_WORKLOADS_REGISTRY_H
#define GCASSERT_WORKLOADS_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace gcassert {

/** Creates a fresh instance of a workload. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/**
 * Global registry of benchmark workloads.
 */
class WorkloadRegistry {
  public:
    /** The process-wide registry, populated on first use. */
    static WorkloadRegistry &instance();

    /** Register a factory under @p name. */
    void add(const std::string &name, WorkloadFactory factory);

    /**
     * Instantiate the workload registered as @p name.
     * Calls fatal() for unknown names.
     */
    std::unique_ptr<Workload> create(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** @return true if @p name is registered. */
    bool has(const std::string &name) const;

  private:
    WorkloadRegistry();

    std::vector<std::pair<std::string, WorkloadFactory>> factories_;
};

/** @name Workload factories (one per workload translation unit)
 *  @{ */
std::unique_ptr<Workload> makeMinidb();
std::unique_ptr<Workload> makeJbbEmu();
std::unique_ptr<Workload> makeLusearch();
std::unique_ptr<Workload> makeSwapLeak();
std::unique_ptr<Workload> makeBinaryTrees();
std::unique_ptr<Workload> makeGraphChurn();
std::unique_ptr<Workload> makeStringStorm();
std::unique_ptr<Workload> makeTreeWalk();
std::unique_ptr<Workload> makeMapStress();
std::unique_ptr<Workload> makeArrayBloat();
std::unique_ptr<Workload> makeServer();
/** @} */

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_REGISTRY_H
