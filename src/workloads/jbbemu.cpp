/**
 * @file
 * jbbemu implementation — see jbbemu.h for the model and the seeded
 * defects.
 */

#include "workloads/jbbemu.h"

#include <string>

#include "support/rng.h"
#include "workloads/long_btree.h"
#include "workloads/managed_util.h"
#include "workloads/registry.h"

namespace gcassert {

namespace {

/** Scalar offsets. */
constexpr uint32_t kOrderId = 0;
constexpr uint32_t kOrderStatus = 8;
constexpr uint32_t kDistrictId = 0;
constexpr uint32_t kDistrictNextOrder = 8;
/** Delivery cursor: highest order id already processed. */
constexpr uint32_t kDistrictCursor = 16;

class JbbEmuWorkload : public Workload {
  public:
    explicit JbbEmuWorkload(const JbbOptions &options)
        : options_(options)
    {}

    const char *name() const override { return "jbbemu"; }

    const char *
    description() const override
    {
        return "three-tier order processing with B-tree order tables "
               "(SPEC JBB2000 / pseudojbb analog)";
    }

    uint64_t minHeapBytes() const override { return 8ull * 1024 * 1024; }

    void setup(Runtime &runtime) override;
    void iterate(Runtime &runtime) override;
    void enableAssertions(Runtime &runtime) override;
    void teardown(Runtime &runtime) override;

    /** The last reported violation count is read by tests. */
    const JbbOptions &options() const { return options_; }

  private:
    Object *buildCompany(Runtime &runtime);
    Object *makeOrder(Runtime &runtime, Object *district,
                      Object *customer);
    void destroyOrder(Runtime &runtime, Object *order);
    void runTransaction(Runtime &runtime);

    /** District helpers. */
    Object *randomDistrict();
    Object *randomCustomer();

    JbbOptions options_;
    Rng rng_{0x1bb2000};

    std::unique_ptr<ManagedVectorOps> vec_;
    std::unique_ptr<ManagedStringOps> str_;
    std::unique_ptr<LongBTreeOps> btree_;

    TypeId companyType_ = kInvalidTypeId;
    TypeId warehouseType_ = kInvalidTypeId;
    TypeId districtType_ = kInvalidTypeId;
    TypeId orderType_ = kInvalidTypeId;
    TypeId orderLineType_ = kInvalidTypeId;
    TypeId customerType_ = kInvalidTypeId;

    uint32_t companyWarehousesSlot_ = 0;
    uint32_t companyCustomersSlot_ = 0;
    uint32_t warehouseDistrictsSlot_ = 0;
    uint32_t warehouseNameSlot_ = 0;
    uint32_t districtTableSlot_ = 0;
    uint32_t orderCustomerSlot_ = 0;
    uint32_t orderLinesSlot_ = 0;
    uint32_t customerLastOrderSlot_ = 0;
    uint32_t customerNameSlot_ = 0;

    Handle company_;
    Handle oldCompany_;
    uint64_t iteration_ = 0;
};

void
JbbEmuWorkload::setup(Runtime &runtime)
{
    vec_ = std::make_unique<ManagedVectorOps>(runtime, "Jbb");
    str_ = std::make_unique<ManagedStringOps>(runtime, "JbbString");
    btree_ = std::make_unique<LongBTreeOps>(runtime, "Jbb");

    companyType_ = runtime.types()
                       .define("Company")
                       .refs({"warehouses", "customers"})
                       .scalars(8)
                       .build();
    warehouseType_ = runtime.types()
                         .define("Warehouse")
                         .refs({"districts", "name"})
                         .scalars(8)
                         .build();
    districtType_ = runtime.types()
                        .define("District")
                        .refs({"orderTable"})
                        .scalars(24)
                        .build();
    orderType_ = runtime.types()
                     .define("Order")
                     .refs({"customer", "orderLines"})
                     .scalars(16)
                     .build();
    orderLineType_ = runtime.types()
                         .define("OrderLine")
                         .refCount(0)
                         .scalars(24)
                         .build();
    customerType_ = runtime.types()
                        .define("Customer")
                        .refs({"lastOrder", "name"})
                        .scalars(8)
                        .build();

    auto &types = runtime.types();
    companyWarehousesSlot_ = types.get(companyType_).slotIndex("warehouses");
    companyCustomersSlot_ = types.get(companyType_).slotIndex("customers");
    warehouseDistrictsSlot_ =
        types.get(warehouseType_).slotIndex("districts");
    warehouseNameSlot_ = types.get(warehouseType_).slotIndex("name");
    districtTableSlot_ = types.get(districtType_).slotIndex("orderTable");
    orderCustomerSlot_ = types.get(orderType_).slotIndex("customer");
    orderLinesSlot_ = types.get(orderType_).slotIndex("orderLines");
    customerLastOrderSlot_ =
        types.get(customerType_).slotIndex("lastOrder");
    customerNameSlot_ = types.get(customerType_).slotIndex("name");

    company_ = Handle(runtime, buildCompany(runtime), "jbb.company");
    oldCompany_ = Handle(runtime, nullptr, "jbb.oldCompany");
}

Object *
JbbEmuWorkload::buildCompany(Runtime &runtime)
{
    Object *company = runtime.allocRaw(companyType_);
    Handle guard(runtime, company, "jbb.newcompany");

    runtime.writeRef(company, companyWarehousesSlot_,
                    vec_->create(options_.warehouses + 1));
    runtime.writeRef(company, companyCustomersSlot_,
                    vec_->create(options_.customers + 1));

    for (uint32_t c = 0; c < options_.customers; ++c) {
        Object *customer = runtime.allocRaw(customerType_);
        Handle cguard(runtime, customer, "jbb.newcustomer");
        runtime.writeRef(customer, customerNameSlot_,
                         str_->create("customer-" + std::to_string(c)));
        vec_->push(company->ref(companyCustomersSlot_), customer);
    }

    uint64_t district_seq = 0;
    for (uint32_t w = 0; w < options_.warehouses; ++w) {
        Object *warehouse = runtime.allocRaw(warehouseType_);
        Handle wguard(runtime, warehouse, "jbb.newwarehouse");
        runtime.writeRef(warehouse, warehouseNameSlot_,
                          str_->create("warehouse-" + std::to_string(w)));
        runtime.writeRef(warehouse, warehouseDistrictsSlot_,
                          vec_->create(options_.districtsPerWarehouse + 1));
        vec_->push(company->ref(companyWarehousesSlot_), warehouse);

        for (uint32_t d = 0; d < options_.districtsPerWarehouse; ++d) {
            Object *district = runtime.allocRaw(districtType_);
            Handle dguard(runtime, district, "jbb.newdistrict");
            district->setScalar<uint64_t>(kDistrictId, ++district_seq);
            district->setScalar<uint64_t>(kDistrictNextOrder, 1);
            district->setScalar<int64_t>(
                kDistrictCursor,
                static_cast<int64_t>(district_seq * 1000000000ull));
            runtime.writeRef(district, districtTableSlot_, btree_->create());
            vec_->push(warehouse->ref(warehouseDistrictsSlot_), district);

            // Seed the order table.
            for (uint32_t o = 0; o < options_.initialOrdersPerDistrict;
                 ++o) {
                Object *customer = vec_->get(
                    company->ref(companyCustomersSlot_),
                    rng_.below(options_.customers));
                makeOrder(runtime, district, customer);
            }
        }
    }
    return company;
}

Object *
JbbEmuWorkload::makeOrder(Runtime &runtime, Object *district,
                          Object *customer)
{
    uint64_t seq =
        district->scalar<uint64_t>(kDistrictNextOrder);
    district->setScalar<uint64_t>(kDistrictNextOrder, seq + 1);
    int64_t order_id = static_cast<int64_t>(
        district->scalar<uint64_t>(kDistrictId) * 1000000000ull + seq);

    Object *order = runtime.allocRaw(orderType_);
    Handle guard(runtime, order, "jbb.neworder");
    order->setScalar<int64_t>(kOrderId, order_id);
    order->setScalar<uint64_t>(kOrderStatus, 0);
    runtime.writeRef(order, orderCustomerSlot_, customer);

    uint32_t lines = 3 + static_cast<uint32_t>(rng_.below(5));
    Object *line_array = runtime.allocArrayRaw(vec_->arrayType(), lines);
    runtime.writeRef(order, orderLinesSlot_, line_array);
    for (uint32_t i = 0; i < lines; ++i) {
        Object *line = runtime.allocRaw(orderLineType_);
        line->setScalar<uint64_t>(0, rng_.next() % 100000);
        line->setScalar<uint64_t>(8, i);
        line->setScalar<uint64_t>(16, rng_.next() % 100);
        runtime.writeRef(line_array, i, line);
    }

    // Insert into the district's order table; the Customer also
    // remembers its most recent order (the leak-prone reference).
    Object *table = district->ref(districtTableSlot_);
    btree_->insert(table, order_id, order);
    runtime.writeRef(customer, customerLastOrderSlot_, order);

    if (assertionsEnabled_ && options_.assertOwnership)
        runtime.assertOwnedBy(table, order);
    return order;
}

void
JbbEmuWorkload::destroyOrder(Runtime &runtime, Object *order)
{
    // The factory-pattern destroy() of SPEC JBB2000: after this call
    // the Order is supposed to be unreachable.
    order->setScalar<uint64_t>(kOrderStatus, 2);
    if (options_.fixCustomerLastOrder) {
        Object *customer = order->ref(orderCustomerSlot_);
        if (customer &&
            customer->ref(customerLastOrderSlot_) == order)
            runtime.writeRef(customer, customerLastOrderSlot_, nullptr);
    }
    if (assertionsEnabled_ && options_.assertDeadOnDestroy)
        runtime.assertDead(order);
}

Object *
JbbEmuWorkload::randomDistrict()
{
    Object *warehouses = company_->ref(companyWarehousesSlot_);
    Object *warehouse =
        vec_->get(warehouses, rng_.below(vec_->size(warehouses)));
    Object *districts = warehouse->ref(warehouseDistrictsSlot_);
    return vec_->get(districts, rng_.below(vec_->size(districts)));
}

Object *
JbbEmuWorkload::randomCustomer()
{
    // New orders come from the *active* half of the customer base,
    // like the skewed access of the real benchmark. Customers in the
    // inactive half never place another order, so their lastOrder
    // keeps pointing at an already-delivered Order — exactly the
    // population in which the paper observed the leak.
    Object *customers = company_->ref(companyCustomersSlot_);
    uint64_t n = vec_->size(customers);
    return vec_->get(customers, rng_.below(n / 2 ? n / 2 : n));
}

void
JbbEmuWorkload::runTransaction(Runtime &runtime)
{
    double dice = rng_.real();
    if (dice < 0.50) {
        // NewOrder.
        makeOrder(runtime, randomDistrict(), randomCustomer());
    } else if (dice < 0.80) {
        // Payment: touch a customer, allocate a transient receipt.
        Object *customer = randomCustomer();
        Object *receipt = str_->create(
            "receipt:" + str_->read(customer->ref(customerNameSlot_)) +
            ":" + std::to_string(rng_.next() % 100000) + ":" +
            std::string(180, 'p'));
        (void)receipt;
    } else {
        // Delivery: process the oldest unprocessed orders of one
        // district. Order ids are dense per district, so the next
        // order to deliver is always cursor + 1.
        Object *district = randomDistrict();
        Object *table = district->ref(districtTableSlot_);
        for (int k = 0; k < 3; ++k) {
            int64_t next = district->scalar<int64_t>(kDistrictCursor) + 1;
            // With the Jump & McKinley defect present, completed
            // Orders stay in the table (only looked up, never
            // removed).
            Object *order = options_.removeFromOrderTable
                ? btree_->remove(table, next)
                : btree_->lookup(table, next);
            if (!order)
                break;
            district->setScalar<int64_t>(kDistrictCursor, next);
            destroyOrder(runtime, order);
        }
    }
}

void
JbbEmuWorkload::iterate(Runtime &runtime)
{
    ++iteration_;
    if (iteration_ > 1 &&
        (iteration_ - 1) % options_.iterationsPerCompany == 0) {
        // The pseudojbb main loop: the previous iteration's Company
        // is destroyed *before* the current one is created, so at
        // most one Company should ever be live. The oldCompany
        // local, however, keeps the destroyed Company reachable
        // through the whole iteration unless the drag fix is
        // applied (paper section 3.2.1, second defect).
        Object *previous = company_.get();
        if (assertionsEnabled_ && options_.assertDeadOldCompany)
            runtime.assertDead(previous);
        oldCompany_.set(options_.fixOldCompanyDrag ? nullptr : previous);
        company_.set(nullptr);
        company_.set(buildCompany(runtime));
    }
    for (uint32_t t = 0; t < options_.transactionsPerIteration; ++t)
        runTransaction(runtime);
}

void
JbbEmuWorkload::enableAssertions(Runtime &runtime)
{
    Workload::enableAssertions(runtime);
    if (options_.assertCompanySingleton)
        runtime.assertInstances(companyType_, 1);
    if (options_.assertOwnership) {
        // Cover orders inserted during setup.
        Object *warehouses = company_->ref(companyWarehousesSlot_);
        for (uint64_t w = 0; w < vec_->size(warehouses); ++w) {
            Object *warehouse = vec_->get(warehouses, w);
            Object *districts =
                warehouse->ref(warehouseDistrictsSlot_);
            for (uint64_t d = 0; d < vec_->size(districts); ++d) {
                Object *district = vec_->get(districts, d);
                Object *table = district->ref(districtTableSlot_);
                btree_->forEach(table,
                                [&](int64_t, Object *order) {
                                    runtime.assertOwnedBy(table, order);
                                });
            }
        }
    }
}

void
JbbEmuWorkload::teardown(Runtime &runtime)
{
    (void)runtime;
    company_.reset();
    oldCompany_.reset();
}

} // namespace

std::unique_ptr<Workload>
makeJbbEmu()
{
    // Registry default: the paper-faithful program, i.e. SPEC
    // JBB2000 *with* its real defects. The performance figures run
    // this program, warnings and all, exactly as the paper did when
    // it instrumented the unmodified benchmark.
    // Registry default: the perf-measurement shape of the paper's
    // pseudojbb runs (section 3.1.2) — orders churn through the
    // tables and die quickly ("only 420 ownee objects are checked
    // per GC"), and the instrumentation is ownership plus the
    // Company singleton ("one call to assert-instances and 31,038
    // calls to assert-ownedBy"). The three seeded defects and the
    // assert-dead instrumentation are exercised explicitly by the
    // qualitative benches and tests via makeJbbEmuWithOptions.
    JbbOptions options;
    options.fixCustomerLastOrder = true;
    options.fixOldCompanyDrag = true;
    options.removeFromOrderTable = true;
    options.assertDeadOnDestroy = false;
    options.assertDeadOldCompany = false;
    options.iterationsPerCompany = 4;
    return std::make_unique<JbbEmuWorkload>(options);
}

std::unique_ptr<Workload>
makeJbbEmuWithOptions(const JbbOptions &options)
{
    return std::make_unique<JbbEmuWorkload>(options);
}

} // namespace gcassert
