/**
 * @file
 * longBTree — a managed B-tree keyed by int64, the analog of SPEC
 * JBB2000's spec.jbb.infra.Collections.longBTree.
 *
 * The tree is built entirely from managed objects: a tree header
 * holding the root, and nodes each holding one Object[] slots array
 * (values in leaves, children in internal nodes) plus inline scalar
 * keys. This reproduces the heap shape in the paper's Figure 1 path:
 *
 *   District -> longBTree -> longBTreeNode -> Object[] -> Order
 *
 * Deletion is by key with eager pruning of emptied nodes (no
 * rebalancing), which keeps the structure compact under the
 * insert-ascending / remove-oldest pattern the JBB workload
 * produces.
 */

#ifndef GCASSERT_WORKLOADS_LONG_BTREE_H
#define GCASSERT_WORKLOADS_LONG_BTREE_H

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/runtime.h"

namespace gcassert {

/**
 * Operations on managed longBTree objects. One instance defines the
 * node/tree types in a runtime and operates on any number of trees.
 */
class LongBTreeOps {
  public:
    /** Maximum keys per node (fan-out is kMaxKeys + 1). */
    static constexpr uint32_t kMaxKeys = 8;

    /** Define the tree/node/array types with the given prefix. */
    LongBTreeOps(Runtime &runtime, const std::string &prefix);

    /** Allocate an empty tree. */
    Object *create() const;

    /**
     * Insert (@p key -> @p value). Keys are unique: inserting an
     * existing key replaces the value.
     */
    void insert(Object *tree, int64_t key, Object *value) const;

    /**
     * Remove @p key.
     * @return The removed value, or nullptr if the key was absent.
     */
    Object *remove(Object *tree, int64_t key) const;

    /** @return the value for @p key, or nullptr. */
    Object *lookup(const Object *tree, int64_t key) const;

    /** Number of entries. */
    uint64_t size(const Object *tree) const;

    /**
     * Smallest key in the tree.
     * @param[out] found False when the tree is empty.
     */
    int64_t minKey(const Object *tree, bool &found) const;

    /** In-order traversal. */
    void forEach(const Object *tree,
                 const std::function<void(int64_t, Object *)> &visit) const;

    /**
     * Structural invariant check (for tests): key ordering, node
     * occupancy, size consistency.
     * @return The number of entries found.
     */
    uint64_t checkInvariants(const Object *tree) const;

    TypeId treeType() const { return treeType_; }
    TypeId nodeType() const { return nodeType_; }
    TypeId arrayType() const { return arrayType_; }

  private:
    struct SplitResult {
        bool split = false;
        int64_t midKey = 0;
        Object *right = nullptr;
    };

    struct RemoveResult {
        Object *value = nullptr;
        bool childEmptied = false;
    };

    /** @name Node field accessors
     *  @{ */
    Object *slots(const Object *node) const;
    uint64_t numKeys(const Object *node) const;
    void setNumKeys(Object *node, uint64_t n) const;
    bool isLeaf(const Object *node) const;
    int64_t key(const Object *node, uint32_t i) const;
    void setKey(Object *node, uint32_t i, int64_t k) const;
    /** @} */

    Object *allocNode(bool leaf) const;

    /** Replace the value of an existing key (size unchanged). */
    void replaceExisting(Object *tree, int64_t key, Object *value) const;

    SplitResult insertRec(Object *node, int64_t key, Object *value) const;
    RemoveResult removeRec(Object *node, int64_t key) const;
    uint64_t checkNode(const Object *node, int64_t lo, int64_t hi,
                       bool is_root) const;

    Runtime &runtime_;
    TypeId treeType_ = kInvalidTypeId;
    TypeId nodeType_ = kInvalidTypeId;
    TypeId arrayType_ = kInvalidTypeId;
};

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_LONG_BTREE_H
