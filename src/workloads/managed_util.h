/**
 * @file
 * Shared managed-heap building blocks for workloads: a growable
 * object vector and a string-like byte object, built from the public
 * runtime API.
 *
 * These helpers encapsulate the GC-safety discipline (rooting every
 * live object across allocations), so workload code can treat them
 * like ordinary containers.
 */

#ifndef GCASSERT_WORKLOADS_MANAGED_UTIL_H
#define GCASSERT_WORKLOADS_MANAGED_UTIL_H

#include <cstdint>
#include <string>

#include "runtime/handle.h"
#include "runtime/runtime.h"

namespace gcassert {

/**
 * Operations on a managed growable vector.
 *
 * Representation: a fixed-shape "Vector" object with one reference
 * slot (the backing "Object[]" array) and an 8-byte size field, plus
 * the array type itself. Matches the ArrayList-style containers the
 * paper's Java benchmarks use (and shows in the Figure 1 path as
 * "[Ljava/lang/Object;").
 */
class ManagedVectorOps {
  public:
    /**
     * Define the supporting types in @p runtime's registry with the
     * given name prefix (types must be unique per runtime).
     */
    ManagedVectorOps(Runtime &runtime, const std::string &prefix);

    /** Allocate an empty vector with the given initial capacity. */
    Object *create(uint32_t initial_capacity = 8) const;

    /** Number of elements. */
    uint64_t size(const Object *vec) const;

    /** Element at @p index. @pre index < size. */
    Object *get(const Object *vec, uint64_t index) const;

    /** Replace element at @p index. @pre index < size. */
    void set(Object *vec, uint64_t index, Object *value) const;

    /** Append @p value, growing the backing array when full. */
    void push(Object *vec, Object *value) const;

    /** Remove the element at @p index by shifting the tail left. */
    void removeAt(Object *vec, uint64_t index) const;

    /**
     * Remove the element at @p index by swapping in the last
     * element (O(1), order not preserved).
     */
    void swapRemoveAt(Object *vec, uint64_t index) const;

    /** Drop all elements (keeps the backing array). */
    void clear(Object *vec) const;

    /** Type id of the Vector wrapper. */
    TypeId vectorType() const { return vectorType_; }

    /** Type id of the backing Object[] array. */
    TypeId arrayType() const { return arrayType_; }

  private:
    Object *storage(const Object *vec) const;
    void setSize(Object *vec, uint64_t size) const;

    Runtime &runtime_;
    TypeId vectorType_;
    TypeId arrayType_;
    uint32_t storageSlot_;
};

/**
 * Operations on managed byte-string objects (scalar payload only),
 * the analog of java.lang.String instances in the Java benchmarks.
 */
class ManagedStringOps {
  public:
    ManagedStringOps(Runtime &runtime, const std::string &type_name);

    /** Allocate a string object holding @p text. */
    Object *create(const std::string &text) const;

    /** Read the text back. */
    std::string read(const Object *str) const;

    /** Logical length of @p str. */
    uint64_t length(const Object *str) const;

    TypeId stringType() const { return stringType_; }

  private:
    Runtime &runtime_;
    TypeId stringType_;
};

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_MANAGED_UTIL_H
