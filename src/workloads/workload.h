/**
 * @file
 * The benchmark-workload interface.
 *
 * A workload is a deterministic managed program: it defines types,
 * builds state in setup(), and performs one unit of work per
 * iterate() call. The driver runs workloads under the paper's three
 * configurations (Base / Infrastructure / WithAssertions); a
 * workload adds its paper-style assertions only when the driver
 * calls enableAssertions().
 */

#ifndef GCASSERT_WORKLOADS_WORKLOAD_H
#define GCASSERT_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <string>

#include "runtime/runtime.h"

namespace gcassert {

/**
 * Base class for all benchmark workloads.
 */
class Workload {
  public:
    virtual ~Workload();

    /** Short identifier used on the bench command line and tables. */
    virtual const char *name() const = 0;

    /** One-line description for --list output. */
    virtual const char *description() const = 0;

    /**
     * Calibrated minimum live-heap size. The driver sets the heap
     * budget to twice this value, matching the paper's methodology.
     */
    virtual uint64_t minHeapBytes() const = 0;

    /** Define types and build the initial heap state. */
    virtual void setup(Runtime &runtime) = 0;

    /** Perform one benchmark iteration. */
    virtual void iterate(Runtime &runtime) = 0;

    /**
     * Turn on this workload's GC assertions (the WithAssertions
     * configuration). Called once, after setup(). The default is a
     * no-op: most workloads only participate in the infrastructure
     * overhead measurements.
     */
    virtual void enableAssertions(Runtime &runtime);

    /** Release handles so the runtime can be destroyed. */
    virtual void teardown(Runtime &runtime);

    /**
     * Monotonic count of workload-defined work units (requests,
     * transactions, queries) completed so far across all iterate()
     * calls. The driver differences it around the measured window to
     * report units/s. 0 means the workload defines no natural unit.
     */
    virtual uint64_t workUnitsCompleted() const;

    /** True once enableAssertions() has been called. */
    bool assertionsEnabled() const { return assertionsEnabled_; }

  protected:
    bool assertionsEnabled_ = false;
};

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_WORKLOAD_H
