/**
 * @file
 * lusearch — the DaCapo lusearch / Apache Lucene analog.
 *
 * A pre-built inverted index (terms -> posting lists) is searched by
 * 32 worker threads. Following the defect the paper found in the
 * benchmark (section 3.2.2), *each thread opens its own
 * IndexSearcher* instead of sharing one, against the Lucene
 * documentation's performance recommendation. An
 * assert-instances(IndexSearcher, 1) therefore reports 32 live
 * instances during execution.
 *
 * Concurrency model: the runtime is stop-the-world and serialized;
 * each search runs under a workload mutex so no thread holds
 * unrooted raw object pointers across another thread's collection
 * (coarse-locked VM behaviour).
 */

#include <barrier>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/rng.h"
#include "workloads/managed_util.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {

namespace {

class LusearchWorkload : public Workload {
  public:
    const char *name() const override { return "lusearch"; }

    const char *
    description() const override
    {
        return "multithreaded inverted-index text search with one "
               "IndexSearcher per thread (DaCapo lusearch analog)";
    }

    uint64_t minHeapBytes() const override { return 3ull * 1024 * 1024; }

    void setup(Runtime &runtime) override;
    void iterate(Runtime &runtime) override;
    void enableAssertions(Runtime &runtime) override;
    void teardown(Runtime &runtime) override;

  private:
    static constexpr uint32_t kThreads = 32;
    static constexpr uint32_t kTerms = 1500;
    static constexpr uint32_t kDocs = 4000;
    static constexpr uint32_t kSearchesPerThread = 400;

    void searchOnce(Runtime &runtime, MutatorContext &mutator,
                    Object *searcher, Rng &rng);

    std::unique_ptr<ManagedVectorOps> vec_;
    std::unique_ptr<ManagedStringOps> str_;

    TypeId searcherType_ = kInvalidTypeId;
    TypeId indexType_ = kInvalidTypeId;
    TypeId postingType_ = kInvalidTypeId;
    TypeId docType_ = kInvalidTypeId;
    TypeId hitsType_ = kInvalidTypeId;

    uint32_t indexTermsSlot_ = 0;
    uint32_t indexPostingsSlot_ = 0;
    uint32_t indexDocsSlot_ = 0;
    uint32_t searcherIndexSlot_ = 0;
    uint32_t docTitleSlot_ = 0;
    uint32_t hitsDocsSlot_ = 0;

    Handle index_;
    std::vector<MutatorContext *> workers_;
    std::mutex heapAccess_;
    uint64_t iterationSeed_ = 0;
};

void
LusearchWorkload::setup(Runtime &runtime)
{
    vec_ = std::make_unique<ManagedVectorOps>(runtime, "Lu");
    str_ = std::make_unique<ManagedStringOps>(runtime, "LuString");

    searcherType_ = runtime.types()
                        .define("IndexSearcher")
                        .refs({"index"})
                        .scalars(8)
                        .build();
    indexType_ = runtime.types()
                     .define("InvertedIndex")
                     .refs({"terms", "postings", "docs"})
                     .scalars(8)
                     .build();
    postingType_ =
        runtime.types().define("PostingList").array().build();
    docType_ = runtime.types()
                   .define("Document")
                   .refs({"title"})
                   .scalars(8)
                   .build();
    hitsType_ = runtime.types()
                    .define("Hits")
                    .refs({"docs"})
                    .scalars(8)
                    .build();

    auto &types = runtime.types();
    indexTermsSlot_ = types.get(indexType_).slotIndex("terms");
    indexPostingsSlot_ = types.get(indexType_).slotIndex("postings");
    indexDocsSlot_ = types.get(indexType_).slotIndex("docs");
    searcherIndexSlot_ = types.get(searcherType_).slotIndex("index");
    docTitleSlot_ = types.get(docType_).slotIndex("title");
    hitsDocsSlot_ = types.get(hitsType_).slotIndex("docs");

    index_ = Handle(runtime, runtime.allocRaw(indexType_), "lu.index");
    runtime.writeRef(index_.get(), indexTermsSlot_, vec_->create(kTerms));
    runtime.writeRef(index_.get(), indexPostingsSlot_, vec_->create(kTerms));
    runtime.writeRef(index_.get(), indexDocsSlot_, vec_->create(kDocs));

    Rng rng(0x10cea2);

    // Documents.
    for (uint32_t d = 0; d < kDocs; ++d) {
        Object *doc = runtime.allocRaw(docType_);
        Handle guard(runtime, doc, "lu.doc");
        doc->setScalar<uint64_t>(0, d);
        runtime.writeRef(doc, docTitleSlot_,
                    str_->create("doc-" + std::to_string(d)));
        vec_->push(index_->ref(indexDocsSlot_), doc);
    }

    // Terms and posting lists (scalar arrays of doc ids).
    for (uint32_t t = 0; t < kTerms; ++t) {
        Object *term = str_->create("term-" + std::to_string(t));
        Handle guard(runtime, term, "lu.term");
        vec_->push(index_->ref(indexTermsSlot_), term);

        uint32_t df = 10 + static_cast<uint32_t>(rng.below(90));
        Object *posting = runtime.allocScalarRaw(
            postingType_, 8 + df * 4);
        posting->setScalar<uint64_t>(0, df);
        uint32_t doc = static_cast<uint32_t>(rng.below(kDocs / 4));
        for (uint32_t i = 0; i < df; ++i) {
            doc += static_cast<uint32_t>(rng.below(4 * kDocs / df)) + 1;
            posting->setScalar<uint32_t>(8 + i * 4, doc % kDocs);
        }
        vec_->push(index_->ref(indexPostingsSlot_), posting);
    }

    // One mutator context per worker thread (registered once).
    for (uint32_t i = 0; i < kThreads; ++i)
        workers_.push_back(
            &runtime.registerMutator("lusearch-" + std::to_string(i)));
}

void
LusearchWorkload::searchOnce(Runtime &runtime, MutatorContext &mutator,
                             Object *searcher, Rng &rng)
{
    std::lock_guard<std::mutex> guard(heapAccess_);

    Object *index = searcher->ref(searcherIndexSlot_);
    Object *postings = index->ref(indexPostingsSlot_);
    Object *docs = index->ref(indexDocsSlot_);

    // Disjunctive query over 2 terms: merge both posting lists into
    // a Hits result (the common OR-query path of the engine).
    uint32_t t1 = static_cast<uint32_t>(rng.below(kTerms));
    uint32_t t2 = static_cast<uint32_t>(rng.below(kTerms));
    Object *p1 = vec_->get(postings, t1);
    Object *p2 = vec_->get(postings, t2);

    Object *hits = runtime.allocRaw(hitsType_, &mutator);
    Handle hguard(runtime, hits, "lu.hits");
    runtime.writeRef(hits, hitsDocsSlot_, vec_->create(16));

    // Collect the top-k merged hits, like a real top-k collector.
    constexpr uint64_t kTopK = 16;
    uint64_t n1 = p1->scalar<uint64_t>(0);
    uint64_t n2 = p2->scalar<uint64_t>(0);
    uint64_t i = 0, j = 0;
    while ((i < n1 || j < n2) &&
           vec_->size(hits->ref(hitsDocsSlot_)) < kTopK) {
        uint32_t a = i < n1
            ? p1->scalar<uint32_t>(8 + static_cast<uint32_t>(i) * 4)
            : UINT32_MAX;
        uint32_t b = j < n2
            ? p2->scalar<uint32_t>(8 + static_cast<uint32_t>(j) * 4)
            : UINT32_MAX;
        uint32_t doc;
        if (a == b) {
            doc = a;
            ++i;
            ++j;
        } else if (a < b) {
            doc = a;
            ++i;
        } else {
            doc = b;
            ++j;
        }
        vec_->push(hits->ref(hitsDocsSlot_), vec_->get(docs, doc));
    }

    // Render the top hits into transient result strings (the
    // snippet generation of the real benchmark).
    uint64_t shown = vec_->size(hits->ref(hitsDocsSlot_));
    if (shown > 4)
        shown = 4;
    for (uint64_t h = 0; h < shown; ++h) {
        Object *top = vec_->get(hits->ref(hitsDocsSlot_), h);
        Object *summary = str_->create(
            "hit:" + str_->read(top->ref(docTitleSlot_)) + ":" +
            std::string(220, 'q'));
        (void)summary;
    }
}

void
LusearchWorkload::iterate(Runtime &runtime)
{
    ++iterationSeed_;
    // All workers open their searchers, rendezvous (the DaCapo
    // harness starts the worker pool together), then search. The
    // barrier guarantees the defect's signature heap state: all 32
    // IndexSearchers live at once.
    std::barrier rendezvous(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([this, &runtime, &rendezvous, t]() {
            MutatorContext &mutator = *workers_[t];
            Rng rng((iterationSeed_ << 8) ^ t);

            // The lusearch defect: each thread opens its *own*
            // IndexSearcher and keeps it for all of its searches.
            Handle searcher = [&] {
                std::lock_guard<std::mutex> guard(heapAccess_);
                Object *s = runtime.allocRaw(searcherType_, &mutator);
                Handle h(runtime, s, "lu.searcher");
                runtime.writeRef(s, searcherIndexSlot_, index_.get());
                s->setScalar<uint64_t>(0, t);
                return h;
            }();
            rendezvous.arrive_and_wait();

            for (uint32_t q = 0; q < kSearchesPerThread; ++q)
                searchOnce(runtime, mutator, searcher.get(), rng);

            // Hold the searcher until every worker has finished its
            // queries — the steady state a multicore run exhibits
            // for almost the whole execution ("for most of the
            // benchmark's execution, 32 instances are live").
            rendezvous.arrive_and_wait();
        });
    }
    for (auto &thread : threads)
        thread.join();
}

void
LusearchWorkload::enableAssertions(Runtime &runtime)
{
    Workload::enableAssertions(runtime);
    // The Lucene documentation's recommendation as an assertion:
    // only one IndexSearcher should ever be live.
    runtime.assertInstances(searcherType_, 1);
}

void
LusearchWorkload::teardown(Runtime &runtime)
{
    (void)runtime;
    index_.reset();
}

} // namespace

std::unique_ptr<Workload>
makeLusearch()
{
    return std::make_unique<LusearchWorkload>();
}

} // namespace gcassert
