/**
 * @file
 * minidb — the SPECjvm98 _209_db analog.
 *
 * An in-memory database owns a main container of Entry records; a
 * separate name cache also references a subset of the entries. Each
 * iteration performs a deterministic mix of adds, removes, lookups
 * and scans, allocating short-lived query strings along the way.
 *
 * WithAssertions configuration (paper section 3.1.1): every Entry
 * added to the database is asserted to be *owned by* the Database
 * object, and removals of uncached entries assert-dead the removed
 * entry — the same placement the paper used for _209_db (assert-dead
 * where the original code nulls an instance variable).
 */

#include <cstdint>

#include "support/rng.h"
#include "workloads/managed_util.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {

namespace {

class MinidbWorkload : public Workload {
  public:
    const char *name() const override { return "minidb"; }

    const char *
    description() const override
    {
        return "in-memory database with an owned main container and a "
               "separate cache (_209_db analog)";
    }

    uint64_t minHeapBytes() const override { return 5ull * 1024 * 1024; }

    void setup(Runtime &runtime) override;
    void iterate(Runtime &runtime) override;
    void enableAssertions(Runtime &runtime) override;
    void teardown(Runtime &runtime) override;

  private:
    /** Allocate an Entry with its name and payload strings. */
    Object *makeEntry(Runtime &runtime, uint64_t id);

    /** Remove an entry from the cache if present. */
    void uncache(Object *entry);

    static constexpr uint64_t kInitialEntries = 15000;
    static constexpr uint64_t kOpsPerIteration = 40000;
    static constexpr double kCacheChance = 0.25;
    /** Throttle for assert-dead placement on removals. */
    static constexpr uint64_t kAssertDeadStride = 64;

    Rng rng_{0xdb5eed};
    uint64_t nextId_ = 0;
    uint64_t eligibleRemovals_ = 0;

    std::unique_ptr<ManagedVectorOps> vec_;
    std::unique_ptr<ManagedStringOps> str_;
    TypeId databaseType_ = kInvalidTypeId;
    TypeId entryType_ = kInvalidTypeId;
    uint32_t entriesSlot_ = 0;
    uint32_t nameSlot_ = 0;
    uint32_t payloadSlot_ = 0;

    Handle database_;
    Handle cache_;
};

void
MinidbWorkload::setup(Runtime &runtime)
{
    vec_ = std::make_unique<ManagedVectorOps>(runtime, "Db");
    str_ = std::make_unique<ManagedStringOps>(runtime, "DbString");

    databaseType_ = runtime.types()
                        .define("Database")
                        .refs({"entries"})
                        .scalars(8)
                        .build();
    entryType_ = runtime.types()
                     .define("Entry")
                     .refs({"name", "payload"})
                     .scalars(16)
                     .build();
    entriesSlot_ = runtime.types().get(databaseType_).slotIndex("entries");
    nameSlot_ = runtime.types().get(entryType_).slotIndex("name");
    payloadSlot_ = runtime.types().get(entryType_).slotIndex("payload");

    database_ = Handle(runtime, runtime.allocRaw(databaseType_),
                       "minidb.database");
    runtime.writeRef(database_.get(), entriesSlot_, vec_->create(1024));

    cache_ = Handle(runtime, vec_->create(1024), "minidb.cache");

    for (uint64_t i = 0; i < kInitialEntries; ++i) {
        Object *entry = makeEntry(runtime, nextId_++);
        Handle root(runtime, entry, "minidb.tmp");
        vec_->push(database_->ref(entriesSlot_), entry);
        if (assertionsEnabled_)
            runtime.assertOwnedBy(database_.get(), entry);
        if (rng_.chance(kCacheChance)) {
            entry->setScalar<uint64_t>(8, 1); // cached flag
            vec_->push(cache_.get(), entry);
        }
    }
}

Object *
MinidbWorkload::makeEntry(Runtime &runtime, uint64_t id)
{
    Object *entry = runtime.allocRaw(entryType_);
    Handle root(runtime, entry, "minidb.newentry");
    entry->setScalar<uint64_t>(0, id);
    entry->setScalar<uint64_t>(8, 0); // cached flag
    runtime.writeRef(entry, nameSlot_,
                  str_->create("entry-" + std::to_string(id)));
    runtime.writeRef(entry, payloadSlot_,
                  str_->create("payload:" + std::to_string(id * 7919) +
                               ":" + std::string(32, 'x')));
    return entry;
}

void
MinidbWorkload::uncache(Object *entry)
{
    if (entry->scalar<uint64_t>(8) == 0)
        return;
    uint64_t n = vec_->size(cache_.get());
    for (uint64_t i = 0; i < n; ++i) {
        if (vec_->get(cache_.get(), i) == entry) {
            vec_->swapRemoveAt(cache_.get(), i);
            entry->setScalar<uint64_t>(8, 0);
            return;
        }
    }
}

void
MinidbWorkload::iterate(Runtime &runtime)
{
    Object *entries = database_->ref(entriesSlot_);
    for (uint64_t op = 0; op < kOpsPerIteration; ++op) {
        double dice = rng_.real();
        if (dice < 0.35) {
            // Add a record.
            Object *entry = makeEntry(runtime, nextId_++);
            Handle root(runtime, entry, "minidb.tmp");
            entries = database_->ref(entriesSlot_);
            vec_->push(entries, entry);
            if (assertionsEnabled_)
                runtime.assertOwnedBy(database_.get(), entry);
            if (rng_.chance(kCacheChance)) {
                entry->setScalar<uint64_t>(8, 1);
                vec_->push(cache_.get(), entry);
            }
        } else if (dice < 0.70) {
            // Remove a record (from both structures, keeping the
            // ownership assertion satisfied).
            entries = database_->ref(entriesSlot_);
            uint64_t n = vec_->size(entries);
            if (n == 0)
                continue;
            uint64_t idx = rng_.below(n);
            Object *victim = vec_->get(entries, idx);
            bool cached = victim->scalar<uint64_t>(8) != 0;
            vec_->swapRemoveAt(entries, idx);
            uncache(victim);
            if (assertionsEnabled_ && !cached &&
                ++eligibleRemovals_ % kAssertDeadStride == 0) {
                // The paper's assert-dead placement: the record was
                // just unlinked, so it must be unreachable.
                runtime.assertDead(victim);
            }
        } else if (dice < 0.95) {
            // Lookup: read a few random records, allocating a
            // short-lived query-result string.
            entries = database_->ref(entriesSlot_);
            uint64_t n = vec_->size(entries);
            if (n == 0)
                continue;
            uint64_t sum = 0;
            for (int probe = 0; probe < 4; ++probe) {
                Object *entry = vec_->get(entries, rng_.below(n));
                sum += entry->scalar<uint64_t>(0);
            }
            Object *result = str_->create(
                "result:" + std::to_string(sum) + ":" +
                std::string(160, 'r'));
            (void)result; // dies immediately: pure allocation churn
        } else {
            // Scan: walk a slice of the container in order.
            entries = database_->ref(entriesSlot_);
            uint64_t n = vec_->size(entries);
            uint64_t checksum = 0;
            uint64_t limit = n < 256 ? n : 256;
            uint64_t start = n ? rng_.below(n) : 0;
            for (uint64_t i = 0; i < limit; ++i) {
                Object *entry = vec_->get(entries, (start + i) % n);
                checksum ^= entry->scalar<uint64_t>(0);
            }
            Object *report = str_->create(
                "scan:" + std::to_string(checksum) + ":" +
                std::string(96, 's'));
            (void)report;
            if (checksum == 0xdeadbeef)
                panic("unreachable: checksum sentinel");
        }
    }
}

void
MinidbWorkload::enableAssertions(Runtime &runtime)
{
    Workload::enableAssertions(runtime);
    // Cover the records that were already inserted during setup.
    Object *entries = database_->ref(entriesSlot_);
    uint64_t n = vec_->size(entries);
    for (uint64_t i = 0; i < n; ++i)
        runtime.assertOwnedBy(database_.get(), vec_->get(entries, i));
}

void
MinidbWorkload::teardown(Runtime &runtime)
{
    (void)runtime;
    database_.reset();
    cache_.reset();
}

} // namespace

std::unique_ptr<Workload>
makeMinidb()
{
    return std::make_unique<MinidbWorkload>();
}

} // namespace gcassert
