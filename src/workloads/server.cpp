/**
 * @file
 * server workload implementation. See server.h for the design.
 */

#include "workloads/server.h"

#include <thread>

#include "observe/metrics.h"
#include "observe/telemetry.h"
#include "support/env.h"
#include "support/stopwatch.h"
#include "workloads/registry.h"

namespace gcassert {

uint32_t
defaultServerThreads()
{
    uint64_t threads = envUint("GCASSERT_SERVER_THREADS", 4);
    if (threads < 1)
        threads = 1;
    if (threads > 64)
        threads = 64;
    return static_cast<uint32_t>(threads);
}

uint32_t
defaultServerLeakEvery()
{
    return static_cast<uint32_t>(
        envUint("GCASSERT_SERVER_LEAK_EVERY", 0));
}

ServerWorkload::ServerWorkload(ServerOptions options)
    : options_(options)
{
    if (options_.threads < 1)
        options_.threads = 1;
    if (options_.sessions < 1)
        options_.sessions = 1;
    if (options_.cacheCapacity < 2)
        options_.cacheCapacity = 2;
    if (options_.bufferBytes < 64)
        options_.bufferBytes = 64;
}

uint64_t
ServerWorkload::minHeapBytes() const
{
    // The live set (sessions + cache + pool) is small; the floor
    // mostly sets the GC cadence — the driver doubles it, and the
    // scratch churn of ~1 KiB per request then triggers a full
    // collection every few thousand requests.
    uint64_t live = uint64_t{options_.sessions} * 192 +
                    uint64_t{options_.cacheCapacity} * 256 +
                    uint64_t{options_.poolBuffers} *
                        (options_.bufferBytes + 64);
    uint64_t floor = 4ull * 1024 * 1024;
    return live > floor ? live : floor;
}

void
ServerWorkload::setup(Runtime &runtime)
{
    workers_.clear();
    cacheIndex_.clear();
    poolFree_.clear();
    cacheSize_ = 0;
    poolCheckouts_ = 0;

    auto &types = runtime.types();
    sessionType_ = types.define("SrvSession")
                       .refs({"user"})
                       .scalars(24)
                       .build();
    userType_ = types.define("SrvUser").scalars(48).build();
    tableType_ = types.define("SrvTable").array().build();
    cacheType_ = types.define("SrvCache")
                     .refs({"head", "tail"})
                     .scalars(8)
                     .build();
    entryType_ = types.define("SrvCacheEntry")
                     .refs({"value", "prev", "next"})
                     .scalars(16)
                     .build();
    valueType_ = types.define("SrvCacheValue").scalars(64).build();
    bufferType_ =
        types.define("SrvBuffer").scalars(options_.bufferBytes).build();
    requestType_ = types.define("SrvRequest")
                       .refs({"first"})
                       .scalars(24)
                       .build();
    nodeType_ = types.define("SrvNode")
                    .refs({"next"})
                    .scalars(24)
                    .build();
    leakListType_ =
        types.define("SrvLeakList").refs({"head"}).scalars(8).build();

    // Named allocation sites: the backgraph's growing-leak reports
    // name these instead of hashed return addresses, so a leak in
    // the request path attributes to "srv.request.node" rather than
    // an anonymous code address. All 0 (untagged) with the backgraph
    // off — allocSite is a no-op then.
    siteUser_ = runtime.allocSite("srv.user.refresh");
    siteCacheEntry_ = runtime.allocSite("srv.cache.entry");
    siteCacheValue_ = runtime.allocSite("srv.cache.value");
    siteBuffer_ = runtime.allocSite("srv.pool.buffer");
    siteRequest_ = runtime.allocSite("srv.request");
    siteRequestNode_ = runtime.allocSite("srv.request.node");

    sessionUserSlot_ = types.get(sessionType_).slotIndex("user");
    cacheHeadSlot_ = types.get(cacheType_).slotIndex("head");
    cacheTailSlot_ = types.get(cacheType_).slotIndex("tail");
    entryValueSlot_ = types.get(entryType_).slotIndex("value");
    entryPrevSlot_ = types.get(entryType_).slotIndex("prev");
    entryNextSlot_ = types.get(entryType_).slotIndex("next");
    requestFirstSlot_ = types.get(requestType_).slotIndex("first");
    nodeNextSlot_ = types.get(nodeType_).slotIndex("next");
    leakHeadSlot_ = types.get(leakListType_).slotIndex("head");

    // Long-lived state, built single-threaded before any worker runs.
    sessionTable_ = Handle(
        runtime, runtime.allocArrayRaw(tableType_, options_.sessions),
        "srv.sessions");
    for (uint32_t i = 0; i < options_.sessions; ++i) {
        Object *session = runtime.allocRaw(sessionType_);
        Handle guard(runtime, session, "srv.session");
        session->setScalar<uint64_t>(0, i);
        // Same site tag as the refresh path: the site names "the
        // session's user profile", so its live count stays pinned at
        // the session count (a refresh replaces, never adds) and the
        // find-leak trend cannot mistake first-refresh churn for
        // monotone growth.
        Object *user = runtime.allocRaw(userType_, nullptr, siteUser_);
        Handle uguard(runtime, user, "srv.user");
        user->setScalar<uint64_t>(0, i);
        runtime.writeRef(session, sessionUserSlot_, user);
        runtime.writeRef(sessionTable_.get(), i, session);
    }

    cache_ =
        Handle(runtime, runtime.allocRaw(cacheType_), "srv.cache");

    pool_ = Handle(
        runtime, runtime.allocArrayRaw(tableType_, options_.poolBuffers),
        "srv.pool");
    for (uint32_t i = 0; i < options_.poolBuffers; ++i) {
        Object *buffer = runtime.allocRaw(bufferType_);
        Handle guard(runtime, buffer, "srv.buffer");
        runtime.writeRef(pool_.get(), i, buffer);
        poolFree_.push_back(i);
    }

    leakList_ =
        Handle(runtime, runtime.allocRaw(leakListType_), "srv.leaks");

    for (uint32_t t = 0; t < options_.threads; ++t)
        workers_.push_back(
            &runtime.registerMutator("server-" + std::to_string(t)));

    if (Telemetry *telemetry = runtime.telemetry()) {
        MetricsRegistry &metrics = telemetry->metrics();
        metrics.gauge("server.requests.completed",
                      [this] { return requestsCompleted(); });
        metrics.gauge("server.requests.per_sec", [this] {
            double secs = busySeconds();
            return secs > 0.0 ? static_cast<uint64_t>(
                                    static_cast<double>(
                                        requestsCompleted()) /
                                    secs)
                              : uint64_t{0};
        });
        metrics.gauge("server.request.latency.p50_nanos", [this] {
            return latencySnapshot().percentile(50.0);
        });
        metrics.gauge("server.request.latency.p99_nanos", [this] {
            return latencySnapshot().percentile(99.0);
        });
        metrics.gauge("server.request.latency.max_nanos",
                      [this] { return latencySnapshot().max(); });
    }
}

void
ServerWorkload::cachePushFront(Runtime &runtime, Object *entry)
{
    Object *old_head = cache_->ref(cacheHeadSlot_);
    runtime.writeRef(entry, entryPrevSlot_, nullptr);
    runtime.writeRef(entry, entryNextSlot_, old_head);
    if (old_head)
        runtime.writeRef(old_head, entryPrevSlot_, entry);
    runtime.writeRef(cache_.get(), cacheHeadSlot_, entry);
    if (!cache_->ref(cacheTailSlot_))
        runtime.writeRef(cache_.get(), cacheTailSlot_, entry);
}

void
ServerWorkload::cacheUnlink(Runtime &runtime, Object *entry)
{
    Object *prev = entry->ref(entryPrevSlot_);
    Object *next = entry->ref(entryNextSlot_);
    if (prev)
        runtime.writeRef(prev, entryNextSlot_, next);
    else
        runtime.writeRef(cache_.get(), cacheHeadSlot_, next);
    if (next)
        runtime.writeRef(next, entryPrevSlot_, prev);
    else
        runtime.writeRef(cache_.get(), cacheTailSlot_, prev);
    runtime.writeRef(entry, entryPrevSlot_, nullptr);
    runtime.writeRef(entry, entryNextSlot_, nullptr);
}

void
ServerWorkload::cacheLookupOrInsert(Runtime &runtime,
                                    MutatorContext &mutator,
                                    uint64_t key)
{
    // Caller holds shared_.
    auto it = cacheIndex_.find(key);
    if (it != cacheIndex_.end()) {
        Object *entry = it->second;
        entry->setScalar<uint64_t>(8, entry->scalar<uint64_t>(8) + 1);
        cacheUnlink(runtime, entry);
        cachePushFront(runtime, entry);
        return;
    }

    // Miss: a new entry + value join the cache (mature allocations,
    // outside any region); eviction turns the tail into garbage.
    Object *entry =
        runtime.allocLocal(entryType_, &mutator, siteCacheEntry_);
    entry->setScalar<uint64_t>(0, key);
    Object *value =
        runtime.allocLocal(valueType_, &mutator, siteCacheValue_);
    value->setScalar<uint64_t>(0, key);
    runtime.writeRef(entry, entryValueSlot_, value);
    cachePushFront(runtime, entry);
    cacheIndex_[key] = entry;
    ++cacheSize_;

    if (cacheSize_ > options_.cacheCapacity) {
        Object *victim = cache_->ref(cacheTailSlot_);
        cacheUnlink(runtime, victim);
        cacheIndex_.erase(victim->scalar<uint64_t>(0));
        --cacheSize_;
    }
}

void
ServerWorkload::serveRequest(Runtime &runtime, MutatorContext &mutator,
                             uint32_t worker, uint64_t worker_seq,
                             Rng &rng, PauseHistogram &latency)
{
    uint64_t t0 = nowNanos();

    // --- persistent phase: session touch, cache op, pool checkout.
    // Runs before the region opens, so these allocations are never
    // flushed as must-die. shared_ nests outside the runtime lock.
    uint64_t session_idx = rng.below(options_.sessions);
    uint32_t pool_idx = UINT32_MAX;
    Object *buffer = nullptr;
    {
        std::lock_guard<std::mutex> guard(shared_);
        Object *session =
            sessionTable_->ref(static_cast<uint32_t>(session_idx));
        session->setScalar<uint64_t>(8,
                                     session->scalar<uint64_t>(8) + 1);
        session->setScalar<uint64_t>(16, worker_seq);
        if (rng.chance(0.02)) {
            // Profile refresh: the old user object becomes mature
            // garbage for a later full sweep.
            Object *user =
                runtime.allocLocal(userType_, &mutator, siteUser_);
            user->setScalar<uint64_t>(0, worker_seq);
            runtime.writeRef(session, sessionUserSlot_, user);
        }
        if (rng.chance(0.5))
            cacheLookupOrInsert(
                runtime, mutator,
                rng.below(uint64_t{options_.cacheCapacity} * 4));
        if (!poolFree_.empty()) {
            pool_idx = poolFree_.back();
            poolFree_.pop_back();
            ++poolCheckouts_;
            if (poolCheckouts_ % 512 == 0) {
                // Slow pool replacement: retire the checked-out
                // buffer for a fresh one.
                Object *fresh = runtime.allocLocal(
                    bufferType_, &mutator, siteBuffer_);
                runtime.writeRef(pool_.get(), pool_idx, fresh);
            }
            buffer = pool_->ref(pool_idx);
        }
    }
    runtime.dropLocalRoots(&mutator);

    // --- request region: every allocation from here to the reply
    // must be garbage once the request completes.
    bool armed = assertionsEnabled();
    std::string label;
    if (armed) {
        label = "server-" + std::to_string(worker) + "/req-" +
                std::to_string(worker_seq);
        runtime.startRegion(&mutator, label);
    }

    Object *req =
        runtime.allocLocal(requestType_, &mutator, siteRequest_);
    req->setScalar<uint64_t>(0, worker_seq);
    uint32_t chain = 6 + static_cast<uint32_t>(rng.below(8));
    Object *head = nullptr;
    uint64_t digest = worker_seq;
    for (uint32_t i = 0; i < chain; ++i) {
        Object *node =
            runtime.allocLocal(nodeType_, &mutator, siteRequestNode_);
        node->setScalar<uint64_t>(0, worker_seq ^ i);
        uint64_t payload = rng.next();
        node->setScalar<uint64_t>(8, payload);
        digest ^= payload;
        runtime.writeRef(node, nodeNextSlot_, head);
        head = node;
    }
    runtime.writeRef(req, requestFirstSlot_, head);

    // Render the reply into the pooled buffer (exclusively ours
    // until the index is returned).
    if (buffer) {
        uint32_t words = options_.bufferBytes / 8;
        if (words > 16)
            words = 16;
        for (uint32_t i = 0; i < words; ++i)
            buffer->setScalar<uint64_t>(i * 8, digest + i);
    }

    // Injected leak: the chain head escapes the region into the
    // rooted leak list (its next pointer is rewired there, so the
    // rest of the chain still dies). The next full GC reports
    // exactly one alldead violation naming this request.
    if (options_.leakEveryN != 0 && head != nullptr &&
        worker_seq % options_.leakEveryN == 0) {
        std::lock_guard<std::mutex> guard(shared_);
        runtime.writeRef(head, nodeNextSlot_,
                         leakList_->ref(leakHeadSlot_));
        runtime.writeRef(leakList_.get(), leakHeadSlot_, head);
        leaksInjected_.fetch_add(1, std::memory_order_relaxed);
        if (armed) {
            std::lock_guard<std::mutex> sguard(stats_);
            leakedLabels_.push_back(label);
        }
    }

    if (pool_idx != UINT32_MAX) {
        std::lock_guard<std::mutex> guard(shared_);
        poolFree_.push_back(pool_idx);
    }

    // Reply sent: unpin the scratch *before* the alldead flush, so
    // a collection landing in between sees it unreachable (the
    // assertion is then trivially satisfied, never false-positive).
    runtime.dropLocalRoots(&mutator);
    if (armed)
        runtime.assertAllDead(&mutator);

    requestsCompleted_.fetch_add(1, std::memory_order_relaxed);
    latency.record(nowNanos() - t0);
}

void
ServerWorkload::iterate(Runtime &runtime)
{
    ++iterations_;
    Stopwatch busy;
    busy.start();

    std::vector<std::thread> threads;
    threads.reserve(options_.threads);
    for (uint32_t t = 0; t < options_.threads; ++t) {
        threads.emplace_back([this, &runtime, t] {
            MutatorContext &mutator = *workers_[t];
            // SplitMix-style per-thread sub-seed: deterministic and
            // independent per (iteration, thread).
            uint64_t seed =
                (iterations_ * 0x9E3779B97F4A7C15ull) ^
                ((uint64_t{t} + 1) * 0xBF58476D1CE4E5B9ull);
            Rng rng(seed);
            PauseHistogram local;
            uint64_t base =
                (iterations_ - 1) *
                uint64_t{options_.requestsPerThread};
            for (uint32_t k = 1; k <= options_.requestsPerThread;
                 ++k) {
                if (stop_.load(std::memory_order_relaxed))
                    break;
                serveRequest(runtime, mutator, t, base + k, rng,
                             local);
                // Periodic live-endpoint publish: fresh snapshots
                // between full GCs. Outside shared_ (lock order) and
                // a cheap no-op when telemetry is off.
                if (options_.publishEvery != 0 &&
                    k % options_.publishEvery == 0)
                    runtime.publishTelemetry();
            }
            std::lock_guard<std::mutex> guard(stats_);
            latency_.merge(local);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    busy.stop();
    std::lock_guard<std::mutex> guard(stats_);
    busyNanos_ += busy.elapsedNanos();
}

void
ServerWorkload::teardown(Runtime &runtime)
{
    (void)runtime;
    sessionTable_.reset();
    cache_.reset();
    pool_.reset();
    leakList_.reset();
    cacheIndex_.clear();
    poolFree_.clear();
    workers_.clear();
    cacheSize_ = 0;
}

std::vector<std::string>
ServerWorkload::leakedLabels() const
{
    std::lock_guard<std::mutex> guard(stats_);
    return leakedLabels_;
}

PauseHistogram
ServerWorkload::latencySnapshot() const
{
    std::lock_guard<std::mutex> guard(stats_);
    return latency_;
}

double
ServerWorkload::busySeconds() const
{
    std::lock_guard<std::mutex> guard(stats_);
    return static_cast<double>(busyNanos_) / 1e9;
}

std::unique_ptr<Workload>
makeServer()
{
    return std::make_unique<ServerWorkload>();
}

std::unique_ptr<ServerWorkload>
makeServerWithOptions(const ServerOptions &options)
{
    return std::make_unique<ServerWorkload>(options);
}

} // namespace gcassert
