#include "workloads/registry.h"

#include <algorithm>

#include "support/logging.h"

namespace gcassert {

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

WorkloadRegistry::WorkloadRegistry()
{
    add("minidb", makeMinidb);
    add("jbbemu", makeJbbEmu);
    add("lusearch", makeLusearch);
    add("swapleak", makeSwapLeak);
    add("binarytrees", makeBinaryTrees);
    add("graphchurn", makeGraphChurn);
    add("stringstorm", makeStringStorm);
    add("treewalk", makeTreeWalk);
    add("mapstress", makeMapStress);
    add("arraybloat", makeArrayBloat);
    add("server", makeServer);
}

void
WorkloadRegistry::add(const std::string &name, WorkloadFactory factory)
{
    factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<Workload>
WorkloadRegistry::create(const std::string &name) const
{
    for (const auto &[n, factory] : factories_)
        if (n == name)
            return factory();
    fatal("unknown workload: " + name);
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[n, factory] : factories_)
        out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

bool
WorkloadRegistry::has(const std::string &name) const
{
    for (const auto &[n, factory] : factories_)
        if (n == name)
            return true;
    return false;
}

} // namespace gcassert
