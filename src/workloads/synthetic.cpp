/**
 * @file
 * Synthetic heap-shape workloads standing in for the remaining
 * DaCapo / SPECjvm98 suite members in the Figure 2/3 overhead
 * experiments. Each stresses the trace loop differently:
 *
 *  - binarytrees: allocation-heavy, shallow retention (javac/antlr).
 *  - graphchurn:  pointer-dense random graph, the trace-loop worst
 *                 case (the paper's "bloat" shows the largest GC
 *                 overhead).
 *  - stringstorm: scalar-heavy churn, few references (compress).
 *  - treewalk:    large live structure, read-mostly (fop/hsqldb).
 *  - mapstress:   hash-table churn with rehash array spikes
 *                 (pmd/xalan).
 *  - arraybloat:  large-object-space traffic.
 */

#include <cstdint>
#include <string>

#include "support/rng.h"
#include "workloads/managed_util.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {

namespace {

// ---------------------------------------------------------------------
// binarytrees
// ---------------------------------------------------------------------

class BinaryTreesWorkload : public Workload {
  public:
    const char *name() const override { return "binarytrees"; }

    const char *
    description() const override
    {
        return "allocation-heavy short-lived binary trees";
    }

    uint64_t minHeapBytes() const override
    {
        return 3ull * 1024 * 1024 / 2;
    }

    void
    setup(Runtime &runtime) override
    {
        nodeType_ = runtime.types()
                        .define("BtNode")
                        .refs({"left", "right"})
                        .scalars(8)
                        .build();
        longLived_ = Handle(runtime, buildTree(runtime, kLongLivedDepth),
                            "binarytrees.longlived");
    }

    void
    iterate(Runtime &runtime) override
    {
        uint64_t checksum = 0;
        for (uint32_t t = 0; t < kTreesPerIteration; ++t) {
            Handle tree(runtime, buildTree(runtime, kTransientDepth),
                        "binarytrees.tmp");
            checksum += walk(tree.get());
        }
        checksum += walk(longLived_.get());
        if (checksum == 0)
            panic("binarytrees: impossible zero checksum");
        // Refresh the long-lived tree occasionally so its nodes age.
        if (++epoch_ % 4 == 0)
            longLived_.set(buildTree(runtime, kLongLivedDepth));
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        longLived_.reset();
    }

  private:
    static constexpr uint32_t kTransientDepth = 11;
    static constexpr uint32_t kLongLivedDepth = 13;
    static constexpr uint32_t kTreesPerIteration = 24;

    Object *
    buildTree(Runtime &runtime, uint32_t depth)
    {
        // Top-down construction: children are attached to their
        // (reachable) parent before any further allocation.
        Object *root = runtime.allocRaw(nodeType_);
        Handle guard(runtime, root, "binarytrees.build");
        root->setScalar<uint64_t>(0, 1);
        std::vector<std::pair<Object *, uint32_t>> frontier;
        frontier.emplace_back(root, depth);
        while (!frontier.empty()) {
            auto [node, d] = frontier.back();
            frontier.pop_back();
            if (d == 0)
                continue;
            Object *left = runtime.allocRaw(nodeType_);
            runtime.writeRef(node, 0, left);
            left->setScalar<uint64_t>(0, d);
            Object *right = runtime.allocRaw(nodeType_);
            runtime.writeRef(node, 1, right);
            right->setScalar<uint64_t>(0, d + 1);
            frontier.emplace_back(left, d - 1);
            frontier.emplace_back(right, d - 1);
        }
        return root;
    }

    uint64_t
    walk(const Object *node)
    {
        // Iterative in-order checksum.
        uint64_t sum = 0;
        std::vector<const Object *> stack{node};
        while (!stack.empty()) {
            const Object *n = stack.back();
            stack.pop_back();
            sum += n->scalar<uint64_t>(0);
            if (Object *l = n->ref(0))
                stack.push_back(l);
            if (Object *r = n->ref(1))
                stack.push_back(r);
        }
        return sum;
    }

    TypeId nodeType_ = kInvalidTypeId;
    Handle longLived_;
    uint64_t epoch_ = 0;
};

// ---------------------------------------------------------------------
// graphchurn
// ---------------------------------------------------------------------

class GraphChurnWorkload : public Workload {
  public:
    const char *name() const override { return "graphchurn"; }

    const char *
    description() const override
    {
        return "pointer-dense random graph with edge and node churn "
               "(trace-loop worst case)";
    }

    uint64_t minHeapBytes() const override { return 4ull * 1024 * 1024; }

    void
    setup(Runtime &runtime) override
    {
        nodeType_ = runtime.types()
                        .define("GraphNode")
                        .refCount(kOutDegree)
                        .scalars(8)
                        .build();
        arrayType_ =
            runtime.types().define("GraphNode[]").array().build();

        nodes_ = Handle(runtime, runtime.allocArrayRaw(arrayType_, kNodes),
                        "graphchurn.nodes");
        for (uint32_t i = 0; i < kNodes; ++i) {
            Object *node = runtime.allocRaw(nodeType_);
            node->setScalar<uint64_t>(0, i);
            runtime.writeRef(nodes_.get(), i, node);
        }
        // Dense random wiring.
        for (uint32_t i = 0; i < kNodes; ++i)
            for (uint32_t e = 0; e < kOutDegree; ++e)
                runtime.writeRef(nodes_->ref(i), 
                    e, nodes_->ref(static_cast<uint32_t>(
                           rng_.below(kNodes))));
    }

    void
    iterate(Runtime &runtime) override
    {
        uint64_t walk_checksum = 0;
        for (uint32_t op = 0; op < kOpsPerIteration; ++op) {
            uint32_t i = static_cast<uint32_t>(rng_.below(kNodes));
            // Analysis work: a short random walk from the node (the
            // compute a graph engine performs between mutations).
            {
                Object *cursor = nodes_->ref(i);
                for (int step = 0; step < 8 && cursor; ++step) {
                    walk_checksum += cursor->scalar<uint64_t>(0);
                    cursor = cursor->ref(static_cast<uint32_t>(
                        rng_.below(kOutDegree)));
                }
            }
            if (rng_.chance(0.15)) {
                // Replace the node: allocate a successor, copy its
                // edges, and drop the original.
                Object *fresh = runtime.allocRaw(nodeType_);
                Object *old = nodes_->ref(i);
                fresh->setScalar<uint64_t>(0,
                                           old->scalar<uint64_t>(0) + kNodes);
                for (uint32_t e = 0; e < kOutDegree; ++e)
                    runtime.writeRef(fresh, e, old->ref(e));
                runtime.writeRef(nodes_.get(), i, fresh);
            } else {
                // Rewire one edge via a transient edge-event record,
                // like a message-passing graph engine would allocate.
                Object *event = runtime.allocRaw(nodeType_);
                uint32_t e = static_cast<uint32_t>(rng_.below(kOutDegree));
                uint32_t k = static_cast<uint32_t>(rng_.below(kNodes));
                runtime.writeRef(event, 0, nodes_->ref(i));
                runtime.writeRef(event, 1, nodes_->ref(k));
                runtime.writeRef(nodes_->ref(i), e, nodes_->ref(k));
            }
        }
        if (walk_checksum == 0xdeadbeef)
            panic("unreachable: walk checksum sentinel");
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        nodes_.reset();
    }

  private:
    static constexpr uint32_t kNodes = 24000;
    static constexpr uint32_t kOutDegree = 4;
    static constexpr uint32_t kOpsPerIteration = 80000;

    Rng rng_{0x92a9};
    TypeId nodeType_ = kInvalidTypeId;
    TypeId arrayType_ = kInvalidTypeId;
    Handle nodes_;
};

// ---------------------------------------------------------------------
// stringstorm
// ---------------------------------------------------------------------

class StringStormWorkload : public Workload {
  public:
    const char *name() const override { return "stringstorm"; }

    const char *
    description() const override
    {
        return "scalar-heavy string churn with a live ring buffer";
    }

    uint64_t minHeapBytes() const override
    {
        return 3ull * 1024 * 1024 / 2;
    }

    void
    setup(Runtime &runtime) override
    {
        str_ = std::make_unique<ManagedStringOps>(runtime, "SsString");
        ringType_ = runtime.types().define("SsRing[]").array().build();
        ring_ = Handle(runtime, runtime.allocArrayRaw(ringType_, kRing),
                       "stringstorm.ring");
        for (uint32_t i = 0; i < kRing; ++i)
            runtime.writeRef(ring_.get(), i, str_->create(payload(i)));
    }

    void
    iterate(Runtime &runtime) override
    {
        for (uint32_t op = 0; op < kOpsPerIteration; ++op) {
            uint32_t slot = cursor_++ % kRing;
            // Concatenate two ring entries into a fresh string and
            // replace one of them (the old one dies).
            std::string a = str_->read(ring_->ref(slot));
            std::string b =
                str_->read(ring_->ref((slot + 17) % kRing));
            Object *merged =
                str_->create(a.substr(0, 48) + "|" + b.substr(0, 48));
            runtime.writeRef(ring_.get(), slot, merged);
        }
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        ring_.reset();
    }

  private:
    static constexpr uint32_t kRing = 4000;
    static constexpr uint32_t kOpsPerIteration = 27000;

    std::string
    payload(uint32_t i)
    {
        return "string-" + std::to_string(i) + ":" +
               std::string(100 + i % 64, 'a' + static_cast<char>(i % 26));
    }

    std::unique_ptr<ManagedStringOps> str_;
    TypeId ringType_ = kInvalidTypeId;
    Handle ring_;
    uint32_t cursor_ = 0;
};

// ---------------------------------------------------------------------
// treewalk
// ---------------------------------------------------------------------

class TreeWalkWorkload : public Workload {
  public:
    const char *name() const override { return "treewalk"; }

    const char *
    description() const override
    {
        return "large live search tree, read-mostly with light "
               "updates";
    }

    uint64_t minHeapBytes() const override { return 4ull * 1024 * 1024; }

    void
    setup(Runtime &runtime) override
    {
        str_ = std::make_unique<ManagedStringOps>(runtime, "TwString");
        nodeType_ = runtime.types()
                        .define("TwNode")
                        .refs({"left", "right", "payload"})
                        .scalars(8)
                        .build();
        root_ = Handle(runtime, nullptr, "treewalk.root");
        // Insert keys in shuffled order for a balanced-ish BST.
        std::vector<uint32_t> keys(kNodes);
        for (uint32_t i = 0; i < kNodes; ++i)
            keys[i] = i;
        rng_.shuffle(keys);
        for (uint32_t key : keys)
            insert(runtime, key);
    }

    void
    iterate(Runtime &runtime) override
    {
        uint64_t found = 0;
        for (uint32_t q = 0; q < kQueriesPerIteration; ++q)
            found += lookup(static_cast<uint32_t>(rng_.below(kNodes)))
                ? 1 : 0;
        if (found == 0)
            panic("treewalk: lookups found nothing");
        // Light update traffic: refresh some payload strings.
        for (uint32_t u = 0; u < kUpdatesPerIteration; ++u) {
            Object *node =
                findNode(static_cast<uint32_t>(rng_.below(kNodes)));
            if (node)
                runtime.writeRef(node, 2, str_->create(
                    "payload-" + std::to_string(rng_.next() % 100000) +
                    ":" + std::string(48, 'p')));
        }
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        root_.reset();
    }

  private:
    static constexpr uint32_t kNodes = 40000;
    static constexpr uint32_t kQueriesPerIteration = 30000;
    static constexpr uint32_t kUpdatesPerIteration = 25000;

    void
    insert(Runtime &runtime, uint32_t key)
    {
        Object *fresh = runtime.allocRaw(nodeType_);
        Handle guard(runtime, fresh, "treewalk.insert");
        fresh->setScalar<uint64_t>(0, key);
        runtime.writeRef(fresh, 2, str_->create("p" + std::to_string(key)));
        if (!root_.get()) {
            root_.set(fresh);
            return;
        }
        Object *node = root_.get();
        while (true) {
            uint32_t slot = key < node->scalar<uint64_t>(0) ? 0 : 1;
            Object *child = node->ref(slot);
            if (!child) {
                runtime.writeRef(node, slot, fresh);
                return;
            }
            node = child;
        }
    }

    Object *
    findNode(uint32_t key) const
    {
        Object *node = root_.get();
        while (node) {
            uint64_t k = node->scalar<uint64_t>(0);
            if (k == key)
                return node;
            node = node->ref(key < k ? 0 : 1);
        }
        return nullptr;
    }

    bool lookup(uint32_t key) const { return findNode(key) != nullptr; }

    Rng rng_{0x7aee};
    std::unique_ptr<ManagedStringOps> str_;
    TypeId nodeType_ = kInvalidTypeId;
    Handle root_;
};

// ---------------------------------------------------------------------
// mapstress
// ---------------------------------------------------------------------

class MapStressWorkload : public Workload {
  public:
    const char *name() const override { return "mapstress"; }

    const char *
    description() const override
    {
        return "open-addressing hash map churn with rehash spikes";
    }

    uint64_t minHeapBytes() const override
    {
        return 3ull * 1024 * 1024 / 2;
    }

    void
    setup(Runtime &runtime) override
    {
        pairType_ = runtime.types()
                        .define("MapPair")
                        .refs({"value"})
                        .scalars(8)
                        .build();
        slotsType_ = runtime.types().define("MapSlots[]").array().build();
        valueType_ = runtime.types()
                         .define("MapValue")
                         .refCount(0)
                         .scalars(40)
                         .build();

        capacity_ = 4096;
        slots_ = Handle(runtime,
                        runtime.allocArrayRaw(slotsType_, capacity_),
                        "mapstress.slots");
        size_ = 0;
        for (uint32_t i = 0; i < kTargetSize; ++i)
            put(runtime, rng_.next() % kKeySpace);
    }

    void
    iterate(Runtime &runtime) override
    {
        for (uint32_t op = 0; op < kOpsPerIteration; ++op) {
            uint64_t key = rng_.next() % kKeySpace;
            if (rng_.chance(0.5))
                put(runtime, key);
            else
                erase(runtime, key);
        }
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        slots_.reset();
    }

  private:
    static constexpr uint32_t kTargetSize = 9000;
    static constexpr uint64_t kKeySpace = 30000;
    static constexpr uint32_t kOpsPerIteration = 50000;

    /** Tombstone-free linear probing with backward-shift deletion. */
    uint32_t
    probe(uint64_t key) const
    {
        return static_cast<uint32_t>((key * 0x9e3779b97f4a7c15ull) %
                                     capacity_);
    }

    void
    put(Runtime &runtime, uint64_t key)
    {
        if ((size_ + 1) * 10 > uint64_t{capacity_} * 7)
            rehash(runtime);
        // The value object is constructed before the table probe,
        // as real map clients do; on a duplicate key it becomes
        // garbage immediately.
        Object *value = runtime.allocRaw(valueType_);
        Handle vguard(runtime, value, "mapstress.value");
        uint32_t i = probe(key);
        while (Object *pair = slots_->ref(i)) {
            if (pair->scalar<uint64_t>(0) == key) {
                runtime.writeRef(pair, 0, value); // refresh the mapping
                return;
            }
            i = (i + 1) % capacity_;
        }
        Object *pair = runtime.allocRaw(pairType_);
        pair->setScalar<uint64_t>(0, key);
        runtime.writeRef(pair, 0, value);
        runtime.writeRef(slots_.get(), i, pair);
        ++size_;
    }

    void
    erase(Runtime &runtime, uint64_t key)
    {
        uint32_t i = probe(key);
        while (Object *pair = slots_->ref(i)) {
            if (pair->scalar<uint64_t>(0) == key) {
                // Backward-shift deletion keeps probe chains intact.
                uint32_t hole = i;
                uint32_t j = (i + 1) % capacity_;
                while (Object *shift = slots_->ref(j)) {
                    uint32_t home = probe(shift->scalar<uint64_t>(0));
                    bool movable = (j >= home)
                        ? (home <= hole && hole < j)
                        : (home <= hole || hole < j);
                    if (movable) {
                        runtime.writeRef(slots_.get(), hole, shift);
                        hole = j;
                    }
                    j = (j + 1) % capacity_;
                }
                runtime.writeRef(slots_.get(), hole, nullptr);
                --size_;
                return;
            }
            i = (i + 1) % capacity_;
        }
    }

    void
    rehash(Runtime &runtime)
    {
        uint32_t new_capacity = capacity_ * 2;
        Handle fresh(runtime,
                     runtime.allocArrayRaw(slotsType_, new_capacity),
                     "mapstress.rehash");
        uint32_t old_capacity = capacity_;
        Object *old = slots_.get();
        capacity_ = new_capacity;
        for (uint32_t i = 0; i < old_capacity; ++i) {
            Object *pair = old->ref(i);
            if (!pair)
                continue;
            uint32_t j = probe(pair->scalar<uint64_t>(0));
            while (fresh->ref(j))
                j = (j + 1) % capacity_;
            runtime.writeRef(fresh.get(), j, pair);
        }
        slots_.set(fresh.get());
    }

    Rng rng_{0x3a9f};
    TypeId pairType_ = kInvalidTypeId;
    TypeId slotsType_ = kInvalidTypeId;
    TypeId valueType_ = kInvalidTypeId;
    Handle slots_;
    uint32_t capacity_ = 0;
    uint64_t size_ = 0;
};

// ---------------------------------------------------------------------
// arraybloat
// ---------------------------------------------------------------------

class ArrayBloatWorkload : public Workload {
  public:
    const char *name() const override { return "arraybloat"; }

    const char *
    description() const override
    {
        return "large-object-space traffic with a retained window";
    }

    uint64_t minHeapBytes() const override { return 6ull * 1024 * 1024; }

    void
    setup(Runtime &runtime) override
    {
        bufferType_ =
            runtime.types().define("ByteBuffer").array().build();
        windowType_ =
            runtime.types().define("BufferWindow[]").array().build();
        window_ = Handle(runtime,
                         runtime.allocArrayRaw(windowType_, kWindow),
                         "arraybloat.window");
        for (uint32_t i = 0; i < kWindow; ++i)
            runtime.writeRef(window_.get(), i, makeBuffer(runtime, i));
    }

    void
    iterate(Runtime &runtime) override
    {
        for (uint32_t op = 0; op < kOpsPerIteration; ++op) {
            // Allocate a large transient buffer, fold its contents
            // into a window slot, and retain the new buffer there.
            Object *buffer = makeBuffer(runtime, cursor_);
            Handle guard(runtime, buffer, "arraybloat.tmp");
            uint32_t slot = cursor_++ % kWindow;
            Object *old = window_->ref(slot);
            uint64_t fold = old->scalar<uint64_t>(0) ^
                buffer->scalar<uint64_t>(0);
            buffer->setScalar<uint64_t>(0, fold);
            runtime.writeRef(window_.get(), slot, buffer);
        }
    }

    void teardown(Runtime &runtime) override
    {
        (void)runtime;
        window_.reset();
    }

  private:
    static constexpr uint32_t kWindow = 24;
    static constexpr uint32_t kOpsPerIteration = 400;

    Object *
    makeBuffer(Runtime &runtime, uint32_t tag)
    {
        uint32_t bytes = 16 * 1024 + (tag % 4) * 12 * 1024;
        Object *buffer = runtime.allocScalarRaw(bufferType_, bytes);
        buffer->setScalar<uint64_t>(0, 0x9e37 * (tag + 1));
        // Touch the payload so the buffer is really materialized.
        for (uint32_t off = 64; off + 8 <= bytes; off += 1024)
            buffer->setScalar<uint64_t>(off, tag + off);
        return buffer;
    }

    Rng rng_{0xab10a7};
    TypeId bufferType_ = kInvalidTypeId;
    TypeId windowType_ = kInvalidTypeId;
    Handle window_;
    uint32_t cursor_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBinaryTrees()
{
    return std::make_unique<BinaryTreesWorkload>();
}

std::unique_ptr<Workload>
makeGraphChurn()
{
    return std::make_unique<GraphChurnWorkload>();
}

std::unique_ptr<Workload>
makeStringStorm()
{
    return std::make_unique<StringStormWorkload>();
}

std::unique_ptr<Workload>
makeTreeWalk()
{
    return std::make_unique<TreeWalkWorkload>();
}

std::unique_ptr<Workload>
makeMapStress()
{
    return std::make_unique<MapStressWorkload>();
}

std::unique_ptr<Workload>
makeArrayBloat()
{
    return std::make_unique<ArrayBloatWorkload>();
}

} // namespace gcassert
