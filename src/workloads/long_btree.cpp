#include "workloads/long_btree.h"

#include "runtime/handle.h"
#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

// Node scalar layout: [0] numKeys, [8] isLeaf, [16..] keys[kMaxKeys].
// Tree scalar layout: [0] size.
namespace {
constexpr uint32_t kOffNumKeys = 0;
constexpr uint32_t kOffIsLeaf = 8;
constexpr uint32_t kOffKeys = 16;
} // namespace

LongBTreeOps::LongBTreeOps(Runtime &runtime, const std::string &prefix)
    : runtime_(runtime)
{
    treeType_ = runtime_.types()
                    .define(prefix + "longBTree")
                    .refs({"root"})
                    .scalars(8)
                    .build();
    nodeType_ = runtime_.types()
                    .define(prefix + "longBTreeNode")
                    .refs({"slots"})
                    .scalars(kOffKeys + 8 * kMaxKeys)
                    .build();
    arrayType_ =
        runtime_.types().define(prefix + "BTreeObject[]").array().build();
}

Object *
LongBTreeOps::create() const
{
    Object *tree = runtime_.allocRaw(treeType_);
    tree->setScalar<uint64_t>(0, 0);
    return tree;
}

Object *
LongBTreeOps::slots(const Object *node) const
{
    return node->ref(0);
}

uint64_t
LongBTreeOps::numKeys(const Object *node) const
{
    return node->scalar<uint64_t>(kOffNumKeys);
}

void
LongBTreeOps::setNumKeys(Object *node, uint64_t n) const
{
    node->setScalar<uint64_t>(kOffNumKeys, n);
}

bool
LongBTreeOps::isLeaf(const Object *node) const
{
    return node->scalar<uint64_t>(kOffIsLeaf) != 0;
}

int64_t
LongBTreeOps::key(const Object *node, uint32_t i) const
{
    return node->scalar<int64_t>(kOffKeys + 8 * i);
}

void
LongBTreeOps::setKey(Object *node, uint32_t i, int64_t k) const
{
    node->setScalar<int64_t>(kOffKeys + 8 * i, k);
}

Object *
LongBTreeOps::allocNode(bool leaf) const
{
    Object *node = runtime_.allocRaw(nodeType_);
    Handle guard(runtime_, node, "btree.node");
    Object *array = runtime_.allocArrayRaw(arrayType_, kMaxKeys + 1);
    runtime_.writeRef(node, 0, array);
    node->setScalar<uint64_t>(kOffNumKeys, 0);
    node->setScalar<uint64_t>(kOffIsLeaf, leaf ? 1 : 0);
    return node;
}

uint64_t
LongBTreeOps::size(const Object *tree) const
{
    return tree->scalar<uint64_t>(0);
}

Object *
LongBTreeOps::lookup(const Object *tree, int64_t key_sought) const
{
    Object *node = tree->ref(0);
    while (node) {
        uint64_t n = numKeys(node);
        if (isLeaf(node)) {
            for (uint32_t i = 0; i < n; ++i)
                if (key(node, i) == key_sought)
                    return slots(node)->ref(i);
            return nullptr;
        }
        uint32_t i = 0;
        while (i < n && key_sought >= key(node, i))
            ++i;
        node = slots(node)->ref(i);
    }
    return nullptr;
}

void
LongBTreeOps::insert(Object *tree, int64_t new_key, Object *value) const
{
    Handle guard_tree(runtime_, tree, "btree.tree");
    Handle guard_value(runtime_, value, "btree.value");

    Object *root = tree->ref(0);
    if (!root) {
        Object *leaf = allocNode(true);
        runtime_.writeRef(slots(leaf), 0, value);
        setKey(leaf, 0, new_key);
        setNumKeys(leaf, 1);
        runtime_.writeRef(tree, 0, leaf);
        tree->setScalar<uint64_t>(0, 1);
        return;
    }

    // Replacement of an existing key does not change the size.
    if (lookup(tree, new_key)) {
        replaceExisting(tree, new_key, value);
        return;
    }

    SplitResult r = insertRec(root, new_key, value);
    if (r.split) {
        Handle guard_right(runtime_, r.right, "btree.split");
        Object *new_root = allocNode(false);
        runtime_.writeRef(slots(new_root), 0, tree->ref(0));
        runtime_.writeRef(slots(new_root), 1, r.right);
        setKey(new_root, 0, r.midKey);
        setNumKeys(new_root, 1);
        runtime_.writeRef(tree, 0, new_root);
    }
    tree->setScalar<uint64_t>(0, size(tree) + 1);
}

LongBTreeOps::SplitResult
LongBTreeOps::insertRec(Object *node, int64_t new_key,
                        Object *value) const
{
    uint64_t n = numKeys(node);

    if (isLeaf(node)) {
        if (n < kMaxKeys) {
            // Room: shift and insert.
            uint32_t pos = 0;
            while (pos < n && key(node, pos) < new_key)
                ++pos;
            Object *array = slots(node);
            for (uint32_t i = static_cast<uint32_t>(n); i > pos; --i) {
                setKey(node, i, key(node, i - 1));
                runtime_.writeRef(array, i, array->ref(i - 1));
            }
            setKey(node, pos, new_key);
            runtime_.writeRef(array, pos, value);
            setNumKeys(node, n + 1);
            return SplitResult{};
        }

        // Full leaf: split, then insert into the proper half.
        Object *right = allocNode(true);
        Handle guard(runtime_, right, "btree.leafsplit");
        uint32_t half = kMaxKeys / 2;
        Object *left_array = slots(node);
        Object *right_array = slots(right);
        for (uint32_t i = half; i < kMaxKeys; ++i) {
            setKey(right, i - half, key(node, i));
            runtime_.writeRef(right_array, i - half, left_array->ref(i));
            runtime_.writeRef(left_array, i, nullptr);
        }
        setNumKeys(node, half);
        setNumKeys(right, kMaxKeys - half);

        Object *target = new_key >= key(right, 0) ? right : node;
        // Recurse exactly one level: the target has room now.
        SplitResult inner = insertRec(target, new_key, value);
        if (inner.split)
            panic("longBTree: split target was full after split");
        return SplitResult{true, key(right, 0), right};
    }

    // Internal node: descend.
    uint32_t child_idx = 0;
    while (child_idx < n && new_key >= key(node, child_idx))
        ++child_idx;
    Object *child = slots(node)->ref(child_idx);
    SplitResult r = insertRec(child, new_key, value);
    if (!r.split)
        return SplitResult{};

    Handle guard_right(runtime_, r.right, "btree.childsplit");

    if (n < kMaxKeys) {
        // Room for the new separator and child.
        Object *array = slots(node);
        for (uint32_t i = static_cast<uint32_t>(n); i > child_idx; --i) {
            setKey(node, i, key(node, i - 1));
            runtime_.writeRef(array, i + 1, array->ref(i));
        }
        setKey(node, child_idx, r.midKey);
        runtime_.writeRef(array, child_idx + 1, r.right);
        setNumKeys(node, n + 1);
        return SplitResult{};
    }

    // Full internal node: build the combined entry list natively
    // (raw pointers are safe here — no allocation happens until the
    // new right node exists, and it is allocated first).
    Object *right = allocNode(false);
    Handle guard_new(runtime_, right, "btree.internalsplit");

    int64_t all_keys[kMaxKeys + 1];
    Object *all_children[kMaxKeys + 2];
    Object *array = slots(node);
    for (uint32_t i = 0; i < kMaxKeys; ++i)
        all_keys[i] = key(node, i);
    for (uint32_t i = 0; i <= kMaxKeys; ++i)
        all_children[i] = array->ref(i);
    // Splice in the new separator/child at child_idx.
    for (uint32_t i = kMaxKeys; i > child_idx; --i)
        all_keys[i] = all_keys[i - 1];
    for (uint32_t i = kMaxKeys + 1; i > child_idx + 1; --i)
        all_children[i] = all_children[i - 1];
    all_keys[child_idx] = r.midKey;
    all_children[child_idx + 1] = r.right;

    // Distribute: left keeps [0, mid), right gets (mid, kMaxKeys];
    // all_keys[mid] moves up as the separator.
    uint32_t mid = (kMaxKeys + 1) / 2;
    Object *right_array = slots(right);
    for (uint32_t i = 0; i < mid; ++i) {
        setKey(node, i, all_keys[i]);
        runtime_.writeRef(array, i, all_children[i]);
    }
    runtime_.writeRef(array, mid, all_children[mid]);
    for (uint32_t i = mid + 1; i <= kMaxKeys; ++i)
        runtime_.writeRef(array, i, nullptr);
    setNumKeys(node, mid);

    uint32_t right_n = kMaxKeys - mid;
    for (uint32_t i = 0; i < right_n; ++i) {
        setKey(right, i, all_keys[mid + 1 + i]);
        runtime_.writeRef(right_array, i, all_children[mid + 1 + i]);
    }
    runtime_.writeRef(right_array, right_n, all_children[kMaxKeys + 1]);
    setNumKeys(right, right_n);

    return SplitResult{true, all_keys[mid], right};
}

Object *
LongBTreeOps::remove(Object *tree, int64_t key_sought) const
{
    Object *root = tree->ref(0);
    if (!root)
        return nullptr;
    RemoveResult r = removeRec(root, key_sought);
    if (!r.value)
        return nullptr;
    if (r.childEmptied) {
        runtime_.writeRef(tree, 0, nullptr);
    } else if (!isLeaf(root) && numKeys(root) == 0) {
        // Collapse a root with a single child to shrink the height.
        runtime_.writeRef(tree, 0, slots(root)->ref(0));
    }
    tree->setScalar<uint64_t>(0, size(tree) - 1);
    return r.value;
}

LongBTreeOps::RemoveResult
LongBTreeOps::removeRec(Object *node, int64_t key_sought) const
{
    uint64_t n = numKeys(node);
    Object *array = slots(node);

    if (isLeaf(node)) {
        for (uint32_t i = 0; i < n; ++i) {
            if (key(node, i) == key_sought) {
                Object *value = array->ref(i);
                for (uint32_t j = i + 1; j < n; ++j) {
                    setKey(node, j - 1, key(node, j));
                    runtime_.writeRef(array, j - 1, array->ref(j));
                }
                runtime_.writeRef(array, static_cast<uint32_t>(n - 1), nullptr);
                setNumKeys(node, n - 1);
                return RemoveResult{value, n - 1 == 0};
            }
        }
        return RemoveResult{};
    }

    uint32_t child_idx = 0;
    while (child_idx < n && key_sought >= key(node, child_idx))
        ++child_idx;
    Object *child = array->ref(child_idx);
    RemoveResult r = removeRec(child, key_sought);
    if (!r.value)
        return RemoveResult{};
    if (r.childEmptied) {
        if (n == 0) {
            // Zero-key internal node (lazy-deletion artifact) whose
            // only child emptied: this node is now empty too.
            runtime_.writeRef(array, 0, nullptr);
            return RemoveResult{r.value, true};
        }
        // Prune the emptied child and one adjoining separator. At
        // least one child remains afterwards, so this node survives.
        uint32_t key_idx = child_idx > 0 ? child_idx - 1 : 0;
        for (uint32_t j = key_idx + 1; j < n; ++j)
            setKey(node, j - 1, key(node, j));
        for (uint32_t j = child_idx + 1; j <= n; ++j)
            runtime_.writeRef(array, j - 1, array->ref(j));
        runtime_.writeRef(array, static_cast<uint32_t>(n), nullptr);
        setNumKeys(node, n - 1);
        return RemoveResult{r.value, false};
    }
    return RemoveResult{r.value, false};
}

void
LongBTreeOps::replaceExisting(Object *tree, int64_t key_sought,
                              Object *value) const
{
    Object *node = tree->ref(0);
    while (node && !isLeaf(node)) {
        uint64_t n = numKeys(node);
        uint32_t i = 0;
        while (i < n && key_sought >= key(node, i))
            ++i;
        node = slots(node)->ref(i);
    }
    if (node) {
        uint64_t n = numKeys(node);
        for (uint32_t i = 0; i < n; ++i) {
            if (key(node, i) == key_sought) {
                runtime_.writeRef(slots(node), i, value);
                return;
            }
        }
    }
    panic("longBTree: replaceExisting did not find the key");
}

int64_t
LongBTreeOps::minKey(const Object *tree, bool &found) const
{
    Object *node = tree->ref(0);
    if (!node) {
        found = false;
        return 0;
    }
    while (!isLeaf(node))
        node = slots(node)->ref(0);
    if (numKeys(node) == 0) {
        found = false;
        return 0;
    }
    found = true;
    return key(node, 0);
}

void
LongBTreeOps::forEach(
    const Object *tree,
    const std::function<void(int64_t, Object *)> &visit) const
{
    // Iterative DFS to bound native stack use.
    struct Frame {
        const Object *node;
        uint32_t next;
    };
    const Object *root = tree->ref(0);
    if (!root)
        return;
    std::vector<Frame> stack;
    stack.push_back(Frame{root, 0});
    while (!stack.empty()) {
        Frame &frame = stack.back();
        const Object *node = frame.node;
        uint64_t n = numKeys(node);
        if (isLeaf(node)) {
            for (uint32_t i = 0; i < n; ++i)
                visit(key(node, i), slots(node)->ref(i));
            stack.pop_back();
            continue;
        }
        if (frame.next > n) {
            stack.pop_back();
            continue;
        }
        Object *child = slots(node)->ref(frame.next);
        ++frame.next;
        if (child)
            stack.push_back(Frame{child, 0});
    }
}

uint64_t
LongBTreeOps::checkInvariants(const Object *tree) const
{
    const Object *root = tree->ref(0);
    uint64_t counted =
        root ? checkNode(root, INT64_MIN, INT64_MAX, true) : 0;
    if (counted != size(tree))
        panic(format("longBTree: size field %llu != %llu entries found",
                     static_cast<unsigned long long>(size(tree)),
                     static_cast<unsigned long long>(counted)));
    return counted;
}

uint64_t
LongBTreeOps::checkNode(const Object *node, int64_t lo, int64_t hi,
                        bool is_root) const
{
    uint64_t n = numKeys(node);
    if (n > kMaxKeys)
        panic("longBTree: node overfull");
    // Leaves are pruned eagerly when emptied; internal nodes may
    // transiently hold zero keys with a single child (lazy
    // deletion), which is legal.
    if (!is_root && n == 0 && isLeaf(node))
        panic("longBTree: empty non-root leaf");
    int64_t prev = lo;
    for (uint32_t i = 0; i < n; ++i) {
        int64_t k = key(node, i);
        if (k < prev || k > hi)
            panic("longBTree: key ordering violated");
        prev = k;
    }
    if (isLeaf(node))
        return n;
    uint64_t total = 0;
    for (uint32_t i = 0; i <= n; ++i) {
        const Object *child = slots(node)->ref(i);
        if (!child)
            panic("longBTree: missing child");
        int64_t child_lo = i == 0 ? lo : key(node, i - 1);
        int64_t child_hi = i == n ? hi : key(node, i);
        total += checkNode(child, child_lo, child_hi, false);
    }
    return total;
}

} // namespace gcassert
