/**
 * @file
 * The mark-sweep heap: segregated-fit small-object space plus a
 * large-object space, with a fixed byte budget that drives GC
 * triggering (the benchmark methodology fixes the budget at twice
 * each workload's minimum live size, as in the paper).
 *
 * The heap is non-moving: Object addresses are stable for the life
 * of the object, which is what makes header-bit assertions and the
 * sorted ownee arrays (binary search by address) sound.
 */

#ifndef GCASSERT_HEAP_HEAP_H
#define GCASSERT_HEAP_HEAP_H

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "heap/block.h"
#include "heap/object.h"
#include "heap/size_classes.h"

namespace gcassert {

/** Result of one sweep pass. */
struct SweepStats {
    uint64_t freedBytes = 0;
    uint64_t freedObjects = 0;
    uint64_t liveBytes = 0;
    uint64_t liveObjects = 0;
    uint64_t releasedBlocks = 0;
};

/**
 * Heap configuration.
 */
struct HeapConfig {
    /** Allocation budget in bytes; exceeding it signals "GC needed". */
    uint64_t budgetBytes = 64ull * 1024 * 1024;
    /** Grow the budget instead of failing when a GC frees nothing. */
    bool allowGrowth = true;
    /** Multiplier applied when growing. */
    double growthFactor = 1.5;
};

/**
 * The managed heap.
 *
 * Allocation returns nullptr when the byte budget would be exceeded;
 * the Runtime responds by collecting and retrying. The heap itself
 * never triggers a collection.
 */
class Heap {
  public:
    explicit Heap(const HeapConfig &config);

    Heap(const Heap &) = delete;
    Heap &operator=(const Heap &) = delete;

    /**
     * Allocate and format an object.
     *
     * @param type_id Runtime type of the new object.
     * @param num_refs Number of reference slots.
     * @param scalar_bytes Scalar payload size.
     * @return The new object, or nullptr if the budget is exhausted
     *         (caller should collect and retry).
     */
    Object *allocate(TypeId type_id, uint32_t num_refs,
                     uint32_t scalar_bytes);

    /**
     * Sweep all spaces: reclaim unmarked objects, clear mark bits on
     * survivors, release empty blocks.
     *
     * @param on_free Hook invoked on each dying object before its
     *                memory is recycled.
     */
    SweepStats sweep(const std::function<void(Object *)> &on_free);

    /** Visit every allocated object (marked or not). */
    void forEachObject(const std::function<void(Object *)> &visit) const;

    /** @return true if @p p is a currently allocated heap object. */
    bool contains(const Object *p) const;

    /** Bytes currently allocated (cells + large objects). */
    uint64_t usedBytes() const { return usedBytes_; }

    /** Current allocation budget. */
    uint64_t budgetBytes() const { return config_.budgetBytes; }

    /** Replace the budget (used by the growth policy). */
    void setBudgetBytes(uint64_t bytes) { config_.budgetBytes = bytes; }

    const HeapConfig &config() const { return config_; }

    /** Objects currently allocated. */
    uint64_t liveObjects() const { return liveObjects_; }

    /** Lifetime totals, for workload volume reporting. */
    uint64_t totalAllocatedBytes() const { return totalAllocatedBytes_; }
    uint64_t totalAllocatedObjects() const
    {
        return totalAllocatedObjects_;
    }

  private:
    struct LargeObject {
        std::unique_ptr<char[]> memory;
        uint32_t bytes;
    };

    Object *allocateSmall(size_t size_class, TypeId type_id,
                          uint32_t num_refs, uint32_t scalar_bytes,
                          uint32_t size);
    Object *allocateLarge(TypeId type_id, uint32_t num_refs,
                          uint32_t scalar_bytes, uint32_t size);

    HeapConfig config_;
    uint64_t usedBytes_ = 0;
    uint64_t liveObjects_ = 0;
    uint64_t totalAllocatedBytes_ = 0;
    uint64_t totalAllocatedObjects_ = 0;

    /** Per-size-class block lists. */
    std::vector<std::unique_ptr<Block>> blocks_[kNumSizeClasses];
    /** Index into blocks_[c] of a block known to have room, or -1. */
    ssize_t allocHint_[kNumSizeClasses];

    std::vector<LargeObject> large_;
    /** Fast membership test for large objects. */
    std::unordered_set<const Object *> largeSet_;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAP_H
