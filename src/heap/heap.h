/**
 * @file
 * The mark-sweep heap: segregated-fit small-object space plus a
 * large-object space, with a fixed byte budget that drives GC
 * triggering (the benchmark methodology fixes the budget at twice
 * each workload's minimum live size, as in the paper).
 *
 * The heap is non-moving: Object addresses are stable for the life
 * of the object, which is what makes header-bit assertions and the
 * sorted ownee arrays (binary search by address) sound.
 *
 * Concurrency contract: all entry points except tlabAllocate()
 * require exclusive access (the Runtime's writer lock). Any number
 * of mutators may call tlabAllocate() concurrently under the
 * Runtime's shared lock — it touches only atomics and blocks leased
 * exclusively to the calling mutator.
 */

#ifndef GCASSERT_HEAP_HEAP_H
#define GCASSERT_HEAP_HEAP_H

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "heap/block.h"
#include "heap/object.h"
#include "heap/region_summary.h"
#include "heap/size_classes.h"

namespace gcassert {

/** Result of one sweep pass. */
struct SweepStats {
    uint64_t freedBytes = 0;
    uint64_t freedObjects = 0;
    uint64_t liveBytes = 0;
    uint64_t liveObjects = 0;
    uint64_t releasedBlocks = 0;
};

/** Timing/tally record for one parallel sweep worker (telemetry). */
struct SweepWorkerSpan {
    uint64_t beginNanos = 0;
    uint64_t endNanos = 0;
    /** Blocks in this worker's shard. */
    uint64_t blocks = 0;
    /** Dead objects this worker identified or reclaimed. */
    uint64_t objects = 0;
};

/** How a sweep pass should run; defaults reproduce the sequential
 *  eager sweep. */
struct SweepOptions {
    /** Worker threads sweeping block shards (clamped to the block
     *  count; 0 and 1 both mean sequential). */
    uint32_t threads = 1;
    /** Defer mark-clearing and free-list threading per block to the
     *  allocation path / next-GC prologue. */
    bool lazy = false;
    /**
     * When non-null and the sweep runs parallel workers, receives one
     * timing span per worker (resized by the sweep). Observation
     * only: filling it never changes what the sweep does.
     */
    std::vector<SweepWorkerSpan> *workerSpans = nullptr;
};

/**
 * Heap configuration.
 */
struct HeapConfig {
    /** Allocation budget in bytes; exceeding it signals "GC needed". */
    uint64_t budgetBytes = 64ull * 1024 * 1024;
    /** Grow the budget instead of failing when a GC frees nothing. */
    bool allowGrowth = true;
    /** Multiplier applied when growing. */
    double growthFactor = 1.5;
    /**
     * Track new objects as a logical nursery generation. The nursery
     * is not a separate region — the heap stays non-moving — but a
     * roster of young objects tagged kNurseryBit, collectible by a
     * minor GC (Collector::minorCollect) and promoted in place by
     * clearing the tag.
     */
    bool generational = false;
};

/** Result of one nursery sweep (minor collection epilogue). */
struct NurserySweepStats {
    uint64_t promotedObjects = 0;
    uint64_t freedObjects = 0;
    uint64_t freedBytes = 0;
};

/**
 * The managed heap.
 *
 * Allocation returns nullptr when the byte budget would be exceeded;
 * the Runtime responds by collecting and retrying. The heap itself
 * never triggers a collection.
 */
class Heap {
  public:
    /**
     * Per-mutator allocation buffer: one block leased per size
     * class, bump-allocated without the global lock. Owned by a
     * MutatorContext; the heap fills it via refillTlab() and keeps
     * leased blocks out of the shared allocation path.
     */
    struct TlabCache {
        Block *blocks[kNumSizeClasses] = {};
    };

    explicit Heap(const HeapConfig &config);

    ~Heap();

    Heap(const Heap &) = delete;
    Heap &operator=(const Heap &) = delete;

    /**
     * Allocate and format an object.
     *
     * @param type_id Runtime type of the new object.
     * @param num_refs Number of reference slots.
     * @param scalar_bytes Scalar payload size.
     * @return The new object, or nullptr if the budget is exhausted
     *         (caller should collect and retry).
     */
    Object *allocate(TypeId type_id, uint32_t num_refs,
                     uint32_t scalar_bytes);

    /**
     * Thread-safe fast-path allocation from the calling mutator's
     * leased blocks. Safe under the Runtime's *shared* lock: only
     * atomics and the exclusively leased block are touched.
     *
     * @return The new object, or nullptr when the slow path is
     *         needed — no lease yet, leased block full, large
     *         object, or budget exhausted.
     */
    Object *tlabAllocate(TlabCache &cache, TypeId type_id,
                         uint32_t num_refs, uint32_t scalar_bytes);

    /**
     * Replace the lease for @p size_class in @p cache with a block
     * that has free cells, minting one if every unleased block is
     * full. Returns the previous lease (if any) to the shared pool.
     * Requires exclusive access.
     */
    void refillTlab(TlabCache &cache, size_t size_class);

    /**
     * Return every lease held by @p cache to the shared pool (on
     * mutator teardown). Requires exclusive access.
     */
    void returnTlab(TlabCache &cache);

    /**
     * Sweep all spaces: reclaim unmarked objects, clear mark bits on
     * survivors, release empty (unleased) blocks.
     *
     * Regardless of @p options, the @p on_free hook observes exactly
     * the sequential eager sweep's behavior: invoked once per dying
     * object, headers intact, in canonical order — small-object
     * blocks by (size class, block list index), cells within a block
     * by ascending address, then large objects in allocation order.
     * Parallel workers buffer their dead sets and the calling thread
     * replays them; lazy mode runs the hooks and the accounting at
     * GC time and defers only mark-clearing and free-list threading.
     *
     * @param on_free Hook invoked on each dying object before its
     *                memory is recycled.
     * @param options Worker count and eager/lazy mode.
     */
    SweepStats sweep(const std::function<void(Object *)> &on_free,
                     const SweepOptions &options = {});

    /**
     * Finish every lazily swept block: clear stale mark bits and
     * rebuild free lists. The collector calls this before marking so
     * no stale mark bit can hide a live object.
     *
     * @return Number of blocks finished.
     */
    uint64_t finishLazySweep();

    /** Blocks still awaiting their deferred sweep finish. */
    uint64_t lazyPendingBlocks() const;

    /**
     * @return true if @p p sits in a block whose sweep finish is
     * still deferred (its live objects carry stale mark bits).
     */
    bool inLazyPendingBlock(const Object *p) const;

    /** Visit every allocated object (marked or not). */
    void forEachObject(const std::function<void(Object *)> &visit) const;

    /**
     * @return true if @p p is a currently allocated heap object —
     * exact (used-bit / large-set membership), not address-range.
     */
    bool contains(const Object *p) const;

    /** Bytes currently allocated (cells + large objects). */
    uint64_t
    usedBytes() const
    {
        return usedBytes_.load(std::memory_order_relaxed);
    }

    /** Current allocation budget. */
    uint64_t budgetBytes() const { return config_.budgetBytes; }

    /** Replace the budget (used by the growth policy). */
    void setBudgetBytes(uint64_t bytes) { config_.budgetBytes = bytes; }

    const HeapConfig &config() const { return config_; }

    /** Objects currently allocated. */
    uint64_t
    liveObjects() const
    {
        return liveObjects_.load(std::memory_order_relaxed);
    }

    /** Lifetime totals, for workload volume reporting. */
    uint64_t
    totalAllocatedBytes() const
    {
        return totalAllocatedBytes_.load(std::memory_order_relaxed);
    }
    uint64_t
    totalAllocatedObjects() const
    {
        return totalAllocatedObjects_.load(std::memory_order_relaxed);
    }

    /** Lifetime count of lock-free TLAB fast-path allocations. */
    uint64_t
    tlabAllocs() const
    {
        return tlabAllocs_.load(std::memory_order_relaxed);
    }

    /** Lifetime count of small-object blocks minted (allocation and
     *  TLAB-refill slow paths; telemetry gauge). */
    uint64_t
    blocksMinted() const
    {
        return blocksMinted_.load(std::memory_order_relaxed);
    }

    /** @return true when the heap tracks a nursery generation. */
    bool generational() const { return config_.generational; }

    /**
     * Attach (or detach, with nullptr) the per-region summary table
     * the incremental assertion recheck maintains. While attached,
     * both allocation funnels note every new object and the nursery
     * paths note every promotion, so the table's alloc/free tallies
     * stay exact. Attach before the first allocation (the runtime
     * does so in its constructor); the table is owned elsewhere.
     */
    void setRegionSummaries(RegionSummaryTable *summaries)
    {
        regionSummaries_ = summaries;
    }

    RegionSummaryTable *regionSummaries() const
    {
        return regionSummaries_;
    }

    /** Bytes charged to nursery objects since the last collection. */
    uint64_t
    nurseryBytes() const
    {
        return nurseryBytes_.load(std::memory_order_relaxed);
    }

    /** Nursery objects currently on the roster. */
    size_t nurseryCount() const;

    /** @return true if @p p is on the nursery roster. */
    bool nurseryContains(const Object *p) const;

    /** Visit every nursery object, in allocation order. Stopped-world
     *  use only. */
    void forEachNursery(const std::function<void(Object *)> &visit) const;

    /**
     * Minor-collection epilogue: promote marked nursery objects in
     * place (clear kMarkBit and kNurseryBit) and reclaim unmarked
     * ones, invoking @p on_dead first, headers intact, in allocation
     * order. Afterwards the roster is empty.
     *
     * Reclaimed memory is recycled immediately, but the budget
     * counters (usedBytes / liveObjects) are deliberately NOT
     * decremented here: they settle at the next full sweep, so
     * full-GC trigger points are identical with the nursery on or
     * off — the cornerstone of the generational equivalence argument.
     */
    NurserySweepStats
    sweepNursery(const std::function<void(Object *)> &on_dead);

    /**
     * Full-GC prologue: promote the entire nursery wholesale so the
     * full collection runs with zero nursery state and is textually
     * identical to the non-generational path.
     *
     * @return Number of objects promoted.
     */
    uint64_t promoteAllNursery();

  private:
    struct LargeObject {
        std::unique_ptr<char[]> memory;
        uint32_t bytes;
    };

    Object *allocateSmall(size_t size_class, TypeId type_id,
                          uint32_t num_refs, uint32_t scalar_bytes,
                          uint32_t size);
    Object *allocateLarge(TypeId type_id, uint32_t num_refs,
                          uint32_t scalar_bytes, uint32_t size);

    /** Sweep the small-object space per @p options into @p stats. */
    void sweepSmall(const std::function<void(Object *)> &on_free,
                    const SweepOptions &options, SweepStats &stats);

    /**
     * Tag @p obj as nursery and append it to the roster. @p block is
     * its small-object block, or nullptr for a large object; @p
     * charged is the budget charge (cell bytes or large size).
     * Thread-safe: tlabAllocate() calls this under the Runtime's
     * shared lock.
     */
    void noteNursery(Object *obj, Block *block, uint32_t charged);

    HeapConfig config_;
    std::atomic<uint64_t> usedBytes_{0};
    std::atomic<uint64_t> liveObjects_{0};
    std::atomic<uint64_t> totalAllocatedBytes_{0};
    std::atomic<uint64_t> totalAllocatedObjects_{0};
    std::atomic<uint64_t> tlabAllocs_{0};

    /** Incremental-recheck region summaries (null = not tracking). */
    RegionSummaryTable *regionSummaries_ = nullptr;
    std::atomic<uint64_t> blocksMinted_{0};

    /** Per-size-class block lists. */
    std::vector<std::unique_ptr<Block>> blocks_[kNumSizeClasses];
    /** Index into blocks_[c] of a block known to have room, or -1. */
    ssize_t allocHint_[kNumSizeClasses];

    std::vector<LargeObject> large_;
    /** Fast membership test for large objects. */
    std::unordered_set<const Object *> largeSet_;

    /** One nursery roster entry; block is null for large objects. */
    struct NurseryEntry {
        Object *obj;
        Block *block;
        uint32_t charged;
    };
    /** Guards the roster (appended to under the shared lock). */
    mutable std::mutex nurseryMutex_;
    /** Young objects in allocation order. */
    std::vector<NurseryEntry> nursery_;
    /** Fast roster membership for the verifier. */
    std::unordered_set<const Object *> nurseryMembers_;
    std::atomic<uint64_t> nurseryBytes_{0};

    /**
     * Budget charge reclaimed by minor collections since the last
     * full sweep. Settled (subtracted from usedBytes_/liveObjects_)
     * at the end of sweep() so that the budget counters evolve
     * exactly as they would with the nursery off.
     */
    uint64_t minorFreedBytes_ = 0;
    uint64_t minorFreedObjects_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAP_H
