#include "heap/block.h"

#include <cstring>
#include <new>

namespace gcassert {

namespace {

/** Free cells link through their first word. */
struct FreeCell {
    void *next;
};

} // namespace

Block::Block(uint32_t cell_bytes)
    // operator new[] guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__
    // (16 on x86-64), which satisfies the word alignment the tagged
    // worklist pointers rely on.
    : memory_(new char[kBlockBytes]),
      cellBytes_(cell_bytes),
      numCells_(static_cast<uint32_t>(kBlockBytes / cell_bytes)),
      liveCells_(0),
      freeHead_(nullptr),
      usedBits_((numCells_ + 63) / 64, 0)
{
    if (cell_bytes < sizeof(FreeCell) || cell_bytes % 8 != 0)
        panic("Block cell size must be a word multiple >= 8");
    // Thread all cells onto the free list in address order so early
    // allocations are contiguous (friendlier to the cache and to
    // deterministic tests).
    for (uint32_t i = numCells_; i > 0; --i) {
        char *cell = memory_.get() + size_t{i - 1} * cellBytes_;
        reinterpret_cast<FreeCell *>(cell)->next = freeHead_;
        freeHead_ = cell;
    }
}

Block::~Block() = default;

void *
Block::allocateCell()
{
    if (lazyPending_)
        finishLazySweep();
    if (!freeHead_)
        return nullptr;
    void *cell = freeHead_;
    freeHead_ = reinterpret_cast<FreeCell *>(cell)->next;
    ++liveCells_;
    setUsedBit(cellIndexOf(cell));
    return cell;
}

bool
Block::contains(const void *p) const
{
    const char *c = static_cast<const char *>(p);
    return c >= memory_.get() && c < memory_.get() + kBlockBytes;
}

bool
Block::isAllocatedCell(const void *p) const
{
    if (!contains(p))
        return false;
    size_t offset = static_cast<const char *>(p) - memory_.get();
    return offset % cellBytes_ == 0 &&
           usedBit(static_cast<uint32_t>(offset / cellBytes_));
}

uint32_t
Block::cellIndexOf(const void *p) const
{
    size_t offset = static_cast<const char *>(p) - memory_.get();
    return static_cast<uint32_t>(offset / cellBytes_);
}

void
Block::pushFreeCell(void *cell)
{
    reinterpret_cast<FreeCell *>(cell)->next = freeHead_;
    freeHead_ = cell;
}

uint64_t
Block::releaseCell(Object *obj)
{
    clearUsedBit(cellIndexOf(obj));
    pushFreeCell(obj);
    --liveCells_;
    return cellBytes_;
}

void
Block::finishLazySweep()
{
    if (!lazyPending_)
        return;
    // Rebuild the entire free list from the used-bit complement in
    // ascending address order: the block's free cells end up in the
    // same order a freshly swept eager block would hand them out,
    // which keeps allocation addresses (and thus test outcomes)
    // independent of when the finish happens.
    void *head = nullptr;
    FreeCell *tail = nullptr;
    for (uint32_t cell = 0; cell < numCells_; ++cell) {
        if (usedBit(cell)) {
            objectAt(cell)->clearFlag(kMarkBit);
            continue;
        }
        auto *fc = reinterpret_cast<FreeCell *>(objectAt(cell));
        fc->next = nullptr;
        if (tail)
            tail->next = fc;
        else
            head = fc;
        tail = fc;
    }
    freeHead_ = head;
    lazyPending_ = false;
}

void
Block::forEachObject(const std::function<void(Object *)> &visit) const
{
    for (uint32_t word = 0; word < usedBits_.size(); ++word) {
        uint64_t bits = usedBits_[word];
        while (bits) {
            uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            uint32_t cell = word * 64 + bit;
            visit(objectAt(cell));
        }
    }
}

} // namespace gcassert
