/**
 * @file
 * Heap integrity verification (debug support).
 *
 * Walks every allocated object and validates the structural
 * invariants the collector and assertion engine rely on:
 *
 *  - every reference slot is null or points to an allocated object;
 *  - no object carries a stale mark bit between collections;
 *  - per-object assertion state is consistent (owner tags only on
 *    ownees, orphan bits only with dead bits);
 *  - object sizes match their type shape for fixed-shape types.
 *
 * Used by the stress tests and available to embedders chasing
 * memory corruption. O(heap size); never run it from a hot path.
 */

#ifndef GCASSERT_HEAP_VERIFIER_H
#define GCASSERT_HEAP_VERIFIER_H

#include <string>
#include <vector>

#include "heap/object.h"

namespace gcassert {

class Runtime;

/** One verification finding. */
struct VerifierIssue {
    const Object *object;
    std::string what;
};

/**
 * Validates heap structural invariants.
 */
class HeapVerifier {
  public:
    explicit HeapVerifier(Runtime &runtime) : runtime_(runtime) {}

    /**
     * Run all checks.
     * @return Every issue found (empty = healthy heap).
     */
    std::vector<VerifierIssue> verify() const;

    /**
     * Convenience for tests: panics with the first issue's
     * description if the heap is not healthy.
     */
    void verifyOrPanic() const;

  private:
    Runtime &runtime_;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_VERIFIER_H
