#include "heap/size_classes.h"

namespace gcassert {

const uint32_t kSizeClassBytes[kNumSizeClasses] = {
    16,   24,   32,   48,   64,   96,   128,  192,
    256,  384,  512,  768,  1024, 2048, 4096, 8192,
};

uint32_t
maxSmallObjectBytes()
{
    return kSizeClassBytes[kNumSizeClasses - 1];
}

size_t
sizeClassFor(uint32_t bytes)
{
    // Linear scan over 16 entries; dominated by the later memset of
    // the object payload, and trivially branch-predictable because
    // most workloads allocate from a few classes.
    for (size_t i = 0; i < kNumSizeClasses; ++i) {
        if (bytes <= kSizeClassBytes[i])
            return i;
    }
    return kNumSizeClasses;
}

} // namespace gcassert
