/**
 * @file
 * Fixed-size allocation blocks for the small-object space.
 *
 * A Block is a 64 KiB aligned slab carved into equal cells of one
 * size class. A free list threads through the first word of each
 * free cell; a side bitmap records which cells are live so the sweep
 * can iterate allocated objects without reading freed memory.
 *
 * Blocks are the unit of sweep parallelism (each block is swept by
 * exactly one worker, so no block state needs synchronization), the
 * unit of lazy reclamation (a block flagged sweep-pending defers its
 * mark-bit clearing and free-list threading until the next
 * allocation touches it), and the unit of TLAB leasing (a leased
 * block is allocated from by exactly one mutator, outside the global
 * heap lock).
 */

#ifndef GCASSERT_HEAP_BLOCK_H
#define GCASSERT_HEAP_BLOCK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/**
 * One slab of cells belonging to a single size class.
 */
class Block {
  public:
    /** Slab size; cells never span blocks. */
    static constexpr size_t kBlockBytes = 64 * 1024;

    /**
     * Create an empty block whose cells are @p cell_bytes wide.
     * All cells start on the free list.
     */
    explicit Block(uint32_t cell_bytes);

    ~Block();

    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    /** Cell width for this block. */
    uint32_t cellBytes() const { return cellBytes_; }

    /** Total cells in the block. */
    uint32_t numCells() const { return numCells_; }

    /** Currently allocated cells. */
    uint32_t liveCells() const { return liveCells_; }

    /** @return true when no cell is allocated. */
    bool empty() const { return liveCells_ == 0; }

    /** @return true when every cell is allocated. */
    bool full() const { return liveCells_ == numCells_; }

    /**
     * Pop a free cell. The returned memory is uninitialized; the
     * heap formats it as an Object. A sweep-pending block finishes
     * its deferred reclamation first, so lazily swept cells become
     * allocatable the moment allocation reaches their block.
     *
     * @return Cell address, or nullptr when the block is full.
     */
    void *allocateCell();

    /** @return true if @p p points into this block's slab. */
    bool contains(const void *p) const;

    /**
     * @return true if @p p is the base address of a currently
     * allocated cell (used-bit precision, not just slab range).
     */
    bool isAllocatedCell(const void *p) const;

    /**
     * Eager sweep with statically dispatched dead-object callback:
     * for every allocated cell, clear the mark bit if set, otherwise
     * invoke @p on_dead and release the cell back to the free list.
     * The template keeps the per-object hot loop free of
     * std::function dispatch (and of its null check).
     *
     * @return Number of bytes freed.
     */
    template <typename OnDead>
    uint64_t
    sweepWith(OnDead &&on_dead)
    {
        uint64_t freed = 0;
        for (uint32_t word = 0; word < usedBits_.size(); ++word) {
            uint64_t bits = usedBits_[word];
            while (bits) {
                uint32_t bit =
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                uint32_t cell = word * 64 + bit;
                Object *obj = objectAt(cell);
                if (obj->marked()) {
                    obj->clearFlag(kMarkBit);
                } else {
                    on_dead(obj);
                    clearUsedBit(cell);
                    pushFreeCell(obj);
                    --liveCells_;
                    freed += cellBytes_;
                }
            }
        }
        return freed;
    }

    /**
     * Parallel-sweep identification pass: clear the mark bit of live
     * cells and report dead cells through @p on_dead *without*
     * mutating them, so a buffered on_free callback can still read
     * their intact headers after the workers join. Pair with
     * releaseCell() on each reported object to finish the sweep.
     */
    template <typename OnDead>
    void
    identifyDead(OnDead &&on_dead)
    {
        for (uint32_t word = 0; word < usedBits_.size(); ++word) {
            uint64_t bits = usedBits_[word];
            while (bits) {
                uint32_t bit =
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                uint32_t cell = word * 64 + bit;
                Object *obj = objectAt(cell);
                if (obj->marked())
                    obj->clearFlag(kMarkBit);
                else
                    on_dead(obj);
            }
        }
    }

    /**
     * Lazy sweep: report and un-account dead cells (used bit, live
     * count) but defer both the mark-bit clearing of survivors and
     * the free-list threading of corpses to finishLazySweep(). The
     * dead objects' memory is untouched, so buffered callbacks may
     * still read them after this returns. Flags the block
     * sweep-pending.
     *
     * @return Number of bytes freed (reclaimable immediately for
     *         accounting purposes; the cells become allocatable when
     *         the block is finished).
     */
    template <typename OnDead>
    uint64_t
    lazySweep(OnDead &&on_dead)
    {
        uint64_t freed = 0;
        for (uint32_t word = 0; word < usedBits_.size(); ++word) {
            uint64_t bits = usedBits_[word];
            while (bits) {
                uint32_t bit =
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                uint32_t cell = word * 64 + bit;
                Object *obj = objectAt(cell);
                if (obj->marked())
                    continue; // mark cleared on finish
                on_dead(obj);
                clearUsedBit(cell);
                --liveCells_;
                freed += cellBytes_;
            }
        }
        lazyPending_ = true;
        return freed;
    }

    /**
     * Finish a deferred (lazy) sweep: clear the stale mark bits of
     * survivors and rebuild the free list, in ascending address
     * order, from the used-bit complement. No-op unless the block is
     * sweep-pending. Must run before the next mark phase (the
     * collector finishes all pending blocks at GC start; allocation
     * finishes a block on first touch).
     */
    void finishLazySweep();

    /** @return true while a lazy sweep is deferred on this block. */
    bool lazyPending() const { return lazyPending_; }

    /**
     * Release one dead cell identified by identifyDead(): clear its
     * used bit and thread it onto the free list.
     *
     * @return Bytes freed (the cell size).
     */
    uint64_t releaseCell(Object *obj);

    /**
     * Sweep the block (dynamic-dispatch convenience wrapper over
     * sweepWith, kept for tests and tools).
     */
    uint64_t
    sweep(const std::function<void(Object *)> &on_free)
    {
        if (on_free)
            return sweepWith([&](Object *obj) { on_free(obj); });
        return sweepWith([](Object *) {});
    }

    /**
     * Visit every allocated object in the block (live or not-yet-
     * swept). Used by detectors and debugging dumps.
     */
    void forEachObject(const std::function<void(Object *)> &visit) const;

    /** @name TLAB leasing
     *
     * A leased block is allocated from exclusively by one mutator
     * (outside the global heap lock), is skipped by the shared
     * allocation path, and is never released even when empty.
     *  @{ */
    bool leased() const { return leased_; }
    void setLeased(bool leased) { leased_ = leased; }
    /** @} */

    /** Base address of the slab (for address-ordered diagnostics). */
    const char *base() const { return memory_.get(); }

  private:
    /** Index of the cell containing @p p. @pre contains(p). */
    uint32_t cellIndexOf(const void *p) const;

    /** Object view of cell @p cell. */
    Object *
    objectAt(uint32_t cell) const
    {
        return reinterpret_cast<Object *>(
            const_cast<char *>(memory_.get()) +
            size_t{cell} * cellBytes_);
    }

    /** Thread a (dead, unused) cell onto the free list head. */
    void pushFreeCell(void *cell);

    bool
    usedBit(uint32_t cell) const
    {
        return (usedBits_[cell / 64] >> (cell % 64)) & 1;
    }

    void
    setUsedBit(uint32_t cell)
    {
        usedBits_[cell / 64] |= uint64_t{1} << (cell % 64);
    }

    void
    clearUsedBit(uint32_t cell)
    {
        usedBits_[cell / 64] &= ~(uint64_t{1} << (cell % 64));
    }

    std::unique_ptr<char[]> memory_;
    uint32_t cellBytes_;
    uint32_t numCells_;
    uint32_t liveCells_;
    void *freeHead_;
    /** A lazy sweep ran; marks stale and free list incomplete. */
    bool lazyPending_ = false;
    /** Exclusively held by one mutator's TLAB. */
    bool leased_ = false;
    std::vector<uint64_t> usedBits_;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_BLOCK_H
