/**
 * @file
 * Fixed-size allocation blocks for the small-object space.
 *
 * A Block is a 64 KiB aligned slab carved into equal cells of one
 * size class. A free list threads through the first word of each
 * free cell; a side bitmap records which cells are live so the sweep
 * can iterate allocated objects without reading freed memory.
 */

#ifndef GCASSERT_HEAP_BLOCK_H
#define GCASSERT_HEAP_BLOCK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/**
 * One slab of cells belonging to a single size class.
 */
class Block {
  public:
    /** Slab size; cells never span blocks. */
    static constexpr size_t kBlockBytes = 64 * 1024;

    /**
     * Create an empty block whose cells are @p cell_bytes wide.
     * All cells start on the free list.
     */
    explicit Block(uint32_t cell_bytes);

    ~Block();

    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    /** Cell width for this block. */
    uint32_t cellBytes() const { return cellBytes_; }

    /** Total cells in the block. */
    uint32_t numCells() const { return numCells_; }

    /** Currently allocated cells. */
    uint32_t liveCells() const { return liveCells_; }

    /** @return true when no cell is allocated. */
    bool empty() const { return liveCells_ == 0; }

    /** @return true when every cell is allocated. */
    bool full() const { return liveCells_ == numCells_; }

    /**
     * Pop a free cell. The returned memory is uninitialized; the
     * heap formats it as an Object.
     *
     * @return Cell address, or nullptr when the block is full.
     */
    void *allocateCell();

    /** @return true if @p p points into this block's slab. */
    bool contains(const void *p) const;

    /**
     * Sweep the block: for every allocated cell, clear the mark bit
     * if set, otherwise release the cell back to the free list after
     * invoking @p on_free.
     *
     * @param on_free Callback run on each dying object before its
     *                cell is recycled (may be empty).
     * @return Number of bytes freed.
     */
    uint64_t sweep(const std::function<void(Object *)> &on_free);

    /**
     * Visit every allocated object in the block (live or not-yet-
     * swept). Used by detectors and debugging dumps.
     */
    void forEachObject(const std::function<void(Object *)> &visit) const;

    /** Base address of the slab (for address-ordered diagnostics). */
    const char *base() const { return memory_.get(); }

  private:
    /** Index of the cell containing @p p. @pre contains(p). */
    uint32_t cellIndexOf(const void *p) const;

    bool usedBit(uint32_t cell) const;
    void setUsedBit(uint32_t cell);
    void clearUsedBit(uint32_t cell);

    std::unique_ptr<char[]> memory_;
    uint32_t cellBytes_;
    uint32_t numCells_;
    uint32_t liveCells_;
    void *freeHead_;
    std::vector<uint64_t> usedBits_;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_BLOCK_H
