/**
 * @file
 * Per-region summary storage for incremental assertion rechecks.
 *
 * The heap is viewed as a direct-mapped table of 64 KiB address
 * windows ("regions"). Each region slot carries, per tracked-type
 * column, an exact tally of live instances and bytes, maintained at
 * allocation, free and promotion time, plus two dirty flavours:
 *
 *  - "mutated": a reference field inside the region was written (the
 *    card-marking write barrier feeds this via the remembered set's
 *    dirty-card stream), or an assertion flag on an object in the
 *    region changed;
 *  - "churned": the region gained or lost objects (allocation, sweep
 *    frees, nursery promotion).
 *
 * At each full GC the merge pass walks the 1024 slots once: dirty
 * regions have their column tallies re-snapshotted into the global
 * totals (an "invalidation"); clean regions contribute their cached
 * snapshot unchanged (a "hit"). Because the tallies are exact and
 * the totals are maintained as total += current - snapshot, the
 * merged totals always equal the sum of live instances regardless of
 * which regions were dirty — dirtiness only decides how much
 * re-snapshot work the pass performs, never the verdict.
 *
 * Slots are direct-mapped by (addr >> 16) & 1023; distinct 64 KiB
 * windows that collide simply share a slot, which merges their
 * tallies and dirty bits. That is harmless for correctness (tallies
 * stay exact) and only coarsens invalidation.
 *
 * The table also owns the TypeId -> column map (columns are assigned
 * monotonically, first assertInstances/assertVolume on a type wins a
 * column, and are never reused even if the type is later untracked,
 * so the tallies stay exact across re-track cycles). Types beyond
 * kMaxColumns get no column; their verdicts fall back to one full
 * heap walk at merge time — correct, just uncached. The table stays
 * assertion-agnostic otherwise: which kinds consume the summaries,
 * and how, lives in assertions/incremental.h.
 */

#ifndef GCASSERT_HEAP_REGION_SUMMARY_H
#define GCASSERT_HEAP_REGION_SUMMARY_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "heap/object.h"

namespace gcassert {

class RegionSummaryTable {
  public:
    /** 64 KiB address windows. */
    static constexpr uintptr_t kRegionShift = 16;
    static constexpr uintptr_t kRegionBytes = uintptr_t{1} << kRegionShift;

    /** Direct-mapped slot count (power of two). */
    static constexpr size_t kRegionSlots = 1024;

    /** Tracked-type columns per region (monotonic, never reused). */
    static constexpr size_t kMaxColumns = 32;

    /** Dense TypeId space covered by the column map. */
    static constexpr size_t kMaxTypeIds = 4096;

    RegionSummaryTable()
        : regions_(new Region[kRegionSlots]),
          columnOfType_(new std::atomic<int32_t>[kMaxTypeIds])
    {
        for (size_t c = 0; c < kMaxColumns; ++c) {
            totalCount_[c] = 0;
            totalBytes_[c] = 0;
            typeOfColumn_[c] = 0;
        }
        for (size_t t = 0; t < kMaxTypeIds; ++t)
            columnOfType_[t].store(-1, std::memory_order_relaxed);
    }

    /** Direct-mapped slot index for an address. */
    static size_t
    slotOf(const void *addr)
    {
        return (reinterpret_cast<uintptr_t>(addr) >> kRegionShift) &
               (kRegionSlots - 1);
    }

    // ----- type -> column map -----

    /** Column for @p id, or -1 (untracked / overflowed). */
    int
    columnOf(TypeId id) const
    {
        if (id >= kMaxTypeIds)
            return -1;
        return columnOfType_[id].load(std::memory_order_relaxed);
    }

    /**
     * Assign a column to @p id (idempotent). Runs under the runtime's
     * exclusive lock — the assertion entry points — so assignment
     * never races another assignment, only the relaxed loads on the
     * allocation fast path.
     *
     * @return the column, or -1 when out of columns (the type's
     *         verdict falls back to a heap walk at merge time).
     */
    int
    ensureColumn(TypeId id)
    {
        if (id >= kMaxTypeIds)
            return -1;
        int existing = columnOfType_[id].load(std::memory_order_relaxed);
        if (existing >= 0)
            return existing;
        if (numColumns_ >= kMaxColumns)
            return -1;
        int column = static_cast<int>(numColumns_++);
        typeOfColumn_[column] = id;
        columnOfType_[id].store(column, std::memory_order_relaxed);
        return column;
    }

    /** Columns assigned so far. */
    size_t activeColumns() const { return numColumns_; }

    /** TypeId behind @p column (valid for column < activeColumns). */
    TypeId typeOfColumn(size_t column) const { return typeOfColumn_[column]; }

    // ----- mutator-side notes (run under the runtime's shared
    // ----- allocation lock, hence the relaxed atomics) -----

    /** A new object was allocated (any type; column resolved here). */
    void
    noteAlloc(const Object *obj)
    {
        Region &r = regions_[slotOf(obj)];
        r.churned.store(1, std::memory_order_relaxed);
        r.touched.store(1, std::memory_order_relaxed);
        int column = columnOf(obj->typeId());
        if (column >= 0) {
            r.count[column].fetch_add(1, std::memory_order_relaxed);
            r.bytes[column].fetch_add(obj->sizeBytes(),
                                      std::memory_order_relaxed);
        }
    }

    /** An object died (sweep or minor-collection free). */
    void
    noteFree(const Object *obj)
    {
        Region &r = regions_[slotOf(obj)];
        r.churned.store(1, std::memory_order_relaxed);
        int column = columnOf(obj->typeId());
        if (column >= 0) {
            r.count[column].fetch_sub(1, std::memory_order_relaxed);
            r.bytes[column].fetch_sub(obj->sizeBytes(),
                                      std::memory_order_relaxed);
        }
    }

    /**
     * Baseline tally for an object that existed before its type won a
     * column (the assertion entry point walks the heap once at column
     * assignment). Dirties the region so the first merge after the
     * walk re-snapshots it.
     */
    void
    noteBaseline(const Object *obj, int column)
    {
        Region &r = regions_[slotOf(obj)];
        r.churned.store(1, std::memory_order_relaxed);
        r.touched.store(1, std::memory_order_relaxed);
        r.count[column].fetch_add(1, std::memory_order_relaxed);
        r.bytes[column].fetch_add(obj->sizeBytes(),
                                  std::memory_order_relaxed);
    }

    /** An object at @p addr left the nursery (tallies unchanged). */
    void
    notePromotion(const void *addr)
    {
        regions_[slotOf(addr)].churned.store(1, std::memory_order_relaxed);
    }

    /** A reference field at @p addr was written (dirty-card stream). */
    void
    noteMutation(const void *addr)
    {
        Region &r = regions_[slotOf(addr)];
        r.mutated.store(1, std::memory_order_relaxed);
        // In-degree bit for the 1 KiB sub-window: records *where*
        // inbound-edge sources were rewritten, the assert-unshared
        // summary the merge pass resets per cycle.
        uint64_t bit = (reinterpret_cast<uintptr_t>(addr) >> 10) & 63;
        r.inDegreeBits.fetch_or(uint64_t{1} << bit,
                                std::memory_order_relaxed);
    }

    /** An assert-unshared target in the region gained/lost tracking. */
    void
    noteUnsharedTracked(const void *addr, int64_t delta)
    {
        Region &r = regions_[slotOf(addr)];
        r.mutated.store(1, std::memory_order_relaxed);
        r.unsharedTargets.fetch_add(static_cast<uint64_t>(delta),
                                    std::memory_order_relaxed);
    }

    /** An assert-ownedby ownee in the region was added/removed. */
    void
    noteOwneeTracked(const void *addr, int64_t delta)
    {
        Region &r = regions_[slotOf(addr)];
        r.mutated.store(1, std::memory_order_relaxed);
        r.ownees.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    }

    // ----- GC-time merge (stopped world, single-threaded) -----

    struct MergeOutcome {
        uint64_t hits = 0;          ///< clean regions merged from cache
        uint64_t invalidations = 0; ///< dirty regions re-snapshotted
    };

    /**
     * Fold every dirty region's column tallies into the global
     * totals, clear the dirty flags and per-cycle in-degree bits, and
     * report how many regions were served from cache vs recomputed.
     * Totals are exact whatever the dirty set (see file comment).
     */
    MergeOutcome
    merge()
    {
        size_t active_columns = numColumns_;
        MergeOutcome out;
        for (size_t i = 0; i < kRegionSlots; ++i) {
            Region &r = regions_[i];
            if (!r.touched.load(std::memory_order_relaxed))
                continue;
            bool dirty =
                r.mutated.load(std::memory_order_relaxed) != 0 ||
                r.churned.load(std::memory_order_relaxed) != 0;
            if (!dirty) {
                ++out.hits;
                continue;
            }
            ++out.invalidations;
            for (size_t c = 0; c < active_columns; ++c) {
                uint64_t cur =
                    r.count[c].load(std::memory_order_relaxed);
                totalCount_[c] += cur - r.snapCount[c];
                r.snapCount[c] = cur;
                cur = r.bytes[c].load(std::memory_order_relaxed);
                totalBytes_[c] += cur - r.snapBytes[c];
                r.snapBytes[c] = cur;
            }
            r.mutated.store(0, std::memory_order_relaxed);
            r.churned.store(0, std::memory_order_relaxed);
            r.inDegreeBits.store(0, std::memory_order_relaxed);
        }
        return out;
    }

    /** Merged live-instance total for @p column (valid after merge). */
    uint64_t totalCount(size_t column) const { return totalCount_[column]; }

    /** Merged live-byte total for @p column (valid after merge). */
    uint64_t totalBytes(size_t column) const { return totalBytes_[column]; }

    // ----- introspection (tests, telemetry) -----

    /** Current (unsnapshotted) instance tally for addr's region. */
    uint64_t
    regionCount(const void *addr, size_t column) const
    {
        return regions_[slotOf(addr)].count[column].load(
            std::memory_order_relaxed);
    }

    /** Current (unsnapshotted) byte tally for addr's region. */
    uint64_t
    regionBytes(const void *addr, size_t column) const
    {
        return regions_[slotOf(addr)].bytes[column].load(
            std::memory_order_relaxed);
    }

    /** Is addr's region due a re-snapshot at the next merge? */
    bool
    regionDirty(const void *addr) const
    {
        const Region &r = regions_[slotOf(addr)];
        return r.mutated.load(std::memory_order_relaxed) != 0 ||
               r.churned.load(std::memory_order_relaxed) != 0;
    }

    /** Per-cycle in-degree bitmap (one bit per 1 KiB sub-window). */
    uint64_t
    inDegreeBits(const void *addr) const
    {
        return regions_[slotOf(addr)].inDegreeBits.load(
            std::memory_order_relaxed);
    }

    /** Live assert-unshared targets tracked in addr's region. */
    uint64_t
    unsharedTargets(const void *addr) const
    {
        return regions_[slotOf(addr)].unsharedTargets.load(
            std::memory_order_relaxed);
    }

    /** Live assert-ownedby ownees tracked in addr's region. */
    uint64_t
    ownees(const void *addr) const
    {
        return regions_[slotOf(addr)].ownees.load(
            std::memory_order_relaxed);
    }

  private:
    struct Region {
        std::atomic<uint64_t> touched{0};
        std::atomic<uint64_t> mutated{0};
        std::atomic<uint64_t> churned{0};
        std::atomic<uint64_t> inDegreeBits{0};
        std::atomic<uint64_t> unsharedTargets{0};
        std::atomic<uint64_t> ownees{0};
        std::atomic<uint64_t> count[kMaxColumns] = {};
        std::atomic<uint64_t> bytes[kMaxColumns] = {};
        uint64_t snapCount[kMaxColumns] = {};
        uint64_t snapBytes[kMaxColumns] = {};
    };

    std::unique_ptr<Region[]> regions_;
    std::unique_ptr<std::atomic<int32_t>[]> columnOfType_;
    TypeId typeOfColumn_[kMaxColumns];
    size_t numColumns_ = 0;
    uint64_t totalCount_[kMaxColumns];
    uint64_t totalBytes_[kMaxColumns];
};

} // namespace gcassert

#endif // GCASSERT_HEAP_REGION_SUMMARY_H
