#include "heap/heap.h"

#include <algorithm>

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

Heap::Heap(const HeapConfig &config) : config_(config)
{
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        allocHint_[c] = -1;
}

Object *
Heap::allocate(TypeId type_id, uint32_t num_refs, uint32_t scalar_bytes)
{
    uint32_t size = Object::sizeFor(num_refs, scalar_bytes);
    size_t size_class = sizeClassFor(size);
    uint32_t charged = size_class < kNumSizeClasses
        ? kSizeClassBytes[size_class] : size;

    if (usedBytes_ + charged > config_.budgetBytes)
        return nullptr;

    Object *obj = size_class < kNumSizeClasses
        ? allocateSmall(size_class, type_id, num_refs, scalar_bytes, size)
        : allocateLarge(type_id, num_refs, scalar_bytes, size);
    if (obj) {
        usedBytes_ += charged;
        ++liveObjects_;
        totalAllocatedBytes_ += charged;
        ++totalAllocatedObjects_;
    }
    return obj;
}

Object *
Heap::allocateSmall(size_t size_class, TypeId type_id, uint32_t num_refs,
                    uint32_t scalar_bytes, uint32_t size)
{
    (void)size;
    auto &list = blocks_[size_class];

    // Fast path: the hinted block still has room.
    ssize_t hint = allocHint_[size_class];
    if (hint >= 0 && static_cast<size_t>(hint) < list.size()) {
        if (void *cell = list[hint]->allocateCell()) {
            auto *obj = static_cast<Object *>(cell);
            obj->format(type_id, num_refs, scalar_bytes);
            return obj;
        }
    }

    // Slow path: find any block with room.
    for (size_t i = 0; i < list.size(); ++i) {
        if (!list[i]->full()) {
            void *cell = list[i]->allocateCell();
            allocHint_[size_class] = static_cast<ssize_t>(i);
            auto *obj = static_cast<Object *>(cell);
            obj->format(type_id, num_refs, scalar_bytes);
            return obj;
        }
    }

    // No room anywhere: mint a new block.
    list.push_back(std::make_unique<Block>(kSizeClassBytes[size_class]));
    allocHint_[size_class] = static_cast<ssize_t>(list.size() - 1);
    auto *obj = static_cast<Object *>(list.back()->allocateCell());
    obj->format(type_id, num_refs, scalar_bytes);
    return obj;
}

Object *
Heap::allocateLarge(TypeId type_id, uint32_t num_refs,
                    uint32_t scalar_bytes, uint32_t size)
{
    LargeObject large;
    large.memory.reset(new char[size]);
    large.bytes = size;
    auto *obj = reinterpret_cast<Object *>(large.memory.get());
    obj->format(type_id, num_refs, scalar_bytes);
    largeSet_.insert(obj);
    large_.push_back(std::move(large));
    return obj;
}

SweepStats
Heap::sweep(const std::function<void(Object *)> &on_free)
{
    SweepStats stats;
    auto counting_free = [&](Object *obj) {
        ++stats.freedObjects;
        if (on_free)
            on_free(obj);
    };

    for (size_t c = 0; c < kNumSizeClasses; ++c) {
        auto &list = blocks_[c];
        for (auto &block : list)
            stats.freedBytes += block->sweep(counting_free);
        // Release empty blocks so long-running region workloads hand
        // memory back; compact the list in place.
        size_t kept = 0;
        for (auto &block : list) {
            if (!block->empty())
                list[kept++] = std::move(block);
            else
                ++stats.releasedBlocks;
        }
        list.resize(kept);
        allocHint_[c] = list.empty() ? -1 : 0;
    }

    // Large-object space.
    size_t kept = 0;
    for (auto &large : large_) {
        auto *obj = reinterpret_cast<Object *>(large.memory.get());
        if (obj->marked()) {
            obj->clearFlag(kMarkBit);
            large_[kept++] = std::move(large);
        } else {
            counting_free(obj);
            stats.freedBytes += large.bytes;
            largeSet_.erase(obj);
        }
    }
    large_.resize(kept);

    if (stats.freedBytes > usedBytes_)
        panic("sweep freed more bytes than were allocated");
    usedBytes_ -= stats.freedBytes;
    liveObjects_ -= stats.freedObjects;
    stats.liveBytes = usedBytes_;
    stats.liveObjects = liveObjects_;
    return stats;
}

void
Heap::forEachObject(const std::function<void(Object *)> &visit) const
{
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            block->forEachObject(visit);
    for (const auto &large : large_)
        visit(reinterpret_cast<Object *>(large.memory.get()));
}

bool
Heap::contains(const Object *p) const
{
    if (largeSet_.count(p))
        return true;
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            if (block->contains(p))
                return true;
    return false;
}

} // namespace gcassert
