#include "heap/heap.h"

#include <algorithm>
#include <thread>

#include "support/logging.h"
#include "support/stopwatch.h"
#include "support/strutil.h"

namespace gcassert {

Heap::Heap(const HeapConfig &config) : config_(config)
{
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        allocHint_[c] = -1;
}

Heap::~Heap() = default;

Object *
Heap::allocate(TypeId type_id, uint32_t num_refs, uint32_t scalar_bytes)
{
    uint32_t size = Object::sizeFor(num_refs, scalar_bytes);
    size_t size_class = sizeClassFor(size);
    uint32_t charged = size_class < kNumSizeClasses
        ? kSizeClassBytes[size_class] : size;

    if (usedBytes() + charged > config_.budgetBytes)
        return nullptr;

    Object *obj = size_class < kNumSizeClasses
        ? allocateSmall(size_class, type_id, num_refs, scalar_bytes, size)
        : allocateLarge(type_id, num_refs, scalar_bytes, size);
    if (obj) {
        usedBytes_.fetch_add(charged, std::memory_order_relaxed);
        liveObjects_.fetch_add(1, std::memory_order_relaxed);
        totalAllocatedBytes_.fetch_add(charged, std::memory_order_relaxed);
        totalAllocatedObjects_.fetch_add(1, std::memory_order_relaxed);
        if (regionSummaries_)
            regionSummaries_->noteAlloc(obj);
    }
    return obj;
}

Object *
Heap::allocateSmall(size_t size_class, TypeId type_id, uint32_t num_refs,
                    uint32_t scalar_bytes, uint32_t size)
{
    (void)size;
    auto &list = blocks_[size_class];

    // Fast path: the hinted block still has room. Leased blocks
    // belong to one mutator's TLAB and are never touched here.
    ssize_t hint = allocHint_[size_class];
    if (hint >= 0 && static_cast<size_t>(hint) < list.size() &&
        !list[hint]->leased()) {
        if (void *cell = list[hint]->allocateCell()) {
            auto *obj = static_cast<Object *>(cell);
            obj->format(type_id, num_refs, scalar_bytes);
            if (config_.generational)
                noteNursery(obj, list[hint].get(),
                            kSizeClassBytes[size_class]);
            return obj;
        }
    }

    // Slow path: find any unleased block with room.
    for (size_t i = 0; i < list.size(); ++i) {
        if (!list[i]->leased() && !list[i]->full()) {
            void *cell = list[i]->allocateCell();
            allocHint_[size_class] = static_cast<ssize_t>(i);
            auto *obj = static_cast<Object *>(cell);
            obj->format(type_id, num_refs, scalar_bytes);
            if (config_.generational)
                noteNursery(obj, list[i].get(),
                            kSizeClassBytes[size_class]);
            return obj;
        }
    }

    // No room anywhere: mint a new block.
    list.push_back(std::make_unique<Block>(kSizeClassBytes[size_class]));
    blocksMinted_.fetch_add(1, std::memory_order_relaxed);
    allocHint_[size_class] = static_cast<ssize_t>(list.size() - 1);
    auto *obj = static_cast<Object *>(list.back()->allocateCell());
    obj->format(type_id, num_refs, scalar_bytes);
    if (config_.generational)
        noteNursery(obj, list.back().get(), kSizeClassBytes[size_class]);
    return obj;
}

Object *
Heap::allocateLarge(TypeId type_id, uint32_t num_refs,
                    uint32_t scalar_bytes, uint32_t size)
{
    LargeObject large;
    large.memory.reset(new char[size]);
    large.bytes = size;
    auto *obj = reinterpret_cast<Object *>(large.memory.get());
    obj->format(type_id, num_refs, scalar_bytes);
    largeSet_.insert(obj);
    large_.push_back(std::move(large));
    if (config_.generational)
        noteNursery(obj, nullptr, size);
    return obj;
}

Object *
Heap::tlabAllocate(TlabCache &cache, TypeId type_id, uint32_t num_refs,
                   uint32_t scalar_bytes)
{
    uint32_t size = Object::sizeFor(num_refs, scalar_bytes);
    size_t size_class = sizeClassFor(size);
    if (size_class >= kNumSizeClasses)
        return nullptr; // large objects take the locked path
    Block *block = cache.blocks[size_class];
    if (!block)
        return nullptr;

    // Reserve the budget up front so concurrent fast paths cannot
    // collectively overshoot it; undo the reservation on failure.
    uint32_t charged = kSizeClassBytes[size_class];
    uint64_t prev =
        usedBytes_.fetch_add(charged, std::memory_order_relaxed);
    if (prev + charged > config_.budgetBytes) {
        usedBytes_.fetch_sub(charged, std::memory_order_relaxed);
        return nullptr;
    }
    void *cell = block->allocateCell();
    if (!cell) {
        usedBytes_.fetch_sub(charged, std::memory_order_relaxed);
        return nullptr;
    }
    auto *obj = static_cast<Object *>(cell);
    obj->format(type_id, num_refs, scalar_bytes);
    liveObjects_.fetch_add(1, std::memory_order_relaxed);
    totalAllocatedBytes_.fetch_add(charged, std::memory_order_relaxed);
    totalAllocatedObjects_.fetch_add(1, std::memory_order_relaxed);
    tlabAllocs_.fetch_add(1, std::memory_order_relaxed);
    if (config_.generational)
        noteNursery(obj, block, charged);
    if (regionSummaries_)
        regionSummaries_->noteAlloc(obj);
    return obj;
}

void
Heap::refillTlab(TlabCache &cache, size_t size_class)
{
    if (Block *old_lease = cache.blocks[size_class]) {
        old_lease->setLeased(false);
        cache.blocks[size_class] = nullptr;
    }
    auto &list = blocks_[size_class];
    for (auto &block : list) {
        if (!block->leased() && !block->full()) {
            block->setLeased(true);
            cache.blocks[size_class] = block.get();
            return;
        }
    }
    list.push_back(std::make_unique<Block>(kSizeClassBytes[size_class]));
    blocksMinted_.fetch_add(1, std::memory_order_relaxed);
    list.back()->setLeased(true);
    cache.blocks[size_class] = list.back().get();
}

void
Heap::returnTlab(TlabCache &cache)
{
    for (size_t c = 0; c < kNumSizeClasses; ++c) {
        if (cache.blocks[c]) {
            cache.blocks[c]->setLeased(false);
            cache.blocks[c] = nullptr;
        }
    }
}

void
Heap::sweepSmall(const std::function<void(Object *)> &on_free,
                 const SweepOptions &options, SweepStats &stats)
{
    // Canonical block order: size classes ascending, blocks in list
    // order. Sequential sweep, parallel replay, and stat merging all
    // follow it, so every configuration observes the same effects.
    std::vector<Block *> items;
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (auto &block : blocks_[c])
            items.push_back(block.get());

    uint32_t threads = options.threads;
    if (threads > items.size())
        threads = static_cast<uint32_t>(items.size());

    if (threads <= 1) {
        for (Block *block : items) {
            if (options.lazy)
                stats.freedBytes += block->lazySweep([&](Object *obj) {
                    ++stats.freedObjects;
                    if (on_free)
                        on_free(obj);
                });
            else if (on_free)
                stats.freedBytes += block->sweepWith([&](Object *obj) {
                    ++stats.freedObjects;
                    on_free(obj);
                });
            else
                stats.freedBytes += block->sweepWith(
                    [&](Object *) { ++stats.freedObjects; });
        }
        return;
    }

    // Parallel sweep. Workers own contiguous shards of the block
    // list (state touched by exactly one worker, so no locks). With
    // a callback, workers only *identify* dead objects into per-item
    // buffers — headers and free lists untouched — and this thread
    // replays the buffers in canonical order afterwards, making the
    // callback stream identical to the sequential sweep's.
    const bool buffered = options.lazy || static_cast<bool>(on_free);
    std::vector<std::vector<Object *>> dead;
    if (buffered)
        dead.resize(items.size());
    struct Tally {
        uint64_t bytes = 0;
        uint64_t objects = 0;
    };
    std::vector<Tally> tallies(threads);
    // Telemetry out-param: one timing span per worker. Pure
    // observation — filled alongside the tallies, never consulted.
    if (options.workerSpans)
        options.workerSpans->assign(threads, SweepWorkerSpan{});
    auto work = [&](uint32_t w) {
        size_t begin = items.size() * w / threads;
        size_t end = items.size() * (w + 1) / threads;
        Tally &tally = tallies[w];
        SweepWorkerSpan *span =
            options.workerSpans ? &(*options.workerSpans)[w] : nullptr;
        if (span) {
            span->beginNanos = nowNanos();
            span->blocks = end - begin;
        }
        uint64_t dead_found = 0;
        for (size_t i = begin; i < end; ++i) {
            Block *block = items[i];
            if (options.lazy)
                tally.bytes += block->lazySweep([&](Object *obj) {
                    ++tally.objects;
                    ++dead_found;
                    dead[i].push_back(obj);
                });
            else if (on_free)
                block->identifyDead([&](Object *obj) {
                    ++dead_found;
                    dead[i].push_back(obj);
                });
            else
                tally.bytes += block->sweepWith([&](Object *) {
                    ++tally.objects;
                    ++dead_found;
                });
        }
        if (span) {
            span->objects = dead_found;
            span->endNanos = nowNanos();
        }
    };
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (uint32_t w = 1; w < threads; ++w)
        workers.emplace_back(work, w);
    work(0);
    for (auto &worker : workers)
        worker.join();

    // Shard tallies merge in worker order, which is canonical order
    // because shards are contiguous.
    for (const Tally &tally : tallies) {
        stats.freedBytes += tally.bytes;
        stats.freedObjects += tally.objects;
    }
    if (!buffered)
        return;
    for (size_t i = 0; i < items.size(); ++i) {
        for (Object *obj : dead[i]) {
            if (!options.lazy)
                ++stats.freedObjects;
            if (on_free)
                on_free(obj);
            if (!options.lazy)
                stats.freedBytes += items[i]->releaseCell(obj);
        }
    }
}

SweepStats
Heap::sweep(const std::function<void(Object *)> &on_free,
            const SweepOptions &options)
{
    SweepStats stats;
    sweepSmall(on_free, options, stats);

    // Large-object space: always sequential — the list walk is cheap
    // and allocation order is the canonical callback order.
    size_t kept = 0;
    for (auto &large : large_) {
        auto *obj = reinterpret_cast<Object *>(large.memory.get());
        if (obj->marked()) {
            obj->clearFlag(kMarkBit);
            large_[kept++] = std::move(large);
        } else {
            ++stats.freedObjects;
            if (on_free)
                on_free(obj);
            stats.freedBytes += large.bytes;
            largeSet_.erase(obj);
        }
    }
    large_.resize(kept);

    // Release empty blocks so long-running region workloads hand
    // memory back; compact each list in place. Leased blocks stay: a
    // mutator may be bump-allocating into them without the lock, and
    // TLAB caches hold raw pointers to them.
    for (size_t c = 0; c < kNumSizeClasses; ++c) {
        auto &list = blocks_[c];
        size_t kept_blocks = 0;
        for (auto &block : list) {
            if (!block->empty() || block->leased())
                list[kept_blocks++] = std::move(block);
            else
                ++stats.releasedBlocks;
        }
        list.resize(kept_blocks);
        allocHint_[c] = list.empty() ? -1 : 0;
    }

    if (stats.freedBytes + minorFreedBytes_ > usedBytes())
        panic("sweep freed more bytes than were allocated");
    usedBytes_.fetch_sub(stats.freedBytes, std::memory_order_relaxed);
    liveObjects_.fetch_sub(stats.freedObjects, std::memory_order_relaxed);

    // Settle the minor-collection debt: nursery sweeps recycle memory
    // immediately but leave the budget counters untouched (so full-GC
    // trigger points match the non-generational run); the counters
    // catch up here, at the full sweep where the non-generational run
    // would have freed the same objects.
    usedBytes_.fetch_sub(minorFreedBytes_, std::memory_order_relaxed);
    liveObjects_.fetch_sub(minorFreedObjects_, std::memory_order_relaxed);
    minorFreedBytes_ = 0;
    minorFreedObjects_ = 0;

    stats.liveBytes = usedBytes();
    stats.liveObjects = liveObjects();
    return stats;
}

uint64_t
Heap::finishLazySweep()
{
    uint64_t finished = 0;
    for (size_t c = 0; c < kNumSizeClasses; ++c) {
        for (auto &block : blocks_[c]) {
            if (block->lazyPending()) {
                block->finishLazySweep();
                ++finished;
            }
        }
    }
    return finished;
}

uint64_t
Heap::lazyPendingBlocks() const
{
    uint64_t pending = 0;
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            if (block->lazyPending())
                ++pending;
    return pending;
}

bool
Heap::inLazyPendingBlock(const Object *p) const
{
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            if (block->contains(p))
                return block->lazyPending();
    return false;
}

void
Heap::forEachObject(const std::function<void(Object *)> &visit) const
{
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            block->forEachObject(visit);
    for (const auto &large : large_)
        visit(reinterpret_cast<Object *>(large.memory.get()));
}

void
Heap::noteNursery(Object *obj, Block *block, uint32_t charged)
{
    obj->setFlag(kNurseryBit);
    std::lock_guard<std::mutex> guard(nurseryMutex_);
    nursery_.push_back(NurseryEntry{obj, block, charged});
    nurseryMembers_.insert(obj);
    nurseryBytes_.fetch_add(charged, std::memory_order_relaxed);
}

size_t
Heap::nurseryCount() const
{
    std::lock_guard<std::mutex> guard(nurseryMutex_);
    return nursery_.size();
}

bool
Heap::nurseryContains(const Object *p) const
{
    std::lock_guard<std::mutex> guard(nurseryMutex_);
    return nurseryMembers_.count(p) != 0;
}

void
Heap::forEachNursery(const std::function<void(Object *)> &visit) const
{
    for (const NurseryEntry &entry : nursery_)
        visit(entry.obj);
}

NurserySweepStats
Heap::sweepNursery(const std::function<void(Object *)> &on_dead)
{
    NurserySweepStats stats;
    for (const NurseryEntry &entry : nursery_) {
        Object *obj = entry.obj;
        if (obj->marked()) {
            // Promote in place: the heap is non-moving, so promotion
            // is just dropping the nursery tag.
            obj->clearFlag(kMarkBit);
            obj->clearFlag(kNurseryBit);
            if (regionSummaries_)
                regionSummaries_->notePromotion(obj);
            ++stats.promotedObjects;
            continue;
        }
        if (on_dead)
            on_dead(obj);
        if (entry.block) {
            entry.block->releaseCell(obj);
        } else {
            largeSet_.erase(obj);
            for (auto it = large_.begin(); it != large_.end(); ++it) {
                if (reinterpret_cast<Object *>(it->memory.get()) == obj) {
                    large_.erase(it);
                    break;
                }
            }
        }
        ++stats.freedObjects;
        stats.freedBytes += entry.charged;
    }
    minorFreedBytes_ += stats.freedBytes;
    minorFreedObjects_ += stats.freedObjects;
    nursery_.clear();
    nurseryMembers_.clear();
    nurseryBytes_.store(0, std::memory_order_relaxed);
    return stats;
}

uint64_t
Heap::promoteAllNursery()
{
    uint64_t promoted = 0;
    for (const NurseryEntry &entry : nursery_) {
        entry.obj->clearFlag(kNurseryBit);
        if (regionSummaries_)
            regionSummaries_->notePromotion(entry.obj);
        ++promoted;
    }
    nursery_.clear();
    nurseryMembers_.clear();
    nurseryBytes_.store(0, std::memory_order_relaxed);
    return promoted;
}

bool
Heap::contains(const Object *p) const
{
    if (largeSet_.count(p))
        return true;
    for (size_t c = 0; c < kNumSizeClasses; ++c)
        for (const auto &block : blocks_[c])
            if (block->contains(p))
                return block->isAllocatedCell(p);
    return false;
}

} // namespace gcassert
