#include "heap/verifier.h"

#include <unordered_set>

#include "runtime/runtime.h"
#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

std::vector<VerifierIssue>
HeapVerifier::verify() const
{
    std::vector<VerifierIssue> issues;
    auto report = [&](const Object *obj, std::string what) {
        issues.push_back(VerifierIssue{obj, std::move(what)});
    };

    // Snapshot the allocated set for O(1) membership checks.
    std::unordered_set<const Object *> allocated;
    runtime_.heap().forEachObject(
        [&](Object *obj) { allocated.insert(obj); });

    runtime_.heap().forEachObject([&](Object *obj) {
        // Shape consistency for fixed-shape types.
        const TypeDescriptor &desc = runtime_.types().get(obj->typeId());
        if (!desc.isArray()) {
            if (obj->numRefs() != desc.fixedRefs())
                report(obj, format("fixed type '%s' instance has %u ref "
                                   "slots, descriptor says %u",
                                   desc.name().c_str(), obj->numRefs(),
                                   desc.fixedRefs()));
            if (obj->scalarBytes() < desc.scalarBytes())
                report(obj, format("fixed type '%s' instance has %u "
                                   "scalar bytes, descriptor says %u",
                                   desc.name().c_str(),
                                   obj->scalarBytes(),
                                   desc.scalarBytes()));
        }

        // Reference sanity.
        for (uint32_t i = 0; i < obj->numRefs(); ++i) {
            const Object *child = obj->ref(i);
            if (child && !allocated.count(child))
                report(obj, format("ref slot %u points outside the "
                                   "allocated set", i));
        }

        // No stale collector state between collections. Exception:
        // live objects in a block whose lazy sweep has not been
        // finished yet legitimately keep their mark until allocation
        // or the next GC prologue reaches the block.
        if (obj->marked() &&
            !runtime_.heap().inLazyPendingBlock(obj))
            report(obj, "stale mark bit outside a collection");
        // The owned bit is per-GC state but is only reset at the
        // *start* of each collection, so between collections it may
        // legitimately linger on registered ownees — never on
        // anything else.
        if (obj->testFlag(kOwnedBit) && !obj->testFlag(kOwneeBit))
            report(obj, "stale per-GC owned bit on a non-ownee");

        // Assertion-state consistency.
        if (obj->ownerTag() != 0 && !obj->testFlag(kOwneeBit))
            report(obj, "owner tag set on a non-ownee");
        if (obj->testFlag(kOrphanBit) && !obj->testFlag(kDeadBit))
            report(obj, "orphan bit without dead bit");
        if (obj->testFlag(kRegionBit) && !obj->testFlag(kDeadBit) &&
            !runtime_.mainMutatorInRegionOrAny())
            report(obj, "region bit outside any active region and "
                        "not dead-asserted");

        // Generational state consistency.
        bool in_nursery = runtime_.heap().nurseryContains(obj);
        if (obj->testFlag(kNurseryBit) != in_nursery)
            report(obj, in_nursery
                       ? "nursery roster entry without kNurseryBit"
                       : "kNurseryBit set on an object off the roster");
        if (obj->testFlag(kRememberedBit) &&
            !runtime_.remset().contains(obj))
            report(obj, "kRememberedBit set but the object is not in "
                        "the remembered set");

        // Remembered-set invariant: at a mutator quiescent point,
        // every mature->nursery edge must have been recorded by the
        // write barrier — the source is in the remembered set and the
        // slot's card is marked. An unrecorded edge proves a barrier
        // bypass and would let a minor collection reclaim a live
        // nursery object.
        if (!obj->testFlag(kNurseryBit)) {
            for (uint32_t i = 0; i < obj->numRefs(); ++i) {
                const Object *child = obj->ref(i);
                if (!child || !child->testFlag(kNurseryBit))
                    continue;
                if (!runtime_.remset().contains(obj))
                    report(obj, format("unrecorded mature->nursery edge "
                                       "in ref slot %u (source not in "
                                       "the remembered set)", i));
                else if (!runtime_.remset().cardMarkedFor(
                             obj->refSlotAddr(i)))
                    report(obj, format("mature->nursery edge in ref "
                                       "slot %u has no marked card", i));
            }
        }
    });

    // Root sanity.
    runtime_.roots().forEach([&](RootNode &node) {
        const Object *obj = node.get();
        if (obj && !allocated.count(obj))
            report(obj, format("root '%s' points outside the allocated "
                               "set", node.name()));
    });

    return issues;
}

void
HeapVerifier::verifyOrPanic() const
{
    auto issues = verify();
    if (!issues.empty())
        panic(format("heap verification failed (%zu issues): %s",
                     issues.size(), issues[0].what.c_str()));
}

} // namespace gcassert
