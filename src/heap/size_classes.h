/**
 * @file
 * Segregated-fit size classes for the mark-sweep heap.
 *
 * Small objects are rounded up to one of a fixed set of cell sizes
 * and allocated from per-class block free lists; anything larger
 * goes to the large-object space. The class boundaries follow the
 * usual 25%-internal-fragmentation progression used by Jikes RVM's
 * MarkSweep space.
 */

#ifndef GCASSERT_HEAP_SIZE_CLASSES_H
#define GCASSERT_HEAP_SIZE_CLASSES_H

#include <cstddef>
#include <cstdint>

namespace gcassert {

/** Number of small-object size classes. */
constexpr size_t kNumSizeClasses = 16;

/** Cell sizes (bytes) per class; strictly increasing. */
extern const uint32_t kSizeClassBytes[kNumSizeClasses];

/** Largest size handled by the small-object path. */
uint32_t maxSmallObjectBytes();

/**
 * Map an object size to its size class.
 *
 * @param bytes Requested object footprint (header included).
 * @return Class index, or kNumSizeClasses if the request must go to
 *         the large-object space.
 */
size_t sizeClassFor(uint32_t bytes);

} // namespace gcassert

#endif // GCASSERT_HEAP_SIZE_CLASSES_H
