/**
 * @file
 * The managed object model.
 *
 * Every object in the gcassert heap carries a 16-byte header followed
 * by its reference slots (word-sized, scanned by the collector) and
 * then its scalar payload. The header mirrors the layout constraints
 * the paper exploits in Jikes RVM:
 *
 *  - objects are word aligned, so the low-order bits of object
 *    pointers are free for the tracing worklist's path-recording tag
 *    (paper section 2.7);
 *  - the header has spare bits, which hold the mark bit and the
 *    per-object assertion state (dead / unshared / owned / ownee /
 *    owner) at zero space overhead (paper sections 2.3, 2.5).
 */

#ifndef GCASSERT_HEAP_OBJECT_H
#define GCASSERT_HEAP_OBJECT_H

#include <atomic>
#include <cstdint>
#include <cstring>

#include "support/logging.h"

namespace gcassert {

/** Runtime type identifier; indexes the TypeRegistry. */
using TypeId = uint32_t;

/** Reserved id meaning "no type". */
constexpr TypeId kInvalidTypeId = 0xffffffffu;

class Object;

/**
 * Header flag bits. Stored in Object::flags_; all are spare bits in
 * the sense of the paper: they occupy space the header has anyway.
 */
enum ObjectFlag : uint32_t {
    /** Set during tracing; cleared by sweep. */
    kMarkBit = 1u << 0,
    /** assert-dead was called on this object. */
    kDeadBit = 1u << 1,
    /** assert-unshared was called on this object. */
    kUnsharedBit = 1u << 2,
    /** This object is registered as an ownee of some owner. */
    kOwneeBit = 1u << 3,
    /** This object is registered as an owner. */
    kOwnerBit = 1u << 4,
    /** Per-GC: reached from its owner during the ownership phase. */
    kOwnedBit = 1u << 5,
    /** Per-GC: already visited by the ownership phase scan. */
    kOwnerScanBit = 1u << 6,
    /**
     * The object was allocated inside an active allocation region
     * (assert-alldead bracketing) and sits on a region queue.
     */
    kRegionBit = 1u << 7,
    /**
     * The object is an ownee whose owner was reclaimed; it was
     * converted to a dead assertion (it should not outlive its
     * owner), and a violation about it reports as assert-ownedby.
     */
    kOrphanBit = 1u << 8,
    /**
     * Generational mode: the object sits in the logical nursery
     * (allocated since the last collection, not yet promoted). Never
     * set outside generational mode, which is what lets the write
     * barrier's target filter cost nothing elsewhere.
     */
    kNurseryBit = 1u << 9,
    /**
     * Generational mode: this mature object holds at least one
     * recorded mature-to-nursery reference and is already in the
     * remembered set (the barrier's once-per-source latch).
     */
    kRememberedBit = 1u << 10,
    /**
     * A tracked reference write mutated this object (as source) or
     * newly referenced it (as an assert-unshared target) since the
     * last full collection. Feeds the assertion engine's dirty set;
     * cleared when the full GC consumes the set.
     */
    kWriteDirtyBit = 1u << 11,
};

namespace detail {

/**
 * Global count of runtimes with write barriers armed (generational
 * mode). The inline fast path in Object::setRef loads this once; when
 * zero — every non-generational configuration — the barrier costs one
 * relaxed load and a never-taken branch.
 */
extern std::atomic<uint32_t> g_writeBarriersArmed;

inline bool
writeBarriersArmed()
{
    return g_writeBarriersArmed.load(std::memory_order_relaxed) != 0;
}

/**
 * Global count of runtimes tracking *all* reference writes (the
 * incremental assertion recheck's dirty-card feed), not just
 * mature-to-nursery edges. A subset of the armed runtimes: when
 * non-zero, the inline filter also fires for any unlatched,
 * non-nursery source so the slow path can record the source's cards
 * once per GC cycle. Nursery sources are excluded — their regions
 * are already churn-dirty from their own allocation this cycle.
 */
extern std::atomic<uint32_t> g_trackAllWrites;

inline bool
trackingAllWrites()
{
    return g_trackAllWrites.load(std::memory_order_relaxed) != 0;
}

/**
 * Global count of runtimes feeding the why-alive backgraph
 * (detectors/backgraph). Unlike the two counters above this feed is
 * *unlatched* — the backgraph needs every reference mutation, not
 * once-per-source-per-cycle, so each non-no-op store from an armed
 * runtime takes the slow path. The cost exists only while a
 * backgraph runtime is alive; the common case stays one relaxed
 * load.
 */
extern std::atomic<uint32_t> g_trackBackgraph;

inline bool
trackingBackgraph()
{
    return g_trackBackgraph.load(std::memory_order_relaxed) != 0;
}

/**
 * Out-of-line barrier slow path (src/gc/barrier.cpp): records
 * mature-to-nursery edges in the owning runtime's remembered set and
 * feeds mutated owner / unshared-target objects to its assertion
 * engine's dirty set. Reached only when the inline header-bit filters
 * fire, i.e. at most once per (object, latch bit) per GC cycle.
 */
void writeBarrierSlow(Object *src, Object **slot, Object *target);

} // namespace detail

/**
 * Bits [kOwnerTagShift, 32) of the flag word hold the *owner tag*
 * of a registered ownee: 1 + the owner's index in the ownership
 * table, or 0 for none. Keeping the tag in spare header bits makes
 * the ownership phase's belongs-to-this-owner test a single compare
 * on the already-loaded flag word (the same spare-bits economy the
 * paper applies to the mark/dead/unshared state).
 */
constexpr uint32_t kOwnerTagShift = 12;

/** Maximum owners representable in the tag field. */
constexpr uint32_t kMaxOwnerTag = (1u << (32 - kOwnerTagShift)) - 1;

/**
 * A managed heap object.
 *
 * Layout: [header 16B][refs: numRefs words][scalars: scalarBytes].
 * Instances are created only by Heap::allocate; the class has no
 * constructor because the heap formats raw cells in place.
 */
class Object {
  public:
    /** Header size in bytes; reference slots start at this offset. */
    static constexpr uint32_t kHeaderBytes = 16;

    /** Bytes per reference slot. */
    static constexpr uint32_t kRefBytes = sizeof(Object *);

    /**
     * Total size of an object with the given shape, rounded up to
     * word alignment.
     */
    static uint32_t
    sizeFor(uint32_t num_refs, uint32_t scalar_bytes)
    {
        uint64_t raw = uint64_t{kHeaderBytes} +
            uint64_t{num_refs} * kRefBytes + scalar_bytes;
        return static_cast<uint32_t>((raw + 7) & ~uint64_t{7});
    }

    /** Format a raw cell as an object; called by the heap only. */
    void
    format(TypeId type_id, uint32_t num_refs, uint32_t scalar_bytes)
    {
        typeId_ = type_id;
        flags_ = 0;
        sizeBytes_ = sizeFor(num_refs, scalar_bytes);
        numRefs_ = num_refs;
        std::memset(reinterpret_cast<char *>(this) + kHeaderBytes, 0,
                    sizeBytes_ - kHeaderBytes);
    }

    TypeId typeId() const { return typeId_; }

    /** Total object footprint in bytes (header + refs + scalars). */
    uint32_t sizeBytes() const { return sizeBytes_; }

    /** Number of reference slots the collector scans. */
    uint32_t numRefs() const { return numRefs_; }

    /** @name Flag accessors
     *  @{ */
    bool testFlag(ObjectFlag f) const { return (flags_ & f) != 0; }
    void setFlag(ObjectFlag f) { flags_ |= f; }
    void clearFlag(ObjectFlag f) { flags_ &= ~static_cast<uint32_t>(f); }
    uint32_t rawFlags() const { return flags_; }
    /** @} */

    /** @name Atomic flag accessors (parallel mark phase only)
     *
     * Marker threads race on the shared flag word, so every access
     * during a parallel trace goes through these; the sequential
     * trace keeps the plain accessors above (zero overhead, and the
     * two phases never overlap — the world is stopped either way).
     *  @{ */

    /** Atomic snapshot of the flag word. */
    uint32_t
    rawFlagsAtomic() const
    {
        return std::atomic_ref<uint32_t>(
                   const_cast<uint32_t &>(flags_))
            .load(std::memory_order_relaxed);
    }

    /**
     * Atomically test-and-set the mark bit.
     * @return true when this call transitioned unmarked -> marked
     *         (the caller won the race and must scan the object);
     *         false when the object was already marked — under
     *         parallel marking the loser is by definition a second
     *         incoming reference, which is what assert-unshared
     *         detects.
     */
    bool
    tryMark()
    {
        uint32_t old = std::atomic_ref<uint32_t>(flags_).fetch_or(
            kMarkBit, std::memory_order_acq_rel);
        return (old & kMarkBit) == 0;
    }

    /** Atomically clear every flag in @p mask. */
    void
    clearFlagsAtomic(uint32_t mask)
    {
        std::atomic_ref<uint32_t>(flags_).fetch_and(
            ~mask, std::memory_order_acq_rel);
    }

    /** Atomically set every flag in @p mask (write-barrier latches:
     *  concurrent mutators race on unrelated bits of the word). */
    void
    setFlagsAtomic(uint32_t mask)
    {
        std::atomic_ref<uint32_t>(flags_).fetch_or(
            mask, std::memory_order_acq_rel);
    }

    /** @} */

    /** Convenience: the GC mark bit. */
    bool marked() const { return testFlag(kMarkBit); }

    /** Ownee's owner tag (0 = not an ownee). */
    uint32_t ownerTag() const { return flags_ >> kOwnerTagShift; }

    /** Set the owner tag, preserving the low flag bits. */
    void
    setOwnerTag(uint32_t tag)
    {
        flags_ = (flags_ & ((1u << kOwnerTagShift) - 1)) |
            (tag << kOwnerTagShift);
    }

    /** Read reference slot @p index. */
    Object *
    ref(uint32_t index) const
    {
        checkRefIndex(index);
        return refSlots()[index];
    }

    /** Write reference slot @p index.
     *
     * Every reference store funnels through here, so this is where
     * the generational write barrier hangs: when some runtime has
     * barriers armed, header-bit filters decide (without any lookup)
     * whether the store can possibly need recording — a
     * mature-to-nursery edge, a mutated owner, or a newly referenced
     * assert-unshared target — and only then take the out-of-line
     * slow path. Raw setRef callers (tests, embedders) therefore stay
     * sound in generational mode without going through
     * Runtime::writeRef.
     */
    void
    setRef(uint32_t index, Object *target)
    {
        checkRefIndex(index);
        Object **slot = &refSlots()[index];
        if (detail::writeBarriersArmed()) [[unlikely]] {
            // Atomic loads: a mutator may store refs while another
            // thread's collection is marking (the pre-existing
            // stop-the-world contract covers slots, not the flag
            // word, which parallel markers CAS concurrently).
            uint32_t sf = rawFlagsAtomic();
            uint32_t tf = target ? target->rawFlagsAtomic() : 0;
            bool nursery_edge = (tf & kNurseryBit) != 0 &&
                (sf & (kNurseryBit | kRememberedBit)) == 0;
            bool dirty_owner = (sf & kOwnerBit) != 0 &&
                (sf & kWriteDirtyBit) == 0;
            bool dirty_unshared = (tf & kUnsharedBit) != 0 &&
                (tf & kWriteDirtyBit) == 0;
            bool all_writes = detail::trackingAllWrites() &&
                (sf & (kNurseryBit | kRememberedBit)) == 0;
            bool backgraph =
                detail::trackingBackgraph() && *slot != target;
            if (nursery_edge || dirty_owner || dirty_unshared ||
                all_writes || backgraph)
                detail::writeBarrierSlow(this, slot, target);
        }
        *slot = target;
    }

    /** Address of reference slot @p index (for root-style scanning). */
    Object **
    refSlotAddr(uint32_t index)
    {
        checkRefIndex(index);
        return &refSlots()[index];
    }

    /** Size of the scalar payload in bytes. */
    uint32_t
    scalarBytes() const
    {
        return sizeBytes_ - kHeaderBytes - numRefs_ * kRefBytes;
    }

    /** Typed access into the scalar payload at byte offset @p off. */
    template <typename T>
    T
    scalar(uint32_t off) const
    {
        checkScalarRange(off, sizeof(T));
        T value;
        std::memcpy(&value, scalarData() + off, sizeof(T));
        return value;
    }

    /** Typed store into the scalar payload at byte offset @p off. */
    template <typename T>
    void
    setScalar(uint32_t off, T value)
    {
        checkScalarRange(off, sizeof(T));
        std::memcpy(scalarData() + off, &value, sizeof(T));
    }

    /** Raw pointer to the scalar payload. */
    char *
    scalarData()
    {
        return reinterpret_cast<char *>(this) + kHeaderBytes +
            numRefs_ * kRefBytes;
    }

    const char *
    scalarData() const
    {
        return reinterpret_cast<const char *>(this) + kHeaderBytes +
            numRefs_ * kRefBytes;
    }

  private:
    Object() = delete;

    Object **
    refSlots() const
    {
        return reinterpret_cast<Object **>(
            const_cast<char *>(reinterpret_cast<const char *>(this)) +
            kHeaderBytes);
    }

    void
    checkRefIndex(uint32_t index) const
    {
        if (index >= numRefs_)
            panic(format_("reference slot %u out of range (object has %u)",
                          index, numRefs_));
    }

    void
    checkScalarRange(uint32_t off, size_t bytes) const
    {
        if (uint64_t{off} + bytes > scalarBytes())
            panic(format_("scalar access at offset %u overruns payload of "
                          "%u bytes", off, scalarBytes()));
    }

    static std::string format_(const char *fmt, uint32_t a, uint32_t b);

    TypeId typeId_;
    uint32_t flags_;
    uint32_t sizeBytes_;
    uint32_t numRefs_;
    // Reference slots and scalar payload follow in the same cell.
};

static_assert(sizeof(Object) == Object::kHeaderBytes,
              "Object header must be exactly kHeaderBytes");

} // namespace gcassert

#endif // GCASSERT_HEAP_OBJECT_H
