#include "heap/object.h"

#include "support/strutil.h"

namespace gcassert {

std::string
Object::format_(const char *fmt, uint32_t a, uint32_t b)
{
    return gcassert::format(fmt, a, b);
}

} // namespace gcassert
