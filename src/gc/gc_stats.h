/**
 * @file
 * Collector statistics: phase timings and event counters used by
 * the benchmark harness to reproduce the paper's GC-time figures.
 */

#ifndef GCASSERT_GC_GC_STATS_H
#define GCASSERT_GC_GC_STATS_H

#include <cstdint>
#include <string>

#include "support/stopwatch.h"

namespace gcassert {

/**
 * Cumulative GC statistics for one runtime instance.
 */
struct GcStats {
    /** Number of collections performed. */
    uint64_t collections = 0;

    /** Objects marked live, cumulative over all collections. */
    uint64_t objectsMarked = 0;

    /** Objects reclaimed, cumulative. */
    uint64_t objectsSwept = 0;

    /** Bytes reclaimed, cumulative. */
    uint64_t bytesSwept = 0;

    /** Ownee membership checks performed during tracing. */
    uint64_t owneeChecks = 0;

    /** Ownee checks in the most recent collection only. */
    uint64_t owneeChecksLastGc = 0;

    /** Assertion violations reported, cumulative. */
    uint64_t violations = 0;

    /** @name Phase timers (cumulative wall-clock)
     *  @{ */
    Stopwatch totalGc;
    Stopwatch ownershipPhase;
    Stopwatch tracePhase;
    Stopwatch sweepPhase;
    Stopwatch finishPhase;
    /** @} */

    /** Live objects after the most recent collection. */
    uint64_t lastLiveObjects = 0;

    /** Live bytes after the most recent collection. */
    uint64_t lastLiveBytes = 0;

    /** Deepest tracing worklist (or mark deque) observed. */
    uint64_t maxWorklistDepth = 0;

    /** @name Parallel marking
     *  @{ */

    /** Collections whose trace phase ran parallel markers. */
    uint64_t parallelMarkPhases = 0;

    /** Successful mark-deque steals, cumulative. */
    uint64_t markSteals = 0;

    /**
     * Collections where markThreads > 1 was requested but path
     * recording forced a single-threaded trace (the tagged-worklist
     * path trick of section 2.7 is inherently sequential).
     */
    uint64_t pathDowngrades = 0;

    /** @} */

    /** @name Parallel / lazy sweeping
     *  @{ */

    /** Collections whose sweep phase ran parallel workers. */
    uint64_t parallelSweepPhases = 0;

    /** Collections swept lazily (reclamation deferred per block). */
    uint64_t lazySweepGcs = 0;

    /**
     * Lazily swept blocks whose deferred finish happened in a later
     * collection's prologue (the rest were finished incrementally by
     * the allocation path).
     */
    uint64_t lazyBlocksFinishedAtGc = 0;

    /** Time spent finishing deferred sweeps in GC prologues. */
    Stopwatch lazyFinishPhase;

    /** @} */

    /** @name Generational (nursery) collection
     *  @{ */

    /** Minor (nursery-only) collections performed. */
    uint64_t minorCollections = 0;

    /** Nursery objects that survived a minor GC and were promoted. */
    uint64_t nurseryPromoted = 0;

    /** Nursery objects reclaimed by minor GCs. */
    uint64_t nurserySweptObjects = 0;

    /** Bytes reclaimed by minor GCs. */
    uint64_t nurserySweptBytes = 0;

    /** Nursery objects promoted wholesale in full-GC prologues. */
    uint64_t nurseryPromotedAtFullGc = 0;

    /** Remembered-set sources traced as minor-GC roots, cumulative. */
    uint64_t remsetSourcesScanned = 0;

    /** Stop-the-world time spent in minor collections. */
    Stopwatch minorGc;

    /** @name Dirty-first ownership scanning (barrier-fed)
     *  @{ */

    /** Owner regions scanned from the dirty set (scanned first). */
    uint64_t dirtyOwnerScans = 0;

    /** Owner regions scanned cold (no barrier hit since last GC). */
    uint64_t cleanOwnerScans = 0;

    /** @} */
    /** @} */

    /** Reset all counters and timers. */
    void reset();

    /** Multi-line human-readable dump. */
    std::string toString() const;

    /**
     * JSON object with every counter and phase timer (timers in
     * nanoseconds, keys suffixed "Nanos"). The bench harnesses and
     * the metrics registry both serialize through this.
     */
    std::string toJson() const;
};

} // namespace gcassert

#endif // GCASSERT_GC_GC_STATS_H
