/**
 * @file
 * Path reconstruction for violation reports.
 *
 * Combines the worklist's tagged entries (the root-to-current path,
 * paper section 2.7) with a map from first-hop objects to the root
 * or owner that pushed them, yielding the complete "Path to object"
 * report of Figure 1.
 */

#ifndef GCASSERT_GC_PATH_RECORDER_H
#define GCASSERT_GC_PATH_RECORDER_H

#include <string>
#include <unordered_map>
#include <vector>

#include "gc/worklist.h"
#include "heap/object.h"

namespace gcassert {

/**
 * Records root attribution and rebuilds heap paths on demand.
 */
class PathRecorder {
  public:
    /** Forget all attribution (call at the start of each GC). */
    void reset() { origin_.clear(); }

    /**
     * Record that @p obj was first pushed from the given origin (a
     * root name or an "owner ..." pseudo-root). Only the first
     * attribution is kept: the tagged chain through @p obj always
     * descends from the edge that marked it.
     */
    void
    noteOrigin(const Object *obj, const std::string &origin)
    {
        origin_.try_emplace(obj, origin);
    }

    /** Origin label for @p obj, or "" if unattributed. */
    const std::string &originOf(const Object *obj) const;

    /**
     * Build the path to @p current: all tagged worklist entries,
     * bottom to top, followed by @p current itself.
     */
    std::vector<const Object *>
    buildPath(const Worklist &worklist, const Object *current) const;

  private:
    std::unordered_map<const Object *, std::string> origin_;
};

} // namespace gcassert

#endif // GCASSERT_GC_PATH_RECORDER_H
