/**
 * @file
 * The generational write barrier.
 *
 * Reference stores funnel through Object::setRef, whose inline fast
 * path (heap/object.h) loads one global armed flag and, when some
 * runtime is generational, applies header-bit filters. Everything
 * past the filters lives here: a process-wide registry maps the
 * mutated object back to its owning runtime's RememberedSet and
 * AssertionEngine, and the slow path then
 *
 *  - records mature->nursery edges in the remembered set (so a minor
 *    collection can treat remembered sources as roots into the
 *    nursery), and
 *  - enqueues mutated owners and newly referenced assert-unshared
 *    targets on the engine's dirty set, so the next full trace's
 *    re-checks start from the mutated frontier instead of cold
 *    (mutated owner regions are scanned first; dirty/clean counts are
 *    surfaced in the stats), and
 *  - feeds every reference mutation to the why-alive backgraph when
 *    one is armed (detectors/backgraph).
 *
 * The slow path dispatches through a single per-runtime mode mask
 * (remset / all-writes / backgraph), computed once at registration
 * and consulted once per recorded source, instead of re-deriving
 * each consumer's condition from scattered booleans.
 *
 * The registry indirection is what keeps raw Object::setRef callers
 * (tests, embedders that never adopted Runtime::writeRef) sound in
 * generational mode: the barrier does not depend on the caller
 * holding a runtime reference, only on the store going through
 * setRef. Lookups are rare by construction — each filter bit latches
 * until the next collection clears it.
 */

#ifndef GCASSERT_GC_BARRIER_H
#define GCASSERT_GC_BARRIER_H

#include <atomic>
#include <cstdint>

#include "heap/object.h"

namespace gcassert {

class Heap;
class RememberedSet;
class AssertionEngine;
class Backgraph;

/**
 * Arms the write barrier for one runtime's lifetime: registers the
 * (heap, remset, engine) triple with the process-wide barrier
 * registry on construction and removes it on destruction. Owned by
 * Runtime; constructed only in generational mode.
 */
class BarrierScope {
  public:
    /**
     * @param slow_hits Optional telemetry counter bumped once per
     *        slow-path entry attributed to this runtime's heap (the
     *        metrics registry reads it as a gauge). May be nullptr.
     * @param track_all_writes Record every written (non-nursery,
     *        unlatched) source in the remembered set, not just
     *        mature-to-nursery edges, so the incremental assertion
     *        recheck can consume the dirty-card stream at the next
     *        full collection. Rides the same kRememberedBit latch:
     *        still at most one slow-path trip per written source per
     *        GC cycle.
     * @param backgraph Optional third consumer: every reference
     *        mutation from this runtime's heap (old target, new
     *        target) is fed to the why-alive backgraph. Unlatched —
     *        this is the one consumer that needs the full write
     *        stream — so it arms the separate g_trackBackgraph
     *        inline filter.
     */
    BarrierScope(Heap &heap, RememberedSet &remset,
                 AssertionEngine &engine,
                 std::atomic<uint64_t> *slow_hits = nullptr,
                 bool track_all_writes = false,
                 Backgraph *backgraph = nullptr);
    ~BarrierScope();

    BarrierScope(const BarrierScope &) = delete;
    BarrierScope &operator=(const BarrierScope &) = delete;

  private:
    Heap &heap_;
};

} // namespace gcassert

#endif // GCASSERT_GC_BARRIER_H
