#include "gc/worklist.h"

// Worklist is header-only; this translation unit anchors the target
// and checks header self-containment.
