/**
 * @file
 * The stop-the-world mark-sweep collector with piggybacked assertion
 * checking.
 *
 * Collection proceeds in four phases, mirroring the paper:
 *
 *  1. *Ownership phase* (only when assert-ownedby pairs exist): trace
 *     from each owner without marking the owner itself, truncating
 *     at ownees (which are queued and scanned afterwards) and at
 *     other owners (section 2.5.2).
 *  2. *Root scan / trace*: standard DFS from the registered roots.
 *     With the assertion infrastructure enabled, every visit also
 *     checks the dead bit, the unshared bit (on re-encounter), the
 *     ownee/owned bits, and tallies instance counts. With path
 *     recording enabled, scanned objects are re-pushed onto the
 *     worklist with their low-order bit set so the tagged entries
 *     always spell the root-to-current path (section 2.7). With
 *     markThreads > 1 (and path recording off) this phase instead
 *     runs N marker threads over work-stealing deques; see
 *     CollectorConfig::markThreads.
 *  3. *Finish*: instance-limit checks, region-queue pruning and
 *     ownership-table pruning (while mark bits are still valid).
 *  4. *Sweep*: reclaim unmarked objects and clear mark bits.
 *
 * The Base benchmark configuration compiles the checks out entirely
 * via the kInfra template parameter, so an unmodified-collector
 * baseline is measured rather than simulated.
 */

#ifndef GCASSERT_GC_COLLECTOR_H
#define GCASSERT_GC_COLLECTOR_H

#include <atomic>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "assertions/engine.h"
#include "gc/gc_stats.h"
#include "observe/assert_cost.h"
#include "gc/mutator.h"
#include "gc/path_recorder.h"
#include "gc/remset.h"
#include "gc/roots.h"
#include "gc/worklist.h"
#include "heap/heap.h"
#include "types/type_registry.h"

namespace gcassert {

class Backgraph;
class IncrementalAssertCache;
class Telemetry;
class TraceRecorder;

/** Collector feature switches. */
struct CollectorConfig {
    /**
     * Compile assertion checks into the trace loop. Off = the
     * paper's "Base" configuration (unmodified collector).
     */
    bool infrastructure = true;

    /**
     * Maintain the tagged-worklist path information used for
     * full-path violation reports. Only meaningful when
     * infrastructure is on.
     */
    bool recordPaths = true;

    /**
     * Marker threads for the trace phase; 1 (or 0) keeps the
     * original sequential DFS. With N > 1, phase 2 runs N workers,
     * each owning a work-stealing MarkDeque, with atomic
     * test-and-set mark bits so every object is scanned exactly
     * once. Assertion checks move onto the CAS-mark path (the loser
     * of a mark race is a second incoming reference — exactly what
     * assert-unshared detects); per-class instance tallies become
     * per-worker and merge in the finish phase. Path recording is
     * inherently sequential, so recordPaths = true forces a
     * single-threaded trace with a logged downgrade.
     */
    uint32_t markThreads = 1;

    /**
     * Worker threads for the sweep phase; 1 (or 0) keeps the
     * sequential sweep. Workers sweep contiguous shards of the block
     * lists with private free lists and stats; the on_free callback
     * is buffered per block and replayed in canonical address order
     * on the collecting thread, so detector probes and finalizer
     * discovery observe exactly the sequential sweep (see
     * Heap::sweep). Unlike path recording vs markThreads, no feature
     * conflicts with parallel sweeping.
     */
    uint32_t sweepThreads = 1;

    /**
     * Lazy sweeping: the sweep phase still runs every on_free hook
     * and settles all accounting (so assertion/detector semantics
     * are unchanged), but defers per-block mark-clearing and
     * free-list rebuilding to the allocation path, shrinking the
     * stop-the-world pause. Blocks still pending at the next
     * collection are finished in its prologue.
     */
    bool lazySweep = false;
};

/** Outcome of one collection. */
struct CollectionResult {
    /** Objects marked live. */
    uint64_t marked = 0;
    /** Sweep summary. */
    SweepStats sweep;
    /** Violations reported during this collection. */
    uint64_t violations = 0;
};

/** Outcome of one minor (nursery-only) collection. */
struct MinorCollectionResult {
    /** Nursery survivors promoted to the mature space. */
    uint64_t promoted = 0;
    /** Nursery objects reclaimed. */
    uint64_t freedObjects = 0;
    /** Bytes reclaimed. */
    uint64_t freedBytes = 0;
    /** Remembered-set sources scanned as roots. */
    uint64_t remsetSources = 0;
};

/**
 * The mark-sweep collector.
 */
class Collector {
  public:
    Collector(Heap &heap, TypeRegistry &types, RootRegistry &roots,
              MutatorRegistry &mutators, AssertionEngine &engine,
              RememberedSet &remset, CollectorConfig config);

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    /** Run one full collection. */
    CollectionResult collect();

    /**
     * Run one minor (nursery-only) collection. Stopped-world and
     * sequential; requires the heap to be generational.
     *
     * Traces from roots, mutator local roots, and remembered-set
     * sources, truncating at mature objects; marked nursery objects
     * are promoted in place, unmarked ones reclaimed. Objects the
     * assertion machinery holds raw pointers to (region queues,
     * finalizables, the ownership table, the barrier dirty sets) are
     * pinned — their lifetime verdicts belong to the full GC, which
     * remains the sole authority for assertion checking: a minor
     * collection performs NO assertion checks and reports NO
     * assertion violations, it only bounds pause time between full
     * GCs. (A minor pause does count against the pause SLO budget;
     * the resulting PauseSlo report is context-only, never an
     * assertion verdict.)
     *
     * Weak slot 0 is traced as a *strong* edge here: weak-edge
     * clearing is observable behavior and stays full-GC-only, so
     * generational mode cannot change when a weak reference nulls.
     */
    MinorCollectionResult minorCollect();

    GcStats &stats() { return stats_; }
    const GcStats &stats() const { return stats_; }

    const CollectorConfig &config() const { return config_; }

    /** Reconfigure (between collections only). */
    void setConfig(const CollectorConfig &config) { config_ = config; }

    /**
     * Attach (or detach, with nullptr) the runtime's telemetry
     * bundle. With a recorder configured, each GC phase emits one
     * trace span (plus per-worker sub-spans for the parallel mark
     * and sweep workers); with a census cadence configured, full GCs
     * tally live objects/bytes per type during the existing trace.
     * With no telemetry, every phase boundary pays exactly one null
     * test. Set between collections only.
     */
    void setTelemetry(Telemetry *telemetry);

    /**
     * Attach (or detach, with nullptr) the incremental assertion
     * recheck cache. While attached, full GCs consume the remembered
     * set's dirty-card stream in their prologue (before clearing the
     * set), skip the per-object mark-phase instance tallies, and run
     * the deferred instance/volume verdict after the sweep via
     * AssertionEngine::onPostSweep. Set between collections only.
     */
    void setIncrementalCache(IncrementalAssertCache *cache)
    {
        incremental_ = cache;
    }

    /**
     * Attach (or detach, with nullptr) the why-alive backgraph.
     * While attached, both sweeps feed freed objects to it (exact
     * dead-edge pruning) and each full collection's epilogue — after
     * the result and every assertion verdict have settled — runs the
     * backgraph's leak-trend sample. Set between collections only.
     */
    void setBackgraph(Backgraph *backgraph)
    {
        backgraph_ = backgraph;
    }

    /**
     * Take a heap census at the next full collection regardless of
     * the configured cadence (no-op without telemetry attached).
     */
    void requestCensus() { censusRequested_ = true; }

    /**
     * Publish the live-endpoint copies: the per-named-site why-alive
     * table (when a backgraph is attached) and a metrics snapshot
     * into the history ring. No-op without telemetry. Called from
     * each full collection's epilogue and from
     * Runtime::publishTelemetry; the caller must hold the runtime
     * lock — gauge readers touch the non-atomic accumulators this
     * collector owns.
     */
    void publishTelemetry();

    /**
     * Register a hook invoked on every object freed by sweep (used
     * by the leak-detector baselines to maintain side tables).
     */
    void addFreeHook(std::function<void(Object *)> hook);

    /**
     * Register (or, with an empty function, clear) a finalizer for
     * @p obj. When a collection finds the object unreachable it is
     * *resurrected* — marked and traced so it and everything it
     * references survive — and queued; the runtime runs the
     * finalizer after the collection, outside the GC timers. The
     * object becomes collectible again at the next collection unless
     * the finalizer re-rooted it. One finalizer per object;
     * registering again replaces it.
     */
    void registerFinalizer(Object *obj,
                           std::function<void(Object *)> finalizer);

    /** Finalizers whose objects died; drained by the runtime. */
    std::vector<std::pair<Object *, std::function<void(Object *)>>>
    takePendingFinalizers();

    /** Objects currently registered for finalization. */
    size_t finalizableCount() const { return finalizables_.size(); }

    /** True when a collection queued finalizers not yet drained. */
    bool
    hasPendingFinalizers() const
    {
        return !pendingFinalizers_.empty();
    }

  private:
    template <bool kInfra, bool kPath>
    CollectionResult collectImpl();

    /** Phase 1: trace from owners. */
    template <bool kPath>
    void ownershipPhase();

    /** Minor-trace edge visit: mark-and-push, truncated at mature. */
    void mnVisit(Object *obj);

    /** Drain the worklist with minor-trace semantics. */
    void mnDrain();

    /**
     * Scan the subtree under @p from on behalf of @p owner.
     *
     * @param from_queue False for the direct owner-region scans
     *        (which confer ownedness), true for the deferred ownee
     *        subtree scans (which only mark liveness and report
     *        unowned ownees).
     */
    template <bool kPath>
    void ownerScan(Object *from, Object *owner,
                   std::vector<std::pair<Object *, Object *>> &queue,
                   bool from_queue);

    /** Phase-1 edge visit (owner-region semantics). */
    template <bool kPath>
    void p1Visit(Object **slot, Object *obj, Object *owner,
                 std::vector<std::pair<Object *, Object *>> &queue,
                 bool from_queue);

    /** Phase 2: root scan and full trace. */
    template <bool kInfra, bool kPath>
    void rootScanPhase();

    /** Phase-2 edge visit (normal trace semantics). */
    template <bool kInfra, bool kPath>
    void p2Visit(Object **slot, Object *obj);

    /** Drain the worklist with phase-2 semantics. */
    template <bool kInfra, bool kPath>
    void p2Drain();

    /** @name Parallel mark phase (markThreads > 1, no path recording)
     *  @{ */

    /** Per-marker-thread state; defined in collector.cpp. */
    struct MarkWorker;

    /** Phase 2, parallel: fan out over N workers and merge. */
    template <bool kInfra>
    void parallelMarkPhase();

    /** One worker: visit its root slice, then drain/steal to empty. */
    template <bool kInfra>
    void parWorkerRun(std::vector<MarkWorker> &workers, size_t index,
                      const std::vector<Object **> &root_slots);

    /** Scan one gray object's reference slots. */
    template <bool kInfra>
    void parScan(Object *obj, MarkWorker &worker);

    /** Parallel edge visit: piggybacked checks + CAS mark. */
    template <bool kInfra>
    void parVisit(Object **slot, Object *obj, MarkWorker &worker);

    /** Ownee check against the phase-1 owned bits (read-only). */
    void parOwneeCheck(Object *obj, uint32_t flags, MarkWorker &worker);

    /**
     * Dead-bit check on the parallel path.
     * @return true when the visit must stop (ForceTrue nulled the
     *         reference).
     */
    bool parDeadCheck(Object **slot, Object *obj, uint32_t flags,
                      MarkWorker &worker);

    /** @} */

    /** Mark @p obj and tally instance counts when kInfra. */
    template <bool kInfra>
    void markObject(Object *obj);

    /**
     * Check the dead bit on an encounter.
     * @return true when the visit must stop because the reference
     *         was nulled by the ForceTrue reaction.
     */
    template <bool kPath>
    bool deadCheck(Object **slot, Object *obj);

    /** Check the unshared bit on a re-encounter. */
    template <bool kPath>
    void unsharedCheck(Object *obj);

    /**
     * Phase-2 ownee check.
     */
    template <bool kPath>
    void owneeCheckPhase2(Object *obj);

    /** Build and report a violation for @p obj with the live path. */
    template <bool kPath>
    void reportPathViolation(AssertionKind kind, Object *obj,
                             const std::string &message);

    Heap &heap_;
    TypeRegistry &types_;
    RootRegistry &roots_;
    MutatorRegistry &mutators_;
    AssertionEngine &engine_;
    RememberedSet &remset_;
    CollectorConfig config_;

    Worklist worklist_;
    PathRecorder paths_;
    GcStats stats_;

    uint64_t markedThisGc_ = 0;
    /**
     * Parallel-phase termination counter: one virtual token per
     * worker until its root slice is pushed, plus one unit per
     * marked-but-unscanned object. Zero means the trace is complete.
     */
    std::atomic<int64_t> pendingWork_{0};
    /** The path-recording downgrade is logged once per collector. */
    bool loggedPathDowngrade_ = false;
    /** Snapshot of TypeRegistry::hasWeakTypes() for this GC. */
    bool hasWeak_ = false;
    /** Marked weak-reference objects awaiting edge clearing. */
    std::vector<Object *> weakRefs_;

    /** Resurrect dead finalizable objects; returns resurrected count. */
    template <bool kInfra, bool kPath>
    void resurrectFinalizables();

    /** @name Telemetry (all inert when telemetry_ is null)
     *  @{ */

    /** The runtime's telemetry bundle; null = all knobs off. */
    Telemetry *telemetry_ = nullptr;
    /** Incremental recheck cache; null = classic whole-heap checks. */
    IncrementalAssertCache *incremental_ = nullptr;
    /** Why-alive backgraph; null = no leak-trend sampling/pruning. */
    Backgraph *backgraph_ = nullptr;
    /** True while the current GC records trace spans. */
    bool traceActive_ = false;
    /** True while the current full GC tallies a heap census. */
    bool censusActive_ = false;
    /** One-shot on-demand census request (requestCensus). */
    bool censusRequested_ = false;
    /** Dense per-TypeId census tallies for the current full GC
     *  (single-threaded marking; parallel workers tally privately
     *  and merge after the join). */
    std::vector<uint64_t> censusCounts_;
    std::vector<uint64_t> censusBytes_;

    /** Decide/arm the census for the GC numbered @p gc_number. */
    void beginCensus(uint64_t gc_number);
    /** Snapshot the tallies into the telemetry bundle. */
    void finishCensus(uint64_t gc_number);

    /** True while the current GC attributes per-check cost. */
    bool costActive_ = false;
    /** Mark-phase tallies for the current GC (sequential trace;
     *  parallel workers tally privately and merge after the join —
     *  the census pattern). */
    AssertCostTallies markCost_;
    /** Points at markCost_ only inside the phase-2 mark span (null
     *  during phase 1 and resurrection, so checks outside the span
     *  never inflate mark attribution); CostScopes are inert on
     *  null. */
    AssertCostTallies *cost_ = nullptr;

    /**
     * Feed a completed pause to the SLO tracker and, over budget,
     * report a context-only PauseSlo violation. Called after the
     * collection's result is fully settled so the violation never
     * perturbs per-GC violation counts or assertion verdicts.
     */
    void notePause(bool minor, uint64_t pauseNanos);

    /** @} */

    /** A registered finalizer plus its registration sequence number
     *  (dying finalizables are processed in registration order so
     *  finalizer order is independent of hash-map iteration). */
    struct FinalizerEntry {
        uint64_t seq;
        std::function<void(Object *)> fn;
    };

    /** Registered finalizers, by object. */
    std::unordered_map<Object *, FinalizerEntry> finalizables_;
    /** Next registration sequence number. */
    uint64_t finalizerSeq_ = 0;
    /** Finalizers queued to run after the current collection. */
    std::vector<std::pair<Object *, std::function<void(Object *)>>>
        pendingFinalizers_;
    /** Header tag of the owner whose region is being scanned. */
    uint32_t currentOwnerTag_ = 0;
    /** @name Lazy phase-1 path attribution (see reportPathViolation)
     *  @{ */
    bool inOwnershipScan_ = false;
    const char *scanKind_ = "";
    Object *scanAnchor_ = nullptr;
    /** @} */
    std::vector<std::function<void(Object *)>> freeHooks_;
};

} // namespace gcassert

#endif // GCASSERT_GC_COLLECTOR_H
