/**
 * @file
 * The tracing worklist with low-order-bit path tagging.
 *
 * The collector performs a depth-first trace. Following the paper's
 * section 2.7, an object popped for scanning is re-pushed with its
 * pointer's low-order bit set before its children are pushed; at any
 * instant the tagged entries on the worklist, bottom to top, spell
 * the path from a root to the object currently being scanned. This
 * is what makes full-path violation reports essentially free.
 */

#ifndef GCASSERT_GC_WORKLIST_H
#define GCASSERT_GC_WORKLIST_H

#include <cstdint>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/**
 * LIFO worklist of tagged object words.
 */
class Worklist {
  public:
    /** @return the word for @p obj with the path tag set. */
    static uintptr_t
    tagged(const Object *obj)
    {
        return reinterpret_cast<uintptr_t>(obj) | 1u;
    }

    /** @return the word for @p obj without the tag. */
    static uintptr_t
    plain(const Object *obj)
    {
        return reinterpret_cast<uintptr_t>(obj);
    }

    /** @return true if the word carries the path tag. */
    static bool isTagged(uintptr_t word) { return (word & 1u) != 0; }

    /** Strip the tag and recover the object. */
    static Object *
    objectOf(uintptr_t word)
    {
        return reinterpret_cast<Object *>(word & ~uintptr_t{1});
    }

    void push(Object *obj) { stack_.push_back(plain(obj)); }
    void pushTagged(Object *obj) { stack_.push_back(tagged(obj)); }

    bool empty() const { return stack_.empty(); }

    /** Pop the top word. @pre not empty. */
    uintptr_t
    pop()
    {
        uintptr_t word = stack_.back();
        stack_.pop_back();
        return word;
    }

    /** All current entries, bottom to top (for path extraction). */
    const std::vector<uintptr_t> &entries() const { return stack_; }

    void clear() { stack_.clear(); }

    size_t size() const { return stack_.size(); }

    /**
     * Approximate high-water depth since construction: the backing
     * vector's capacity, which is within 2x of the deepest stack
     * (clear() never shrinks it). Kept out of the hot push path on
     * purpose — a per-push comparison is measurable on pointer-dense
     * heaps.
     */
    size_t highWater() const { return stack_.capacity(); }

  private:
    std::vector<uintptr_t> stack_;
};

} // namespace gcassert

#endif // GCASSERT_GC_WORKLIST_H
