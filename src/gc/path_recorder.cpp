#include "gc/path_recorder.h"

namespace gcassert {

const std::string &
PathRecorder::originOf(const Object *obj) const
{
    static const std::string empty;
    auto it = origin_.find(obj);
    return it == origin_.end() ? empty : it->second;
}

std::vector<const Object *>
PathRecorder::buildPath(const Worklist &worklist,
                        const Object *current) const
{
    std::vector<const Object *> path;
    for (uintptr_t word : worklist.entries())
        if (Worklist::isTagged(word))
            path.push_back(Worklist::objectOf(word));
    path.push_back(current);
    return path;
}

} // namespace gcassert
