#include "gc/roots.h"

#include "support/logging.h"

namespace gcassert {

RootNode::~RootNode()
{
    if (registry_)
        registry_->remove(*this);
}

RootRegistry::~RootRegistry()
{
    // Unlink any survivors so their destructors don't touch a dead
    // registry. Surviving nodes indicate handles outliving the
    // runtime, which is legal during teardown.
    for (RootNode *n = head_.next_; n;) {
        RootNode *next = n->next_;
        n->prev_ = nullptr;
        n->next_ = nullptr;
        n->registry_ = nullptr;
        n = next;
    }
}

void
RootRegistry::add(RootNode &node, Object *obj, const char *name)
{
    if (node.registry_)
        panic("RootNode registered twice");
    node.ptr_ = obj;
    node.name_ = name ? name : "";
    node.registry_ = this;
    node.next_ = head_.next_;
    node.prev_ = &head_;
    if (head_.next_)
        head_.next_->prev_ = &node;
    head_.next_ = &node;
    ++count_;
}

void
RootRegistry::remove(RootNode &node)
{
    if (node.registry_ != this)
        return;
    node.prev_->next_ = node.next_;
    if (node.next_)
        node.next_->prev_ = node.prev_;
    node.prev_ = nullptr;
    node.next_ = nullptr;
    node.registry_ = nullptr;
    --count_;
}

void
RootRegistry::forEach(const std::function<void(RootNode &)> &visit)
{
    for (RootNode *n = head_.next_; n; n = n->next_)
        visit(*n);
}

} // namespace gcassert
