#include "gc/collector.h"

#include "assertions/incremental.h"
#include "detectors/backgraph.h"

#include <algorithm>
#include <thread>

#include "gc/mark_deque.h"
#include "observe/telemetry.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

Collector::Collector(Heap &heap, TypeRegistry &types, RootRegistry &roots,
                     MutatorRegistry &mutators, AssertionEngine &engine,
                     RememberedSet &remset, CollectorConfig config)
    : heap_(heap),
      types_(types),
      roots_(roots),
      mutators_(mutators),
      engine_(engine),
      remset_(remset),
      config_(config)
{
}

void
Collector::addFreeHook(std::function<void(Object *)> hook)
{
    freeHooks_.push_back(std::move(hook));
}

void
Collector::setTelemetry(Telemetry *telemetry)
{
    telemetry_ = telemetry;
}

void
Collector::beginCensus(uint64_t gc_number)
{
    censusActive_ = false;
    if (!telemetry_)
        return;
    uint32_t every = telemetry_->config().censusEvery;
    if (censusRequested_ || (every != 0 && gc_number % every == 0)) {
        censusActive_ = true;
        censusCounts_.assign(types_.size(), 0);
        censusBytes_.assign(types_.size(), 0);
    }
}

void
Collector::finishCensus(uint64_t gc_number)
{
    if (!censusActive_)
        return;
    CensusSnapshot census;
    census.gcNumber = gc_number;
    for (size_t i = 0; i < censusCounts_.size(); ++i) {
        if (censusCounts_[i] == 0)
            continue;
        census.rows.push_back(
            CensusRow{types_.get(static_cast<TypeId>(i)).name(),
                      censusCounts_[i], censusBytes_[i]});
        census.totalObjects += censusCounts_[i];
        census.totalBytes += censusBytes_[i];
    }
    census.sortByBytes();
    telemetry_->metrics().counter("observe.census_taken")->increment();
    telemetry_->setCensus(std::move(census));
    censusActive_ = false;
    censusRequested_ = false;
}

void
Collector::registerFinalizer(Object *obj,
                             std::function<void(Object *)> finalizer)
{
    if (!obj)
        fatal("registerFinalizer called on null");
    if (finalizer)
        finalizables_[obj] =
            FinalizerEntry{finalizerSeq_++, std::move(finalizer)};
    else
        finalizables_.erase(obj);
}

std::vector<std::pair<Object *, std::function<void(Object *)>>>
Collector::takePendingFinalizers()
{
    std::vector<std::pair<Object *, std::function<void(Object *)>>> out;
    out.swap(pendingFinalizers_);
    return out;
}

template <bool kInfra, bool kPath>
void
Collector::resurrectFinalizables()
{
    if (finalizables_.empty())
        return;
    // Unreachable finalizable objects are revived: marked and traced
    // so their whole subtree survives this collection, then moved to
    // the pending queue (each finalizer runs exactly once). Weak
    // edges to them were already cleared — the Java ordering.
    // Registration order, not the map's (address-seeded) iteration
    // order, decides finalizer order, so runs are reproducible and
    // identical across sweep configurations.
    std::vector<std::pair<uint64_t, Object *>> dying;
    for (auto &[obj, entry] : finalizables_)
        if (!obj->marked())
            dying.emplace_back(entry.seq, obj);
    std::sort(dying.begin(), dying.end());
    for (auto &[seq, obj] : dying) {
        markObject<kInfra>(obj);
        worklist_.push(obj);
        p2Drain<kInfra, kPath>();
        auto it = finalizables_.find(obj);
        pendingFinalizers_.emplace_back(obj, std::move(it->second.fn));
        finalizables_.erase(it);
    }
}

CollectionResult
Collector::collect()
{
    if (config_.infrastructure) {
        if (config_.recordPaths) {
            // Section 2.7's tagged worklist *is* the path — it only
            // spells a root-to-object chain because one thread pops
            // and re-pushes in DFS order. Rather than emit silently
            // wrong paths, a parallel request downgrades to the
            // sequential trace, loudly.
            if (config_.markThreads > 1) {
                ++stats_.pathDowngrades;
                if (!loggedPathDowngrade_) {
                    warn(format(
                        "markThreads=%u requested with path recording "
                        "enabled; path recording is inherently "
                        "sequential, so tracing runs single-threaded "
                        "(set recordPaths=false for parallel marking)",
                        config_.markThreads));
                    loggedPathDowngrade_ = true;
                }
            }
            return collectImpl<true, true>();
        }
        return collectImpl<true, false>();
    }
    return collectImpl<false, false>();
}

void
Collector::mnVisit(Object *obj)
{
    uint32_t flags = obj->rawFlags();
    // Truncate at mature objects: their liveness is the full GC's
    // business, and any nursery reference they hold was recorded by
    // the write barrier (the remembered set is scanned as a root).
    if ((flags & kNurseryBit) == 0)
        return;
    if (flags & kMarkBit)
        return;
    obj->setFlag(kMarkBit);
    worklist_.push(obj);
}

void
Collector::mnDrain()
{
    while (!worklist_.empty()) {
        uintptr_t word = worklist_.pop();
        if (Worklist::isTagged(word))
            continue;
        Object *obj = Worklist::objectOf(word);
        uint32_t n = obj->numRefs();
        Object **slots = n ? obj->refSlotAddr(0) : nullptr;
        // Weak slot 0 is deliberately traced as a strong edge: weak
        // clearing is observable and stays full-GC-only, so a minor
        // collection can never change when a weak reference nulls.
        for (uint32_t i = 0; i < n; ++i) {
            if (slots[i])
                mnVisit(slots[i]);
        }
    }
}

MinorCollectionResult
Collector::minorCollect()
{
    TraceRecorder *tr = telemetry_ ? telemetry_->recorder() : nullptr;
    uint64_t t0 = (tr || telemetry_) ? nowNanos() : 0;
    ScopedTimer timer(stats_.minorGc);
    ++stats_.minorCollections;
    worklist_.clear();

    // No lazy-sweep finishing needed: nursery objects can never sit
    // in a sweep-pending block (allocation finishes a block on first
    // touch), and mature mark bits are never consulted here.

    // Roots: the registered root set and mutator state.
    roots_.forEach([this](RootNode &node) {
        if (Object *obj = node.get())
            mnVisit(obj);
    });
    mutators_.forEach([this](MutatorContext &mutator) {
        for (Object *obj : mutator.localRoots())
            if (obj)
                mnVisit(obj);
        // Region-queue entries are pinned: the queue holds raw
        // pointers pruned only at full GCs (by mark bit), and a
        // flushed region object's verdict belongs to the full GC.
        for (Object *obj : mutator.regionQueue())
            mnVisit(obj);
    });

    // Pin every object the assertion machinery holds raw pointers
    // to; their lifetime verdicts are the full GC's alone.
    for (auto &entry : finalizables_)
        mnVisit(entry.first);
    engine_.ownership().forEachOwner(
        [this](Object *owner, const std::vector<Object *> &ownees) {
            mnVisit(owner);
            for (Object *ownee : ownees)
                mnVisit(ownee);
        });
    for (Object *obj : engine_.dirtyUnsharedTargets())
        mnVisit(obj);

    // Remembered-set roots: rescan every reference slot of each
    // recorded mature source (the set is source-precise).
    MinorCollectionResult result;
    remset_.forEachSource([this, &result](Object *src) {
        ++result.remsetSources;
        uint32_t n = src->numRefs();
        Object **slots = n ? src->refSlotAddr(0) : nullptr;
        for (uint32_t i = 0; i < n; ++i) {
            if (slots[i])
                mnVisit(slots[i]);
        }
    });
    stats_.remsetSourcesScanned += result.remsetSources;

    mnDrain();

    // Nursery sweep: promote survivors in place, reclaim the rest.
    // The free callbacks match the full sweep's so detectors and
    // satisfied-assertion accounting observe the same stream they
    // would have seen at the next full GC.
    NurserySweepStats swept = heap_.sweepNursery([this](Object *obj) {
        if (config_.infrastructure)
            engine_.onObjectFreed(obj);
        if (backgraph_)
            backgraph_->noteFreed(obj);
        for (const auto &hook : freeHooks_)
            hook(obj);
    });
    // The incremental recheck is the card stream's second consumer:
    // drain it into region dirt before the set is dropped, or the
    // mutations recorded since the last collection would be lost to
    // the next full GC's merge.
    if (config_.infrastructure && incremental_ != nullptr)
        incremental_->consumeCards(remset_);
    remset_.clear();

    result.promoted = swept.promotedObjects;
    result.freedObjects = swept.freedObjects;
    result.freedBytes = swept.freedBytes;
    stats_.nurseryPromoted += swept.promotedObjects;
    stats_.nurserySweptObjects += swept.freedObjects;
    stats_.nurserySweptBytes += swept.freedBytes;
    // Minor frees fold into the lifetime sweep totals so they match
    // a non-generational run's (same objects, earlier collection).
    stats_.objectsSwept += swept.freedObjects;
    stats_.bytesSwept += swept.freedBytes;
    uint64_t t1 = (tr || telemetry_) ? nowNanos() : 0;
    if (tr) {
        JsonWriter a;
        a.beginObject()
            .field("promoted", result.promoted)
            .field("freedObjects", result.freedObjects)
            .field("freedBytes", result.freedBytes)
            .field("remsetSources", result.remsetSources)
            .endObject();
        tr->complete("minor_gc", "gc", t0, t1, 0, a.str());
    }
    // Minor pauses count against the same SLO budget. This is the
    // one exception to "a minor collection reports no violations":
    // PauseSlo is context-only and never an assertion verdict.
    if (telemetry_)
        notePause(true, t1 - t0);
    return result;
}

template <bool kInfra, bool kPath>
CollectionResult
Collector::collectImpl()
{
    // Telemetry is all-or-nothing per collection: the recorder
    // pointer is read once here, so every phase boundary below pays
    // exactly one null test when tracing is off. Recording never
    // mutates collector state the algorithm reads — only timestamps
    // and stats snapshots flow out — so traced and untraced runs are
    // behaviorally identical by construction.
    TraceRecorder *tr = telemetry_ ? telemetry_->recorder() : nullptr;
    traceActive_ = tr != nullptr;
    // Cost attribution rides on the assertion infrastructure and any
    // telemetry; the SLO tracker needs only telemetry, so the pause
    // endpoints are taken whenever the bundle is attached.
    costActive_ = kInfra && telemetry_ != nullptr;
    uint64_t gc_begin = (tr || telemetry_) ? nowNanos() : 0;

    ScopedTimer total(stats_.totalGc);

    // Prologue: finish any block whose previous (lazy) sweep is
    // still deferred. Live objects in such blocks carry stale mark
    // bits that would wrongly short-circuit this trace, so the
    // finish must complete before any marking.
    {
        uint64_t t0 = tr ? nowNanos() : 0;
        ScopedTimer t(stats_.lazyFinishPhase);
        uint64_t finished = heap_.finishLazySweep();
        stats_.lazyBlocksFinishedAtGc += finished;
        if (tr) {
            JsonWriter a;
            a.beginObject().field("blocksFinished", finished).endObject();
            tr->complete("lazy_finish", "gc", t0, nowNanos(), 0,
                         a.str());
        }
    }

    // Generational prologue: promote the entire nursery wholesale and
    // drop the remembered set. The full collection then runs with
    // zero nursery state — every phase below is textually identical
    // to the non-generational path, which is how full GCs stay the
    // sole authority for assertion verdicts. (The kWriteDirtyBit
    // latches survive: the dirty sets are consumed in onTraceDone.)
    // Incremental-recheck prologue: drain the dirty-card stream into
    // region dirt before anything clears the remembered set. In
    // non-generational mode the set exists purely as this card feed,
    // so it is cleared (latches and all) right here.
    if (kInfra && incremental_ != nullptr) {
        incremental_->consumeCards(remset_);
        if (!heap_.generational())
            remset_.clear();
    }

    if (heap_.generational()) {
        stats_.nurseryPromotedAtFullGc += heap_.promoteAllNursery();
        remset_.clear();
    }

    ++stats_.collections;
    markedThisGc_ = 0;
    stats_.owneeChecksLastGc = 0;
    uint64_t violations_before = engine_.stats().violationsReported;
    beginCensus(stats_.collections);

    worklist_.clear();
    hasWeak_ = types_.hasWeakTypes();
    if (kInfra)
        engine_.onGcStart(stats_.collections);
    if (kPath)
        paths_.reset();

    // Phase 1: ownership scan (only with assertion infrastructure
    // and registered owner/ownee pairs).
    if (kInfra && !engine_.ownership().empty()) {
        uint64_t t0 = tr ? nowNanos() : 0;
        uint64_t dirty_before = stats_.dirtyOwnerScans;
        uint64_t clean_before = stats_.cleanOwnerScans;
        {
            ScopedTimer t(stats_.ownershipPhase);
            ownershipPhase<kPath>();
        }
        if (tr) {
            JsonWriter a;
            a.beginObject()
                .field("dirtyOwnerScans",
                       stats_.dirtyOwnerScans - dirty_before)
                .field("cleanOwnerScans",
                       stats_.cleanOwnerScans - clean_before)
                .field("owneeChecks", stats_.owneeChecksLastGc)
                .endObject();
            tr->complete("ownership_scan", "gc", t0, nowNanos(), 0,
                         a.str());
        }
    }

    // Phase 2: root scan and full trace. Parallel marking never
    // runs with path recording (collect() downgrades instead).
    {
        uint64_t t0 = (tr || costActive_) ? nowNanos() : 0;
        uint64_t steals_before = stats_.markSteals;
        bool parallel = false;
        markCost_ = AssertCostTallies{};
        // cost_ arms the sequential checks' CostScopes for exactly
        // this span; parallel workers tally into their own copies
        // and merge into markCost_ after the join.
        if (costActive_)
            cost_ = &markCost_;
        {
            ScopedTimer t(stats_.tracePhase);
            if constexpr (!kPath) {
                if (config_.markThreads > 1) {
                    parallel = true;
                    parallelMarkPhase<kInfra>();
                } else {
                    rootScanPhase<kInfra, kPath>();
                }
            } else {
                rootScanPhase<kInfra, kPath>();
            }
        }
        cost_ = nullptr;
        uint64_t t1 = (tr || costActive_) ? nowNanos() : 0;
        if (costActive_) {
            markCost_.setOtherFromSpan(t1 - t0);
            telemetry_->assertCost().addMark(markCost_);
        }
        if (tr) {
            JsonWriter a;
            a.beginObject()
                .field("marked", markedThisGc_)
                .field("parallel", parallel)
                .field("workers",
                       uint64_t{parallel ? config_.markThreads : 1})
                .field("steals", stats_.markSteals - steals_before);
            if (costActive_)
                a.key("assertCost").valueRaw(markCost_.toJson());
            a.endObject();
            tr->complete("mark", "gc", t0, t1, 0, a.str());
        }
    }

    // Weak-reference processing: clear weak edges whose referents
    // were not marked, before the sweep recycles them.
    if (hasWeak_) {
        for (Object *weak : weakRefs_) {
            Object *target = weak->ref(0);
            if (target && !target->marked())
                weak->setRef(0, nullptr);
        }
        weakRefs_.clear();
    }

    // Finalization: revive unreachable finalizable objects and queue
    // their finalizers for the runtime to run after this collection.
    resurrectFinalizables<kInfra, kPath>();

    // Phase 3: end-of-trace assertion work.
    if (kInfra) {
        uint64_t t0 = (tr || costActive_) ? nowNanos() : 0;
        uint64_t violations_so_far =
            engine_.stats().violationsReported - violations_before;
        AssertCostTallies finish_cost;
        {
            ScopedTimer t(stats_.finishPhase);
            engine_.onTraceDone(costActive_ ? &finish_cost : nullptr);
        }
        uint64_t t1 = (tr || costActive_) ? nowNanos() : 0;
        if (costActive_) {
            finish_cost.setOtherFromSpan(t1 - t0);
            telemetry_->assertCost().addFinish(finish_cost);
        }
        if (tr) {
            JsonWriter a;
            a.beginObject()
                .field("violations",
                       engine_.stats().violationsReported -
                           violations_before - violations_so_far);
            if (costActive_)
                a.key("assertCost").valueRaw(finish_cost.toJson());
            a.endObject();
            tr->complete("finish", "gc", t0, t1, 0, a.str());
        }
    }

    // Phase 4: sweep.
    CollectionResult result;
    {
        uint64_t t0 = tr ? nowNanos() : 0;
        std::vector<SweepWorkerSpan> worker_spans;
        ScopedTimer t(stats_.sweepPhase);
        SweepOptions sweep_options;
        sweep_options.threads = config_.sweepThreads;
        sweep_options.lazy = config_.lazySweep;
        if (tr)
            sweep_options.workerSpans = &worker_spans;
        if (kInfra || !freeHooks_.empty() || backgraph_ != nullptr) {
            result.sweep = heap_.sweep(
                [this](Object *obj) {
                    if (kInfra)
                        engine_.onObjectFreed(obj);
                    if (backgraph_)
                        backgraph_->noteFreed(obj);
                    for (const auto &hook : freeHooks_)
                        hook(obj);
                },
                sweep_options);
        } else {
            // No observer: hand the heap an empty callback so
            // parallel workers sweep their shards outright instead
            // of buffering dead sets for replay.
            result.sweep = heap_.sweep(nullptr, sweep_options);
        }
        if (sweep_options.threads > 1)
            ++stats_.parallelSweepPhases;
        if (sweep_options.lazy)
            ++stats_.lazySweepGcs;
        if (tr) {
            for (size_t w = 0; w < worker_spans.size(); ++w) {
                const SweepWorkerSpan &span = worker_spans[w];
                if (span.endNanos == 0)
                    continue;
                JsonWriter a;
                a.beginObject()
                    .field("blocks", span.blocks)
                    .field("objects", span.objects)
                    .endObject();
                tr->complete("sweep_worker", "gc.worker",
                             span.beginNanos, span.endNanos,
                             static_cast<uint32_t>(w + 1), a.str());
            }
            JsonWriter a;
            a.beginObject()
                .field("freedObjects", result.sweep.freedObjects)
                .field("freedBytes", result.sweep.freedBytes)
                .field("liveObjects", result.sweep.liveObjects)
                .field("liveBytes", result.sweep.liveBytes)
                .field("threads", uint64_t{sweep_options.threads})
                .field("lazy", sweep_options.lazy)
                .endObject();
            tr->complete("sweep", "gc", t0, nowNanos(), 0, a.str());
        }
    }

    // Incremental mode: the deferred instance/volume verdict, now
    // that the sweep's free hooks have settled the region tallies
    // (post-sweep live set == marked set, so the totals equal what
    // the mark loop would have counted). Before the per-GC violation
    // accounting below, so result.violations includes these reports
    // exactly like the non-incremental finish phase would have.
    if (kInfra && incremental_ != nullptr) {
        uint64_t t0 = (tr || costActive_) ? nowNanos() : 0;
        uint64_t hits_before = engine_.stats().cacheHits;
        uint64_t inval_before = engine_.stats().cacheInvalidations;
        AssertCostTallies recheck_cost;
        {
            ScopedTimer t(stats_.finishPhase);
            engine_.onPostSweep(costActive_ ? &recheck_cost : nullptr);
        }
        uint64_t t1 = (tr || costActive_) ? nowNanos() : 0;
        if (costActive_) {
            recheck_cost.setOtherFromSpan(t1 - t0);
            telemetry_->assertCost().addFinish(recheck_cost);
        }
        if (tr) {
            JsonWriter a;
            a.beginObject()
                .field("cacheHits",
                       engine_.stats().cacheHits - hits_before)
                .field("cacheInvalidations",
                       engine_.stats().cacheInvalidations -
                           inval_before);
            if (costActive_)
                a.key("assertCost").valueRaw(recheck_cost.toJson());
            a.endObject();
            tr->complete("incremental_recheck", "gc", t0, t1, 0,
                         a.str());
        }
    }

    result.marked = markedThisGc_;
    result.violations =
        engine_.stats().violationsReported - violations_before;

    stats_.objectsMarked += markedThisGc_;
    stats_.objectsSwept += result.sweep.freedObjects;
    stats_.bytesSwept += result.sweep.freedBytes;
    stats_.lastLiveObjects = result.sweep.liveObjects;
    stats_.lastLiveBytes = result.sweep.liveBytes;
    stats_.violations += result.violations;
    stats_.maxWorklistDepth =
        std::max<uint64_t>(stats_.maxWorklistDepth, worklist_.highWater());

    // Census first (the whole-pause span advertises whether one was
    // taken), then the enclosing full-GC span.
    bool census_taken = censusActive_;
    finishCensus(stats_.collections);
    uint64_t gc_end = (tr || telemetry_) ? nowNanos() : 0;
    if (tr) {
        JsonWriter a;
        a.beginObject()
            .field("gc", stats_.collections)
            .field("marked", result.marked)
            .field("freedObjects", result.sweep.freedObjects)
            .field("violations", result.violations)
            .field("census", census_taken)
            .endObject();
        tr->complete("full_gc", "gc", gc_begin, gc_end, 0, a.str());
    }
    traceActive_ = false;
    costActive_ = false;
    // Backgraph leak-trend sample: after the result (and every per-GC
    // violation count) has settled, so its context-only LeakGrowth
    // reports can never leak into assertion verdicts — the same
    // placement contract as the SLO check below.
    if (backgraph_) {
        uint64_t t0 = tr ? nowNanos() : 0;
        Backgraph::SampleStats sample =
            backgraph_->onFullGcDone(stats_.collections);
        if (tr) {
            JsonWriter a;
            a.beginObject()
                .field("nodes", sample.nodes)
                .field("sites", sample.sites)
                .field("growthReports", sample.growthReports)
                .field("findLeakReports", sample.findLeakReports)
                .endObject();
            tr->complete("backgraph_sample", "gc", t0, nowNanos(), 0,
                         a.str());
        }
    }
    // SLO check dead last: the result (and every per-GC violation
    // count) is settled, so an over-budget report is pure context
    // and can never leak into assertion verdicts.
    if (telemetry_)
        notePause(false, gc_end - gc_begin);
    // Live-endpoint publish: after the pause accounting, so the
    // snapshot's gc.pause.* gauges include this very collection.
    // Reads only; verdicts and GC state are already settled.
    publishTelemetry();
    return result;
}

void
Collector::publishTelemetry()
{
    if (!telemetry_)
        return;
    if (backgraph_) {
        std::vector<SitePathRecord> records;
        for (auto &[site, why] : backgraph_->namedSiteReports()) {
            SitePathRecord record;
            record.site = site;
            record.gcNumber = stats_.collections;
            record.known = why.known;
            record.rootReached = why.rootReached;
            record.saturated = why.saturated;
            record.path.reserve(why.path.size());
            for (const PathEntry &hop : why.path)
                record.path.push_back(hop.typeName);
            records.push_back(std::move(record));
        }
        telemetry_->publishSitePaths(std::move(records));
    }
    telemetry_->publishSnapshot(stats_.collections);
}

void
Collector::notePause(bool minor, uint64_t pauseNanos)
{
    PauseSloTracker &slo = telemetry_->pauseSlo();
    bool over = minor ? slo.recordMinor(pauseNanos)
                      : slo.recordFull(pauseNanos);
    if (!over)
        return;
    Violation v;
    v.kind = AssertionKind::PauseSlo;
    v.gcNumber = stats_.collections;
    v.message = format(
        "%s pause of %llu us exceeded the %llu us SLO budget.",
        minor ? "minor-GC" : "full-GC",
        static_cast<unsigned long long>(pauseNanos / 1000),
        static_cast<unsigned long long>(slo.budgetNanos() / 1000));
    // Through the regular funnel so the violation gains provenance
    // and reaches observers/reaction hooks like any other.
    engine_.report(std::move(v));
}

template <bool kInfra>
void
Collector::markObject(Object *obj)
{
    obj->setFlag(kMarkBit);
    ++markedThisGc_;
    if (kInfra) {
        // The per-object RVMClass inspection of section 2.4.1: check
        // whether the object's type is instance-tracked. The flag is
        // a dense byte array so the untracked common case stays
        // cheap in the trace loop. Attribution times only the
        // tracked-type tally; the flag test itself is baseline visit
        // cost and lands in the Other bucket.
        // With the incremental cache attached the tallies are
        // alloc/free-maintained per region instead, and the deferred
        // post-sweep merge supplies the totals — this is where the
        // cached mode's mark-phase saving comes from.
        TypeId type = obj->typeId();
        if (types_.trackedFlags()[type] && incremental_ == nullptr) {
            CostScope cost(cost_, AssertCostKind::Instances);
            types_.bumpInstanceCount(type, obj->sizeBytes());
        }
    }
    // Census piggybacks on the mark win exactly as instance tracking
    // does — zero extra traversal, just a tally per newly-live object.
    if (censusActive_) [[unlikely]] {
        TypeId type = obj->typeId();
        ++censusCounts_[type];
        censusBytes_[type] += obj->sizeBytes();
    }
}

template <bool kPath>
void
Collector::reportPathViolation(AssertionKind kind, Object *obj,
                               const std::string &message)
{
    Violation v;
    v.kind = kind;
    v.offendingType = engine_.typeNameOf(obj);
    v.gcNumber = stats_.collections;
    v.message = message;
    v.offendingAddress = obj;
    if (kPath) {
        std::vector<const Object *> path = paths_.buildPath(worklist_, obj);
        // Phase-1 scans attribute the path to the owner or ownee
        // being scanned; the label is built lazily, only here, so
        // the scan itself stays allocation-free.
        if (inOwnershipScan_) {
            v.rootName = std::string(scanKind_) + " " +
                engine_.typeNameOf(scanAnchor_) + " (ownership scan)";
        } else {
            v.rootName = paths_.originOf(path.front());
        }
        v.path.reserve(path.size());
        for (const Object *hop : path)
            v.path.push_back(PathEntry{engine_.typeNameOf(hop), hop});
    }
    engine_.report(std::move(v));
}

template <bool kPath>
bool
Collector::deadCheck(Object **slot, Object *obj)
{
    if (!obj->testFlag(kDeadBit))
        return false;

    // The early-out above keeps the common no-dead-bit path free of
    // the timing scope; only actual check work is attributed.
    CostScope cost(cost_, AssertCostKind::Dead);
    AssertionKind kind = AssertionKind::Dead;
    std::string what = "an object that was asserted dead is reachable.";
    if (obj->testFlag(kOrphanBit)) {
        kind = AssertionKind::OwnedBy;
        cost.reclassify(AssertCostKind::OwnedBy);
        what = "an ownee outlived its owner (the owner was reclaimed in "
               "an earlier collection) and is still reachable.";
    } else if (obj->testFlag(kRegionBit)) {
        kind = AssertionKind::AllDead;
        cost.reclassify(AssertCostKind::AllDead);
        const std::string *label = engine_.regionLabelOf(obj);
        what = label
            ? format("an object allocated in assert-alldead region "
                     "'%s' is reachable.", label->c_str())
            : "an object allocated in an assert-alldead region is "
              "reachable.";
    }
    bool force = engine_.reactions().forKind(kind) == Reaction::ForceTrue;

    if (!engine_.alreadyReported(obj)) {
        if (force)
            what += " Forcing reclamation by nulling the reference.";
        reportPathViolation<kPath>(kind, obj, what);
        if (!engine_.options().stickyDeadAssertions && !force) {
            obj->clearFlag(kDeadBit);
            obj->clearFlag(kRegionBit);
            obj->clearFlag(kOrphanBit);
        }
    }

    if (force) {
        // ForceTrue: sever this incoming reference and never mark the
        // object, so the sweep reclaims it in this very collection.
        *slot = nullptr;
        return true;
    }
    return false;
}

template <bool kPath>
void
Collector::unsharedCheck(Object *obj)
{
    if (!obj->testFlag(kUnsharedBit))
        return;
    CostScope cost(cost_, AssertCostKind::Unshared);
    if (!engine_.alreadyReported(obj)) {
        reportPathViolation<kPath>(
            AssertionKind::Unshared, obj,
            "an object that was asserted unshared has more than one "
            "incoming reference (second path shown).");
    }
}

template <bool kPath>
void
Collector::owneeCheckPhase2(Object *obj)
{
    if (!obj->testFlag(kOwneeBit))
        return;
    CostScope cost(cost_, AssertCostKind::OwnedBy);
    ++stats_.owneeChecks;
    ++stats_.owneeChecksLastGc;
    if (!obj->testFlag(kOwnedBit) && !engine_.alreadyReported(obj)) {
        Object *owner = engine_.ownership().ownerOf(obj);
        std::string owner_name =
            owner ? engine_.typeNameOf(owner) : std::string("<unknown>");
        reportPathViolation<kPath>(
            AssertionKind::OwnedBy, obj,
            format("an object asserted to be owned by a %s is reachable "
                   "without passing through its owner.",
                   owner_name.c_str()));
    }
}

template <bool kInfra, bool kPath>
void
Collector::p2Visit(Object **slot, Object *obj)
{
    // One header-word load covers every piggybacked check: the
    // assertion bits share the flag word the mark test reads anyway,
    // which is what makes the checks nearly free (paper section 2).
    uint32_t flags = obj->rawFlags();
    if (kInfra && (flags & (kOwneeBit | kDeadBit)) != 0) [[unlikely]] {
        if (flags & kOwneeBit)
            owneeCheckPhase2<kPath>(obj);
        if ((flags & kDeadBit) && deadCheck<kPath>(slot, obj))
            return;
    }
    if (flags & kMarkBit) {
        if (kInfra && (flags & kUnsharedBit) != 0) [[unlikely]]
            unsharedCheck<kPath>(obj);
        return;
    }
    markObject<kInfra>(obj);
    worklist_.push(obj);
}

template <bool kInfra, bool kPath>
void
Collector::p2Drain()
{
    while (!worklist_.empty()) {
        uintptr_t word = worklist_.pop();
        if (Worklist::isTagged(word))
            continue;
        Object *obj = Worklist::objectOf(word);
        if (kPath)
            worklist_.pushTagged(obj);
        uint32_t n = obj->numRefs();
        Object **slots = n ? obj->refSlotAddr(0) : nullptr;
        uint32_t first = 0;
        if (hasWeak_ && types_.weakFlags()[obj->typeId()]) [[unlikely]] {
            // Slot 0 of a weak type is not traced through; remember
            // the weak object so the edge can be cleared if its
            // referent dies.
            weakRefs_.push_back(obj);
            first = 1;
        }
        for (uint32_t i = first; i < n; ++i) {
            Object *child = slots[i];
            if (child)
                p2Visit<kInfra, kPath>(&slots[i], child);
        }
    }
}

template <bool kInfra, bool kPath>
void
Collector::rootScanPhase()
{
    roots_.forEach([this](RootNode &node) {
        Object *obj = node.get();
        if (!obj)
            return;
        if (kPath)
            paths_.noteOrigin(obj, node.name());
        p2Visit<kInfra, kPath>(node.slotAddr(), obj);
        // Drain eagerly per root so path attribution stays exact:
        // every tagged chain descends from the root just scanned.
        p2Drain<kInfra, kPath>();
    });
    // Thread-local roots: objects pinned by the TLAB fast path until
    // their owning mutator publishes or drops them. The world is
    // stopped, so the rosters are stable for the whole phase.
    mutators_.forEach([this](MutatorContext &mutator) {
        for (Object *&slot : mutator.localRoots()) {
            Object *obj = slot;
            if (!obj)
                continue;
            if (kPath)
                paths_.noteOrigin(obj, mutator.name() + " (local)");
            p2Visit<kInfra, kPath>(&slot, obj);
            p2Drain<kInfra, kPath>();
        }
    });
}

template <bool kPath>
void
Collector::ownershipPhase()
{
    // {ownee, owner} pairs whose subtrees are scanned after *all*
    // owner regions (truncation queue of section 2.5.2). Completing
    // every owner-region scan first makes ownedness independent of
    // owner registration order.
    std::vector<std::pair<Object *, Object *>> queue;

    inOwnershipScan_ = true;
    auto scan_owner = [&](Object *owner) {
        scanKind_ = "owner";
        scanAnchor_ = owner;
        currentOwnerTag_ = engine_.ownership().ownerTagOf(owner);
        // The owner itself is deliberately not marked: its own
        // liveness is decided by the root scan.
        ownerScan<kPath>(owner, owner, queue, false);
    };
    // Owners are scanned in registration order, dirty or not. Scan
    // order is OBSERVABLE here: a region scan truncates at objects an
    // earlier scan already marked, so which scan first encounters an
    // overlapped ownee — and therefore which misuse/ownedby verdict
    // fires — depends on it. The barrier-fed dirty bits only classify
    // each scan (dirty owners are the re-checks most likely to yield
    // a changed verdict; the stats expose how many each pause ran),
    // keeping generational runs verdict-identical by construction.
    engine_.ownership().forEachOwner(
        [&](Object *owner, const std::vector<Object *> &) {
            if (owner->testFlag(kWriteDirtyBit))
                ++stats_.dirtyOwnerScans;
            else
                ++stats_.cleanOwnerScans;
            scan_owner(owner);
        });

    // Scan the subtrees under queued ownees; the queue may grow as
    // nested ownees are found. Objects reached here are live, but
    // reaching an ownee here does NOT confer ownedness: ownedness
    // means "reachable through the owner's own structure", which
    // was fully computed above. This is what detects the paper's
    // JBB leak, where a removed Order is reachable only through
    // another Order's Customer (section 3.2.1).
    for (size_t i = 0; i < queue.size(); ++i) {
        auto [ownee, owner] = queue[i];
        scanKind_ = "ownee";
        scanAnchor_ = ownee;
        ownerScan<kPath>(ownee, owner, queue, true);
    }
    inOwnershipScan_ = false;
}

template <bool kPath>
void
Collector::ownerScan(Object *from, Object *owner,
                     std::vector<std::pair<Object *, Object *>> &queue,
                     bool from_queue)
{
    uint32_t n = from->numRefs();
    Object **slots = n ? from->refSlotAddr(0) : nullptr;
    uint32_t first = 0;
    if (hasWeak_ && types_.weakFlags()[from->typeId()]) [[unlikely]] {
        weakRefs_.push_back(from);
        first = 1;
    }
    for (uint32_t i = first; i < n; ++i) {
        Object *child = slots[i];
        if (child)
            p1Visit<kPath>(&slots[i], child, owner, queue, from_queue);
    }
    while (!worklist_.empty()) {
        uintptr_t word = worklist_.pop();
        if (Worklist::isTagged(word))
            continue;
        Object *obj = Worklist::objectOf(word);
        if (kPath)
            worklist_.pushTagged(obj);
        uint32_t m = obj->numRefs();
        Object **child_slots = m ? obj->refSlotAddr(0) : nullptr;
        uint32_t begin = 0;
        if (hasWeak_ && types_.weakFlags()[obj->typeId()]) [[unlikely]] {
            weakRefs_.push_back(obj);
            begin = 1;
        }
        for (uint32_t i = begin; i < m; ++i) {
            Object *child = child_slots[i];
            if (child)
                p1Visit<kPath>(&child_slots[i], child, owner, queue,
                               from_queue);
        }
    }
}

template <bool kPath>
void
Collector::p1Visit(Object **slot, Object *obj, Object *owner,
                   std::vector<std::pair<Object *, Object *>> &queue,
                   bool from_queue)
{
    // Lifetime checks apply to every encounter, including objects
    // about to be handled by the ownee/owner truncation below.
    if (deadCheck<kPath>(slot, obj))
        return;

    // Ownee: truncate the scan and queue its subtree for later.
    if (obj->testFlag(kOwneeBit)) {
        ++stats_.owneeChecks;
        ++stats_.owneeChecksLastGc;
        bool was_marked = obj->marked();
        if (!from_queue && obj->ownerTag() == currentOwnerTag_) {
            // Reached through its owner's own structure: owned.
            obj->setFlag(kOwnedBit);
            if (!was_marked) {
                markObject<true>(obj);
                queue.emplace_back(obj, owner);
            }
            return;
        }
        if (from_queue) {
            // Reached inside an ownee subtree. An ownee that was not
            // already owned by a direct owner scan is reachable only
            // *around* its owner's structure: violation.
            if (!obj->testFlag(kOwnedBit) &&
                !engine_.alreadyReported(obj)) {
                Object *actual = engine_.ownership().ownerOf(obj);
                reportPathViolation<kPath>(
                    AssertionKind::OwnedBy, obj,
                    format("an object asserted to be owned by a %s is "
                           "reachable without passing through its "
                           "owner.",
                           (actual ? engine_.typeNameOf(actual)
                                   : std::string("<unknown>")).c_str()));
            }
        } else {
            // Direct owner-region scan reached an ownee of a
            // *different* owner: the owner regions overlap, which
            // assert-ownedby requires to be disjoint (improper use,
            // section 2.5.2).
            if (!engine_.alreadyReported(obj)) {
                Object *actual = engine_.ownership().ownerOf(obj);
                reportPathViolation<kPath>(
                    AssertionKind::OwnershipMisuse, obj,
                    format("improper use of assert-ownedby: an ownee of "
                           "a %s was reached while scanning from a %s "
                           "(owner regions must be disjoint).",
                           (actual ? engine_.typeNameOf(actual)
                                   : std::string("<unknown>")).c_str(),
                           engine_.typeNameOf(owner).c_str()));
            }
        }
        if (!was_marked) {
            markObject<true>(obj);
            Object *actual = engine_.ownership().ownerOf(obj);
            queue.emplace_back(obj, actual ? actual : owner);
        }
        return;
    }

    // Another owner: mark it (conservatively keeping it live this
    // cycle) and stop — it is scanned independently.
    if (obj->testFlag(kOwnerBit)) {
        if (!obj->marked())
            markObject<true>(obj);
        return;
    }

    if (obj->marked()) {
        unsharedCheck<kPath>(obj);
        return;
    }

    markObject<true>(obj);
    worklist_.push(obj);
}

// ---------------------------------------------------------------------
// Parallel mark phase (markThreads > 1, path recording off)
// ---------------------------------------------------------------------

/**
 * Private state of one marker thread. Everything a worker touches
 * while tracing is either immutable for the phase (type flags, the
 * ownership table, reaction policy), per-object-exclusive (reference
 * slots: the CAS mark guarantees exactly one worker scans each
 * object), accessed atomically (the object flag word, the
 * termination counter), or lives here and is merged after the join.
 */
struct Collector::MarkWorker {
    MarkDeque deque;
    /** Objects this worker won the mark race for. */
    uint64_t marked = 0;
    /** Ownee-membership checks performed. */
    uint64_t owneeChecks = 0;
    /** Successful steals from peers. */
    uint64_t steals = 0;
    /** Violations to merge-report after the join. */
    std::vector<PendingViolation> pending;
    /** Marked weak-reference objects (merged into weakRefs_). */
    std::vector<Object *> weakRefs;
    /** Dense per-type tallies, indexed by TypeId (kInfra only). */
    std::vector<uint64_t> instanceCounts;
    std::vector<uint64_t> instanceBytes;
    /** Per-type census tallies (armed only when a census is active). */
    std::vector<uint64_t> censusCounts;
    std::vector<uint64_t> censusBytes;
    /** Per-kind check-time tallies (armed when costActive_); merged
     *  into markCost_ after the join like everything above. */
    AssertCostTallies cost;
    /** Wall-clock span of this worker's run (tracing only). */
    uint64_t beginNs = 0;
    uint64_t endNs = 0;
};

template <bool kInfra>
void
Collector::parallelMarkPhase()
{
    const size_t worker_count = config_.markThreads;

    // Snapshot the root slots; workers take interleaved slices.
    // Mutator local-root rosters count as roots too (see
    // rootScanPhase).
    std::vector<Object **> root_slots;
    roots_.forEach([&](RootNode &node) {
        if (node.get())
            root_slots.push_back(node.slotAddr());
    });
    mutators_.forEach([&](MutatorContext &mutator) {
        for (Object *&slot : mutator.localRoots())
            if (slot)
                root_slots.push_back(&slot);
    });

    std::vector<MarkWorker> workers(worker_count);
    if (kInfra) {
        for (MarkWorker &w : workers) {
            w.instanceCounts.assign(types_.size(), 0);
            w.instanceBytes.assign(types_.size(), 0);
        }
    }
    if (censusActive_) {
        for (MarkWorker &w : workers) {
            w.censusCounts.assign(types_.size(), 0);
            w.censusBytes.assign(types_.size(), 0);
        }
    }

    // One virtual token per worker: pendingWork_ cannot reach zero
    // until every worker has pushed its whole root slice, so nobody
    // mistakes a not-yet-seeded trace for a finished one.
    pendingWork_.store(static_cast<int64_t>(worker_count),
                       std::memory_order_relaxed);

    std::vector<std::thread> threads;
    threads.reserve(worker_count - 1);
    for (size_t i = 1; i < worker_count; ++i)
        threads.emplace_back([this, &workers, &root_slots, i] {
            parWorkerRun<kInfra>(workers, i, root_slots);
        });
    parWorkerRun<kInfra>(workers, 0, root_slots);
    for (std::thread &t : threads)
        t.join();

    // Merge, single-threaded again: counters, weak refs, per-type
    // tallies, and the deferred violation reports.
    std::vector<PendingViolation> pending;
    for (MarkWorker &w : workers) {
        markedThisGc_ += w.marked;
        stats_.owneeChecks += w.owneeChecks;
        stats_.owneeChecksLastGc += w.owneeChecks;
        stats_.markSteals += w.steals;
        stats_.maxWorklistDepth = std::max<uint64_t>(
            stats_.maxWorklistDepth, w.deque.highWater());
        weakRefs_.insert(weakRefs_.end(), w.weakRefs.begin(),
                         w.weakRefs.end());
        for (PendingViolation &pv : w.pending)
            pending.push_back(std::move(pv));
        if (costActive_)
            markCost_.merge(w.cost);
        if (censusActive_) {
            for (size_t t = 0; t < w.censusCounts.size(); ++t) {
                censusCounts_[t] += w.censusCounts[t];
                censusBytes_[t] += w.censusBytes[t];
            }
        }
    }
    if (traceActive_) {
        TraceRecorder *tr = telemetry_->recorder();
        for (size_t i = 0; i < workers.size(); ++i) {
            const MarkWorker &w = workers[i];
            if (w.endNs == 0)
                continue;
            JsonWriter a;
            a.beginObject()
                .field("marked", w.marked)
                .field("steals", w.steals)
                .endObject();
            tr->complete("mark_worker", "gc.worker", w.beginNs, w.endNs,
                         static_cast<uint32_t>(i + 1), a.str());
        }
    }
    if (kInfra) {
        if (incremental_ == nullptr) {
            for (TypeId id : types_.trackedTypes()) {
                for (MarkWorker &w : workers) {
                    if (w.instanceCounts[id] != 0 ||
                        w.instanceBytes[id] != 0)
                        types_.bumpInstanceCountBy(
                            id, w.instanceCounts[id],
                            w.instanceBytes[id]);
                }
            }
        }
        engine_.reportPending(std::move(pending));
    }
    ++stats_.parallelMarkPhases;
}

template <bool kInfra>
void
Collector::parWorkerRun(std::vector<MarkWorker> &workers, size_t index,
                        const std::vector<Object **> &root_slots)
{
    MarkWorker &w = workers[index];
    const size_t worker_count = workers.size();
    if (traceActive_)
        w.beginNs = nowNanos();

    for (size_t i = index; i < root_slots.size(); i += worker_count) {
        Object **slot = root_slots[i];
        if (Object *obj = *slot)
            parVisit<kInfra>(slot, obj, w);
    }
    // Root slice fully pushed: release this worker's seed token.
    pendingWork_.fetch_sub(1, std::memory_order_seq_cst);

    Object *obj = nullptr;
    while (true) {
        if (w.deque.pop(obj)) {
            parScan<kInfra>(obj, w);
            pendingWork_.fetch_sub(1, std::memory_order_seq_cst);
            continue;
        }
        bool stole = false;
        for (size_t attempt = 1; attempt < worker_count; ++attempt) {
            size_t victim = (index + attempt) % worker_count;
            if (workers[victim].deque.steal(obj)) {
                stole = true;
                ++w.steals;
                break;
            }
        }
        if (stole) {
            parScan<kInfra>(obj, w);
            pendingWork_.fetch_sub(1, std::memory_order_seq_cst);
            continue;
        }
        // Nothing local, nothing stealable: the trace is over when
        // no marked-but-unscanned objects remain anywhere.
        if (pendingWork_.load(std::memory_order_seq_cst) == 0)
            break;
        std::this_thread::yield();
    }
    if (traceActive_)
        w.endNs = nowNanos();
}

template <bool kInfra>
void
Collector::parScan(Object *obj, MarkWorker &w)
{
    uint32_t n = obj->numRefs();
    Object **slots = n ? obj->refSlotAddr(0) : nullptr;
    uint32_t first = 0;
    if (hasWeak_ && types_.weakFlags()[obj->typeId()]) [[unlikely]] {
        w.weakRefs.push_back(obj);
        first = 1;
    }
    for (uint32_t i = first; i < n; ++i) {
        Object *child = slots[i];
        if (child)
            parVisit<kInfra>(&slots[i], child, w);
    }
}

template <bool kInfra>
void
Collector::parVisit(Object **slot, Object *obj, MarkWorker &w)
{
    // Same one-flag-word economy as p2Visit, with an atomic load:
    // marker threads mutate the word concurrently via CAS.
    uint32_t flags = obj->rawFlagsAtomic();
    if (kInfra && (flags & (kOwneeBit | kDeadBit)) != 0) [[unlikely]] {
        if (flags & kOwneeBit)
            parOwneeCheck(obj, flags, w);
        if ((flags & kDeadBit) && parDeadCheck(slot, obj, flags, w))
            return;
    }
    if (obj->tryMark()) {
        ++w.marked;
        if (kInfra) {
            // Incremental mode keeps the tallies per region instead;
            // see the sequential markObject for the rationale.
            TypeId type = obj->typeId();
            if (types_.trackedFlags()[type] && incremental_ == nullptr) {
                CostScope cost(costActive_ ? &w.cost : nullptr,
                               AssertCostKind::Instances);
                ++w.instanceCounts[type];
                w.instanceBytes[type] += obj->sizeBytes();
            }
        }
        if (censusActive_) [[unlikely]] {
            TypeId type = obj->typeId();
            ++w.censusCounts[type];
            w.censusBytes[type] += obj->sizeBytes();
        }
        pendingWork_.fetch_add(1, std::memory_order_seq_cst);
        w.deque.push(obj);
    } else if (kInfra && (flags & kUnsharedBit) != 0) [[unlikely]] {
        // The loser of the mark race is by definition a second
        // incoming reference — the condition assert-unshared
        // detects. Racing workers may both record it; the merge
        // dedups to the single report the sequential trace emits.
        CostScope cost(costActive_ ? &w.cost : nullptr,
                       AssertCostKind::Unshared);
        w.pending.push_back(
            {AssertionKind::Unshared, obj,
             "an object that was asserted unshared has more than one "
             "incoming reference (second path shown)."});
    }
}

void
Collector::parOwneeCheck(Object *obj, uint32_t flags, MarkWorker &w)
{
    CostScope cost(costActive_ ? &w.cost : nullptr,
                   AssertCostKind::OwnedBy);
    ++w.owneeChecks;
    // kOwnedBit was settled by the (sequential) ownership phase and
    // is read-only during phase 2.
    if ((flags & kOwnedBit) == 0) {
        Object *owner = engine_.ownership().ownerOf(obj);
        std::string owner_name =
            owner ? engine_.typeNameOf(owner) : std::string("<unknown>");
        w.pending.push_back(
            {AssertionKind::OwnedBy, obj,
             format("an object asserted to be owned by a %s is reachable "
                    "without passing through its owner.",
                    owner_name.c_str())});
    }
}

bool
Collector::parDeadCheck(Object **slot, Object *obj, uint32_t flags,
                        MarkWorker &w)
{
    CostScope cost(costActive_ ? &w.cost : nullptr,
                   AssertCostKind::Dead);
    AssertionKind kind = AssertionKind::Dead;
    std::string what = "an object that was asserted dead is reachable.";
    if (flags & kOrphanBit) {
        kind = AssertionKind::OwnedBy;
        cost.reclassify(AssertCostKind::OwnedBy);
        what = "an ownee outlived its owner (the owner was reclaimed in "
               "an earlier collection) and is still reachable.";
    } else if (flags & kRegionBit) {
        kind = AssertionKind::AllDead;
        cost.reclassify(AssertCostKind::AllDead);
        // Read-only during the trace: labels are written only under
        // the runtime's exclusive lock, never while markers run.
        const std::string *label = engine_.regionLabelOf(obj);
        what = label
            ? format("an object allocated in assert-alldead region "
                     "'%s' is reachable.", label->c_str())
            : "an object allocated in an assert-alldead region is "
              "reachable.";
    }
    bool force = engine_.reactions().forKind(kind) == Reaction::ForceTrue;
    if (force)
        what += " Forcing reclamation by nulling the reference.";
    w.pending.push_back({kind, obj, std::move(what)});
    if (!engine_.options().stickyDeadAssertions && !force)
        obj->clearFlagsAtomic(kDeadBit | kRegionBit | kOrphanBit);

    if (force) {
        // The slot belongs to the object this worker is scanning
        // (or to one of its root-slice RootNodes), so the write is
        // data-race-free; every incoming edge gets severed by
        // whichever worker traverses it, as in the sequential trace.
        *slot = nullptr;
        return true;
    }
    return false;
}

// Explicit instantiations for the three configurations collect()
// dispatches to.
template CollectionResult Collector::collectImpl<true, true>();
template CollectionResult Collector::collectImpl<true, false>();
template CollectionResult Collector::collectImpl<false, false>();

} // namespace gcassert
