/**
 * @file
 * The remembered set for generational collection.
 *
 * Records every mature object that holds at least one reference into
 * the nursery, plus the 512-byte cards spanning each recorded
 * source's reference-slot array. The write barrier filters on header
 * bits (nursery target, mature unremembered source) before calling
 * record(), so the set sees one insertion per source object per GC
 * cycle; the card marks ride along for statistics and for the heap
 * verifier's remset-invariant check (a mature->nursery slot whose
 * card is unmarked proves a barrier bypass).
 *
 * The set is source-precise rather than slot-precise: a minor
 * collection rescans every reference slot of each remembered source,
 * trading a little scan work for a single header-bit latch
 * (kRememberedBit) and no per-slot metadata — the sparse-card-table
 * economy of generational collectors, at object granularity.
 */

#ifndef GCASSERT_GC_REMSET_H
#define GCASSERT_GC_REMSET_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/** Card granularity: 512-byte spans, the classic card-table size. */
constexpr uintptr_t kCardShift = 9;
constexpr uintptr_t kCardBytes = uintptr_t{1} << kCardShift;

/**
 * The set of mature objects with recorded nursery references.
 */
class RememberedSet {
  public:
    /**
     * Record @p src as holding a nursery reference through @p slot.
     * Sets kRememberedBit on @p src (the barrier's filter latch) and
     * marks the slot's card. Idempotent per source; thread-safe (the
     * barrier may fire from concurrent mutators).
     *
     * @return true when @p src was newly recorded.
     */
    bool record(Object *src, void *slot);

    /** @return true if @p src is in the set. */
    bool
    contains(const Object *src) const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return members_.count(src) != 0;
    }

    /** @return true if the card containing @p slot is marked. */
    bool
    cardMarkedFor(const void *slot) const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return cards_.count(reinterpret_cast<uintptr_t>(slot) >>
                            kCardShift) != 0;
    }

    /** Recorded source objects. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return sources_.size();
    }

    /** Distinct dirty cards. */
    size_t
    cardCount() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return cards_.size();
    }

    /**
     * Visit every recorded source, in recording order (deterministic
     * for a deterministic mutator). Single-threaded use only (the
     * minor GC runs stopped-world).
     */
    void forEachSource(const std::function<void(Object *)> &visit) const;

    /**
     * Visit every dirty card index (slot address >> kCardShift).
     * Iteration order is a hash-set's — callers must be
     * order-insensitive (the incremental recheck only ORs region
     * dirty bits). Stopped-world use: the collector consumes the
     * stream in its prologue, before clear().
     */
    void
    forEachCard(const std::function<void(uintptr_t)> &visit) const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        for (uintptr_t card : cards_)
            visit(card);
    }

    /**
     * Drop every entry and clear the kRememberedBit latches. Called
     * after each minor collection (the surviving nursery is promoted
     * wholesale, so no mature->nursery edge can remain) and in the
     * full-GC prologue.
     */
    void clear();

    /** Lifetime counters for GcStats. */
    uint64_t
    totalRecords() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return totalRecords_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<Object *> sources_;
    std::unordered_set<const Object *> members_;
    std::unordered_set<uintptr_t> cards_;
    uint64_t totalRecords_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_GC_REMSET_H
