#include "gc/mutator.h"

namespace gcassert {

MutatorRegistry::MutatorRegistry()
{
    mutators_.push_back(std::make_unique<MutatorContext>("main"));
}

MutatorContext &
MutatorRegistry::create(const std::string &name)
{
    mutators_.push_back(std::make_unique<MutatorContext>(name));
    return *mutators_.back();
}

void
MutatorRegistry::forEach(const std::function<void(MutatorContext &)> &visit)
{
    for (auto &m : mutators_)
        visit(*m);
}

} // namespace gcassert
