#include "gc/mark_deque.h"

namespace gcassert {

namespace {

/** Round @p n up to a power of two (minimum 8). */
int64_t
roundUpPow2(size_t n)
{
    int64_t cap = 8;
    while (cap < static_cast<int64_t>(n))
        cap <<= 1;
    return cap;
}

} // namespace

MarkDeque::MarkDeque(size_t initial_capacity)
    : ring_(new Ring(roundUpPow2(initial_capacity)))
{
}

MarkDeque::~MarkDeque()
{
    delete ring_.load(std::memory_order_relaxed);
}

MarkDeque::Ring *
MarkDeque::grow(Ring *ring, int64_t top, int64_t bottom)
{
    Ring *bigger = new Ring(ring->capacity * 2);
    for (int64_t i = top; i < bottom; ++i)
        bigger->put(i, ring->get(i));
    retired_.emplace_back(ring);
    ring_.store(bigger, std::memory_order_release);
    return bigger;
}

void
MarkDeque::push(Object *obj)
{
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Ring *ring = ring_.load(std::memory_order_relaxed);
    if (b - t > ring->capacity - 1)
        ring = grow(ring, t, b);
    ring->put(b, obj);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    size_t depth = static_cast<size_t>(b + 1 - t);
    if (depth > highWater_)
        highWater_ = depth;
}

bool
MarkDeque::pop(Object *&out)
{
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring *ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
        out = ring->get(b);
        if (t == b) {
            // Last entry: race the thieves for it.
            if (!top_.compare_exchange_strong(t, t + 1,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
                bottom_.store(b + 1, std::memory_order_relaxed);
                return false;
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return true;
    }
    // Already empty; undo the speculative decrement.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
}

bool
MarkDeque::steal(Object *&out)
{
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b)
        return false;
    Ring *ring = ring_.load(std::memory_order_acquire);
    Object *candidate = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
        return false; // lost to the owner or another thief
    out = candidate;
    return true;
}

size_t
MarkDeque::size() const
{
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
}

void
MarkDeque::clear()
{
    retired_.clear();
    int64_t b = bottom_.load(std::memory_order_relaxed);
    top_.store(b, std::memory_order_relaxed);
}

} // namespace gcassert
