#include "gc/remset.h"

namespace gcassert {

bool
RememberedSet::record(Object *src, void *slot)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++totalRecords_;
    if (!members_.insert(src).second)
        return false;
    // Mark every card spanned by the source's reference-slot array,
    // not just the written slot: the kRememberedBit latch keeps later
    // writes from the same source out of the slow path, so per-slot
    // card marks would miss them. Covering the whole array keeps the
    // verifier's invariant simple — any mature->nursery slot of a
    // recorded source has a marked card.
    uint32_t n = src->numRefs();
    if (n > 0) {
        uintptr_t first =
            reinterpret_cast<uintptr_t>(src->refSlotAddr(0)) >> kCardShift;
        uintptr_t last = reinterpret_cast<uintptr_t>(
                             src->refSlotAddr(n - 1)) >> kCardShift;
        for (uintptr_t card = first; card <= last; ++card)
            cards_.insert(card);
    } else {
        cards_.insert(reinterpret_cast<uintptr_t>(slot) >> kCardShift);
    }
    sources_.push_back(src);
    // The latch makes the barrier's inline filter skip this source
    // until the set is cleared.
    src->setFlagsAtomic(kRememberedBit);
    return true;
}

void
RememberedSet::forEachSource(
    const std::function<void(Object *)> &visit) const
{
    for (Object *src : sources_)
        visit(src);
}

void
RememberedSet::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (Object *src : sources_)
        src->clearFlagsAtomic(kRememberedBit);
    sources_.clear();
    members_.clear();
    cards_.clear();
}

} // namespace gcassert
