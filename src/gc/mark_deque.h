/**
 * @file
 * Per-worker mark deque for the parallel trace phase.
 *
 * Split out of Worklist: the sequential collector keeps its tagged
 * LIFO stack (path recording needs the whole stack to spell a
 * root-to-object path, which is inherently single-threaded); the
 * parallel mark phase instead gives each marker thread one of these
 * Chase-Lev work-stealing deques. The owner pushes and pops at the
 * bottom (depth-first, cache-friendly), idle workers steal from the
 * top (oldest entries, which tend to root the largest subtrees).
 *
 * The implementation follows the C11 formulation of Lê, Pop, Cohen
 * and Zappa Nardelli, "Correct and Efficient Work-Stealing for
 * Weakly Ordered Memory Models" (PPoPP 2013) — the same algorithm
 * production parallel markers use. The ring grows on demand; retired
 * rings are kept alive until clear()/destruction because a
 * concurrent thief may still be reading a stale ring pointer.
 */

#ifndef GCASSERT_GC_MARK_DEQUE_H
#define GCASSERT_GC_MARK_DEQUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "heap/object.h"

namespace gcassert {

/**
 * A single-owner, multi-thief work-stealing deque of gray objects.
 *
 * Thread contract: push(), pop(), clear() and highWater() are
 * owner-only; steal() may be called from any thread; empty() and
 * size() are racy estimates usable from any thread.
 */
class MarkDeque {
  public:
    /** @param initial_capacity Ring size; rounded up to a power of 2. */
    explicit MarkDeque(size_t initial_capacity = 256);
    ~MarkDeque();

    MarkDeque(const MarkDeque &) = delete;
    MarkDeque &operator=(const MarkDeque &) = delete;

    /** Owner: push @p obj at the bottom. Grows the ring when full. */
    void push(Object *obj);

    /**
     * Owner: pop the most recently pushed entry.
     * @return false when the deque is empty (or the last entry was
     *         lost to a concurrent thief).
     */
    bool pop(Object *&out);

    /**
     * Thief: take the oldest entry.
     * @return false when the deque is empty or the steal lost a race
     *         (callers treat both as "try elsewhere").
     */
    bool steal(Object *&out);

    /** Racy size estimate (exact when quiescent). */
    size_t size() const;

    /** Racy emptiness estimate (exact when quiescent). */
    bool empty() const { return size() == 0; }

    /** Deepest bottom-top span the owner has observed. */
    size_t highWater() const { return highWater_; }

    /**
     * Owner, quiescent only: drop all entries and release retired
     * rings from past growth.
     */
    void clear();

  private:
    /** Power-of-two ring of object slots. */
    struct Ring {
        explicit Ring(int64_t cap)
            : capacity(cap), mask(cap - 1),
              slots(new std::atomic<Object *>[static_cast<size_t>(cap)])
        {
        }

        Object *
        get(int64_t i) const
        {
            return slots[i & mask].load(std::memory_order_relaxed);
        }

        void
        put(int64_t i, Object *obj)
        {
            slots[i & mask].store(obj, std::memory_order_relaxed);
        }

        const int64_t capacity;
        const int64_t mask;
        std::unique_ptr<std::atomic<Object *>[]> slots;
    };

    /** Owner: replace the ring with one twice the size. */
    Ring *grow(Ring *ring, int64_t top, int64_t bottom);

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Ring *> ring_;
    /**
     * Rings replaced by grow(), kept until clear()/destruction so
     * thieves holding stale ring pointers never read freed memory.
     */
    std::vector<std::unique_ptr<Ring>> retired_;
    size_t highWater_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_GC_MARK_DEQUE_H
