#include "gc/barrier.h"

#include <mutex>
#include <vector>

#include "assertions/engine.h"
#include "detectors/backgraph.h"
#include "gc/remset.h"
#include "heap/heap.h"

namespace gcassert {

namespace {

/** @name Barrier mode mask
 * One bit per slow-path consumer, latched into the context at
 * registration so the slow path makes a single dispatch decision per
 * recorded source instead of re-deriving each consumer's condition.
 * @{ */
/** Record mature->nursery edges in the remembered set. */
constexpr uint32_t kModeRemset = 1u << 0;
/** Record every unlatched non-nursery source (incremental assert). */
constexpr uint32_t kModeAllWrites = 1u << 1;
/** Feed every reference mutation to the why-alive backgraph. */
constexpr uint32_t kModeBackgraph = 1u << 2;
/** @} */

/**
 * One registered barrier-armed runtime. The registry is a flat
 * vector: processes embed a handful of runtimes at most, and the
 * latched consumers reach the slow path at most once per (object,
 * latch bit) per GC cycle, so a linear ownership probe is cheaper
 * than any indexing scheme would be to maintain. (The unlatched
 * backgraph feed pays the probe per mutation — an enabled-only
 * cost.)
 */
struct BarrierContext {
    Heap *heap;
    RememberedSet *remset;
    AssertionEngine *engine;
    /** Telemetry: slow-path entries for this runtime (may be null). */
    std::atomic<uint64_t> *slowHits;
    /** Why-alive backgraph consumer (may be null). */
    Backgraph *backgraph;
    /** Which consumers are armed (kMode*). */
    uint32_t modeMask;
};

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<BarrierContext> &
registry()
{
    static std::vector<BarrierContext> contexts;
    return contexts;
}

/** Find the registered context whose heap owns @p obj, else nullptr. */
BarrierContext *
contextOwning(const Object *obj)
{
    for (BarrierContext &ctx : registry())
        if (ctx.heap->contains(obj))
            return &ctx;
    return nullptr;
}

} // namespace

namespace detail {

std::atomic<uint32_t> g_writeBarriersArmed{0};
std::atomic<uint32_t> g_trackAllWrites{0};
std::atomic<uint32_t> g_trackBackgraph{0};

void
writeBarrierSlow(Object *src, Object **slot, Object *target)
{
    // The inline filter ran against racy flag snapshots; re-evaluate
    // under the registry lock so each latch fires exactly once.
    std::lock_guard<std::mutex> guard(registryMutex());

    // Single dispatch point: one ownership probe resolves the source
    // runtime, whose precomputed mode mask says which consumers run.
    if (BarrierContext *ctx = contextOwning(src)) {
        if (ctx->slowHits)
            ctx->slowHits->fetch_add(1, std::memory_order_relaxed);

        uint32_t mode = ctx->modeMask;
        uint32_t sf = src->rawFlagsAtomic();
        uint32_t tf = target ? target->rawFlagsAtomic() : 0;

        // Remembered-set feed, latched (kRememberedBit): the
        // all-writes mode records the source's cards whatever the
        // target (incremental assertion recheck — safe in
        // generational mode, the minor GC just rescans sources whose
        // trace truncates at the mature boundary); otherwise only a
        // mature->nursery edge is worth remembering. Nursery sources
        // never reach here (inline filter); their regions are
        // churn-dirty from their own allocation.
        if ((sf & (kNurseryBit | kRememberedBit)) == 0 &&
            ((mode & kModeAllWrites) != 0 ||
             ((mode & kModeRemset) != 0 && (tf & kNurseryBit) != 0)))
            ctx->remset->record(src, slot);

        if ((sf & kOwnerBit) != 0 && (sf & kWriteDirtyBit) == 0) {
            // Mutated owner: its owned region may have changed
            // shape, so the next full trace scans it ahead of clean
            // owners.
            src->setFlagsAtomic(kWriteDirtyBit);
            ctx->engine->noteOwnerMutated(src);
        }

        // Backgraph feed, unlatched: *slot still holds the old
        // target (the inline path stores after the slow call), so
        // the old backward edge can be retired exactly.
        if ((mode & kModeBackgraph) != 0 && *slot != target)
            ctx->backgraph->noteWrite(src, *slot, target);
    }

    uint32_t tf = target ? target->rawFlagsAtomic() : 0;
    if (target && (tf & kUnsharedBit) != 0 &&
        (tf & kWriteDirtyBit) == 0) {
        // A new reference now points at an assert-unshared object; the
        // next full trace re-checks it from the dirty set. Separate
        // probe: the target may belong to a different runtime than
        // the source.
        if (BarrierContext *ctx = contextOwning(target)) {
            target->setFlagsAtomic(kWriteDirtyBit);
            ctx->engine->noteUnsharedTargetMutated(target);
        }
    }
}

} // namespace detail

BarrierScope::BarrierScope(Heap &heap, RememberedSet &remset,
                           AssertionEngine &engine,
                           std::atomic<uint64_t> *slow_hits,
                           bool track_all_writes,
                           Backgraph *backgraph)
    : heap_(heap)
{
    uint32_t mode = kModeRemset;
    if (track_all_writes)
        mode |= kModeAllWrites;
    if (backgraph)
        mode |= kModeBackgraph;
    std::lock_guard<std::mutex> guard(registryMutex());
    registry().push_back(BarrierContext{&heap, &remset, &engine,
                                        slow_hits, backgraph, mode});
    detail::g_writeBarriersArmed.fetch_add(1, std::memory_order_relaxed);
    if (track_all_writes)
        detail::g_trackAllWrites.fetch_add(1, std::memory_order_relaxed);
    if (backgraph)
        detail::g_trackBackgraph.fetch_add(1, std::memory_order_relaxed);
}

BarrierScope::~BarrierScope()
{
    uint32_t mode = 0;
    {
        std::lock_guard<std::mutex> guard(registryMutex());
        auto &contexts = registry();
        for (auto it = contexts.begin(); it != contexts.end(); ++it) {
            if (it->heap == &heap_) {
                mode = it->modeMask;
                contexts.erase(it);
                break;
            }
        }
    }
    detail::g_writeBarriersArmed.fetch_sub(1, std::memory_order_relaxed);
    if ((mode & kModeAllWrites) != 0)
        detail::g_trackAllWrites.fetch_sub(1, std::memory_order_relaxed);
    if ((mode & kModeBackgraph) != 0)
        detail::g_trackBackgraph.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace gcassert
