#include "gc/barrier.h"

#include <mutex>
#include <vector>

#include "assertions/engine.h"
#include "gc/remset.h"
#include "heap/heap.h"

namespace gcassert {

namespace {

/**
 * One registered generational runtime. The registry is a flat vector:
 * processes embed a handful of runtimes at most, and the slow path is
 * reached at most once per (object, latch bit) per GC cycle, so a
 * linear ownership probe is cheaper than any indexing scheme would be
 * to maintain.
 */
struct BarrierContext {
    Heap *heap;
    RememberedSet *remset;
    AssertionEngine *engine;
    /** Telemetry: slow-path entries for this runtime (may be null). */
    std::atomic<uint64_t> *slowHits;
    /** Record all writes for the incremental assertion recheck. */
    bool trackAllWrites;
};

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<BarrierContext> &
registry()
{
    static std::vector<BarrierContext> contexts;
    return contexts;
}

/** Find the registered context whose heap owns @p obj, else nullptr. */
BarrierContext *
contextOwning(const Object *obj)
{
    for (BarrierContext &ctx : registry())
        if (ctx.heap->contains(obj))
            return &ctx;
    return nullptr;
}

} // namespace

namespace detail {

std::atomic<uint32_t> g_writeBarriersArmed{0};
std::atomic<uint32_t> g_trackAllWrites{0};

void
writeBarrierSlow(Object *src, Object **slot, Object *target)
{
    // The inline filter ran against racy flag snapshots; re-evaluate
    // under the registry lock so each latch fires exactly once.
    std::lock_guard<std::mutex> guard(registryMutex());

    // Telemetry: attribute the slow-path entry to the runtime that
    // owns the mutated object. Latch bits bound how often this runs
    // (at most once per object/bit per GC cycle), so the extra probe
    // costs nothing on the store fast path.
    if (BarrierContext *ctx = contextOwning(src)) {
        if (ctx->slowHits)
            ctx->slowHits->fetch_add(1, std::memory_order_relaxed);
    }

    uint32_t sf = src->rawFlagsAtomic();
    uint32_t tf = target ? target->rawFlagsAtomic() : 0;

    if ((sf & (kNurseryBit | kRememberedBit)) == 0) {
        // All-writes tracking (incremental assertion recheck): latch
        // the source and remember its cards whatever the target, so
        // the full GC can invalidate the source's region summary.
        // Safe in generational mode: the minor GC rescans the extra
        // sources, whose trace truncates at the mature boundary, so
        // nursery liveness is unchanged — this only ever records a
        // source the nursery-edge filter might have recorded later
        // anyway. Nursery sources never reach here (inline filter);
        // their regions are churn-dirty from their own allocation.
        BarrierContext *ctx = contextOwning(src);
        if (ctx && ctx->trackAllWrites)
            ctx->remset->record(src, slot);
    }

    if ((tf & kNurseryBit) != 0 &&
        (sf & (kNurseryBit | kRememberedBit)) == 0) {
        // Mature -> nursery edge: remember the source so the minor GC
        // can treat it as a root into the nursery. The source must
        // belong to the same heap as the target; a source outside any
        // registered heap (e.g. a test object from a non-generational
        // runtime) cannot reach a nursery object, so the probe on the
        // source alone is sufficient.
        if (BarrierContext *ctx = contextOwning(src))
            ctx->remset->record(src, slot);
    }

    if ((sf & kOwnerBit) != 0 && (sf & kWriteDirtyBit) == 0) {
        // Mutated owner: its owned region may have changed shape, so
        // the next full trace scans it ahead of clean owners.
        if (BarrierContext *ctx = contextOwning(src)) {
            src->setFlagsAtomic(kWriteDirtyBit);
            ctx->engine->noteOwnerMutated(src);
        }
    }

    if (target && (tf & kUnsharedBit) != 0 &&
        (tf & kWriteDirtyBit) == 0) {
        // A new reference now points at an assert-unshared object; the
        // next full trace re-checks it from the dirty set.
        if (BarrierContext *ctx = contextOwning(target)) {
            target->setFlagsAtomic(kWriteDirtyBit);
            ctx->engine->noteUnsharedTargetMutated(target);
        }
    }
}

} // namespace detail

BarrierScope::BarrierScope(Heap &heap, RememberedSet &remset,
                           AssertionEngine &engine,
                           std::atomic<uint64_t> *slow_hits,
                           bool track_all_writes)
    : heap_(heap)
{
    std::lock_guard<std::mutex> guard(registryMutex());
    registry().push_back(BarrierContext{&heap, &remset, &engine,
                                        slow_hits, track_all_writes});
    detail::g_writeBarriersArmed.fetch_add(1, std::memory_order_relaxed);
    if (track_all_writes)
        detail::g_trackAllWrites.fetch_add(1, std::memory_order_relaxed);
}

BarrierScope::~BarrierScope()
{
    bool tracked_all = false;
    {
        std::lock_guard<std::mutex> guard(registryMutex());
        auto &contexts = registry();
        for (auto it = contexts.begin(); it != contexts.end(); ++it) {
            if (it->heap == &heap_) {
                tracked_all = it->trackAllWrites;
                contexts.erase(it);
                break;
            }
        }
    }
    detail::g_writeBarriersArmed.fetch_sub(1, std::memory_order_relaxed);
    if (tracked_all)
        detail::g_trackAllWrites.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace gcassert
