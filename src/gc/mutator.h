/**
 * @file
 * Mutator thread contexts.
 *
 * The paper's assert-alldead regions are per-thread: each thread has
 * a boolean "in region" flag and a queue of objects allocated while
 * the region is active (section 2.3.2). MutatorContext carries that
 * state; the Runtime checks the flag on every allocation.
 */

#ifndef GCASSERT_GC_MUTATOR_H
#define GCASSERT_GC_MUTATOR_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "heap/heap.h"
#include "heap/object.h"

namespace gcassert {

/**
 * Per-thread mutator state.
 */
class MutatorContext {
  public:
    explicit MutatorContext(std::string name) : name_(std::move(name)) {}

    MutatorContext(const MutatorContext &) = delete;
    MutatorContext &operator=(const MutatorContext &) = delete;

    const std::string &name() const { return name_; }

    /** True between start-region and assert-alldead. */
    bool inRegion() const { return inRegion_; }

    /**
     * Label of the active region ("" for an unlabeled region). Set
     * by start-region so a later assert-alldead violation can name
     * the region it came from (e.g. a server request id).
     */
    const std::string &regionLabel() const { return regionLabel_; }

    /**
     * Allocation hook: record @p obj on the region queue when a
     * region is active. Called by the Runtime on every allocation
     * made by this mutator — this check is the per-allocation time
     * overhead the paper describes for assert-alldead.
     */
    void
    noteAllocation(Object *obj)
    {
        if (inRegion_) {
            obj->setFlag(kRegionBit);
            regionQueue_.push_back(obj);
        }
    }

    /** Objects allocated so far in the active region. */
    const std::vector<Object *> &regionQueue() const
    {
        return regionQueue_;
    }

    /**
     * This mutator's allocation buffer (blocks leased from the
     * heap). Only the owning thread and the (stop-the-world) heap
     * slow path touch it.
     */
    Heap::TlabCache &tlab() { return tlab_; }

    /**
     * Thread-local GC roots: objects handed out by the lock-free
     * allocation fast path are retained here so a collection
     * triggered by another thread cannot sweep them before the
     * owning thread publishes them. Scanned (and mutated — dead
     * assertion reactions may null entries) by the collector.
     */
    std::vector<Object *> &localRoots() { return localRoots_; }

    /** Pin @p obj as a thread-local root. */
    void retainLocal(Object *obj) { localRoots_.push_back(obj); }

    /** Release every thread-local root. */
    void dropLocalRoots() { localRoots_.clear(); }

  private:
    friend class AssertionEngine;

    /** Engine-side: flip the region flag. */
    void setInRegion(bool in_region) { inRegion_ = in_region; }

    /** Engine-side: flush and clear the queue. */
    std::vector<Object *>
    takeRegionQueue()
    {
        std::vector<Object *> queue;
        queue.swap(regionQueue_);
        return queue;
    }

    /** Collector-side: drop queue entries that died in this GC. */
    void
    pruneRegionQueue()
    {
        size_t kept = 0;
        for (Object *obj : regionQueue_)
            if (obj->marked())
                regionQueue_[kept++] = obj;
        regionQueue_.resize(kept);
    }

    friend class Collector;

    std::string name_;
    bool inRegion_ = false;
    std::string regionLabel_;
    std::vector<Object *> regionQueue_;
    Heap::TlabCache tlab_;
    std::vector<Object *> localRoots_;
};

/**
 * Registry of all mutator contexts. The runtime creates a "main"
 * context up front; worker threads register their own.
 */
class MutatorRegistry {
  public:
    MutatorRegistry();

    /** The implicit main-thread context. */
    MutatorContext &main() { return *mutators_.front(); }

    /** Create a context for a new thread. */
    MutatorContext &create(const std::string &name);

    /** Visit every context. */
    void forEach(const std::function<void(MutatorContext &)> &visit);

    size_t size() const { return mutators_.size(); }

  private:
    std::vector<std::unique_ptr<MutatorContext>> mutators_;
};

} // namespace gcassert

#endif // GCASSERT_GC_MUTATOR_H
