/**
 * @file
 * Root registry: the set of pointer slots the collector scans first.
 *
 * Roots model the local and global variables of a managed program.
 * Registration is O(1) via an intrusive doubly-linked list so RAII
 * handles can register and unregister on every scope entry/exit
 * without allocation.
 */

#ifndef GCASSERT_GC_ROOTS_H
#define GCASSERT_GC_ROOTS_H

#include <cstddef>
#include <functional>

#include "heap/object.h"

namespace gcassert {

class RootRegistry;

/**
 * One registered root slot. Embedded in Handle; may also be used
 * directly for global roots. The node owns the Object* slot the
 * collector reads and may update (ForceTrue nulling).
 */
class RootNode {
  public:
    RootNode() = default;
    ~RootNode();

    RootNode(const RootNode &) = delete;
    RootNode &operator=(const RootNode &) = delete;

    /** The referenced object (may be nullptr). */
    Object *get() const { return ptr_; }

    /** Point the root at a different object. */
    void set(Object *obj) { ptr_ = obj; }

    /**
     * Address of the slot, for the collector's scan loop (reads the
     * referent and, under the ForceTrue reaction, nulls it).
     */
    Object **slotAddr() { return &ptr_; }

    /** Debug name shown in violation reports. */
    const char *name() const { return name_; }

    /** @return true while registered with a registry. */
    bool linked() const { return registry_ != nullptr; }

  private:
    friend class RootRegistry;

    Object *ptr_ = nullptr;
    const char *name_ = "";
    RootNode *prev_ = nullptr;
    RootNode *next_ = nullptr;
    RootRegistry *registry_ = nullptr;
};

/**
 * Intrusive list of live roots.
 */
class RootRegistry {
  public:
    RootRegistry() = default;
    ~RootRegistry();

    RootRegistry(const RootRegistry &) = delete;
    RootRegistry &operator=(const RootRegistry &) = delete;

    /**
     * Register @p node pointing at @p obj.
     *
     * @param node Unlinked node to register.
     * @param obj Initial referent (may be nullptr).
     * @param name Static debug label for reports.
     */
    void add(RootNode &node, Object *obj, const char *name);

    /** Unregister @p node. No-op if not linked here. */
    void remove(RootNode &node);

    /** Number of registered roots. */
    size_t count() const { return count_; }

    /**
     * Visit each root slot. The callback receives the node so the
     * collector can read and (for ForceTrue) null the slot.
     */
    void forEach(const std::function<void(RootNode &)> &visit);

  private:
    RootNode head_;
    size_t count_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_GC_ROOTS_H
