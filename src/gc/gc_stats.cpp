#include "gc/gc_stats.h"

#include "support/json.h"
#include "support/strutil.h"

namespace gcassert {

void
GcStats::reset()
{
    *this = GcStats{};
}

std::string
GcStats::toString() const
{
    std::string out;
    out += format("collections:        %llu\n",
                  static_cast<unsigned long long>(collections));
    out += format("objects marked:     %llu\n",
                  static_cast<unsigned long long>(objectsMarked));
    out += format("objects swept:      %llu\n",
                  static_cast<unsigned long long>(objectsSwept));
    out += format("bytes swept:        %s\n",
                  humanBytes(bytesSwept).c_str());
    out += format("ownee checks:       %llu (last GC: %llu)\n",
                  static_cast<unsigned long long>(owneeChecks),
                  static_cast<unsigned long long>(owneeChecksLastGc));
    out += format("violations:         %llu\n",
                  static_cast<unsigned long long>(violations));
    if (parallelMarkPhases > 0 || pathDowngrades > 0) {
        out += format("parallel marks:     %llu (steals: %llu, path "
                      "downgrades: %llu)\n",
                      static_cast<unsigned long long>(parallelMarkPhases),
                      static_cast<unsigned long long>(markSteals),
                      static_cast<unsigned long long>(pathDowngrades));
    }
    if (parallelSweepPhases > 0) {
        out += format("parallel sweeps:    %llu\n",
                      static_cast<unsigned long long>(parallelSweepPhases));
    }
    if (lazySweepGcs > 0) {
        out += format("lazy sweeps:        %llu (blocks finished at GC: "
                      "%llu, finish time: %.3f ms)\n",
                      static_cast<unsigned long long>(lazySweepGcs),
                      static_cast<unsigned long long>(
                          lazyBlocksFinishedAtGc),
                      lazyFinishPhase.elapsedSeconds() * 1e3);
    }
    if (minorCollections > 0) {
        out += format("minor collections:  %llu (promoted: %llu, swept: "
                      "%llu / %s, remset roots: %llu)\n",
                      static_cast<unsigned long long>(minorCollections),
                      static_cast<unsigned long long>(nurseryPromoted),
                      static_cast<unsigned long long>(nurserySweptObjects),
                      humanBytes(nurserySweptBytes).c_str(),
                      static_cast<unsigned long long>(remsetSourcesScanned));
        out += format("minor gc time:      %.3f ms\n",
                      minorGc.elapsedSeconds() * 1e3);
    }
    if (dirtyOwnerScans > 0 || cleanOwnerScans > 0) {
        out += format("owner scans:        %llu dirty-first, %llu cold\n",
                      static_cast<unsigned long long>(dirtyOwnerScans),
                      static_cast<unsigned long long>(cleanOwnerScans));
    }
    out += format("gc time:            %.3f ms\n",
                  totalGc.elapsedSeconds() * 1e3);
    out += format("  ownership phase:  %.3f ms\n",
                  ownershipPhase.elapsedSeconds() * 1e3);
    out += format("  trace phase:      %.3f ms\n",
                  tracePhase.elapsedSeconds() * 1e3);
    out += format("  sweep phase:      %.3f ms\n",
                  sweepPhase.elapsedSeconds() * 1e3);
    out += format("  finish phase:     %.3f ms\n",
                  finishPhase.elapsedSeconds() * 1e3);
    return out;
}

std::string
GcStats::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("collections", collections)
        .field("objectsMarked", objectsMarked)
        .field("objectsSwept", objectsSwept)
        .field("bytesSwept", bytesSwept)
        .field("owneeChecks", owneeChecks)
        .field("owneeChecksLastGc", owneeChecksLastGc)
        .field("violations", violations)
        .field("lastLiveObjects", lastLiveObjects)
        .field("lastLiveBytes", lastLiveBytes)
        .field("maxWorklistDepth", maxWorklistDepth)
        .field("parallelMarkPhases", parallelMarkPhases)
        .field("markSteals", markSteals)
        .field("pathDowngrades", pathDowngrades)
        .field("parallelSweepPhases", parallelSweepPhases)
        .field("lazySweepGcs", lazySweepGcs)
        .field("lazyBlocksFinishedAtGc", lazyBlocksFinishedAtGc)
        .field("minorCollections", minorCollections)
        .field("nurseryPromoted", nurseryPromoted)
        .field("nurserySweptObjects", nurserySweptObjects)
        .field("nurserySweptBytes", nurserySweptBytes)
        .field("nurseryPromotedAtFullGc", nurseryPromotedAtFullGc)
        .field("remsetSourcesScanned", remsetSourcesScanned)
        .field("dirtyOwnerScans", dirtyOwnerScans)
        .field("cleanOwnerScans", cleanOwnerScans)
        .field("totalGcNanos", totalGc.elapsedNanos())
        .field("ownershipPhaseNanos", ownershipPhase.elapsedNanos())
        .field("tracePhaseNanos", tracePhase.elapsedNanos())
        .field("sweepPhaseNanos", sweepPhase.elapsedNanos())
        .field("finishPhaseNanos", finishPhase.elapsedNanos())
        .field("lazyFinishPhaseNanos", lazyFinishPhase.elapsedNanos())
        .field("minorGcNanos", minorGc.elapsedNanos())
        .endObject();
    return w.str();
}

} // namespace gcassert
