/**
 * @file
 * Per-assertion-kind cost attribution for the mark and finish phases.
 *
 * The paper's overhead figures report cost per *phase*; these tallies
 * split the mark and finish spans per assertion *kind* (dead,
 * alldead, instances, unshared, ownedby), so "who costs what" becomes
 * a continuously exported metric instead of a one-off figure.
 *
 * Mechanics mirror the census tallies exactly: the sequential trace
 * accumulates into one AssertCostTallies owned by the collector;
 * parallel markers accumulate into per-worker copies merged
 * single-threaded after the join. A check region is timed by a
 * CostScope (two nowNanos() reads) only when attribution is armed —
 * with telemetry off the scope is a null-pointer test. The mark and
 * finish residual — span time not inside any check — lands in the
 * Other bucket, so each phase's buckets decompose its full span and
 * their sum tracks the phase totals (enforced to 5% by the telemetry
 * smoke bench).
 *
 * With parallel marking the per-kind buckets are summed *CPU* time
 * across workers; the Other bucket is clamped at zero when that sum
 * exceeds the wall-clock span.
 */

#ifndef GCASSERT_OBSERVE_ASSERT_COST_H
#define GCASSERT_OBSERVE_ASSERT_COST_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/stopwatch.h"

namespace gcassert {

/** Attribution buckets: the five checkable kinds plus the residual. */
enum class AssertCostKind : uint8_t {
    Dead,      //!< assert-dead checks (dead-bit encounters)
    AllDead,   //!< assert-alldead checks and region-queue pruning
    Instances, //!< instance/volume tallying and limit checks
    Unshared,  //!< assert-unshared re-encounter checks
    OwnedBy,   //!< ownee checks and ownership-table maintenance
    Other,     //!< phase time outside every assertion check
};

constexpr size_t kNumAssertCostKinds = 6;

/** Short bucket name ("dead", "alldead", ..., "other"). */
const char *assertCostKindName(AssertCostKind kind);

/**
 * Nanosecond tallies for one phase of one collection. Plain array,
 * value-type: per-worker copies merge by addition, exactly like the
 * census vectors.
 */
struct AssertCostTallies {
    uint64_t nanos[kNumAssertCostKinds] = {};

    void
    add(AssertCostKind kind, uint64_t ns)
    {
        nanos[static_cast<size_t>(kind)] += ns;
    }

    uint64_t
    get(AssertCostKind kind) const
    {
        return nanos[static_cast<size_t>(kind)];
    }

    /** Sum over the checkable kinds (everything but Other). */
    uint64_t checkedNanos() const;

    /** Fold @p other worker's tallies into this one. */
    void merge(const AssertCostTallies &other);

    /**
     * Set the Other bucket to the phase residual: @p spanNanos minus
     * the checked sum, clamped at zero (parallel markers can tally
     * more CPU time than the wall-clock span).
     */
    void setOtherFromSpan(uint64_t spanNanos);

    /** Bucket object, e.g. {"dead": 120, ..., "other": 53000}. */
    std::string toJson() const;
};

/**
 * RAII timing scope for one check region. Inert (one pointer test,
 * no clock reads) when constructed with nullptr — the collector
 * passes null whenever attribution is off.
 */
class CostScope {
  public:
    CostScope(AssertCostTallies *tallies, AssertCostKind kind)
        : tallies_(tallies), kind_(kind)
    {
        if (tallies_)
            begin_ = nowNanos();
    }

    ~CostScope()
    {
        if (tallies_)
            tallies_->add(kind_, nowNanos() - begin_);
    }

    /**
     * Re-bucket the scope (e.g. a dead-bit check that turns out to
     * be an alldead or orphaned-ownee verdict).
     */
    void reclassify(AssertCostKind kind) { kind_ = kind; }

    CostScope(const CostScope &) = delete;
    CostScope &operator=(const CostScope &) = delete;

  private:
    AssertCostTallies *tallies_;
    AssertCostKind kind_;
    uint64_t begin_ = 0;
};

/**
 * Cumulative attribution across collections, owned by Telemetry.
 * Written single-threaded at phase end inside the pause; read by
 * metric gauges between pauses (the same relaxed model as GcStats).
 */
class AssertCostAttribution {
  public:
    void addMark(const AssertCostTallies &tallies);
    void addFinish(const AssertCostTallies &tallies);

    uint64_t markNanos(AssertCostKind kind) const;
    uint64_t finishNanos(AssertCostKind kind) const;

    /** Sum of every bucket in both phases. */
    uint64_t totalNanos() const;

  private:
    AssertCostTallies mark_;
    AssertCostTallies finish_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_ASSERT_COST_H
