#include "observe/metrics.h"

#include <algorithm>
#include <cstdio>

#include "support/json.h"
#include "support/logging.h"

namespace gcassert {

Counter *
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (NamedCounter &c : counters_)
        if (c.name == name)
            return c.counter.get();
    counters_.push_back(NamedCounter{name, std::make_unique<Counter>()});
    return counters_.back().counter.get();
}

void
MetricsRegistry::gauge(const std::string &name,
                       std::function<uint64_t()> read)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (NamedGauge &g : gauges_) {
        if (g.name == name) {
            g.read = std::move(read);
            return;
        }
    }
    gauges_.push_back(NamedGauge{name, std::move(read)});
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const NamedCounter &c : counters_)
        out.push_back(MetricSample{c.name, c.counter->get(), true});
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    size_t gaugeStart = out.size();
    for (const NamedGauge &g : gauges_)
        out.push_back(MetricSample{g.name, g.read ? g.read() : 0, false});
    std::sort(out.begin() + gaugeStart, out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
MetricsRegistry::toJsonImpl(bool withSeq, uint64_t seq) const
{
    std::vector<MetricSample> samples = snapshot();
    JsonWriter w;
    w.beginObject();
    if (withSeq)
        w.field("seq", seq);
    w.key("counters").beginObject();
    for (const MetricSample &s : samples)
        if (s.monotonic)
            w.field(s.name, s.value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const MetricSample &s : samples)
        if (!s.monotonic)
            w.field(s.name, s.value);
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
MetricsRegistry::toJson() const
{
    return toJsonImpl(false, 0);
}

std::string
MetricsRegistry::toJson(uint64_t seq) const
{
    return toJsonImpl(true, seq);
}

bool
MetricsRegistry::publishDoc(const std::string &sink,
                            const std::string &doc)
{
    if (sink.empty())
        return true;
    if (sink == "stderr" || sink == "1") {
        std::fprintf(stderr, "%s\n", doc.c_str());
        return true;
    }
    // Write-then-rename: the document lands at the configured path
    // only once it is complete, so a crash (or write failure) in
    // here never leaves a truncated JSON artifact where a consumer
    // expects a valid one.
    std::string tmp = sink + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("metrics: cannot open '" + tmp + "' for writing");
        return false;
    }
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != doc.size() || !flushed) {
        warn("metrics: short write to '" + tmp + "'");
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), sink.c_str()) != 0) {
        warn("metrics: cannot rename '" + tmp + "' to '" + sink + "'");
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
MetricsRegistry::publish(const std::string &sink) const
{
    return publishDoc(sink, toJson());
}

bool
MetricsRegistry::publish(const std::string &sink, uint64_t seq) const
{
    return publishDoc(sink, toJson(seq));
}

} // namespace gcassert
