/**
 * @file
 * Published-snapshot ring buffers backing the live telemetry
 * endpoint (observe/live_server).
 *
 * The endpoint's serving thread must never take the runtime lock —
 * and must never sample gauges, whose readers touch non-atomic
 * accumulators (GcStats, remset tables). The publish/read split
 * here enforces that: *publishers* (the collector's full-GC
 * epilogue, Runtime::publishTelemetry) sample the registry while
 * they already hold the runtime lock and push immutable copies into
 * these rings; the server thread only ever reads the copies behind
 * each ring's own mutex. Memory is bounded: both rings drop their
 * oldest entry once full and count what they dropped.
 *
 * Sequence numbers are monotonic per ring and never reused, so a
 * dashboard polling /series can detect both gaps (drops) and "no
 * new data" (same tail seq), and the teardown metrics snapshot can
 * name the last in-run publish it corresponds to.
 */

#ifndef GCASSERT_OBSERVE_SNAPSHOT_HISTORY_H
#define GCASSERT_OBSERVE_SNAPSHOT_HISTORY_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "observe/metrics.h"

namespace gcassert {

/** One published metrics snapshot (an immutable copy). */
struct PublishedSnapshot {
    uint64_t seq = 0;       //!< monotonic publish sequence (1-based)
    uint64_t gcNumber = 0;  //!< full GCs completed at publish time
    uint64_t wallNanos = 0; //!< traceNowNanos() at publish time
    std::vector<MetricSample> samples;

    /** {"seq":N,"gc":N,"wallNanos":N,"counters":{},"gauges":{}} —
     *  the endpoint's /metrics document. seq 0 = nothing published
     *  yet (the sample lists are then empty). */
    std::string toJson() const;
};

/**
 * Bounded ring of per-full-GC metric snapshots (the /series data).
 * Thread-safe; publishers and the endpoint thread synchronize only
 * on the internal mutex.
 */
class SnapshotHistory {
  public:
    /** @p capacity is clamped to at least 1. */
    explicit SnapshotHistory(size_t capacity);

    /** Push a snapshot copy; drops the oldest entry when full.
     *  Returns the assigned sequence number. */
    uint64_t publish(uint64_t gcNumber, uint64_t wallNanos,
                     std::vector<MetricSample> samples);

    /** Copy of the newest snapshot; seq 0 when nothing published. */
    PublishedSnapshot latest() const;

    /** Sequence of the newest snapshot; 0 when nothing published. */
    uint64_t latestSeq() const;

    /** Oldest-first copy of the retained snapshots. */
    std::vector<PublishedSnapshot> series() const;

    /** {"capacity":N,"dropped":N,"snapshots":[...oldest first...]}
     *  — the endpoint's /series document. */
    std::string seriesJson() const;

    size_t size() const;
    size_t capacity() const { return capacity_; }

    /** Snapshots evicted because the ring was full. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::deque<PublishedSnapshot> ring_;
    uint64_t nextSeq_ = 1;
    std::atomic<uint64_t> dropped_{0};
};

/** One violation as retained for the endpoint (a rendered copy —
 *  the engine's own violation record stays authoritative and
 *  unbounded, since tests and verdict comparisons read it). */
struct ViolationRecord {
    uint64_t seq = 0; //!< monotonic arrival number (1-based)
    std::string kind; //!< assertionKindName() of the violation
    uint64_t gcNumber = 0;
    std::string message;
};

/**
 * Bounded drop-oldest ring of recent violations (the /violations
 * data). Pushed by the violation observer (under the runtime lock);
 * read by the endpoint thread. The dropped count is surfaced as the
 * observe.violations_dropped gauge so long-running servers can see
 * that the window slid.
 */
class ViolationRing {
  public:
    /** @p capacity is clamped to at least 1. */
    explicit ViolationRing(size_t capacity);

    /** Append; seq is assigned internally. */
    void push(std::string kind, uint64_t gcNumber, std::string message);

    /** Oldest-first copy of the retained records. */
    std::vector<ViolationRecord> recent() const;

    /** {"capacity":N,"dropped":N,"total":N,"violations":[...]} —
     *  the endpoint's /violations document. */
    std::string toJson() const;

    size_t size() const;
    size_t capacity() const { return capacity_; }

    /** Records evicted because the ring was full. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Records ever pushed (retained + dropped). */
    uint64_t pushed() const
    {
        return pushed_.load(std::memory_order_relaxed);
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::deque<ViolationRecord> ring_;
    uint64_t nextSeq_ = 1;
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> pushed_{0};
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_SNAPSHOT_HISTORY_H
