/**
 * @file
 * Telemetry bundle: the per-Runtime handle tying together the trace
 * recorder, metrics registry, and latest heap census. Owned by
 * Runtime, handed to the Collector as a raw pointer (nullptr when
 * every knob is off, so the collector pays exactly one null test
 * per phase boundary).
 *
 * Knobs (all default-off):
 *  - GCASSERT_TRACE_FILE=<path>   write a Chrome trace_event JSON
 *  - GCASSERT_METRICS=<sink>      "stderr"/"1" or a file path for a
 *                                 metrics snapshot at teardown
 *  - GCASSERT_CENSUS_EVERY=<n>    heap census every n full GCs
 *                                 (0 = only on demand)
 *  - GCASSERT_PAUSE_BUDGET_US=<n> pause-time SLO budget in
 *                                 microseconds; a full or minor
 *                                 pause over budget reports a
 *                                 context-only pause-slo violation
 *                                 (0 = track percentiles only)
 *  - GCASSERT_LIVE_PORT=<p|auto>  serve live telemetry over HTTP on
 *                                 127.0.0.1:<p> ("auto" = ephemeral
 *                                 port; 0/unset = no endpoint)
 *  - GCASSERT_LIVE_HISTORY=<n>    per-full-GC metric snapshots kept
 *                                 for /series (default 64)
 *  - GCASSERT_VIOLATION_RING=<n>  recent violations kept for
 *                                 /violations (drop-oldest,
 *                                 default 256)
 *  - GCASSERT_TRACE_FLUSH_MS=<n>  time-based trace flush cadence
 *                                 (0 = size-based only; defaults to
 *                                 1000 when the live endpoint is
 *                                 armed)
 */

#ifndef GCASSERT_OBSERVE_TELEMETRY_H
#define GCASSERT_OBSERVE_TELEMETRY_H

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "observe/assert_cost.h"
#include "observe/census.h"
#include "observe/metrics.h"
#include "observe/pause_slo.h"
#include "observe/snapshot_history.h"
#include "observe/trace_recorder.h"

namespace gcassert {

/**
 * livePort sentinel for "bind an ephemeral port" (the env value
 * "auto"). One past the valid port range, so it can never collide
 * with an explicit port choice.
 */
constexpr uint32_t kAutoLivePort = 65536;

/** @name Environment-driven defaults (see RuntimeConfig's knobs)
 *  @{ */
std::string defaultTraceFile();
std::string defaultMetricsSink();
uint32_t defaultCensusEvery();
uint64_t defaultPauseBudgetNanos();
uint32_t defaultLivePort();
uint32_t defaultLiveHistory();
uint32_t defaultViolationRingCap();
uint32_t defaultTraceFlushMillis();
/** @} */

/**
 * Observability switches, carried inside RuntimeConfig. The string
 * knobs mirror the GCASSERT_* environment variables; explicit field
 * assignment overrides the environment as with every other knob.
 */
struct ObserveConfig {
    /** Chrome trace output path; "" disables tracing. */
    std::string traceFile = defaultTraceFile();

    /** Metrics sink: "" off, "stderr"/"1" stderr, else a path. */
    std::string metricsSink = defaultMetricsSink();

    /** Census every N full GCs; 0 = on demand only. */
    uint32_t censusEvery = defaultCensusEvery();

    /**
     * Pause SLO budget in nanoseconds (the env knob is in µs); a
     * pause over a non-zero budget reports a pause-slo violation.
     * 0 = track percentiles without checking.
     */
    uint64_t pauseBudgetNanos = defaultPauseBudgetNanos();

    /**
     * Live telemetry endpoint port (observe/live_server): 0 = no
     * endpoint, kAutoLivePort = ephemeral, else the 127.0.0.1 port
     * to bind. Env: GCASSERT_LIVE_PORT ("auto" for ephemeral).
     */
    uint32_t livePort = defaultLivePort();

    /** Per-full-GC metric snapshots retained for /series (clamped
     *  to at least 1). Env: GCASSERT_LIVE_HISTORY, default 64. */
    uint32_t liveHistory = defaultLiveHistory();

    /** Recent-violations ring capacity (drop-oldest; clamped to at
     *  least 1). Env: GCASSERT_VIOLATION_RING, default 256. */
    uint32_t violationRingCap = defaultViolationRingCap();

    /**
     * Time-based trace flush cadence in milliseconds; 0 = size-based
     * flushing only, except that an armed live endpoint defaults the
     * cadence to 1000 ms so the on-disk trace stays current mid-run.
     * Env: GCASSERT_TRACE_FLUSH_MS.
     */
    uint32_t traceFlushMillis = defaultTraceFlushMillis();

    /** True when any telemetry feature is active. */
    bool
    any() const
    {
        return !traceFile.empty() || !metricsSink.empty() ||
               censusEvery != 0 || pauseBudgetNanos != 0 ||
               livePort != 0;
    }
};

/**
 * A published rootward path for one named allocation site, computed
 * by the backgraph at each full-GC publish point (under the runtime
 * lock) and served by /why_alive?site=... without the endpoint
 * thread ever touching the backgraph or the runtime lock.
 */
struct SitePathRecord {
    std::string site;      //!< registered site name
    uint64_t gcNumber = 0; //!< full GC the path was sampled at
    bool known = false;    //!< a live representative object existed
    bool rootReached = false;
    bool saturated = false;
    /** Rootmost-first type names along the representative path. */
    std::vector<std::string> path;

    /** {"site":...,"known":...,"gc":N,...,"path":[...]} */
    std::string toJson() const;
};

/**
 * Live telemetry state for one Runtime. Thread safety matches its
 * parts: the recorder and registry are internally synchronized; the
 * census slot is guarded here (written at end of full GC inside the
 * pause, read by violation enrichment and reporting calls).
 */
class Telemetry {
  public:
    explicit Telemetry(ObserveConfig config);

    const ObserveConfig &config() const { return config_; }

    /** Non-null iff traceFile was configured. */
    TraceRecorder *recorder() { return recorder_.get(); }

    MetricsRegistry &metrics() { return metrics_; }

    /** Store the census taken by the collector's mark phase. */
    void setCensus(CensusSnapshot census);

    /** Copy of the latest census (empty() if none taken yet). */
    CensusSnapshot latestCensus() const;

    /** Pause percentiles + SLO budget; always present. */
    PauseSloTracker &pauseSlo() { return pauseSlo_; }
    const PauseSloTracker &pauseSlo() const { return pauseSlo_; }

    /** Cumulative per-assertion-kind mark/finish attribution. */
    AssertCostAttribution &assertCost() { return assertCost_; }
    const AssertCostAttribution &assertCost() const
    {
        return assertCost_;
    }

    /** @name Live-endpoint publish/read split
     *
     * Publishers (collector epilogue, Runtime::publishTelemetry)
     * call publishSnapshot()/publishSitePaths() while holding the
     * runtime lock; the endpoint thread only reads the resulting
     * immutable copies through history()/violationRing()/
     * sitePaths(), each behind its own mutex.
     *  @{ */

    /**
     * Sample the metrics registry and push the copy into the
     * snapshot history; also gives the trace recorder its periodic
     * time-based flush opportunity. Caller must hold the runtime
     * lock (gauge readers touch non-atomic accumulators). Returns
     * the assigned sequence number.
     */
    uint64_t publishSnapshot(uint64_t gcNumber);

    SnapshotHistory &history() { return history_; }
    const SnapshotHistory &history() const { return history_; }

    ViolationRing &violationRing() { return violations_; }
    const ViolationRing &violationRing() const { return violations_; }

    /** Replace the published per-site why-alive table. */
    void publishSitePaths(std::vector<SitePathRecord> paths);

    /** Published record for @p site; known=false stub when the site
     *  has no published path. */
    SitePathRecord sitePath(const std::string &site) const;

    /** Names with a published record (sorted; for the index). */
    std::vector<std::string> sitePathNames() const;

    /** @} */

    /**
     * Flush everything that persists: write the trace file and
     * publish the metrics snapshot (stamped with the sequence
     * number of the last published live snapshot, so the teardown
     * document and the endpoint's final /metrics response agree).
     * Called from the Runtime destructor and safe to call
     * repeatedly.
     */
    void flush();

  private:
    ObserveConfig config_;
    std::unique_ptr<TraceRecorder> recorder_;
    MetricsRegistry metrics_;
    PauseSloTracker pauseSlo_;
    AssertCostAttribution assertCost_;
    SnapshotHistory history_;
    ViolationRing violations_;

    mutable std::mutex censusMutex_;
    CensusSnapshot census_;

    mutable std::mutex sitePathMutex_;
    std::unordered_map<std::string, SitePathRecord> sitePaths_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_TELEMETRY_H
