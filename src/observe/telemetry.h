/**
 * @file
 * Telemetry bundle: the per-Runtime handle tying together the trace
 * recorder, metrics registry, and latest heap census. Owned by
 * Runtime, handed to the Collector as a raw pointer (nullptr when
 * every knob is off, so the collector pays exactly one null test
 * per phase boundary).
 *
 * Knobs (all default-off):
 *  - GCASSERT_TRACE_FILE=<path>   write a Chrome trace_event JSON
 *  - GCASSERT_METRICS=<sink>      "stderr"/"1" or a file path for a
 *                                 metrics snapshot at teardown
 *  - GCASSERT_CENSUS_EVERY=<n>    heap census every n full GCs
 *                                 (0 = only on demand)
 *  - GCASSERT_PAUSE_BUDGET_US=<n> pause-time SLO budget in
 *                                 microseconds; a full or minor
 *                                 pause over budget reports a
 *                                 context-only pause-slo violation
 *                                 (0 = track percentiles only)
 */

#ifndef GCASSERT_OBSERVE_TELEMETRY_H
#define GCASSERT_OBSERVE_TELEMETRY_H

#include <memory>
#include <mutex>
#include <string>

#include "observe/assert_cost.h"
#include "observe/census.h"
#include "observe/metrics.h"
#include "observe/pause_slo.h"
#include "observe/trace_recorder.h"

namespace gcassert {

/** @name Environment-driven defaults (see RuntimeConfig's knobs)
 *  @{ */
std::string defaultTraceFile();
std::string defaultMetricsSink();
uint32_t defaultCensusEvery();
uint64_t defaultPauseBudgetNanos();
/** @} */

/**
 * Observability switches, carried inside RuntimeConfig. The string
 * knobs mirror the GCASSERT_* environment variables; explicit field
 * assignment overrides the environment as with every other knob.
 */
struct ObserveConfig {
    /** Chrome trace output path; "" disables tracing. */
    std::string traceFile = defaultTraceFile();

    /** Metrics sink: "" off, "stderr"/"1" stderr, else a path. */
    std::string metricsSink = defaultMetricsSink();

    /** Census every N full GCs; 0 = on demand only. */
    uint32_t censusEvery = defaultCensusEvery();

    /**
     * Pause SLO budget in nanoseconds (the env knob is in µs); a
     * pause over a non-zero budget reports a pause-slo violation.
     * 0 = track percentiles without checking.
     */
    uint64_t pauseBudgetNanos = defaultPauseBudgetNanos();

    /** True when any telemetry feature is active. */
    bool
    any() const
    {
        return !traceFile.empty() || !metricsSink.empty() ||
               censusEvery != 0 || pauseBudgetNanos != 0;
    }
};

/**
 * Live telemetry state for one Runtime. Thread safety matches its
 * parts: the recorder and registry are internally synchronized; the
 * census slot is guarded here (written at end of full GC inside the
 * pause, read by violation enrichment and reporting calls).
 */
class Telemetry {
  public:
    explicit Telemetry(ObserveConfig config);

    const ObserveConfig &config() const { return config_; }

    /** Non-null iff traceFile was configured. */
    TraceRecorder *recorder() { return recorder_.get(); }

    MetricsRegistry &metrics() { return metrics_; }

    /** Store the census taken by the collector's mark phase. */
    void setCensus(CensusSnapshot census);

    /** Copy of the latest census (empty() if none taken yet). */
    CensusSnapshot latestCensus() const;

    /** Pause percentiles + SLO budget; always present. */
    PauseSloTracker &pauseSlo() { return pauseSlo_; }
    const PauseSloTracker &pauseSlo() const { return pauseSlo_; }

    /** Cumulative per-assertion-kind mark/finish attribution. */
    AssertCostAttribution &assertCost() { return assertCost_; }
    const AssertCostAttribution &assertCost() const
    {
        return assertCost_;
    }

    /**
     * Flush everything that persists: write the trace file and
     * publish the metrics snapshot. Called from the Runtime
     * destructor and safe to call repeatedly.
     */
    void flush();

  private:
    ObserveConfig config_;
    std::unique_ptr<TraceRecorder> recorder_;
    MetricsRegistry metrics_;
    PauseSloTracker pauseSlo_;
    AssertCostAttribution assertCost_;

    mutable std::mutex censusMutex_;
    CensusSnapshot census_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_TELEMETRY_H
