/**
 * @file
 * Streaming pause-time percentiles and SLO budget tracking.
 *
 * Every stop-the-world pause (full or minor) is recorded into a
 * fixed-size log-linear histogram — no allocation, no sorting, O(1)
 * per pause — from which p50/p99/max are answered on demand by the
 * metric gauges. A configurable budget (ObserveConfig::
 * pauseBudgetNanos, env GCASSERT_PAUSE_BUDGET_US) turns the tracker
 * into an SLO check: a pause that exceeds the budget makes record*()
 * return true and the collector reports a context-only PauseSlo
 * violation through the engine funnel. Budget zero means track-only.
 *
 * Histogram shape: values below 16 ns get exact unit buckets; above
 * that, each power-of-two octave is split into 16 equal sub-buckets,
 * so any reported percentile is within 1/16 (6.25%) of the true
 * value. 976 buckets cover the full uint64_t range in ~7.6 KiB.
 *
 * Thread model: recorded single-threaded inside the pause; read by
 * gauges between pauses (the same relaxed discipline as GcStats).
 */

#ifndef GCASSERT_OBSERVE_PAUSE_SLO_H
#define GCASSERT_OBSERVE_PAUSE_SLO_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace gcassert {

/** Fixed log-linear histogram of nanosecond durations. */
class PauseHistogram {
  public:
    /// 16 unit buckets + 60 octaves x 16 sub-buckets.
    static constexpr size_t kNumBuckets = 976;

    /** Bucket index for @p nanos (0 .. kNumBuckets-1). */
    static size_t bucketIndex(uint64_t nanos);

    /** Inclusive upper bound of bucket @p index. */
    static uint64_t bucketHi(size_t index);

    void record(uint64_t nanos);

    /**
     * Fold @p other's samples into this histogram (bucket counts,
     * count, total and max all add). Lets per-thread recorders — the
     * server workload's request-latency histograms — combine into
     * one percentile view without sharing a histogram on the
     * recording path.
     */
    void merge(const PauseHistogram &other);

    uint64_t count() const { return count_; }
    uint64_t max() const { return max_; }
    uint64_t totalNanos() const { return total_; }

    /**
     * Value at percentile @p p (0-100]: the upper bound of the
     * bucket holding the ceil(p/100 * count)-th smallest sample,
     * clamped to the observed max. Zero when empty.
     */
    uint64_t percentile(double p) const;

    /** {"count":N,"p50":...,"p99":...,"max":...} */
    std::string toJson() const;

  private:
    uint64_t counts_[kNumBuckets] = {};
    uint64_t count_ = 0;
    uint64_t max_ = 0;
    uint64_t total_ = 0;
};

/**
 * Pause-time SLO tracker: one histogram per pause flavour plus the
 * budget check. Owned by Telemetry; fed by the collector at the end
 * of every full and minor collection.
 */
class PauseSloTracker {
  public:
    explicit PauseSloTracker(uint64_t budgetNanos)
        : budgetNanos_(budgetNanos)
    {}

    /**
     * Record a completed pause; returns true when the pause blew a
     * non-zero budget (the caller reports the PauseSlo violation).
     */
    bool recordFull(uint64_t pauseNanos);
    bool recordMinor(uint64_t pauseNanos);

    uint64_t budgetNanos() const { return budgetNanos_; }
    uint64_t violationCount() const { return violations_; }

    const PauseHistogram &full() const { return full_; }
    const PauseHistogram &minor() const { return minor_; }

  private:
    bool record(PauseHistogram &hist, uint64_t pauseNanos);

    uint64_t budgetNanos_;
    uint64_t violations_ = 0;
    PauseHistogram full_;
    PauseHistogram minor_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_PAUSE_SLO_H
