#include "observe/live_server.h"

#include <unistd.h>

#include "observe/telemetry.h"
#include "support/json.h"

namespace gcassert {

namespace {

/** Accept-poll granularity: the ceiling on stop() latency. */
constexpr int kAcceptPollMillis = 100;

} // namespace

LiveTelemetryServer::LiveTelemetryServer(Telemetry &telemetry,
                                         uint32_t configPort)
    : telemetry_(telemetry), configPort_(configPort)
{
}

LiveTelemetryServer::~LiveTelemetryServer()
{
    stop();
}

bool
LiveTelemetryServer::start()
{
    uint16_t requested = configPort_ == kAutoLivePort
        ? 0
        : static_cast<uint16_t>(configPort_);
    if (!listener_.listenLoopback(requested))
        return false;
    port_ = listener_.port();
    // The counter is registered here, on the starting thread, so
    // the serving thread only ever increments a stable pointer.
    telemetry_.metrics().counter("observe.live_requests");
    thread_ = std::thread([this] { run(); });
    return true;
}

void
LiveTelemetryServer::stop()
{
    stopRequested_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    listener_.close();
}

void
LiveTelemetryServer::run()
{
    Counter *served =
        telemetry_.metrics().counter("observe.live_requests");
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        int client = listener_.acceptClient(kAcceptPollMillis);
        if (client < 0)
            continue;
        HttpRequest req;
        if (readHttpRequest(client, req)) {
            int status = 200;
            std::string body = handle(req, status);
            writeHttpResponse(client, status, "application/json",
                              body);
            requests_.fetch_add(1, std::memory_order_relaxed);
            served->increment();
        }
        ::close(client);
    }
}

std::string
LiveTelemetryServer::handle(const HttpRequest &req, int &status)
{
    if (req.method != "GET") {
        status = 400;
        JsonWriter w;
        w.beginObject()
            .field("error", "only GET is supported")
            .endObject();
        return w.str();
    }
    if (req.path == "/metrics")
        return telemetry_.history().latest().toJson();
    if (req.path == "/series")
        return telemetry_.history().seriesJson();
    if (req.path == "/census")
        return telemetry_.latestCensus().toJson();
    if (req.path == "/violations")
        return telemetry_.violationRing().toJson();
    if (req.path == "/why_alive") {
        std::string site = req.queryParam("site");
        if (site.empty()) {
            status = 400;
            JsonWriter w;
            w.beginObject()
                .field("error", "missing ?site=<name> parameter");
            w.key("sites").beginArray();
            for (const std::string &name :
                 telemetry_.sitePathNames())
                w.value(name);
            w.endArray().endObject();
            return w.str();
        }
        SitePathRecord record = telemetry_.sitePath(site);
        if (!record.known)
            status = 404;
        return record.toJson();
    }
    if (req.path == "/") {
        JsonWriter w;
        w.beginObject().key("routes").beginArray();
        w.value("/metrics")
            .value("/series")
            .value("/census")
            .value("/violations")
            .value("/why_alive?site=<name>");
        w.endArray().endObject();
        return w.str();
    }
    status = 404;
    JsonWriter w;
    w.beginObject().field("error", "unknown route: " + req.path);
    w.endObject();
    return w.str();
}

} // namespace gcassert
