#include "observe/census.h"

#include <algorithm>

#include "support/json.h"

namespace gcassert {

void
CensusSnapshot::sortByBytes()
{
    std::sort(rows.begin(), rows.end(),
              [](const CensusRow &a, const CensusRow &b) {
                  if (a.liveBytes != b.liveBytes)
                      return a.liveBytes > b.liveBytes;
                  return a.typeName < b.typeName;
              });
}

std::string
CensusSnapshot::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("gc", gcNumber)
        .field("totalObjects", totalObjects)
        .field("totalBytes", totalBytes)
        .key("rows")
        .beginArray();
    for (const CensusRow &row : rows) {
        w.beginObject()
            .field("type", row.typeName)
            .field("objects", row.liveObjects)
            .field("bytes", row.liveBytes)
            .endObject();
    }
    w.endArray().endObject();
    return w.str();
}

std::string
CensusSnapshot::topRowsJson(size_t n) const
{
    JsonWriter w;
    w.beginArray();
    size_t count = std::min(n, rows.size());
    for (size_t i = 0; i < count; ++i) {
        w.beginObject()
            .field("type", rows[i].typeName)
            .field("objects", rows[i].liveObjects)
            .field("bytes", rows[i].liveBytes)
            .endObject();
    }
    w.endArray();
    return w.str();
}

} // namespace gcassert
