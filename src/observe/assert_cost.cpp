#include "observe/assert_cost.h"

#include "support/json.h"

namespace gcassert {

const char *
assertCostKindName(AssertCostKind kind)
{
    switch (kind) {
      case AssertCostKind::Dead: return "dead";
      case AssertCostKind::AllDead: return "alldead";
      case AssertCostKind::Instances: return "instances";
      case AssertCostKind::Unshared: return "unshared";
      case AssertCostKind::OwnedBy: return "ownedby";
      case AssertCostKind::Other: return "other";
    }
    return "?";
}

uint64_t
AssertCostTallies::checkedNanos() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < kNumAssertCostKinds; ++i) {
        if (static_cast<AssertCostKind>(i) != AssertCostKind::Other)
            sum += nanos[i];
    }
    return sum;
}

void
AssertCostTallies::merge(const AssertCostTallies &other)
{
    for (size_t i = 0; i < kNumAssertCostKinds; ++i)
        nanos[i] += other.nanos[i];
}

void
AssertCostTallies::setOtherFromSpan(uint64_t spanNanos)
{
    uint64_t checked = checkedNanos();
    nanos[static_cast<size_t>(AssertCostKind::Other)] =
        spanNanos > checked ? spanNanos - checked : 0;
}

std::string
AssertCostTallies::toJson() const
{
    JsonWriter w;
    w.beginObject();
    for (size_t i = 0; i < kNumAssertCostKinds; ++i)
        w.field(assertCostKindName(static_cast<AssertCostKind>(i)),
                nanos[i]);
    w.endObject();
    return w.str();
}

void
AssertCostAttribution::addMark(const AssertCostTallies &tallies)
{
    mark_.merge(tallies);
}

void
AssertCostAttribution::addFinish(const AssertCostTallies &tallies)
{
    finish_.merge(tallies);
}

uint64_t
AssertCostAttribution::markNanos(AssertCostKind kind) const
{
    return mark_.get(kind);
}

uint64_t
AssertCostAttribution::finishNanos(AssertCostKind kind) const
{
    return finish_.get(kind);
}

uint64_t
AssertCostAttribution::totalNanos() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < kNumAssertCostKinds; ++i)
        sum += mark_.nanos[i] + finish_.nanos[i];
    return sum;
}

} // namespace gcassert
