#include "observe/telemetry.h"

#include <cstdlib>

namespace gcassert {

namespace {

/** Cached env-string reader (same pattern as runtime/config.cpp:
 *  the environment is sampled once, first use wins). */
std::string
envString(const char *name)
{
    const char *raw = std::getenv(name);
    return raw ? std::string(raw) : std::string();
}

uint32_t
envUint(const char *name, uint32_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(raw, &end, 10);
    if (end == raw || *end != '\0')
        return fallback;
    return static_cast<uint32_t>(v);
}

} // namespace

std::string
defaultTraceFile()
{
    static const std::string value = envString("GCASSERT_TRACE_FILE");
    return value;
}

std::string
defaultMetricsSink()
{
    static const std::string value = envString("GCASSERT_METRICS");
    return value;
}

uint32_t
defaultCensusEvery()
{
    static const uint32_t value = envUint("GCASSERT_CENSUS_EVERY", 0);
    return value;
}

Telemetry::Telemetry(ObserveConfig config) : config_(std::move(config))
{
    if (!config_.traceFile.empty())
        recorder_ = std::make_unique<TraceRecorder>(config_.traceFile);
}

void
Telemetry::setCensus(CensusSnapshot census)
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    census_ = std::move(census);
}

CensusSnapshot
Telemetry::latestCensus() const
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    return census_;
}

void
Telemetry::flush()
{
    if (recorder_)
        recorder_->flush();
    metrics_.publish(config_.metricsSink);
}

} // namespace gcassert
