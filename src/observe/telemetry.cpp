#include "observe/telemetry.h"

#include "support/env.h"

namespace gcassert {

// Defaults cache the environment on first read (same pattern as
// runtime/config.cpp) and parse through the shared validating
// envUint(), which warns once per malformed variable.

std::string
defaultTraceFile()
{
    static const std::string value = envString("GCASSERT_TRACE_FILE");
    return value;
}

std::string
defaultMetricsSink()
{
    static const std::string value = envString("GCASSERT_METRICS");
    return value;
}

uint32_t
defaultCensusEvery()
{
    static const uint32_t value =
        static_cast<uint32_t>(envUint("GCASSERT_CENSUS_EVERY", 0));
    return value;
}

uint64_t
defaultPauseBudgetNanos()
{
    // The env knob is in microseconds — nobody types a pause budget
    // in nanoseconds — but the config field stays in nanos like
    // every other duration in the codebase.
    static const uint64_t value =
        envUint("GCASSERT_PAUSE_BUDGET_US", 0) * 1000;
    return value;
}

Telemetry::Telemetry(ObserveConfig config)
    : config_(std::move(config)), pauseSlo_(config_.pauseBudgetNanos)
{
    if (!config_.traceFile.empty())
        recorder_ = std::make_unique<TraceRecorder>(config_.traceFile);
}

void
Telemetry::setCensus(CensusSnapshot census)
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    census_ = std::move(census);
}

CensusSnapshot
Telemetry::latestCensus() const
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    return census_;
}

void
Telemetry::flush()
{
    if (recorder_)
        recorder_->flush();
    metrics_.publish(config_.metricsSink);
}

} // namespace gcassert
