#include "observe/telemetry.h"

#include <algorithm>

#include "support/env.h"
#include "support/json.h"
#include "support/logging.h"

namespace gcassert {

// Defaults cache the environment on first read (same pattern as
// runtime/config.cpp) and parse through the shared validating
// envUint(), which warns once per malformed variable.

std::string
defaultTraceFile()
{
    static const std::string value = envString("GCASSERT_TRACE_FILE");
    return value;
}

std::string
defaultMetricsSink()
{
    static const std::string value = envString("GCASSERT_METRICS");
    return value;
}

uint32_t
defaultCensusEvery()
{
    static const uint32_t value =
        static_cast<uint32_t>(envUint("GCASSERT_CENSUS_EVERY", 0));
    return value;
}

uint64_t
defaultPauseBudgetNanos()
{
    // The env knob is in microseconds — nobody types a pause budget
    // in nanoseconds — but the config field stays in nanos like
    // every other duration in the codebase.
    static const uint64_t value =
        envUint("GCASSERT_PAUSE_BUDGET_US", 0) * 1000;
    return value;
}

uint32_t
defaultLivePort()
{
    // "auto" is the one non-numeric value: bind an ephemeral port
    // and let Runtime::livePort() report where it landed. Anything
    // out of port range falls back to off, loudly.
    static const uint32_t value = [] {
        std::string raw = envString("GCASSERT_LIVE_PORT");
        if (raw.empty())
            return 0u;
        if (raw == "auto")
            return kAutoLivePort;
        uint64_t port = envUint("GCASSERT_LIVE_PORT", 0);
        if (port > 65535) {
            warn("GCASSERT_LIVE_PORT=" + raw +
                 " is out of range (1-65535 or \"auto\"); endpoint "
                 "disabled");
            return 0u;
        }
        return static_cast<uint32_t>(port);
    }();
    return value;
}

uint32_t
defaultLiveHistory()
{
    static const uint32_t value =
        static_cast<uint32_t>(envUint("GCASSERT_LIVE_HISTORY", 64));
    return value;
}

uint32_t
defaultViolationRingCap()
{
    static const uint32_t value =
        static_cast<uint32_t>(envUint("GCASSERT_VIOLATION_RING", 256));
    return value;
}

uint32_t
defaultTraceFlushMillis()
{
    static const uint32_t value =
        static_cast<uint32_t>(envUint("GCASSERT_TRACE_FLUSH_MS", 0));
    return value;
}

std::string
SitePathRecord::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("site", site)
        .field("known", known)
        .field("gc", gcNumber)
        .field("rootReached", rootReached)
        .field("saturated", saturated);
    w.key("path").beginArray();
    for (const std::string &hop : path)
        w.value(hop);
    w.endArray().endObject();
    return w.str();
}

Telemetry::Telemetry(ObserveConfig config)
    : config_(std::move(config)), pauseSlo_(config_.pauseBudgetNanos),
      history_(config_.liveHistory),
      violations_(config_.violationRingCap)
{
    if (!config_.traceFile.empty()) {
        recorder_ = std::make_unique<TraceRecorder>(config_.traceFile);
        // Time-based flushing keeps the on-disk trace current
        // mid-run; an armed live endpoint implies "watchable", so
        // it defaults the cadence on.
        uint64_t millis = config_.traceFlushMillis;
        if (millis == 0 && config_.livePort != 0)
            millis = 1000;
        if (millis != 0)
            recorder_->setFlushIntervalNanos(millis * 1000000ull);
    }
}

void
Telemetry::setCensus(CensusSnapshot census)
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    census_ = std::move(census);
}

CensusSnapshot
Telemetry::latestCensus() const
{
    std::lock_guard<std::mutex> lock(censusMutex_);
    return census_;
}

uint64_t
Telemetry::publishSnapshot(uint64_t gcNumber)
{
    uint64_t seq =
        history_.publish(gcNumber, traceNowNanos(), metrics_.snapshot());
    if (recorder_)
        recorder_->maybePeriodicFlush(traceNowNanos());
    return seq;
}

void
Telemetry::publishSitePaths(std::vector<SitePathRecord> paths)
{
    std::lock_guard<std::mutex> lock(sitePathMutex_);
    for (SitePathRecord &record : paths)
        sitePaths_[record.site] = std::move(record);
}

SitePathRecord
Telemetry::sitePath(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(sitePathMutex_);
    auto it = sitePaths_.find(site);
    if (it != sitePaths_.end())
        return it->second;
    SitePathRecord stub;
    stub.site = site;
    return stub;
}

std::vector<std::string>
Telemetry::sitePathNames() const
{
    std::lock_guard<std::mutex> lock(sitePathMutex_);
    std::vector<std::string> names;
    names.reserve(sitePaths_.size());
    for (const auto &[name, record] : sitePaths_)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

void
Telemetry::flush()
{
    if (recorder_)
        recorder_->flush();
    metrics_.publish(config_.metricsSink, history_.latestSeq());
}

} // namespace gcassert
