/**
 * @file
 * Chrome trace_event recorder for GC pauses.
 *
 * The collector emits one complete ("X") span per GC phase —
 * lazy-finish, ownership scan, mark, finish, sweep, and whole
 * minor/full pauses — plus per-worker sub-spans for the parallel
 * mark and sweep workers, and instant ("i") events for assertion
 * violations. The resulting file loads directly in Perfetto or
 * chrome://tracing.
 *
 * Recording is lock-cheap by design: spans are appended to a
 * mutex-guarded vector, but *only from inside a stop-the-world
 * pause* (or from the single mutator thread between pauses), so
 * the mutex is effectively uncontended; the collector's hot loops
 * never touch the recorder at all — phase boundaries capture two
 * timestamps and append one event.
 *
 * The buffer is bounded: once it holds maxBuffered() events they
 * are flushed to the configured file and the memory is reused, so
 * a long run's trace no longer accumulates in the heap (and a
 * crash loses at most one buffer of events, not the whole trace).
 * Flushing is incremental — the first flush writes a complete
 * {"traceEvents":[...]} document and later flushes splice new
 * events in before the closing brackets — so the file on disk is
 * valid Chrome-trace JSON after every flush, mid-run included.
 */

#ifndef GCASSERT_OBSERVE_TRACE_RECORDER_H
#define GCASSERT_OBSERVE_TRACE_RECORDER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcassert {

/** Monotonic wall-clock in nanoseconds (steady_clock based). */
uint64_t traceNowNanos();

/** One recorded trace event (Chrome trace_event semantics). */
struct TraceEvent {
    std::string name; //!< e.g. "mark", "full_gc", "mark_worker"
    std::string cat;  //!< e.g. "gc", "gc.worker", "violation"
    char ph;          //!< 'X' complete span, 'i' instant
    uint64_t tsNanos; //!< start (epoch-relative, see recorder)
    uint64_t durNanos;
    uint32_t tid;       //!< 0 = collector/mutator thread, 1..N workers
    std::string argsJson; //!< verbatim JSON object, "" for none
};

/**
 * Accumulates trace events in a bounded buffer and spills them
 * incrementally to a Chrome trace JSON document
 * ({"traceEvents": [...]}).
 *
 * Timestamps are stored relative to the recorder's construction so
 * traces start near t=0 regardless of process uptime.
 */
class TraceRecorder {
  public:
    /** Default buffer bound (events) before an automatic flush. */
    static constexpr size_t kDefaultMaxBuffered = 4096;

    explicit TraceRecorder(std::string path);

    /** Record a complete span covering [beginNanos, endNanos]. */
    void complete(const char *name, const char *cat, uint64_t beginNanos,
                  uint64_t endNanos, uint32_t tid,
                  std::string argsJson = "");

    /** Record an instant event at @p tsNanos. */
    void instant(const char *name, const char *cat, uint64_t tsNanos,
                 std::string argsJson = "");

    /** Append the buffered events to the configured path, leaving a
     *  valid JSON document. Returns false (and warns) if the file
     *  cannot be written. Idempotent — an empty buffer still ensures
     *  the document exists. */
    bool flush();

    /** Serialize the FULL event history — flushed and buffered — to
     *  a string (testing / in-memory consumers). */
    std::string toJson() const;

    const std::string &path() const { return path_; }

    /** Events recorded over the recorder's lifetime (flushed +
     *  still buffered). */
    size_t eventCount() const;

    /** Events flushed to the file so far. */
    size_t flushedCount() const;

    size_t maxBuffered() const { return maxBuffered_; }

    /** Reconfigure the buffer bound; values < 1 clamp to 1. */
    void setMaxBuffered(size_t maxBuffered);

    /**
     * Arm time-based flushing: maybePeriodicFlush() writes the
     * buffer out once at least @p nanos have passed since the last
     * flush (of either kind), so the on-disk trace stays current
     * mid-run even when the event rate is too low to fill the
     * buffer. 0 (the default) keeps size-based flushing only.
     */
    void setFlushIntervalNanos(uint64_t nanos);

    uint64_t flushIntervalNanos() const;

    /**
     * Flush if the configured interval has elapsed since the last
     * flush. Called from publish points (full-GC epilogue, periodic
     * workload publishes) — never from the endpoint thread. Returns
     * true when a flush was performed.
     */
    bool maybePeriodicFlush(uint64_t nowNanos);

  private:
    /** One event as a JSON object (no surrounding punctuation). */
    static std::string serializeEvent(const TraceEvent &ev);

    /** flush() body; requires mutex_ held. */
    bool flushLocked();

    std::string path_;
    uint64_t epochNanos_;
    size_t maxBuffered_ = kDefaultMaxBuffered;
    /** Time-based flush cadence; 0 = size-based flushing only. */
    uint64_t flushIntervalNanos_ = 0;
    /** Absolute traceNowNanos() of the most recent flush. */
    uint64_t lastFlushNanos_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    /** Events already written to the file. */
    size_t flushedCount_ = 0;
    /** True once the file holds a complete document. */
    bool fileStarted_ = false;
    /** File offset of the closing "]}" — where the next flush
     *  splices in. */
    long tailOffset_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_TRACE_RECORDER_H
