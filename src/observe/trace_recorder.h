/**
 * @file
 * Chrome trace_event recorder for GC pauses.
 *
 * The collector emits one complete ("X") span per GC phase —
 * lazy-finish, ownership scan, mark, finish, sweep, and whole
 * minor/full pauses — plus per-worker sub-spans for the parallel
 * mark and sweep workers, and instant ("i") events for assertion
 * violations. The resulting file loads directly in Perfetto or
 * chrome://tracing.
 *
 * Recording is lock-cheap by design: spans are appended to a
 * mutex-guarded vector, but *only from inside a stop-the-world
 * pause* (or from the single mutator thread between pauses), so
 * the mutex is effectively uncontended; the collector's hot loops
 * never touch the recorder at all — phase boundaries capture two
 * timestamps and append one event.
 */

#ifndef GCASSERT_OBSERVE_TRACE_RECORDER_H
#define GCASSERT_OBSERVE_TRACE_RECORDER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gcassert {

/** Monotonic wall-clock in nanoseconds (steady_clock based). */
uint64_t traceNowNanos();

/** One recorded trace event (Chrome trace_event semantics). */
struct TraceEvent {
    std::string name; //!< e.g. "mark", "full_gc", "mark_worker"
    std::string cat;  //!< e.g. "gc", "gc.worker", "violation"
    char ph;          //!< 'X' complete span, 'i' instant
    uint64_t tsNanos; //!< start (epoch-relative, see recorder)
    uint64_t durNanos;
    uint32_t tid;       //!< 0 = collector/mutator thread, 1..N workers
    std::string argsJson; //!< verbatim JSON object, "" for none
};

/**
 * Accumulates trace events in memory; flush() serializes them as a
 * Chrome trace JSON document ({"traceEvents": [...]}).
 *
 * Timestamps are stored relative to the recorder's construction so
 * traces start near t=0 regardless of process uptime.
 */
class TraceRecorder {
  public:
    explicit TraceRecorder(std::string path);

    /** Record a complete span covering [beginNanos, endNanos]. */
    void complete(const char *name, const char *cat, uint64_t beginNanos,
                  uint64_t endNanos, uint32_t tid,
                  std::string argsJson = "");

    /** Record an instant event at @p tsNanos. */
    void instant(const char *name, const char *cat, uint64_t tsNanos,
                 std::string argsJson = "");

    /** Serialize all events to the configured path. Returns false
     *  (and warns) if the file cannot be written. Idempotent —
     *  re-flushing after new events rewrites the whole file. */
    bool flush();

    /** Serialize to a string (testing / in-memory consumers). */
    std::string toJson() const;

    const std::string &path() const { return path_; }
    size_t eventCount() const;

  private:
    std::string path_;
    uint64_t epochNanos_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_TRACE_RECORDER_H
