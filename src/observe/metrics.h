/**
 * @file
 * Named metrics registry: monotonic counters (push) and gauges
 * (pull) with a pluggable sink.
 *
 * Design: the collector/heap/barrier hot paths already accumulate
 * into cheap local state (GcStats fields, Heap atomics, barrier
 * tallies). Rather than replace those with registry lookups — which
 * would put a hash probe on the hot path — the registry reads them:
 *
 *  - **Gauges** are pull-based: a std::function sampled at
 *    snapshot() time. Existing accumulators (GcStats, Heap byte
 *    counters, remset sizes) are exposed as gauges, so GcStats
 *    stays exactly what it is today and becomes *one consumer view*
 *    of the registry rather than a parallel bookkeeping scheme.
 *  - **Counters** are push-based atomics for the slow paths that
 *    had no accounting at all (barrier slow hits, blocks minted,
 *    trace flushes); callers hold a Counter* and increment it
 *    directly — no name lookup after registration.
 *
 * Sink semantics (GCASSERT_METRICS): "" disables; "stderr" or "1"
 * dumps a JSON snapshot to stderr at runtime teardown; anything
 * else is a file path the snapshot is written to.
 */

#ifndef GCASSERT_OBSERVE_METRICS_H
#define GCASSERT_OBSERVE_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gcassert {

/** Monotonic counter; incremented directly by the owning code. */
class Counter {
  public:
    void add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    void increment() { add(1); }
    uint64_t get() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** One sampled metric value. */
struct MetricSample {
    std::string name;
    uint64_t value;
    bool monotonic; //!< true for counters, false for gauges
};

/**
 * Registry of counters and gauges. Registration happens at runtime
 * construction (single-threaded); sampling happens outside pauses.
 * Counter increments are lock-free; the registry mutex only guards
 * the registration lists.
 */
class MetricsRegistry {
  public:
    /** Register (or fetch) a counter by name. The returned pointer
     *  is stable for the registry's lifetime. */
    Counter *counter(const std::string &name);

    /** Register a pull gauge sampled at snapshot() time. */
    void gauge(const std::string &name, std::function<uint64_t()> read);

    /** Sample every metric (counters first, then gauges), sorted by
     *  name within each class. */
    std::vector<MetricSample> snapshot() const;

    /** Snapshot serialized as a JSON object:
     *  {"counters": {...}, "gauges": {...}}. */
    std::string toJson() const;

    /** As toJson(), with a leading "seq" field naming the last
     *  published live-endpoint snapshot this teardown document
     *  corresponds to (0 = none was ever published). */
    std::string toJson(uint64_t seq) const;

    /**
     * Write toJson() per the sink spec ("stderr"/"1" or a path).
     * File sinks are written to a temporary sibling and atomically
     * renamed into place, so a crash mid-write never leaves a
     * truncated document behind the configured path. Returns false
     * on write failure.
     */
    bool publish(const std::string &sink) const;

    /** As publish(), emitting the seq-stamped document. */
    bool publish(const std::string &sink, uint64_t seq) const;

  private:
    /** toJson body; writes "seq" only when @p withSeq. */
    std::string toJsonImpl(bool withSeq, uint64_t seq) const;

    /** publish body for an already-rendered document. */
    static bool publishDoc(const std::string &sink,
                           const std::string &doc);

    struct NamedCounter {
        std::string name;
        std::unique_ptr<Counter> counter;
    };
    struct NamedGauge {
        std::string name;
        std::function<uint64_t()> read;
    };

    mutable std::mutex mutex_;
    std::vector<NamedCounter> counters_;
    std::vector<NamedGauge> gauges_;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_METRICS_H
