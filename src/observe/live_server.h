/**
 * @file
 * Live telemetry endpoint: a background expvar-style HTTP/1.0
 * server over a loopback-only TCP socket, serving the telemetry
 * bundle's *published* state as JSON while the runtime runs.
 *
 * Routes (all GET, all application/json):
 *  - /            index: the route list
 *  - /metrics     newest published metrics snapshot (seq-stamped;
 *                 includes the gc.pause.* percentile gauges)
 *  - /series      the snapshot-history ring, oldest first
 *  - /census      latest heap census (top rows included)
 *  - /violations  the bounded recent-violations ring
 *  - /why_alive?site=<name>
 *                 published rootward path for a named allocation
 *                 site (404 with known:false when unpublished)
 *
 * Threading contract (the whole point of the design): the serving
 * thread NEVER takes the runtime lock and never samples gauges — it
 * only reads immutable copies that publishers pushed at phase
 * boundaries (full-GC epilogue, Runtime::publishTelemetry), each
 * behind its own small mutex. A slow or stalled client therefore
 * cannot extend a GC pause, and the endpoint adds no code to the
 * collector's hot paths.
 *
 * Security: the listener binds 127.0.0.1 only; the endpoint is
 * intentionally unreachable from off-host. Everything is off by
 * default (ObserveConfig::livePort == 0).
 */

#ifndef GCASSERT_OBSERVE_LIVE_SERVER_H
#define GCASSERT_OBSERVE_LIVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "support/net.h"

namespace gcassert {

class Telemetry;

/**
 * The endpoint server. Owned by Runtime (created when
 * ObserveConfig::livePort != 0); start() spawns the serving thread,
 * stop() (or destruction) joins it. Connections are served one at a
 * time — the expected client is a dashboard poller or a curl, not a
 * load balancer — with short socket timeouts so a stalled client
 * cannot wedge the thread.
 */
class LiveTelemetryServer {
  public:
    /**
     * @param telemetry  The bundle whose published state is served;
     *                   must outlive the server.
     * @param configPort ObserveConfig::livePort: 1..65535 for a
     *                   fixed port, kAutoLivePort for ephemeral.
     */
    LiveTelemetryServer(Telemetry &telemetry, uint32_t configPort);
    ~LiveTelemetryServer();

    LiveTelemetryServer(const LiveTelemetryServer &) = delete;
    LiveTelemetryServer &operator=(const LiveTelemetryServer &) = delete;

    /** Bind and spawn the serving thread. False when the bind
     *  fails (port taken); the runtime then runs without the
     *  endpoint rather than failing. */
    bool start();

    /** Stop and join the serving thread; idempotent. */
    void stop();

    /** The bound port (the ephemeral answer for "auto"); 0 before
     *  a successful start(). */
    uint16_t port() const { return port_; }

    /** Requests served so far (also the observe.live_requests
     *  counter when metrics are being published). */
    uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    void run();

    /** Route @p req; fills @p status and returns the JSON body. */
    std::string handle(const HttpRequest &req, int &status);

    Telemetry &telemetry_;
    uint32_t configPort_;
    TcpListener listener_;
    std::thread thread_;
    std::atomic<bool> stopRequested_{false};
    std::atomic<uint64_t> requests_{0};
    uint16_t port_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_LIVE_SERVER_H
