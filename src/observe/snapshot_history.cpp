#include "observe/snapshot_history.h"

#include "support/json.h"

namespace gcassert {

namespace {

/** Append the counters/gauges split of @p samples to an open
 *  object frame (the same shape as MetricsRegistry::toJson). */
void
appendSampleFields(JsonWriter &w,
                   const std::vector<MetricSample> &samples)
{
    w.key("counters").beginObject();
    for (const MetricSample &s : samples)
        if (s.monotonic)
            w.field(s.name, s.value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const MetricSample &s : samples)
        if (!s.monotonic)
            w.field(s.name, s.value);
    w.endObject();
}

} // namespace

std::string
PublishedSnapshot::toJson() const
{
    JsonWriter w;
    w.beginObject()
        .field("seq", seq)
        .field("gc", gcNumber)
        .field("wallNanos", wallNanos);
    appendSampleFields(w, samples);
    w.endObject();
    return w.str();
}

SnapshotHistory::SnapshotHistory(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

uint64_t
SnapshotHistory::publish(uint64_t gcNumber, uint64_t wallNanos,
                         std::vector<MetricSample> samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PublishedSnapshot snap;
    snap.seq = nextSeq_++;
    snap.gcNumber = gcNumber;
    snap.wallNanos = wallNanos;
    snap.samples = std::move(samples);
    ring_.push_back(std::move(snap));
    if (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return ring_.back().seq;
}

PublishedSnapshot
SnapshotHistory::latest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.empty() ? PublishedSnapshot{} : ring_.back();
}

uint64_t
SnapshotHistory::latestSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.empty() ? 0 : ring_.back().seq;
}

std::vector<PublishedSnapshot>
SnapshotHistory::series() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {ring_.begin(), ring_.end()};
}

std::string
SnapshotHistory::seriesJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.beginObject()
        .field("capacity", uint64_t{capacity_})
        .field("dropped", dropped_.load(std::memory_order_relaxed));
    w.key("snapshots").beginArray();
    for (const PublishedSnapshot &snap : ring_) {
        w.beginObject()
            .field("seq", snap.seq)
            .field("gc", snap.gcNumber)
            .field("wallNanos", snap.wallNanos);
        appendSampleFields(w, snap.samples);
        w.endObject();
    }
    w.endArray().endObject();
    return w.str();
}

size_t
SnapshotHistory::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

ViolationRing::ViolationRing(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
ViolationRing::push(std::string kind, uint64_t gcNumber,
                    std::string message)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ViolationRecord rec;
    rec.seq = nextSeq_++;
    rec.kind = std::move(kind);
    rec.gcNumber = gcNumber;
    rec.message = std::move(message);
    ring_.push_back(std::move(rec));
    pushed_.fetch_add(1, std::memory_order_relaxed);
    if (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::vector<ViolationRecord>
ViolationRing::recent() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {ring_.begin(), ring_.end()};
}

std::string
ViolationRing::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.beginObject()
        .field("capacity", uint64_t{capacity_})
        .field("dropped", dropped_.load(std::memory_order_relaxed))
        .field("total", pushed_.load(std::memory_order_relaxed));
    w.key("violations").beginArray();
    for (const ViolationRecord &rec : ring_) {
        w.beginObject()
            .field("seq", rec.seq)
            .field("kind", rec.kind)
            .field("gc", rec.gcNumber)
            .field("message", rec.message)
            .endObject();
    }
    w.endArray().endObject();
    return w.str();
}

size_t
ViolationRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

} // namespace gcassert
