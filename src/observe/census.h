/**
 * @file
 * Heap census: live objects/bytes per TypeDescriptor, tallied
 * during the collector's existing mark traversal (zero extra
 * passes) and snapshotted at the end of a full GC.
 *
 * The collector owns the dense per-TypeId tally arrays (they ride
 * the mark hot loop); this module is the snapshot container and its
 * JSON export. A census runs on demand (Runtime::requestCensus) or
 * every N full GCs (GCASSERT_CENSUS_EVERY / ObserveConfig), and the
 * latest snapshot also backs violation provenance and the
 * assert-instances debugging report.
 */

#ifndef GCASSERT_OBSERVE_CENSUS_H
#define GCASSERT_OBSERVE_CENSUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {

/** Per-type row of a census snapshot. */
struct CensusRow {
    std::string typeName;
    uint64_t liveObjects;
    uint64_t liveBytes;
};

/** A complete census: one row per type with live instances. */
struct CensusSnapshot {
    uint64_t gcNumber = 0; //!< full GC that produced this census
    std::vector<CensusRow> rows;
    uint64_t totalObjects = 0;
    uint64_t totalBytes = 0;

    bool empty() const { return rows.empty() && gcNumber == 0; }

    /** Rows sorted by descending liveBytes (report order). */
    void sortByBytes();

    /** {"gc": N, "totalObjects": ..., "rows": [...]}. */
    std::string toJson() const;

    /** Compact fragment of the top @p n rows, for embedding in
     *  violation provenance:
     *  [{"type": ..., "objects": ..., "bytes": ...}, ...]. */
    std::string topRowsJson(size_t n) const;
};

} // namespace gcassert

#endif // GCASSERT_OBSERVE_CENSUS_H
