#include "observe/pause_slo.h"

#include <bit>
#include <cmath>

#include "support/json.h"

namespace gcassert {

size_t
PauseHistogram::bucketIndex(uint64_t nanos)
{
    if (nanos < 16)
        return static_cast<size_t>(nanos);
    // Highest set bit selects the octave; the next four bits select
    // the sub-bucket within it. Octave msb starts at index
    // (msb-3)*16 so the unit buckets hand over seamlessly at 16.
    int msb = 63 - std::countl_zero(nanos);
    size_t sub = static_cast<size_t>(nanos >> (msb - 4)) & 0xF;
    return static_cast<size_t>(msb - 3) * 16 + sub;
}

uint64_t
PauseHistogram::bucketHi(size_t index)
{
    if (index < 16)
        return index;
    int msb = static_cast<int>(index / 16) + 3;
    uint64_t sub = index % 16;
    uint64_t width = uint64_t(1) << (msb - 4);
    uint64_t lo = (uint64_t(1) << msb) + sub * width;
    return lo + width - 1;
}

void
PauseHistogram::record(uint64_t nanos)
{
    ++counts_[bucketIndex(nanos)];
    ++count_;
    total_ += nanos;
    if (nanos > max_)
        max_ = nanos;
}

void
PauseHistogram::merge(const PauseHistogram &other)
{
    for (size_t i = 0; i < kNumBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    total_ += other.total_;
    if (other.max_ > max_)
        max_ = other.max_;
}

uint64_t
PauseHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    auto target = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (target < 1)
        target = 1;
    if (target > count_)
        target = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        seen += counts_[i];
        if (seen >= target) {
            uint64_t hi = bucketHi(i);
            return hi < max_ ? hi : max_;
        }
    }
    return max_;
}

std::string
PauseHistogram::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("count", count_);
    w.field("p50", percentile(50.0));
    w.field("p99", percentile(99.0));
    w.field("max", max_);
    w.endObject();
    return w.str();
}

bool
PauseSloTracker::record(PauseHistogram &hist, uint64_t pauseNanos)
{
    hist.record(pauseNanos);
    bool over = budgetNanos_ != 0 && pauseNanos > budgetNanos_;
    if (over)
        ++violations_;
    return over;
}

bool
PauseSloTracker::recordFull(uint64_t pauseNanos)
{
    return record(full_, pauseNanos);
}

bool
PauseSloTracker::recordMinor(uint64_t pauseNanos)
{
    return record(minor_, pauseNanos);
}

} // namespace gcassert
