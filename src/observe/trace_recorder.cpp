#include "observe/trace_recorder.h"

#include <chrono>
#include <cstdio>

#include "support/json.h"
#include "support/logging.h"

namespace gcassert {

uint64_t
traceNowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

TraceRecorder::TraceRecorder(std::string path)
    : path_(std::move(path)), epochNanos_(traceNowNanos())
{
}

void
TraceRecorder::complete(const char *name, const char *cat,
                        uint64_t beginNanos, uint64_t endNanos,
                        uint32_t tid, std::string argsJson)
{
    uint64_t rel = beginNanos > epochNanos_ ? beginNanos - epochNanos_ : 0;
    uint64_t dur = endNanos > beginNanos ? endNanos - beginNanos : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(TraceEvent{name, cat, 'X', rel, dur, tid,
                                 std::move(argsJson)});
}

void
TraceRecorder::instant(const char *name, const char *cat, uint64_t tsNanos,
                       std::string argsJson)
{
    uint64_t rel = tsNanos > epochNanos_ ? tsNanos - epochNanos_ : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        TraceEvent{name, cat, 'i', rel, 0, 0, std::move(argsJson)});
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
TraceRecorder::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    for (const TraceEvent &ev : events_) {
        w.beginObject()
            .field("name", ev.name)
            .field("cat", ev.cat)
            .field("ph", std::string(1, ev.ph))
            // trace_event timestamps are microseconds; keep sub-µs
            // resolution as a fraction (Perfetto accepts doubles).
            .field("ts", static_cast<double>(ev.tsNanos) / 1000.0)
            .field("pid", uint64_t{1})
            .field("tid", uint64_t{ev.tid});
        if (ev.ph == 'X')
            w.field("dur", static_cast<double>(ev.durNanos) / 1000.0);
        if (ev.ph == 'i')
            w.field("s", "t"); // thread-scoped instant
        if (!ev.argsJson.empty())
            w.key("args").valueRaw(ev.argsJson);
        w.endObject();
    }
    w.endArray().endObject();
    return w.str();
}

bool
TraceRecorder::flush()
{
    if (path_.empty())
        return false;
    std::string doc = toJson();
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("trace recorder: cannot open '" + path_ + "' for writing");
        return false;
    }
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size()) {
        warn("trace recorder: short write to '" + path_ + "'");
        return false;
    }
    return true;
}

} // namespace gcassert
