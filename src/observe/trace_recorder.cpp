#include "observe/trace_recorder.h"

#include <chrono>
#include <cstdio>

#include "support/json.h"
#include "support/logging.h"

namespace gcassert {

uint64_t
traceNowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

TraceRecorder::TraceRecorder(std::string path)
    : path_(std::move(path)), epochNanos_(traceNowNanos()),
      lastFlushNanos_(epochNanos_)
{
}

void
TraceRecorder::setMaxBuffered(size_t maxBuffered)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxBuffered_ = maxBuffered ? maxBuffered : 1;
}

void
TraceRecorder::setFlushIntervalNanos(uint64_t nanos)
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushIntervalNanos_ = nanos;
}

uint64_t
TraceRecorder::flushIntervalNanos() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushIntervalNanos_;
}

bool
TraceRecorder::maybePeriodicFlush(uint64_t nowNanos)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (flushIntervalNanos_ == 0 || path_.empty())
        return false;
    if (nowNanos < lastFlushNanos_ + flushIntervalNanos_)
        return false;
    return flushLocked();
}

void
TraceRecorder::complete(const char *name, const char *cat,
                        uint64_t beginNanos, uint64_t endNanos,
                        uint32_t tid, std::string argsJson)
{
    uint64_t rel = beginNanos > epochNanos_ ? beginNanos - epochNanos_ : 0;
    uint64_t dur = endNanos > beginNanos ? endNanos - beginNanos : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(TraceEvent{name, cat, 'X', rel, dur, tid,
                                 std::move(argsJson)});
    if (!path_.empty() && events_.size() >= maxBuffered_)
        flushLocked();
}

void
TraceRecorder::instant(const char *name, const char *cat, uint64_t tsNanos,
                       std::string argsJson)
{
    uint64_t rel = tsNanos > epochNanos_ ? tsNanos - epochNanos_ : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        TraceEvent{name, cat, 'i', rel, 0, 0, std::move(argsJson)});
    if (!path_.empty() && events_.size() >= maxBuffered_)
        flushLocked();
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushedCount_ + events_.size();
}

size_t
TraceRecorder::flushedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushedCount_;
}

std::string
TraceRecorder::serializeEvent(const TraceEvent &ev)
{
    JsonWriter w;
    w.beginObject()
        .field("name", ev.name)
        .field("cat", ev.cat)
        .field("ph", std::string(1, ev.ph))
        // trace_event timestamps are microseconds; keep sub-µs
        // resolution as a fraction (Perfetto accepts doubles).
        .field("ts", static_cast<double>(ev.tsNanos) / 1000.0)
        .field("pid", uint64_t{1})
        .field("tid", uint64_t{ev.tid});
    if (ev.ph == 'X')
        w.field("dur", static_cast<double>(ev.durNanos) / 1000.0);
    if (ev.ph == 'i')
        w.field("s", "t"); // thread-scoped instant
    if (!ev.argsJson.empty())
        w.key("args").valueRaw(ev.argsJson);
    w.endObject();
    return w.str();
}

std::string
TraceRecorder::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    if (flushedCount_ == 0) {
        out = "{\"traceEvents\":[";
    } else {
        // Already-flushed events live only in the file; read it back
        // up to the splice point so the string carries the full
        // history.
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        if (!f) {
            warn("trace recorder: cannot read back '" + path_ + "'");
            out = "{\"traceEvents\":[";
        } else {
            out.resize(static_cast<size_t>(tailOffset_));
            size_t got = std::fread(out.data(), 1, out.size(), f);
            std::fclose(f);
            out.resize(got);
        }
    }
    bool have_prior = out.size() > 0 && out.back() == '}';
    for (const TraceEvent &ev : events_) {
        if (have_prior)
            out += ',';
        out += serializeEvent(ev);
        have_prior = true;
    }
    out += "]}";
    return out;
}

bool
TraceRecorder::flushLocked()
{
    if (path_.empty())
        return false;

    std::string chunk;
    for (size_t i = 0; i < events_.size(); ++i) {
        // A comma is needed unless this event directly follows the
        // opening '[' (flushedCount_, not fileStarted_: an empty
        // first flush leaves a started file with zero events).
        if (flushedCount_ > 0 || i > 0)
            chunk += ',';
        chunk += serializeEvent(events_[i]);
    }

    std::FILE *f = nullptr;
    if (!fileStarted_) {
        f = std::fopen(path_.c_str(), "wb");
        if (!f) {
            warn("trace recorder: cannot open '" + path_ +
                 "' for writing");
            return false;
        }
        std::fputs("{\"traceEvents\":[", f);
    } else {
        // Re-open and overwrite from the splice point: the bytes
        // there are the closing "]}", which the appended chunk
        // re-establishes, so the document is complete again the
        // moment this write lands.
        f = std::fopen(path_.c_str(), "r+b");
        if (!f) {
            warn("trace recorder: cannot re-open '" + path_ +
                 "' for appending");
            return false;
        }
        if (std::fseek(f, tailOffset_, SEEK_SET) != 0) {
            warn("trace recorder: cannot seek in '" + path_ + "'");
            std::fclose(f);
            return false;
        }
    }
    size_t written = std::fwrite(chunk.data(), 1, chunk.size(), f);
    std::fputs("]}", f);
    long tail = std::ftell(f);
    std::fclose(f);
    if (written != chunk.size() || tail < 2) {
        warn("trace recorder: short write to '" + path_ + "'");
        return false;
    }
    tailOffset_ = tail - 2;
    fileStarted_ = true;
    flushedCount_ += events_.size();
    events_.clear();
    // Any successful flush resets the periodic clock — a size-based
    // flush just made the file current, so the timer starts over.
    lastFlushNanos_ = traceNowNanos();
    return true;
}

bool
TraceRecorder::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushLocked();
}

} // namespace gcassert
