/**
 * @file
 * Small string-formatting helpers shared by the reporting code and
 * the bench harness.
 */

#ifndef GCASSERT_SUPPORT_STRUTIL_H
#define GCASSERT_SUPPORT_STRUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Render a byte count as a human-readable string ("12.5 MiB"). */
std::string humanBytes(uint64_t bytes);

/** Render a fraction as a signed percentage string ("+13.4%"). */
std::string percentDelta(double ratio);

/** Left-pad/truncate @p s to exactly @p width columns. */
std::string padRight(const std::string &s, size_t width);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_STRUTIL_H
