/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * property tests.
 *
 * Workloads must be reproducible run-to-run so that Base /
 * Infrastructure / WithAssertions configurations execute identical
 * allocation sequences; std::mt19937_64 seeded explicitly satisfies
 * that, but we wrap it so the convenience helpers (ranges, picks,
 * bernoulli draws) are uniform across the code base.
 */

#ifndef GCASSERT_SUPPORT_RNG_H
#define GCASSERT_SUPPORT_RNG_H

#include <cstdint>
#include <random>
#include <vector>

#include "support/logging.h"

namespace gcassert {

/**
 * Deterministic RNG with workload-friendly helpers.
 */
class Rng {
  public:
    /** Seed explicitly; identical seeds yield identical streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

    /** Uniform 64-bit value. */
    uint64_t next() { return engine_(); }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        if (lo > hi)
            panic("Rng::range called with lo > hi");
        return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
    }

    /** Uniform double in [0, 1). */
    double real() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return real() < p; }

    /** Uniformly pick an element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        if (items.empty())
            panic("Rng::pick called on empty vector");
        return items[below(items.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = below(i);
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_RNG_H
