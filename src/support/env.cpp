#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

namespace {

std::mutex warnedMutex;

std::unordered_set<std::string> &
warnedVars()
{
    static std::unordered_set<std::string> warned;
    return warned;
}

/** warn() about a malformed value, once per variable name. */
void
warnMalformed(const char *name, const char *raw, uint64_t fallback)
{
    std::lock_guard<std::mutex> lock(warnedMutex);
    if (!warnedVars().insert(name).second)
        return;
    warn(format("ignoring malformed %s='%s' (expected an unsigned "
                "decimal integer); using default %llu",
                name, raw,
                static_cast<unsigned long long>(fallback)));
}

} // namespace

uint64_t
envUint(const char *name, uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    // Insist the value *starts* with a digit: strtoull would happily
    // skip leading whitespace and accept a sign ("-1" wraps to
    // 2^64-1), neither of which any knob means.
    if (!std::isdigit(static_cast<unsigned char>(raw[0]))) {
        warnMalformed(name, raw, fallback);
        return fallback;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0' || errno == ERANGE) {
        warnMalformed(name, raw, fallback);
        return fallback;
    }
    return static_cast<uint64_t>(v);
}

std::string
envString(const char *name)
{
    const char *raw = std::getenv(name);
    return raw ? std::string(raw) : std::string();
}

void
envResetMalformedWarnings()
{
    std::lock_guard<std::mutex> lock(warnedMutex);
    warnedVars().clear();
}

} // namespace gcassert
