/**
 * @file
 * Statistics helpers for the benchmark harness.
 *
 * The paper reports per-benchmark normalized execution/GC times with
 * 90% confidence intervals and a geometric-mean summary; this module
 * provides exactly those aggregations.
 */

#ifndef GCASSERT_SUPPORT_STATS_H
#define GCASSERT_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace gcassert {

/**
 * Accumulates samples and reports mean / stddev / confidence
 * intervals. Samples are stored so the harness can also report
 * min/max and medians.
 */
class SampleSet {
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples so far. */
    size_t count() const { return samples_.size(); }

    /** @return true if no samples have been added. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean. @pre not empty. */
    double mean() const;

    /** Sample standard deviation (n-1 denominator); 0 for n < 2. */
    double stddev() const;

    /** Minimum sample. @pre not empty. */
    double min() const;

    /** Maximum sample. @pre not empty. */
    double max() const;

    /**
     * Half-width of the two-sided confidence interval around the mean
     * using Student's t critical values.
     *
     * @param confidence Either 0.90 or 0.95 (the harness uses 0.90 to
     *                   match the paper). Other values fall back to
     *                   the normal approximation.
     */
    double ciHalfWidth(double confidence = 0.90) const;

    /** Median (linear interpolation between middle samples). */
    double median() const;

    /**
     * Percentile in [0, 100] with linear interpolation.
     * @pre not empty.
     */
    double percentile(double p) const;

    /** All samples, in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/**
 * Geometric mean of a set of (positive) values; used for the suite
 * summary bars in Figures 2-5.
 *
 * @pre every value > 0 and values non-empty.
 */
double geomean(const std::vector<double> &values);

/**
 * Student's t critical value for a two-sided interval.
 *
 * @param confidence 0.90 or 0.95.
 * @param dof Degrees of freedom (n - 1), clamped to the table range.
 */
double tCritical(double confidence, size_t dof);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_STATS_H
