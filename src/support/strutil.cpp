#include "support/strutil.h"

#include <cstdarg>
#include <cstdio>

namespace gcassert {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
humanBytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < sizeof(units) / sizeof(units[0])) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return format("%llu B", static_cast<unsigned long long>(bytes));
    return format("%.1f %s", value, units[unit]);
}

std::string
percentDelta(double ratio)
{
    double pct = (ratio - 1.0) * 100.0;
    return format("%+.2f%%", pct);
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    std::string out = s;
    out.append(width - s.size(), ' ');
    return out;
}

} // namespace gcassert
