/**
 * @file
 * Minimal JSON support shared by the telemetry layer, the bench
 * ledger, and the CI trace checker: a streaming writer with
 * automatic comma/escape handling, and a small recursive-descent
 * parser used to *validate* emitted documents (schema checks in
 * tests and the telemetry smoke binary) — not a general-purpose
 * JSON library.
 */

#ifndef GCASSERT_SUPPORT_JSON_H
#define GCASSERT_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gcassert {

/**
 * Streaming JSON writer. Values are appended in document order;
 * the writer tracks the container stack and inserts commas, so
 * callers never hand-format separators:
 *
 * @code
 * JsonWriter w;
 * w.beginObject()
 *     .key("bench").value("sweep")
 *     .key("points").beginArray()
 *         .beginObject().key("ms").value(1.25).endObject()
 *     .endArray()
 * .endObject();
 * std::string doc = w.str();
 * @endcode
 */
class JsonWriter {
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value() call is its value. */
    JsonWriter &key(const std::string &name);

    /** @name Scalar values
     *  @{ */
    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint32_t v) { return value(uint64_t{v}); }
    JsonWriter &value(int v) { return value(int64_t{v}); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &valueNull();
    /** @} */

    /** Splice @p json in verbatim as one value (must be valid JSON). */
    JsonWriter &valueRaw(const std::string &json);

    /** @name key+value in one call
     *  @{ */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }
    /** @} */

    /** The document so far. */
    const std::string &str() const { return out_; }

    /** True when every container has been closed. */
    bool complete() const { return stack_.empty() && !out_.empty(); }

  private:
    void separate();
    void escapeInto(const std::string &s);

    std::string out_;
    /** 'o' = object, 'a' = array; paired with "first element" flag. */
    struct Frame {
        char kind;
        bool first;
    };
    std::vector<Frame> stack_;
    bool pendingKey_ = false;
};

/** Escape @p s as a quoted JSON string (helper for callers that
 *  build fragments outside a JsonWriter). */
std::string jsonQuote(const std::string &s);

/**
 * Parsed JSON value (validating parser output). Numbers are kept as
 * doubles — ample for the schema checks this supports.
 */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;

    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;
};

/**
 * Parse @p text as one JSON document.
 *
 * @param[out] error Filled with a position-annotated message on
 *             failure (may be nullptr).
 * @return The parsed value, or std::nullopt-like: kind Null with
 *         @p ok false.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *error);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_JSON_H
