#include "support/stopwatch.h"

namespace gcassert {

uint64_t
nowNanos()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

void
Stopwatch::start()
{
    if (running_)
        return;
    startedAt_ = nowNanos();
    running_ = true;
}

void
Stopwatch::stop()
{
    if (!running_)
        return;
    accumulated_ += nowNanos() - startedAt_;
    running_ = false;
}

void
Stopwatch::reset()
{
    accumulated_ = 0;
    running_ = false;
}

uint64_t
Stopwatch::elapsedNanos() const
{
    uint64_t total = accumulated_;
    if (running_)
        total += nowNanos() - startedAt_;
    return total;
}

double
Stopwatch::elapsedSeconds() const
{
    return static_cast<double>(elapsedNanos()) / 1e9;
}

} // namespace gcassert
