/**
 * @file
 * Validated environment-variable parsing, shared by every GCASSERT_*
 * knob site (runtime/config.cpp defaults, observe/telemetry.cpp
 * defaults, and any future knob).
 *
 * The contract every knob follows:
 *  - unset or empty           -> the fallback, silently;
 *  - a plain decimal integer  -> its value;
 *  - anything else (garbage, trailing junk, a sign, leading
 *    whitespace, overflow)    -> the fallback, with one warn() per
 *                                variable name per process, so a
 *                                typo like GCASSERT_MARK_THREADS=abc
 *                                is loud instead of silently 0.
 */

#ifndef GCASSERT_SUPPORT_ENV_H
#define GCASSERT_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace gcassert {

/**
 * Read @p name from the environment as an unsigned decimal integer.
 *
 * @return the parsed value; @p fallback when the variable is unset,
 *         empty, or malformed (malformed values additionally warn()
 *         once per variable name).
 */
uint64_t envUint(const char *name, uint64_t fallback);

/** Read @p name as a string; "" when unset. */
std::string envString(const char *name);

/**
 * Forget which variables have already warned about malformed values
 * (testing hook: lets a test exercise the warn-once behaviour more
 * than once in one process).
 */
void envResetMalformedWarnings();

} // namespace gcassert

#endif // GCASSERT_SUPPORT_ENV_H
