#include "support/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.h"
#include "support/strutil.h"

namespace gcassert {

namespace {

/** Short I/O timeout on accepted/connected sockets, so one stalled
 *  peer can never wedge the serving thread. */
constexpr int kIoTimeoutMillis = 2000;

void
setIoTimeouts(int fd)
{
    timeval tv{};
    tv.tv_sec = kIoTimeoutMillis / 1000;
    tv.tv_usec = (kIoTimeoutMillis % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool
writeAll(int fd, const char *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return "Unknown";
    }
}

} // namespace

TcpListener::~TcpListener()
{
    close();
}

bool
TcpListener::listenLoopback(uint16_t port)
{
    close();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn(format("net: socket() failed: %s", std::strerror(errno)));
        return false;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // localhost only
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        warn(format("net: cannot bind 127.0.0.1:%u: %s", unsigned{port},
                    std::strerror(errno)));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 16) != 0) {
        warn(format("net: listen() failed: %s", std::strerror(errno)));
        ::close(fd);
        return false;
    }
    // Recover the kernel-assigned port for the port=0 (ephemeral)
    // case, so callers always learn where the endpoint landed.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) !=
        0) {
        warn(format("net: getsockname() failed: %s",
                    std::strerror(errno)));
        ::close(fd);
        return false;
    }
    fd_ = fd;
    port_ = ntohs(bound.sin_port);
    return true;
}

int
TcpListener::acceptClient(int timeoutMillis)
{
    if (fd_ < 0)
        return -1;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, timeoutMillis);
    if (ready <= 0)
        return -1;
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0)
        setIoTimeouts(client);
    return client;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

std::string
HttpRequest::queryParam(const std::string &name) const
{
    for (const auto &[key, value] : query)
        if (key == name)
            return value;
    return "";
}

std::string
urlDecode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < s.size()) {
            auto hex = [](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                if (h >= 'A' && h <= 'F')
                    return h - 'A' + 10;
                return -1;
            };
            int hi = hex(s[i + 1]);
            int lo = hex(s[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
            } else {
                out += c;
            }
        } else {
            out += c;
        }
    }
    return out;
}

bool
readHttpRequest(int fd, HttpRequest &out)
{
    // Read until the header-terminating blank line (bounded; the
    // routes here take no bodies).
    std::string raw;
    char buf[1024];
    while (raw.find("\r\n\r\n") == std::string::npos &&
           raw.find("\n\n") == std::string::npos) {
        if (raw.size() > 64 * 1024)
            return false;
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        raw.append(buf, static_cast<size_t>(n));
    }

    size_t eol = raw.find_first_of("\r\n");
    std::string line = raw.substr(0, eol);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return false;
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (out.target.empty() || out.target[0] != '/')
        return false;

    size_t qmark = out.target.find('?');
    out.path = urlDecode(out.target.substr(0, qmark));
    out.query.clear();
    if (qmark != std::string::npos) {
        std::string qs = out.target.substr(qmark + 1);
        size_t pos = 0;
        while (pos <= qs.size()) {
            size_t amp = qs.find('&', pos);
            std::string pair = qs.substr(
                pos, amp == std::string::npos ? std::string::npos
                                              : amp - pos);
            if (!pair.empty()) {
                size_t eq = pair.find('=');
                if (eq == std::string::npos)
                    out.query.emplace_back(urlDecode(pair), "");
                else
                    out.query.emplace_back(
                        urlDecode(pair.substr(0, eq)),
                        urlDecode(pair.substr(eq + 1)));
            }
            if (amp == std::string::npos)
                break;
            pos = amp + 1;
        }
    }
    return true;
}

bool
writeHttpResponse(int fd, int status, const std::string &contentType,
                  const std::string &body)
{
    std::string head = format(
        "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        status, statusText(status), contentType.c_str(), body.size());
    return writeAll(fd, head.data(), head.size()) &&
           writeAll(fd, body.data(), body.size());
}

bool
httpGet(uint16_t port, const std::string &target, std::string &bodyOut,
        int *statusOut, std::string *error)
{
    bodyOut.clear();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = format("socket(): %s", std::strerror(errno));
        return false;
    }
    setIoTimeouts(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = format("connect(127.0.0.1:%u): %s", unsigned{port},
                            std::strerror(errno));
        ::close(fd);
        return false;
    }
    std::string req =
        "GET " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    if (!writeAll(fd, req.data(), req.size())) {
        if (error)
            *error = format("send(): %s", std::strerror(errno));
        ::close(fd);
        return false;
    }
    // HTTP/1.0 + Connection: close — the response runs to EOF.
    std::string raw;
    char buf[4096];
    while (true) {
        ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        raw.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    if (raw.compare(0, 5, "HTTP/") != 0) {
        if (error)
            *error = "malformed response (no status line)";
        return false;
    }
    size_t sp = raw.find(' ');
    if (statusOut)
        *statusOut =
            sp == std::string::npos ? 0 : std::atoi(raw.c_str() + sp + 1);
    size_t split = raw.find("\r\n\r\n");
    size_t skip = 4;
    if (split == std::string::npos) {
        split = raw.find("\n\n");
        skip = 2;
    }
    if (split == std::string::npos) {
        if (error)
            *error = "malformed response (no header terminator)";
        return false;
    }
    bodyOut = raw.substr(split + skip);
    return true;
}

} // namespace gcassert
