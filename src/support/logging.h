/**
 * @file
 * Logging and error-reporting primitives for the gcassert runtime.
 *
 * The idiom follows the gem5 convention: inform() for status messages,
 * warn() for suspicious-but-recoverable conditions, fatal() for user
 * errors (bad configuration, misuse of the API), and panic() for
 * internal invariant failures that indicate a bug in the runtime
 * itself.
 *
 * All output is routed through a LogSink so tests can capture and
 * inspect messages (e.g. assertion-violation warnings) without
 * scraping stderr.
 *
 * Thread safety: logEmit() (and therefore inform/warn/fatal/panic)
 * may be called from any thread — parallel mark and sweep workers
 * warn concurrently. A global mutex guards both the installed-sink
 * pointer and the sink's write() call, so each record is delivered
 * atomically and sinks need no internal locking. setLogSink() and
 * CaptureLogSink construction/destruction are likewise safe to
 * interleave with concurrent emission, though scoped capture still
 * assumes install/uninstall happen on one thread (the usual RAII
 * test pattern).
 */

#ifndef GCASSERT_SUPPORT_LOGGING_H
#define GCASSERT_SUPPORT_LOGGING_H

#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace gcassert {

/** Severity classes for log records. */
enum class LogLevel {
    Info,
    Warn,
    Fatal,
    Panic,
};

/** @return a short human-readable name for a log level. */
const char *logLevelName(LogLevel level);

/**
 * A single emitted log record. Tests register a sink to collect these.
 */
struct LogRecord {
    LogLevel level;
    std::string message;
};

/**
 * Destination for log records. By default records go to stderr; a
 * capturing sink may be installed (scoped) to intercept them.
 */
class LogSink {
  public:
    virtual ~LogSink() = default;

    /** Consume one record. */
    virtual void write(const LogRecord &record) = 0;
};

/**
 * Install @p sink as the global log destination.
 *
 * @param sink New sink, or nullptr to restore the default
 *             stderr-printing sink.
 * @return The previously installed sink (nullptr if it was the
 *         default).
 */
LogSink *setLogSink(LogSink *sink);

/** Emit a record through the current sink. */
void logEmit(LogLevel level, const std::string &message);

/** Status message: something users should know but not worry about. */
void inform(const std::string &message);

/** Possible problem: execution continues. */
void warn(const std::string &message);

/**
 * Unrecoverable *user* error (bad config, API misuse).
 * Throws FatalError so callers and tests can observe it.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Unrecoverable *internal* error (runtime bug).
 * Throws PanicError; never expected in a correct build.
 */
[[noreturn]] void panic(const std::string &message);

/** Exception thrown by fatal(). */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Exception thrown by panic(). */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/**
 * RAII sink that records everything emitted while it is alive.
 * Used heavily by the test suite to check warning text.
 */
class CaptureLogSink : public LogSink {
  public:
    CaptureLogSink();
    ~CaptureLogSink() override;

    void write(const LogRecord &record) override;

    /** All records captured so far. */
    const std::vector<LogRecord> &records() const { return records_; }

    /** @return number of records at the given level. */
    size_t countAt(LogLevel level) const;

    /** @return true if any captured message contains @p needle. */
    bool contains(const std::string &needle) const;

    /** Drop all captured records. */
    void clear() { records_.clear(); }

    /** Also forward records to the previous sink (default: off). */
    void setForward(bool forward) { forward_ = forward; }

  private:
    std::vector<LogRecord> records_;
    LogSink *previous_;
    bool forward_ = false;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_LOGGING_H
