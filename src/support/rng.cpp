#include "support/rng.h"

// Rng is header-only; this translation unit exists to anchor the
// library target and catch header self-containment regressions.
