#include "support/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace gcassert {

// --------------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey_) {
        // Key already emitted the separator; the value follows ':'.
        pendingKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.first)
        top.first = false;
    else
        out_ += ',';
}

void
JsonWriter::escapeInto(const std::string &s)
{
    out_ += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\b':
            out_ += "\\b";
            break;
          case '\f':
            out_ += "\\f";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\r':
            out_ += "\\r";
            break;
          case '\t':
            out_ += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out_ += buf;
            } else {
                out_ += static_cast<char>(c);
            }
        }
    }
    out_ += '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_.push_back({'o', true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    if (!stack_.empty())
        stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_.push_back({'a', true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    if (!stack_.empty())
        stack_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    escapeInto(name);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    separate();
    escapeInto(s);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::valueRaw(const std::string &json)
{
    separate();
    out_ += json;
    return *this;
}

std::string
jsonQuote(const std::string &s)
{
    JsonWriter w;
    w.value(s);
    return w.str();
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser {
    const char *p;
    const char *end;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " (at byte offset %ld)",
                      static_cast<long>(p - start));
        error = msg + buf;
        return false;
    }

    const char *start;

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
                out.kind = JsonValue::Kind::Bool;
                out.boolean = true;
                p += 4;
                return true;
            }
            return fail("bad literal");
          case 'f':
            if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
                out.kind = JsonValue::Kind::Bool;
                out.boolean = false;
                p += 5;
                return true;
            }
            return fail("bad literal");
          case 'n':
            if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
                out.kind = JsonValue::Kind::Null;
                p += 4;
                return true;
            }
            return fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        ++p; // opening quote
        out.clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                switch (*p) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = p[i];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            v |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            v |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    p += 4;
                    // Encode as UTF-8 (surrogate pairs are passed
                    // through as two 3-byte sequences; good enough
                    // for a validator of our own ASCII-ish output).
                    if (v < 0x80) {
                        out += static_cast<char>(v);
                    } else if (v < 0x800) {
                        out += static_cast<char>(0xC0 | (v >> 6));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (v >> 12));
                        out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *numStart = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end &&
               (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
                *p == 'e' || *p == 'E' || *p == '+' || *p == '-'))
            ++p;
        if (p == numStart)
            return fail("expected value");
        std::string tok(numStart, p);
        char *parsedEnd = nullptr;
        double v = std::strtod(tok.c_str(), &parsedEnd);
        if (parsedEnd != tok.c_str() + tok.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++p; // '{'
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            if (p >= end || *p != '"')
                return fail("expected object key");
            std::string name;
            if (!parseString(name))
                return false;
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':'");
            ++p;
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object.emplace(std::move(name), std::move(member));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++p; // '['
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string *error)
{
    Parser parser{text.data(), text.data() + text.size(), "",
                  text.data()};
    if (!parser.parseValue(out, 0)) {
        if (error)
            *error = parser.error;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (error)
            *error = "trailing garbage after document";
        return false;
    }
    return true;
}

} // namespace gcassert
