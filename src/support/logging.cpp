#include "support/logging.h"

#include <cstdio>
#include <mutex>

namespace gcassert {

namespace {

/** Default sink: prints to stderr with a level prefix. */
class StderrSink : public LogSink {
  public:
    void
    write(const LogRecord &record) override
    {
        std::fprintf(stderr, "[%s] %s\n", logLevelName(record.level),
                     record.message.c_str());
    }
};

StderrSink defaultSink;
LogSink *currentSink = &defaultSink;

// Guards currentSink *and* serializes write() calls: parallel mark
// and sweep workers can warn concurrently, and sinks (CaptureLogSink
// in particular) are not internally synchronized. Holding the lock
// across write() makes records atomic from the sink's point of view.
std::mutex logMutex;

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

LogSink *
setLogSink(LogSink *sink)
{
    std::lock_guard<std::mutex> lock(logMutex);
    LogSink *old = currentSink;
    currentSink = sink ? sink : &defaultSink;
    return old == &defaultSink ? nullptr : old;
}

void
logEmit(LogLevel level, const std::string &message)
{
    std::lock_guard<std::mutex> lock(logMutex);
    currentSink->write(LogRecord{level, message});
}

void
inform(const std::string &message)
{
    logEmit(LogLevel::Info, message);
}

void
warn(const std::string &message)
{
    logEmit(LogLevel::Warn, message);
}

void
fatal(const std::string &message)
{
    logEmit(LogLevel::Fatal, message);
    throw FatalError(message);
}

void
panic(const std::string &message)
{
    logEmit(LogLevel::Panic, message);
    throw PanicError(message);
}

CaptureLogSink::CaptureLogSink()
{
    previous_ = setLogSink(this);
}

CaptureLogSink::~CaptureLogSink()
{
    setLogSink(previous_);
}

void
CaptureLogSink::write(const LogRecord &record)
{
    records_.push_back(record);
    if (forward_ && previous_)
        previous_->write(record);
}

size_t
CaptureLogSink::countAt(LogLevel level) const
{
    size_t n = 0;
    for (const auto &r : records_)
        if (r.level == level)
            ++n;
    return n;
}

bool
CaptureLogSink::contains(const std::string &needle) const
{
    for (const auto &r : records_)
        if (r.message.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace gcassert
