#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace gcassert {

void
SampleSet::add(double value)
{
    samples_.push_back(value);
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        panic("SampleSet::mean on empty set");
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
SampleSet::min() const
{
    if (samples_.empty())
        panic("SampleSet::min on empty set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSet::max() const
{
    if (samples_.empty())
        panic("SampleSet::max on empty set");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleSet::ciHalfWidth(double confidence) const
{
    size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    double t = tCritical(confidence, n - 1);
    return t * stddev() / std::sqrt(static_cast<double>(n));
}

double
SampleSet::median() const
{
    return percentile(50.0);
}

double
SampleSet::percentile(double p) const
{
    if (samples_.empty())
        panic("SampleSet::percentile on empty set");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        panic("geomean of empty vector");
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
tCritical(double confidence, size_t dof)
{
    // Two-sided critical values for common dof; the harness runs
    // each benchmark a fixed number of times so a small table
    // suffices. Index 0 corresponds to dof = 1.
    static const double t90[] = {
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697,
    };
    static const double t95[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042,
    };
    const double *table = nullptr;
    double asymptote = 0.0;
    if (confidence == 0.90) {
        table = t90;
        asymptote = 1.645;
    } else if (confidence == 0.95) {
        table = t95;
        asymptote = 1.960;
    } else {
        // Normal approximation for unusual confidence levels.
        // Inverse error function via Winitzki's approximation.
        double p = 1.0 - (1.0 - confidence) / 2.0;
        double x = 2.0 * p - 1.0;
        const double a = 0.147;
        double ln = std::log(1.0 - x * x);
        double term = 2.0 / (M_PI * a) + ln / 2.0;
        double erfinv =
            std::copysign(std::sqrt(std::sqrt(term * term - ln / a) - term),
                          x);
        return std::sqrt(2.0) * erfinv;
    }
    if (dof == 0)
        return table[0];
    if (dof <= 30)
        return table[dof - 1];
    return asymptote;
}

} // namespace gcassert
