/**
 * @file
 * Wall-clock timing utilities for the GC-phase and mutator-time
 * accounting used throughout the collector and the bench harness.
 */

#ifndef GCASSERT_SUPPORT_STOPWATCH_H
#define GCASSERT_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace gcassert {

/** Monotonic nanosecond timestamp. */
uint64_t nowNanos();

/**
 * Restartable stopwatch accumulating elapsed nanoseconds.
 */
class Stopwatch {
  public:
    /** Begin (or resume) timing. Idempotent while running: a second
     *  start() neither restarts the span nor loses time. */
    void start();

    /** Stop timing and fold the elapsed span into the total.
     *  No-op when not running (stop() without start(), or called
     *  twice), so pairing mistakes never corrupt the total. */
    void stop();

    /** Discard all accumulated time (also stops). */
    void reset();

    /** @return true while between start() and stop(). */
    bool running() const { return running_; }

    /** Accumulated time including a currently running span. */
    uint64_t elapsedNanos() const;

    /** Accumulated time in seconds. */
    double elapsedSeconds() const;

  private:
    uint64_t accumulated_ = 0;
    uint64_t startedAt_ = 0;
    bool running_ = false;
};

/**
 * RAII span: adds the scope's duration to a Stopwatch on exit.
 */
class ScopedTimer {
  public:
    explicit ScopedTimer(Stopwatch &watch) : watch_(watch)
    {
        watch_.start();
    }

    ~ScopedTimer() { watch_.stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stopwatch &watch_;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_STOPWATCH_H
