/**
 * @file
 * Minimal localhost TCP + HTTP/1.0 helpers for the live telemetry
 * endpoint (observe/live_server) and its tests. Deliberately tiny:
 * a loopback-only listener with a poll-based, stoppable accept, a
 * request-line parser for `GET /path?query` requests, a response
 * writer, and a blocking GET client used by tests and the bench
 * harness to validate the endpoint without external tools.
 *
 * Security posture: listenLoopback() binds 127.0.0.1 only — the
 * endpoint is never reachable off-host — and the server speaks
 * plain HTTP/1.0 with Connection: close, so there is no keep-alive
 * state to manage.
 */

#ifndef GCASSERT_SUPPORT_NET_H
#define GCASSERT_SUPPORT_NET_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gcassert {

/**
 * A loopback-only listening socket. accept is poll-based with a
 * timeout so an owning thread can interleave stop-flag checks.
 */
class TcpListener {
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on 127.0.0.1:@p port (0 = kernel-assigned
     * ephemeral port, readable via port() afterwards). Returns false
     * — with a warn() naming errno — when the bind fails, e.g. the
     * port is taken.
     */
    bool listenLoopback(uint16_t port);

    /** The bound port; 0 before a successful listenLoopback(). */
    uint16_t port() const { return port_; }

    /**
     * Wait up to @p timeoutMillis for a connection. Returns the
     * accepted fd (caller closes it) or -1 on timeout/error. The
     * returned socket carries a short send/receive timeout so a
     * stalled client can never wedge the serving thread.
     */
    int acceptClient(int timeoutMillis);

    void close();
    bool valid() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/** A parsed HTTP request line (headers are read and discarded). */
struct HttpRequest {
    std::string method; //!< e.g. "GET"
    std::string target; //!< raw request target, e.g. "/why_alive?site=x"
    std::string path;   //!< target up to '?', percent-decoded
    /** Decoded query parameters in document order. */
    std::vector<std::pair<std::string, std::string>> query;

    /** First value of query parameter @p name; "" when absent. */
    std::string queryParam(const std::string &name) const;
};

/**
 * Read one request from @p fd (until the blank line ending the
 * header block, bounded at 64 KiB) and parse the request line.
 * Returns false on malformed input, timeout, or EOF.
 */
bool readHttpRequest(int fd, HttpRequest &out);

/**
 * Write a complete HTTP/1.0 response (status line, Content-Type,
 * Content-Length, Connection: close, then @p body). Returns false
 * on a short write.
 */
bool writeHttpResponse(int fd, int status, const std::string &contentType,
                       const std::string &body);

/** Percent-decode @p s ("%41" -> "A", "+" -> " "). */
std::string urlDecode(const std::string &s);

/**
 * Blocking GET client for tests/CI: connect to 127.0.0.1:@p port,
 * request @p target, and return the response body in @p bodyOut.
 *
 * @param[out] statusOut HTTP status code when non-null.
 * @param[out] error     failure description when non-null.
 * @return true when a well-formed response arrived (any status).
 */
bool httpGet(uint16_t port, const std::string &target,
             std::string &bodyOut, int *statusOut = nullptr,
             std::string *error = nullptr);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_NET_H
