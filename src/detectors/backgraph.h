/**
 * @file
 * Always-on "why-alive" backgraph with a growing-leak detector and a
 * find-leak mode — the precise complement to the cork/staleness
 * heuristics.
 *
 * The paper reconstructs root paths from worklist tag bits, which
 * only works during the trace that catches a violation. Following
 * bdwgc's backgraph.c, this detector maintains a *bounded* backwards
 * points-to graph continuously: the write-barrier stream feeds
 * per-object predecessor lists (one entry per reference edge), and
 * the sweep prunes edges whose endpoints die. Bounding follows the
 * access-graph idea (Heap Reference Analysis Using Access Graphs):
 * per-node in-degree is capped, and a node whose cap is exceeded is
 * *saturated* — its predecessors are dropped and it is treated as a
 * pseudo-root from then on, so the graph's size stays proportional
 * to the live heap, not to its sharing structure.
 *
 * Three services sit on top:
 *
 *  - whyAlive(obj): a rootward path at *any* time, not just at
 *    violation time, used to enrich violation provenance.
 *  - A growing-leak detector: each full GC computes every tracked
 *    object's root-path height (multi-source BFS from the roots and
 *    pseudo-roots) and reports allocation sites whose *maximum*
 *    height grows monotonically across a configurable window of
 *    collections — a leaked list grows away from its root without
 *    bound, while healthy bounded structures (an LRU cache, a
 *    connection pool) plateau.
 *  - A bdwgc-leak.md-style find-leak mode: per allocation site, the
 *    count of objects still live after each full GC; sites whose
 *    survivor count grows monotonically across the window are
 *    reported ("allocated but never becoming unreachable" trends).
 *
 * Allocation sites are lightweight uint32 tags threaded through the
 * allocation entry points: workloads register named sites via
 * Runtime::allocSite(), and untagged allocations hash the caller's
 * return address so find-leak reports still name a stable site.
 *
 * Verdict neutrality: the backgraph writes only its own side tables
 * (C++ heap, never the GC budget), never records into the remembered
 * set, and reports its findings as context-only violations after the
 * collection's verdicts have settled — GC cadence, freed sets and
 * assertion verdicts are bit-identical with the detector on or off
 * (pinned by the 100-seed differentials in test_backgraph).
 */

#ifndef GCASSERT_DETECTORS_BACKGRAPH_H
#define GCASSERT_DETECTORS_BACKGRAPH_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "assertions/violation.h"
#include "heap/object.h"

namespace gcassert {

class AssertionEngine;
class TypeRegistry;

/** A rootward path answered by Backgraph::whyAlive. */
struct WhyAliveReport {
    /** The object is tracked by the backgraph. */
    bool known = false;
    /** The walk reached a (pseudo-)root. With bounded predecessor
     *  lists this is the norm; false means the predecessor structure
     *  was cyclic with no root entry (stale edges can cause this). */
    bool rootReached = false;
    /** The rootward endpoint is a *saturated* pseudo-root (its true
     *  predecessors were dropped at the in-degree cap). */
    bool saturated = false;
    /** Rootmost-first path ending at the queried object, in the same
     *  order as Violation::path. */
    std::vector<PathEntry> path;
};

/**
 * The bounded backwards points-to graph. One instance per Runtime,
 * created only when RuntimeConfig::backgraph is set; wired as the
 * third consumer of the write-barrier slow path (beside the nursery
 * remembered set and the incremental-assert dirty cards), into the
 * allocation paths (site tags + node creation) and into both sweeps
 * (dead-edge pruning).
 *
 * Locking: one internal mutex guards every table. The barrier slow
 * path calls noteWrite() while holding the barrier registry lock
 * (registry -> backgraph, never inverted); every other entry point
 * is called under the runtime lock (alloc/sweep/sample) or from the
 * violation observer, and takes only the backgraph mutex. Reports
 * are emitted through the engine funnel *outside* the mutex, so an
 * observer may re-enter whyAlive().
 */
class Backgraph {
  public:
    struct Config {
        /** Predecessor entries kept per node before it saturates. */
        uint32_t inDegreeCap = 8;
        /** Consecutive growing full-GC samples before a site is
         *  reported (both the height trend and find-leak trend). */
        uint32_t window = 3;
    };

    Backgraph(TypeRegistry &types, AssertionEngine &engine,
              Config config);

    Backgraph(const Backgraph &) = delete;
    Backgraph &operator=(const Backgraph &) = delete;

    /** @name Feeds (barrier, allocation, sweep)
     *  @{ */

    /**
     * Barrier slow path: slot of @p src is about to change from
     * @p old_target to @p new_target. Removes the old backward edge
     * and records the new one (subject to the in-degree cap). Called
     * with the barrier registry lock held.
     */
    void noteWrite(Object *src, Object *old_target, Object *new_target);

    /** A new object was allocated at @p site (0 = unknown site). */
    void noteAlloc(Object *obj, uint32_t site);

    /** @p obj is being swept (full or nursery sweep): drop its node
     *  and every edge in which it participates. */
    void noteFreed(Object *obj);

    /** @} */

    /** @name Allocation sites
     *  @{ */

    /**
     * Register (or look up) a named allocation site. Ids are stable
     * for the runtime's lifetime and never 0.
     */
    uint32_t registerSite(const std::string &name);

    /** Derive a site id from a code address (return-address hash).
     *  Deterministic per address, never 0, never collides with
     *  registered ids. */
    static uint32_t siteFromAddress(const void *address);

    /** Human-readable name for @p site ("site-0x…" for hashed ids,
     *  "?" for 0). */
    std::string siteName(uint32_t site) const;

    /** @} */

    /** Rootward path for @p obj right now. */
    WhyAliveReport whyAlive(const Object *obj) const;

    /**
     * Rootward paths for every *registered* (named) allocation site
     * with at least one live tracked object: one deterministic
     * representative per site (the lowest-addressed node), answered
     * with the same walk as whyAlive. Bounded work — sites are the
     * handful a workload registers, never the hashed-id space.
     * Called at the full-GC publish point under the runtime lock;
     * the live endpoint serves the published copies.
     */
    std::vector<std::pair<std::string, WhyAliveReport>>
    namedSiteReports() const;

    /** Aggregate outcome of one post-GC sample. */
    struct SampleStats {
        uint64_t nodes = 0;
        uint64_t sites = 0;
        uint64_t growthReports = 0;
        uint64_t findLeakReports = 0;
    };

    /**
     * Full-GC epilogue: compute root-path heights (multi-source BFS
     * from every rootlike node over the forward mirror), fold them
     * into per-site trend state, and report growing sites through
     * the engine funnel as context-only LeakGrowth violations.
     * Called by the collector after the collection's result — and
     * every assertion verdict — has settled.
     */
    SampleStats onFullGcDone(uint64_t gc_number);

    /** @name Metrics surface (gauges)
     *  @{ */
    uint64_t nodeCount() const;
    uint64_t edgeCount() const;
    uint64_t saturatedCount() const;
    uint64_t siteCount() const;
    uint64_t edgeRecords() const
    {
        return edgeRecords_.load(std::memory_order_relaxed);
    }
    uint64_t prunedEdges() const
    {
        return prunedEdges_.load(std::memory_order_relaxed);
    }
    uint64_t growthReports() const
    {
        return growthReports_.load(std::memory_order_relaxed);
    }
    uint64_t findLeakReports() const
    {
        return findLeakReports_.load(std::memory_order_relaxed);
    }
    /** @} */

    const Config &config() const { return config_; }

  private:
    /** Per-object backgraph state. Objects are side-table keys only
     *  — the heap is non-moving, so addresses are stable. */
    struct Node {
        /** Known referrers, one entry per reference edge (duplicate
         *  objects allowed: two slots, two entries). Empty once
         *  saturated. */
        std::vector<Object *> preds;
        /** In-degree cap exceeded: treated as a pseudo-root. */
        bool saturated = false;
        /** Allocation-site tag (0 = unknown). */
        uint32_t site = 0;
        /** BFS scratch for the current sample. */
        uint32_t height = 0;
        bool heightKnown = false;
    };

    /** Trend state for one allocation site. */
    struct SiteTrend {
        uint64_t lastMaxHeight = 0;
        uint32_t heightStreak = 0;
        uint64_t lastLiveCount = 0;
        uint32_t liveStreak = 0;
        bool sampled = false;
    };

    Node &nodeFor(Object *obj);
    /** siteName body without taking the mutex (for callers already
     *  holding it, e.g. report building in onFullGcDone). */
    std::string siteNameLocked(uint32_t site) const;
    /** whyAlive body; requires mutex_ held. */
    WhyAliveReport whyAliveLocked(const Object *obj) const;
    void removeEdgeLocked(Object *src, Object *target);
    /** Erase one matching entry from @p vec (latest first). */
    static bool eraseOne(std::vector<Object *> &vec, Object *value);

    TypeRegistry &types_;
    AssertionEngine &engine_;
    Config config_;

    mutable std::mutex mutex_;
    std::unordered_map<Object *, Node> nodes_;
    /** Forward mirror: for each source, the targets whose pred lists
     *  contain it — makes pruning a dying source exact even when a
     *  raw slot write bypassed the barrier, and doubles as the edge
     *  relation for the height BFS. */
    std::unordered_map<Object *, std::vector<Object *>> succs_;
    std::unordered_map<std::string, uint32_t> siteIds_;
    std::unordered_map<uint32_t, std::string> siteNames_;
    std::unordered_map<uint32_t, SiteTrend> trends_;
    uint32_t nextSiteId_ = 1;

    std::atomic<uint64_t> edgeRecords_{0};
    std::atomic<uint64_t> prunedEdges_{0};
    std::atomic<uint64_t> growthReports_{0};
    std::atomic<uint64_t> findLeakReports_{0};
};

} // namespace gcassert

#endif // GCASSERT_DETECTORS_BACKGRAPH_H
