/**
 * @file
 * Staleness-based leak detection — a heuristic comparator.
 *
 * The paper contrasts GC assertions with staleness-based leak
 * detectors (Chilimbi & Hauswirth; Bond & McKinley's Bell): objects
 * that have not been *accessed* for a long time are flagged as
 * probable leaks. This baseline implements the idea on our runtime
 * so the precision/latency comparison in the ablation bench is
 * measured rather than asserted: the workload calls touch() on
 * every access, and objects whose last touch is more than a
 * threshold of GC epochs old are reported as stale.
 *
 * Unlike GC assertions this produces *suggestions*: stale-but-needed
 * objects are false positives, and real leaks are only flagged after
 * the staleness threshold elapses.
 */

#ifndef GCASSERT_DETECTORS_STALENESS_H
#define GCASSERT_DETECTORS_STALENESS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/object.h"

namespace gcassert {

class Runtime;

/** One stale-object report. */
struct StaleReport {
    const Object *object;
    std::string typeName;
    /** GC epochs since the last touch. */
    uint64_t staleForGcs;
};

/**
 * Tracks last-access epochs in a side table.
 *
 * Lifetime: registers allocation and sweep hooks with the runtime at
 * construction, so it must not be destroyed while the runtime can
 * still allocate or collect (construct it alongside the runtime).
 */
class StalenessDetector {
  public:
    /**
     * Attach to @p runtime.
     *
     * @param threshold_gcs Epochs without a touch after which an
     *                      object is considered stale.
     */
    StalenessDetector(Runtime &runtime, uint64_t threshold_gcs = 3);

    /** Record an access to @p obj at the current epoch. */
    void touch(const Object *obj);

    /**
     * Scan the tracked table and report objects stale beyond the
     * threshold. Objects freed since tracking are purged via the
     * runtime's free hook, so every report refers to a live object
     * (call right after a collection for an exact live set).
     */
    std::vector<StaleReport> findStale() const;

    /**
     * Run findStale() and route each report through the engine's
     * violation funnel as a context-only Staleness violation, so it
     * gets the same provenance enrichment (heap state, census rows,
     * why-alive path, trace instant) as assertion violations.
     * Returns the number of reports funneled.
     */
    size_t reportStale();

    /** Objects currently tracked. */
    size_t trackedCount() const { return lastTouch_.size(); }

    uint64_t thresholdGcs() const { return thresholdGcs_; }

  private:
    Runtime &runtime_;
    uint64_t thresholdGcs_;
    std::unordered_map<const Object *, uint64_t> lastTouch_;
};

} // namespace gcassert

#endif // GCASSERT_DETECTORS_STALENESS_H
