#include "detectors/staleness.h"

#include "runtime/runtime.h"

namespace gcassert {

StalenessDetector::StalenessDetector(Runtime &runtime,
                                     uint64_t threshold_gcs)
    : runtime_(runtime), thresholdGcs_(threshold_gcs)
{
    runtime_.addAllocHook([this](Object *obj) {
        lastTouch_[obj] = runtime_.collections();
    });
    runtime_.addFreeHook([this](Object *obj) { lastTouch_.erase(obj); });
}

void
StalenessDetector::touch(const Object *obj)
{
    auto it = lastTouch_.find(obj);
    if (it != lastTouch_.end())
        it->second = runtime_.collections();
}

std::vector<StaleReport>
StalenessDetector::findStale() const
{
    std::vector<StaleReport> reports;
    uint64_t now = runtime_.collections();
    for (const auto &[obj, last] : lastTouch_) {
        uint64_t age = now >= last ? now - last : 0;
        if (age >= thresholdGcs_) {
            reports.push_back(StaleReport{
                obj, runtime_.types().get(obj->typeId()).name(), age});
        }
    }
    return reports;
}

} // namespace gcassert
