#include "detectors/staleness.h"

#include "runtime/runtime.h"

namespace gcassert {

StalenessDetector::StalenessDetector(Runtime &runtime,
                                     uint64_t threshold_gcs)
    : runtime_(runtime), thresholdGcs_(threshold_gcs)
{
    runtime_.addAllocHook([this](Object *obj) {
        lastTouch_[obj] = runtime_.collections();
    });
    runtime_.addFreeHook([this](Object *obj) { lastTouch_.erase(obj); });
}

void
StalenessDetector::touch(const Object *obj)
{
    auto it = lastTouch_.find(obj);
    if (it != lastTouch_.end())
        it->second = runtime_.collections();
}

std::vector<StaleReport>
StalenessDetector::findStale() const
{
    std::vector<StaleReport> reports;
    uint64_t now = runtime_.collections();
    for (const auto &[obj, last] : lastTouch_) {
        uint64_t age = now >= last ? now - last : 0;
        if (age >= thresholdGcs_) {
            reports.push_back(StaleReport{
                obj, runtime_.types().get(obj->typeId()).name(), age});
        }
    }
    return reports;
}

size_t
StalenessDetector::reportStale()
{
    std::vector<StaleReport> stale = findStale();
    for (const StaleReport &report : stale) {
        Violation v;
        v.kind = AssertionKind::Staleness;
        v.offendingType = report.typeName;
        v.offendingAddress = report.object;
        v.gcNumber = runtime_.collections();
        v.message = "staleness: " + report.typeName + " untouched for " +
            std::to_string(report.staleForGcs) + " collections";
        runtime_.engine().report(std::move(v));
    }
    return stale.size();
}

} // namespace gcassert
