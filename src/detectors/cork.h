/**
 * @file
 * Cork-style heap-growth leak detection — a heuristic comparator.
 *
 * Cork (Jump & McKinley, POPL 2007) finds leaks by differencing
 * type-level heap summaries across collections and reporting types
 * whose live volume grows persistently. This baseline samples a
 * per-type census after each collection and reports types whose
 * volume rose in at least a configurable fraction of recent
 * samples. It reports *types*, not instances or paths — the
 * precision gap versus GC assertions that the paper highlights
 * ("our path consists of object instances, not just types").
 */

#ifndef GCASSERT_DETECTORS_CORK_H
#define GCASSERT_DETECTORS_CORK_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/object.h"

namespace gcassert {

class Runtime;

/** A type flagged as persistently growing. */
struct GrowthReport {
    TypeId type;
    std::string typeName;
    /** Live bytes at the oldest and newest sample in the window. */
    uint64_t bytesFirst;
    uint64_t bytesLast;
    /** Samples (out of window) in which volume grew. */
    size_t growthSamples;
    size_t windowSamples;
};

/**
 * Type-census differencing over a sliding window.
 */
class CorkDetector {
  public:
    /**
     * @param window Number of censuses kept.
     * @param growth_fraction Fraction of deltas in the window that
     *        must be positive for a type to be reported.
     */
    explicit CorkDetector(Runtime &runtime, size_t window = 4,
                          double growth_fraction = 0.75);

    /**
     * Take a census of live bytes per type. Call immediately after
     * a collection, when every allocated object is live.
     */
    void sample();

    /** Types flagged as growing across the current window. */
    std::vector<GrowthReport> findGrowing() const;

    /**
     * Run findGrowing() and route each report through the engine's
     * violation funnel as a context-only TypeGrowth violation (same
     * provenance enrichment as assertion violations). Returns the
     * number of reports funneled.
     */
    size_t reportGrowing();

    size_t samplesTaken() const { return samplesTaken_; }

  private:
    using Census = std::unordered_map<TypeId, uint64_t>;

    Runtime &runtime_;
    size_t window_;
    double growthFraction_;
    std::deque<Census> history_;
    size_t samplesTaken_ = 0;
};

} // namespace gcassert

#endif // GCASSERT_DETECTORS_CORK_H
