/**
 * @file
 * QVM-style immediate heap probes — an overhead comparator.
 *
 * QVM (Arnold, Vechev & Yahav, OOPSLA 2008) answers heap questions
 * *immediately at the probe point* by triggering a collection per
 * probe. The paper argues that deferring and batching checks onto
 * regularly scheduled collections is far cheaper; this module
 * implements the immediate semantics so the ablation bench can
 * measure the difference on identical questions.
 */

#ifndef GCASSERT_DETECTORS_PROBES_H
#define GCASSERT_DETECTORS_PROBES_H

#include <cstdint>

#include "heap/object.h"

namespace gcassert {

class Runtime;

/**
 * Immediate heap probes. Each probe call runs a full collection.
 *
 * Lifetime: the detector registers a sweep hook with the runtime at
 * construction, so it must not be destroyed while the runtime can
 * still collect (construct it alongside the runtime).
 */
class ImmediateProbes {
  public:
    explicit ImmediateProbes(Runtime &runtime);

    /**
     * Is @p obj unreachable right now? Triggers a collection and
     * reports whether the object was reclaimed by it.
     *
     * @warning If the probe returns false the object is still live;
     * if it returns true the pointer is dangling afterwards, exactly
     * like the underlying question demands.
     */
    bool probeDead(const Object *obj);

    /**
     * Number of live instances of @p type right now. Triggers a
     * collection, then takes a census of the live heap.
     */
    uint64_t probeInstances(TypeId type);

    /** Collections triggered by probes so far. */
    uint64_t probeCollections() const { return probeCollections_; }

  private:
    Runtime &runtime_;
    uint64_t probeCollections_ = 0;
    const Object *watch_ = nullptr;
    bool reclaimed_ = false;
};

} // namespace gcassert

#endif // GCASSERT_DETECTORS_PROBES_H
