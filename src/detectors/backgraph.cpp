#include "detectors/backgraph.h"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "assertions/engine.h"
#include "types/type_registry.h"

namespace gcassert {

namespace {

/** Hashed (anonymous, return-address-derived) site ids live in the
 *  top half of the id space so they can never collide with the dense
 *  registered ids handed out from 1. */
constexpr uint32_t kHashedSiteBit = 0x80000000u;

} // namespace

Backgraph::Backgraph(TypeRegistry &types, AssertionEngine &engine,
                     Config config)
    : types_(types), engine_(engine), config_(config)
{
    if (config_.inDegreeCap == 0) {
        config_.inDegreeCap = 1;
    }
    if (config_.window == 0) {
        config_.window = 1;
    }
}

Backgraph::Node &Backgraph::nodeFor(Object *obj)
{
    // Lazy creation: objects allocated before the backgraph was
    // armed (or written through a raw setRef) still get a node the
    // first time they appear in the write stream.
    return nodes_[obj];
}

bool Backgraph::eraseOne(std::vector<Object *> &vec, Object *value)
{
    // Latest-first: a slot overwrite retires the most recent record
    // of the edge, matching how duplicate entries accumulated.
    for (auto it = vec.rbegin(); it != vec.rend(); ++it) {
        if (*it == value) {
            vec.erase(std::next(it).base());
            return true;
        }
    }
    return false;
}

void Backgraph::removeEdgeLocked(Object *src, Object *target)
{
    auto node = nodes_.find(target);
    if (node != nodes_.end() && eraseOne(node->second.preds, src)) {
        prunedEdges_.fetch_add(1, std::memory_order_relaxed);
        auto succ = succs_.find(src);
        if (succ != succs_.end()) {
            eraseOne(succ->second, target);
            if (succ->second.empty()) {
                succs_.erase(succ);
            }
        }
    }
}

void Backgraph::noteWrite(Object *src, Object *old_target,
                          Object *new_target)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (old_target != nullptr) {
        removeEdgeLocked(src, old_target);
    }
    if (new_target == nullptr) {
        return;
    }
    Node &node = nodeFor(new_target);
    if (node.saturated) {
        return;
    }
    if (node.preds.size() >= config_.inDegreeCap) {
        // Saturation: drop the predecessor list and treat the node
        // as a pseudo-root from now on. The dropped edges' forward
        // mirrors must go too, or pruning would underflow later.
        for (Object *pred : node.preds) {
            auto succ = succs_.find(pred);
            if (succ != succs_.end()) {
                eraseOne(succ->second, new_target);
                if (succ->second.empty()) {
                    succs_.erase(succ);
                }
            }
        }
        node.preds.clear();
        node.preds.shrink_to_fit();
        node.saturated = true;
        return;
    }
    node.preds.push_back(src);
    succs_[src].push_back(new_target);
    edgeRecords_.fetch_add(1, std::memory_order_relaxed);
}

void Backgraph::noteAlloc(Object *obj, uint32_t site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Node &node = nodes_[obj];
    node.site = site;
}

void Backgraph::noteFreed(Object *obj)
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Outgoing edges: every target whose pred list records obj.
    auto succ = succs_.find(obj);
    if (succ != succs_.end()) {
        for (Object *target : succ->second) {
            auto node = nodes_.find(target);
            if (node != nodes_.end() &&
                eraseOne(node->second.preds, obj)) {
                prunedEdges_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        succs_.erase(succ);
    }

    // Incoming edges: every pred whose forward mirror records obj.
    auto node = nodes_.find(obj);
    if (node != nodes_.end()) {
        for (Object *pred : node->second.preds) {
            auto psucc = succs_.find(pred);
            if (psucc != succs_.end()) {
                eraseOne(psucc->second, obj);
                if (psucc->second.empty()) {
                    succs_.erase(psucc);
                }
            }
            prunedEdges_.fetch_add(1, std::memory_order_relaxed);
        }
        nodes_.erase(node);
    }
}

uint32_t Backgraph::registerSite(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = siteIds_.find(name);
    if (it != siteIds_.end()) {
        return it->second;
    }
    uint32_t id = nextSiteId_++;
    siteIds_.emplace(name, id);
    siteNames_.emplace(id, name);
    return id;
}

uint32_t Backgraph::siteFromAddress(const void *address)
{
    // Fibonacci hash of the code address; fold into the hashed-id
    // half of the space and keep it nonzero.
    auto bits = reinterpret_cast<uintptr_t>(address);
    uint64_t h = static_cast<uint64_t>(bits) * 0x9e3779b97f4a7c15ull;
    uint32_t folded = static_cast<uint32_t>(h >> 33) & 0x7fffffffu;
    if (folded == 0) {
        folded = 1;
    }
    return kHashedSiteBit | folded;
}

std::string Backgraph::siteName(uint32_t site) const
{
    if (site == 0 || (site & kHashedSiteBit) != 0) {
        return siteNameLocked(site);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return siteNameLocked(site);
}

std::string Backgraph::siteNameLocked(uint32_t site) const
{
    if (site == 0) {
        return "?";
    }
    if ((site & kHashedSiteBit) != 0) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "site-0x%08x", site);
        return buf;
    }
    auto it = siteNames_.find(site);
    return it != siteNames_.end() ? it->second : "?";
}

WhyAliveReport Backgraph::whyAlive(const Object *obj) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return whyAliveLocked(obj);
}

std::vector<std::pair<std::string, WhyAliveReport>>
Backgraph::namedSiteReports() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // One pass over the nodes picks each named site's deterministic
    // representative (lowest address); the hashed-id space is
    // deliberately excluded — it is unbounded and unnamed.
    std::unordered_map<uint32_t, const Object *> representative;
    for (const auto &[obj, node] : nodes_) {
        if (node.site == 0 || (node.site & kHashedSiteBit) != 0) {
            continue;
        }
        auto [it, inserted] = representative.emplace(node.site, obj);
        if (!inserted && obj < it->second) {
            it->second = obj;
        }
    }
    std::vector<std::pair<std::string, WhyAliveReport>> reports;
    reports.reserve(representative.size());
    for (const auto &[site, obj] : representative) {
        reports.emplace_back(siteNameLocked(site),
                             whyAliveLocked(obj));
    }
    return reports;
}

WhyAliveReport Backgraph::whyAliveLocked(const Object *obj) const
{
    WhyAliveReport report;
    auto start = nodes_.find(const_cast<Object *>(obj));
    if (start == nodes_.end()) {
        return report;
    }
    report.known = true;

    // BFS rootward along predecessor lists; the parent links give
    // the shortest rootward chain once a (pseudo-)root is found.
    std::unordered_map<const Object *, const Object *> parent;
    std::deque<const Object *> queue;
    parent.emplace(obj, nullptr);
    queue.push_back(obj);
    const Object *root = nullptr;
    while (!queue.empty()) {
        const Object *cur = queue.front();
        queue.pop_front();
        auto it = nodes_.find(const_cast<Object *>(cur));
        if (it == nodes_.end()) {
            continue;
        }
        const Node &node = it->second;
        if (node.saturated || node.preds.empty()) {
            root = cur;
            report.saturated = node.saturated;
            break;
        }
        for (Object *pred : node.preds) {
            if (parent.emplace(pred, cur).second) {
                queue.push_back(pred);
            }
        }
    }
    if (root == nullptr) {
        return report;
    }
    report.rootReached = true;
    // The parent map points from each visited node back toward the
    // query object, so chasing it from the root yields the rootmost-
    // first path ending at obj.
    for (const Object *hop = root; hop != nullptr;
         hop = parent.at(hop)) {
        PathEntry entry;
        entry.typeName = types_.get(hop->typeId()).name();
        entry.address = hop;
        report.path.push_back(entry);
    }
    return report;
}

Backgraph::SampleStats Backgraph::onFullGcDone(uint64_t gc_number)
{
    std::vector<Violation> reports;
    SampleStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);

        // Multi-source BFS over the forward mirror from every
        // rootlike node (no known predecessors, or saturated). The
        // sweep pruned dead endpoints already, so the table holds
        // live objects only. Cycles that lost their rootward entry
        // to staleness simply stay height-unknown and are excluded
        // from the trends.
        std::deque<Object *> queue;
        for (auto &entry : nodes_) {
            Node &node = entry.second;
            node.heightKnown = false;
            node.height = 0;
            if (node.saturated || node.preds.empty()) {
                node.heightKnown = true;
                queue.push_back(entry.first);
            }
        }
        while (!queue.empty()) {
            Object *cur = queue.front();
            queue.pop_front();
            uint32_t next_height = nodes_[cur].height + 1;
            auto succ = succs_.find(cur);
            if (succ == succs_.end()) {
                continue;
            }
            for (Object *target : succ->second) {
                auto it = nodes_.find(target);
                if (it == nodes_.end() || it->second.heightKnown) {
                    continue;
                }
                it->second.heightKnown = true;
                it->second.height = next_height;
                queue.push_back(target);
            }
        }

        // Fold per-object heights into per-site aggregates.
        struct SiteSample {
            uint64_t maxHeight = 0;
            uint64_t liveCount = 0;
        };
        std::unordered_map<uint32_t, SiteSample> samples;
        for (const auto &entry : nodes_) {
            const Node &node = entry.second;
            SiteSample &s = samples[node.site];
            s.liveCount += 1;
            if (node.heightKnown && node.height > s.maxHeight) {
                s.maxHeight = node.height;
            }
        }

        // Update streaks: strictly-increasing runs across consecutive
        // full-GC samples. A site is reported each time its streak
        // crosses a multiple of the window (periodic re-report while
        // the leak keeps growing), and a single flat sample resets
        // it — healthy bounded structures plateau.
        for (auto &sample : samples) {
            uint32_t site = sample.first;
            SiteTrend &trend = trends_[site];
            if (trend.sampled &&
                sample.second.maxHeight > trend.lastMaxHeight) {
                trend.heightStreak += 1;
            } else if (trend.sampled) {
                trend.heightStreak = 0;
            }
            if (trend.sampled &&
                sample.second.liveCount > trend.lastLiveCount) {
                trend.liveStreak += 1;
            } else if (trend.sampled) {
                trend.liveStreak = 0;
            }

            if (trend.heightStreak >= config_.window &&
                trend.heightStreak % config_.window == 0) {
                Violation v;
                v.kind = AssertionKind::LeakGrowth;
                v.offendingType = siteNameLocked(site);
                v.gcNumber = gc_number;
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "growing-leak: site '%s' root-path height rose "
                    "%llu -> %llu over %u collections (%llu live "
                    "objects)",
                    v.offendingType.c_str(),
                    static_cast<unsigned long long>(
                        trend.lastMaxHeight),
                    static_cast<unsigned long long>(
                        sample.second.maxHeight),
                    static_cast<unsigned>(trend.heightStreak),
                    static_cast<unsigned long long>(
                        sample.second.liveCount));
                v.message = buf;
                reports.push_back(std::move(v));
                stats.growthReports += 1;
            }
            if (trend.liveStreak >= config_.window &&
                trend.liveStreak % config_.window == 0) {
                Violation v;
                v.kind = AssertionKind::LeakGrowth;
                v.offendingType = siteNameLocked(site);
                v.gcNumber = gc_number;
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "find-leak: site '%s' survivors rose %llu -> "
                    "%llu over %u collections without being freed",
                    v.offendingType.c_str(),
                    static_cast<unsigned long long>(
                        trend.lastLiveCount),
                    static_cast<unsigned long long>(
                        sample.second.liveCount),
                    static_cast<unsigned>(trend.liveStreak));
                v.message = buf;
                reports.push_back(std::move(v));
                stats.findLeakReports += 1;
            }

            trend.lastMaxHeight = sample.second.maxHeight;
            trend.lastLiveCount = sample.second.liveCount;
            trend.sampled = true;
        }

        // A site with no live objects this sample is no longer
        // trending — forget it so a later revival starts fresh.
        for (auto it = trends_.begin(); it != trends_.end();) {
            if (samples.find(it->first) == samples.end()) {
                it = trends_.erase(it);
            } else {
                ++it;
            }
        }

        stats.nodes = nodes_.size();
        stats.sites = samples.size();
    }

    // Funnel the reports outside the mutex: the engine's violation
    // observer enriches provenance and may call back into whyAlive.
    for (Violation &v : reports) {
        engine_.report(std::move(v));
    }
    growthReports_.fetch_add(stats.growthReports,
                             std::memory_order_relaxed);
    findLeakReports_.fetch_add(stats.findLeakReports,
                               std::memory_order_relaxed);
    return stats;
}

uint64_t Backgraph::nodeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
}

uint64_t Backgraph::edgeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t edges = 0;
    for (const auto &entry : nodes_) {
        edges += entry.second.preds.size();
    }
    return edges;
}

uint64_t Backgraph::saturatedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t saturated = 0;
    for (const auto &entry : nodes_) {
        saturated += entry.second.saturated ? 1 : 0;
    }
    return saturated;
}

uint64_t Backgraph::siteCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return siteIds_.size();
}

} // namespace gcassert
