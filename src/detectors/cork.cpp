#include "detectors/cork.h"

#include "runtime/runtime.h"

namespace gcassert {

CorkDetector::CorkDetector(Runtime &runtime, size_t window,
                           double growth_fraction)
    : runtime_(runtime), window_(window), growthFraction_(growth_fraction)
{
}

void
CorkDetector::sample()
{
    Census census;
    runtime_.heap().forEachObject([&](Object *obj) {
        census[obj->typeId()] += obj->sizeBytes();
    });
    history_.push_back(std::move(census));
    if (history_.size() > window_)
        history_.pop_front();
    ++samplesTaken_;
}

std::vector<GrowthReport>
CorkDetector::findGrowing() const
{
    std::vector<GrowthReport> reports;
    if (history_.size() < 2)
        return reports;

    // Collect the union of types seen in the window.
    std::unordered_map<TypeId, bool> types;
    for (const auto &census : history_)
        for (const auto &[type, bytes] : census)
            types[type] = true;

    size_t deltas = history_.size() - 1;
    for (const auto &[type, unused] : types) {
        (void)unused;
        size_t grew = 0;
        auto at = [&](size_t i) {
            auto it = history_[i].find(type);
            return it == history_[i].end() ? uint64_t{0} : it->second;
        };
        for (size_t i = 1; i < history_.size(); ++i)
            if (at(i) > at(i - 1))
                ++grew;
        uint64_t first = at(0);
        uint64_t last = at(history_.size() - 1);
        if (last > first &&
            static_cast<double>(grew) >=
                growthFraction_ * static_cast<double>(deltas)) {
            reports.push_back(GrowthReport{
                type, runtime_.types().get(type).name(), first, last,
                grew, deltas});
        }
    }
    return reports;
}

size_t
CorkDetector::reportGrowing()
{
    std::vector<GrowthReport> growing = findGrowing();
    for (const GrowthReport &report : growing) {
        Violation v;
        v.kind = AssertionKind::TypeGrowth;
        v.offendingType = report.typeName;
        v.gcNumber = runtime_.collections();
        v.message = "type-growth: " + report.typeName + " grew " +
            std::to_string(report.bytesFirst) + " -> " +
            std::to_string(report.bytesLast) + " bytes over " +
            std::to_string(report.growthSamples) + "/" +
            std::to_string(report.windowSamples) + " samples";
        runtime_.engine().report(std::move(v));
    }
    return growing.size();
}

} // namespace gcassert
