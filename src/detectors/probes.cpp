#include "detectors/probes.h"

#include "runtime/runtime.h"

namespace gcassert {

ImmediateProbes::ImmediateProbes(Runtime &runtime) : runtime_(runtime)
{
    // One permanent hook; probeDead arms it with the object to
    // watch. The detector must therefore outlive all collections
    // (see class comment).
    runtime_.addFreeHook([this](Object *freed) {
        if (watch_ && freed == watch_)
            reclaimed_ = true;
    });
}

bool
ImmediateProbes::probeDead(const Object *obj)
{
    watch_ = obj;
    reclaimed_ = false;
    runtime_.collect();
    ++probeCollections_;
    watch_ = nullptr;
    return reclaimed_;
}

uint64_t
ImmediateProbes::probeInstances(TypeId type)
{
    runtime_.collect();
    ++probeCollections_;
    uint64_t count = 0;
    runtime_.heap().forEachObject([&](Object *obj) {
        if (obj->typeId() == type)
            ++count;
    });
    return count;
}

} // namespace gcassert
