/**
 * @file
 * Example: structural invariants with assert-instances and
 * assert-unshared.
 *
 * Two of the paper's lighter-weight assertion uses:
 *
 *  - The singleton pattern is notoriously easy to break (section
 *    2.4.1 cites subclassing and serialization); asserting
 *    instances(Config, 1) turns every accidental second instance
 *    into a GC-time report. The lusearch finding (section 3.2.2) is
 *    the same check on Lucene's IndexSearcher.
 *
 *  - A tree that silently becomes a DAG is a classic data-structure
 *    corruption; assert-unshared on the nodes reports the first
 *    moment any node gains a second parent (section 2.5.1), with
 *    the second path shown.
 *
 *   ./singleton_check
 */

#include <cstdio>

#include "runtime/runtime.h"

using namespace gcassert;

int
main()
{
    RuntimeConfig config;
    config.heap.budgetBytes = 8ull * 1024 * 1024;
    Runtime rt(config);

    // --- Singleton ---
    TypeId config_type = rt.types()
                             .define("AppConfig")
                             .refCount(0)
                             .scalars(32)
                             .build();
    rt.assertInstances(config_type, 1);

    Handle the_config(rt, rt.allocRaw(config_type), "the-config");
    rt.collect();
    std::printf("one AppConfig live: %zu violation(s)\n",
                rt.violations().size());

    // A "helper" constructs its own AppConfig instead of using the
    // shared one — the broken-singleton bug.
    Handle rogue(rt, rt.allocRaw(config_type), "rogue-config");
    rt.collect();
    std::printf("rogue AppConfig created: %zu violation(s)\n",
                rt.violations().size());
    if (!rt.violations().empty())
        std::printf("\n%s\n", rt.violations().back().toString().c_str());
    rogue.reset();

    // --- Tree vs DAG ---
    TypeId node_type = rt.types()
                           .define("TreeNode")
                           .refs({"left", "right"})
                           .scalars(8)
                           .build();

    Handle root(rt, rt.allocRaw(node_type), "tree-root");
    Object *left = rt.allocRaw(node_type);
    root->setRef(0, left);
    Object *right = rt.allocRaw(node_type);
    root->setRef(1, right);
    Object *leaf = rt.allocRaw(node_type);
    left->setRef(0, leaf);

    // Every node of a tree has exactly one parent.
    rt.assertUnshared(left);
    rt.assertUnshared(right);
    rt.assertUnshared(leaf);

    size_t before = rt.violations().size();
    rt.collect();
    std::printf("tree intact: %zu new violation(s)\n",
                rt.violations().size() - before);

    // A refactoring bug makes the right subtree share the leaf.
    right->setRef(0, leaf);
    before = rt.violations().size();
    rt.collect();
    std::printf("after the bad edge: %zu new violation(s)\n",
                rt.violations().size() - before);
    if (rt.violations().size() > before)
        std::printf("\n%s", rt.violations().back().toString().c_str());
    std::printf("\nThe reported path is the *second* route to the "
                "node — exactly the edge that\nturned the tree into "
                "a DAG.\n");
    return 0;
}
