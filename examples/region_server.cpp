/**
 * @file
 * Example: memory-stable request handling with assert-alldead.
 *
 * The paper's motivating use for regions (section 2.3.2): a server
 * brackets its connection-servicing code with start-region() and
 * assert-alldead() to guarantee that servicing a request leaks no
 * memory into the rest of the application — the discipline Apache's
 * pools enforce by construction, checked here instead of imposed.
 *
 * The example services a batch of requests with a handler that
 * accidentally caches one response object per 16 requests, shows
 * the collector catching every escapee, then fixes the handler and
 * demonstrates a silent re-run. It finishes with the ForceTrue
 * reaction (section 2.6, implemented here as an extension): the
 * collector repairs the leak itself by nulling the escaped
 * references.
 *
 *   ./region_server
 */

#include <cstdio>

#include "runtime/runtime.h"
#include "workloads/managed_util.h"

using namespace gcassert;

namespace {

struct Server {
    explicit Server(Runtime &rt)
        : vec(rt, "Srv"), str(rt, "SrvString")
    {
        request_type = rt.types()
                           .define("Request")
                           .refs({"payload"})
                           .scalars(8)
                           .build();
        response_type = rt.types()
                            .define("Response")
                            .refs({"body", "request"})
                            .scalars(8)
                            .build();
    }

    ManagedVectorOps vec;
    ManagedStringOps str;
    TypeId request_type;
    TypeId response_type;
};

/** Service one request; optionally leak into the given cache. */
void
service(Runtime &rt, Server &server, uint64_t id, Object *leaky_cache)
{
    // Everything in here is request-scoped...
    Object *request = rt.allocRaw(server.request_type);
    Handle guard(rt, request, "request");
    request->setScalar<uint64_t>(0, id);
    request->setRef(0, server.str.create(
                           "GET /item/" + std::to_string(id)));

    Object *response = rt.allocRaw(server.response_type);
    request->setScalar<uint64_t>(0, id); // touch
    Handle rguard(rt, response, "response");
    response->setRef(0, server.str.create(
                            "200 OK body:" + std::to_string(id * 31)));
    response->setRef(1, request);

    // ...except when the handler "caches" a response object in a
    // structure that outlives the request. That is the leak.
    if (leaky_cache && id % 16 == 0)
        server.vec.push(leaky_cache, response);
}

} // namespace

int
main()
{
    RuntimeConfig config;
    config.heap.budgetBytes = 8ull * 1024 * 1024;
    Runtime rt(config);
    Server server(rt);

    Handle cache(rt, server.vec.create(), "response-cache");

    // --- Buggy handler under an assert-alldead bracket ---
    rt.startRegion();
    for (uint64_t id = 1; id <= 64; ++id)
        service(rt, server, id, cache.get());
    rt.assertAllDead();
    rt.collect();

    std::printf("buggy handler: %zu region object(s) escaped\n\n",
                rt.violations().size());
    if (!rt.violations().empty())
        std::printf("first report:\n%s\n",
                    rt.violations()[0].toString().c_str());

    // --- Fixed handler: nothing escapes, the bracket is silent ---
    server.vec.clear(cache.get());
    size_t before = rt.violations().size();
    rt.startRegion();
    for (uint64_t id = 1; id <= 64; ++id)
        service(rt, server, id, nullptr);
    rt.assertAllDead();
    rt.collect();
    std::printf("fixed handler: %zu new violation(s)\n\n",
                rt.violations().size() - before);

    // --- ForceTrue: let the collector repair the leak itself ---
    rt.engine().reactions().set(AssertionKind::AllDead,
                                Reaction::ForceTrue);
    before = rt.violations().size();
    rt.startRegion();
    for (uint64_t id = 1; id <= 64; ++id)
        service(rt, server, id, cache.get()); // buggy again
    rt.assertAllDead();
    rt.collect();
    std::printf("ForceTrue: %zu escapees reclaimed anyway; cache now "
                "holds %llu null slot(s) where responses were severed\n",
                rt.violations().size() - before,
                static_cast<unsigned long long>(
                    server.vec.size(cache.get())));
    return 0;
}
