/**
 * @file
 * Example: diagnosing a leaking service with the whole toolbox.
 *
 * A session store holds Session objects; a logout path forgets to
 * drop the audit log's reference. The walk-through compares what
 * each tool tells you:
 *
 *  1. Cork-style growth differencing — "Session bytes are growing"
 *     (a type name, several collections later).
 *  2. Staleness — a triage list with false positives.
 *  3. HeapQuery census and pathTo — immediate, but you must already
 *     suspect an object.
 *  4. GC assertions — the exact leaking instances with full paths,
 *     at the first collection after the bug executes.
 *
 * It ends with a weak-reference fix: the audit log holds sessions
 * weakly, so logged-out sessions die even with the buggy code path.
 *
 *   ./heap_doctor
 */

#include <cstdio>

#include "detectors/cork.h"
#include "detectors/staleness.h"
#include "runtime/heap_query.h"
#include "runtime/runtime.h"
#include "workloads/managed_util.h"

using namespace gcassert;

namespace {

struct Store {
    explicit Store(Runtime &rt) : vec(rt, "Hd"), str(rt, "HdString")
    {
        session = rt.types()
                      .define("Session")
                      .refs({"user"})
                      .scalars(16)
                      .build();
        weak_entry = rt.types()
                         .define("AuditWeakRef")
                         .refs({"session"})
                         .scalars(8)
                         .weak()
                         .build();
    }

    ManagedVectorOps vec;
    ManagedStringOps str;
    TypeId session;
    TypeId weak_entry;
};

Object *
login(Runtime &rt, Store &store, Object *sessions, Object *audit,
      uint64_t id, bool weak_audit)
{
    Object *session = rt.allocRaw(store.session);
    Handle guard(rt, session, "login");
    session->setScalar<uint64_t>(0, id);
    session->setRef(0, store.str.create("user-" + std::to_string(id)));
    store.vec.push(sessions, session);
    if (weak_audit) {
        Object *entry = rt.allocRaw(store.weak_entry);
        Handle eguard(rt, entry, "audit-entry");
        entry->setRef(0, session);
        store.vec.push(audit, entry);
    } else {
        store.vec.push(audit, session); // strong: the bug-to-be
    }
    return session;
}

void
logout(Runtime &rt, Store &store, Object *sessions, uint64_t id)
{
    // BUG: removes from the session store but not from the audit
    // log (when the log holds strong references).
    uint64_t n = store.vec.size(sessions);
    for (uint64_t i = 0; i < n; ++i) {
        Object *session = store.vec.get(sessions, i);
        if (session->scalar<uint64_t>(0) == id) {
            store.vec.swapRemoveAt(sessions, i);
            rt.assertDead(session); // "sessions die at logout"
            return;
        }
    }
}

} // namespace

int
main()
{
    RuntimeConfig config;
    config.heap.budgetBytes = 16ull * 1024 * 1024;
    Runtime rt(config);
    Store store(rt);
    HeapQuery query(rt);
    StalenessDetector staleness(rt, 2);
    CorkDetector cork(rt, 4, 0.6);

    Handle sessions(rt, store.vec.create(), "session-store");
    Handle audit(rt, store.vec.create(), "audit-log");

    std::printf("=== phase 1: the buggy service runs ===\n");
    uint64_t id = 0;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 50; ++i)
            login(rt, store, sessions.get(), audit.get(), id++, false);
        for (uint64_t kill = id - 50; kill < id - 10; ++kill)
            logout(rt, store, sessions.get(), kill);
        rt.collect();
        cork.sample();
    }

    std::printf("\n--- Cork-style growth differencing says ---\n");
    for (const auto &g : cork.findGrowing())
        std::printf("  type %-12s grew %llu -> %llu bytes\n",
                    g.typeName.c_str(),
                    static_cast<unsigned long long>(g.bytesFirst),
                    static_cast<unsigned long long>(g.bytesLast));

    std::printf("\n--- staleness triage list says ---\n");
    auto stale = staleness.findStale();
    std::printf("  %zu stale objects across the heap (includes every "
                "cold live structure)\n",
                stale.size());

    std::printf("\n--- HeapQuery census says ---\n");
    for (const auto &row : query.census())
        std::printf("  %-14s %6llu instances %10llu bytes\n",
                    row.typeName.c_str(),
                    static_cast<unsigned long long>(row.instances),
                    static_cast<unsigned long long>(row.bytes));

    std::printf("\n--- GC assertions said, at the first GC ---\n");
    std::printf("  %zu exact violations; the first report:\n\n",
                rt.violations().size());
    if (!rt.violations().empty())
        std::printf("%s\n", rt.violations()[0].toString().c_str());

    std::printf("=== phase 2: the weak-audit fix ===\n");
    rt.engine().clearViolations();
    store.vec.clear(audit.get());
    store.vec.clear(sessions.get());
    rt.collect();

    for (int i = 0; i < 50; ++i)
        login(rt, store, sessions.get(), audit.get(), id++, true);
    for (uint64_t kill = id - 50; kill < id; ++kill)
        logout(rt, store, sessions.get(), kill);
    rt.collect();

    uint64_t live_entries = 0;
    for (uint64_t i = 0; i < store.vec.size(audit.get()); ++i)
        if (store.vec.get(audit.get(), i)->ref(0))
            ++live_entries;
    std::printf("after logging everyone out: %zu violations, %llu "
                "audit entries still point at sessions\n",
                rt.violations().size(),
                static_cast<unsigned long long>(live_entries));
    std::printf("(the weak edges cleared themselves; the assertions "
                "hold)\n");
    return 0;
}
