/**
 * @file
 * Quickstart: the gcassert runtime in ~80 lines.
 *
 * Builds a managed runtime, defines a type, allocates objects, adds
 * each kind of GC assertion, triggers a collection, and shows how
 * violations are reported with full heap paths.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "runtime/runtime.h"

using namespace gcassert;

int
main()
{
    // 1. A runtime with a 16 MiB heap. The default configuration
    //    enables the assertion infrastructure and path recording.
    RuntimeConfig config;
    config.heap.budgetBytes = 16ull * 1024 * 1024;
    Runtime runtime(config);

    // 2. Define a managed type: two named reference slots and eight
    //    bytes of scalar payload.
    TypeId node = runtime.types()
                      .define("Node")
                      .refs({"next", "data"})
                      .scalars(8)
                      .build();
    uint32_t next_slot = runtime.types().get(node).slotIndex("next");

    // 3. Allocate. A Handle is a GC root: the object stays live
    //    while the handle is in scope.
    Handle list(runtime, runtime.allocRaw(node), "quickstart.list");
    list->setScalar<uint64_t>(0, 0);

    // Build a three-element list: list -> a -> b.
    Object *a = runtime.allocRaw(node);
    list->setRef(next_slot, a);
    Object *b = runtime.allocRaw(node);
    a->setRef(next_slot, b);

    // 4. GC assertions. Executing one records intent; the *next
    //    collection* checks it while tracing the heap (that is the
    //    paper's trick — the checks ride along for almost nothing).

    // assert-dead: "b is about to be unlinked, so it must be
    // unreachable by the next GC". We unlink a but forget that it
    // still references b... so this will be a violation.
    runtime.assertDead(b);
    list->setRef(next_slot, nullptr); // drops a (and we think b)

    // assert-instances: at most 8 Nodes should ever be live.
    runtime.assertInstances(node, 8);

    // assert-unshared: the list head must have at most one incoming
    // reference.
    runtime.assertUnshared(list.get());

    // Keep `a` alive through a side reference so the bug manifests:
    // b remains reachable through it.
    Handle keeper(runtime, a, "quickstart.keeper");

    // 5. Collect. Violations are logged through the warn() channel
    //    and recorded on the runtime.
    std::printf("collecting...\n\n");
    runtime.collect();

    for (const Violation &v : runtime.violations())
        std::printf("%s\n", v.toString().c_str());

    std::printf("GC statistics:\n%s\n",
                runtime.gcStats().toString().c_str());
    std::printf("Assertion statistics:\n%s",
                runtime.assertionStats().toString().c_str());
    return runtime.violations().empty() ? 1 : 0;
}
