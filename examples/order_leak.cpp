/**
 * @file
 * Example: hunting the SPEC JBB2000 order leak with GC assertions.
 *
 * A miniature order-processing service stores Orders in a B-tree
 * orderTable; Customers remember their most recent Order. Delivery
 * removes an Order from the table and "destroys" it — but the
 * Customer's lastOrder reference is forgotten, so destroyed Orders
 * stay reachable. This walks through the two ways the paper caught
 * the bug (sections 3.2.1 and 2.5.2):
 *
 *  1. assert-dead at the destroy site: the report's heap path ends
 *     ... -> Customer -> Order, pinpointing the stale reference.
 *  2. assert-ownedby(orderTable, order) at the insert site: no need
 *     to know *where* Orders should die; the collector reports any
 *     Order that is reachable around its table.
 *
 *   ./order_leak
 */

#include <cstdio>

#include "runtime/runtime.h"
#include "workloads/long_btree.h"

using namespace gcassert;

namespace {

struct Shop {
    explicit Shop(Runtime &rt) : btree(rt, "Shop")
    {
        customer_type = rt.types()
                            .define("Customer")
                            .refs({"lastOrder"})
                            .scalars(8)
                            .build();
        order_type = rt.types()
                         .define("Order")
                         .refs({"customer"})
                         .scalars(16)
                         .build();
        customers_type = rt.types().define("Customer[]").array().build();
    }

    LongBTreeOps btree;
    TypeId customer_type;
    TypeId order_type;
    TypeId customers_type;
};

} // namespace

int
main()
{
    RuntimeConfig config;
    config.heap.budgetBytes = 16ull * 1024 * 1024;
    Runtime rt(config);
    Shop shop(rt);

    Handle table(rt, shop.btree.create(), "orderTable");
    Handle customers(rt, rt.allocArrayRaw(shop.customers_type, 4),
                     "customers");
    for (uint32_t c = 0; c < 4; ++c) {
        Object *customer = rt.allocRaw(shop.customer_type);
        customer->setScalar<uint64_t>(0, c);
        customers->setRef(c, customer);
    }

    // Take some orders. Each is inserted into the table, and the
    // customer remembers it. The insert site carries the ownership
    // assertion: an Order must never outlive its place in the table.
    for (int64_t id = 1; id <= 8; ++id) {
        // Orders 1-4 come from all four customers; the later orders
        // only from customers 1 and 2 (customers 0 and 3 never
        // re-order, so their lastOrder goes stale).
        uint32_t who = id <= 4 ? static_cast<uint32_t>(id % 4)
                               : static_cast<uint32_t>(1 + id % 2);
        Object *customer = customers->ref(who);
        Object *order = rt.allocRaw(shop.order_type);
        Handle guard(rt, order, "new-order");
        order->setScalar<int64_t>(0, id);
        order->setRef(0, customer);
        shop.btree.insert(table.get(), id, order);
        customer->setRef(0, order); // lastOrder

        rt.assertOwnedBy(table.get(), order);
    }
    std::printf("took 8 orders; table size %llu\n",
                static_cast<unsigned long long>(
                    shop.btree.size(table.get())));

    // Deliver the first four orders. The BUG: we remove each from
    // the table and assert it dead, but never clear
    // customer.lastOrder.
    for (int64_t id = 1; id <= 4; ++id) {
        Object *order = shop.btree.remove(table.get(), id);
        if (!order)
            continue;
        order->setScalar<uint64_t>(8, 1); // mark processed
        rt.assertDead(order);             // "this must be garbage now"
    }
    std::printf("delivered 4 orders; table size %llu\n\n",
                static_cast<unsigned long long>(
                    shop.btree.size(table.get())));

    rt.collect();

    std::printf("=== what the collector found ===\n\n");
    for (const Violation &v : rt.violations())
        std::printf("%s\n", v.toString().c_str());

    std::printf("Orders 1 and 2's customers re-ordered (ids 5, 6), so "
                "their lastOrder was\noverwritten and those Orders died "
                "quietly. Orders 3 and 4 are the leak:\nthe reports "
                "above walk from the customers array straight to them.\n"
                "\nThe fix — clear customer.lastOrder at delivery — and "
                "a re-run:\n\n");

    // Repair the two stale references found above (the report told
    // us exactly where they are)...
    for (uint32_t c = 0; c < 4; ++c) {
        Object *customer = customers->ref(c);
        Object *last = customer->ref(0);
        if (last && last->scalar<uint64_t>(8) == 1)
            customer->setRef(0, nullptr);
    }
    // ...and deliver the remaining orders with the fixed handler.
    for (int64_t id = 5; id <= 8; ++id) {
        Object *order = shop.btree.remove(table.get(), id);
        if (!order)
            continue;
        Object *customer = order->ref(0);
        if (customer && customer->ref(0) == order)
            customer->setRef(0, nullptr); // the fix
        rt.assertDead(order);
    }
    size_t before = rt.violations().size();
    rt.collect();
    std::printf("fixed delivery: %zu new violation(s)\n",
                rt.violations().size() - before);
    return 0;
}
