/**
 * @file
 * Tests for assert-instances (volume assertions, paper section 2.4).
 */

#include "test_util.h"

namespace gcassert {
namespace {

using testutil::RuntimeTest;

class AssertInstancesTest : public RuntimeTest {};

TEST_F(AssertInstancesTest, UnderLimitIsSatisfied)
{
    runtime_->assertInstances(nodeType_, 3);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertInstancesTest, AtLimitIsSatisfied)
{
    runtime_->assertInstances(nodeType_, 2);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertInstancesTest, OverLimitIsViolation)
{
    runtime_->assertInstances(nodeType_, 2);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    Handle c = rootedNode(3);
    runtime_->collect();
    ASSERT_EQ(violations().size(), 1u);
    const Violation &v = violations()[0];
    EXPECT_EQ(v.kind, AssertionKind::Instances);
    EXPECT_EQ(v.offendingType, "Node");
    EXPECT_NE(v.message.find("3 instances"), std::string::npos);
    EXPECT_NE(v.message.find("limit is 2"), std::string::npos);
}

TEST_F(AssertInstancesTest, OnlyLiveInstancesCount)
{
    runtime_->assertInstances(nodeType_, 2);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    for (int i = 0; i < 50; ++i)
        node(100 + i); // garbage: must not count
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertInstancesTest, ZeroLimitChecksNoInstancesExist)
{
    runtime_->assertInstances(nodeType_, 0);
    node(1); // garbage: dies at the GC, does not count
    runtime_->collect();
    EXPECT_TRUE(violations().empty());

    Handle live = rootedNode(2);
    runtime_->collect();
    ASSERT_EQ(violations().size(), 1u);
    EXPECT_NE(violations()[0].message.find("1 instances"),
              std::string::npos);
}

TEST_F(AssertInstancesTest, SingletonPattern)
{
    TypeId singleton =
        runtime_->types().define("Config").refCount(0).scalars(8).build();
    runtime_->assertInstances(singleton, 1);
    Handle only(*runtime_, runtime_->allocRaw(singleton), "the-config");
    runtime_->collect();
    EXPECT_TRUE(violations().empty());

    Handle second(*runtime_, runtime_->allocRaw(singleton), "oops");
    runtime_->collect();
    ASSERT_EQ(violations().size(), 1u);
    EXPECT_EQ(violations()[0].offendingType, "Config");
}

TEST_F(AssertInstancesTest, ReportedEveryGcWhileViolated)
{
    runtime_->assertInstances(nodeType_, 0);
    Handle live = rootedNode(1);
    runtime_->collect();
    runtime_->collect();
    EXPECT_EQ(violations().size(), 2u)
        << "volume violations are recomputed per collection";
}

TEST_F(AssertInstancesTest, RecoveryStopsReports)
{
    runtime_->assertInstances(nodeType_, 1);
    Handle a = rootedNode(1);
    {
        Handle b = rootedNode(2);
        runtime_->collect();
        EXPECT_EQ(violations().size(), 1u);
    }
    runtime_->collect(); // b died: back under the limit
    EXPECT_EQ(violations().size(), 1u);
}

TEST_F(AssertInstancesTest, TighterLimitWins)
{
    runtime_->assertInstances(nodeType_, 10);
    runtime_->assertInstances(nodeType_, 1);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    runtime_->collect();
    EXPECT_EQ(violations().size(), 1u);
}

TEST_F(AssertInstancesTest, MultipleTrackedTypes)
{
    TypeId other =
        runtime_->types().define("Other").refCount(0).build();
    runtime_->assertInstances(nodeType_, 1);
    runtime_->assertInstances(other, 1);
    Handle a = rootedNode(1);
    Handle b = rootedNode(2);
    Handle c(*runtime_, runtime_->allocRaw(other), "other-1");
    Handle d(*runtime_, runtime_->allocRaw(other), "other-2");
    runtime_->collect();
    EXPECT_EQ(violations().size(), 2u);
    EXPECT_EQ(violationsOf(AssertionKind::Instances).size(), 2u);
}

TEST_F(AssertInstancesTest, InstancesInsideStructuresAreCounted)
{
    runtime_->assertInstances(nodeType_, 2);
    Handle arr(*runtime_, runtime_->allocArrayRaw(arrayType_, 8),
               "array-root");
    for (uint32_t i = 0; i < 3; ++i)
        arr->setRef(i, node(i));
    runtime_->collect();
    EXPECT_EQ(violations().size(), 1u);
}

} // namespace
} // namespace gcassert
