/**
 * @file
 * Matrix tests for the shared validating environment parser.
 *
 * Every GCASSERT_* knob parses through support/env.h's envUint(),
 * whose contract is: unset/empty → fallback, silently; a plain
 * decimal → its value; anything else (garbage, trailing junk, a
 * sign, leading whitespace, overflow) → fallback plus exactly one
 * warn() per variable per process. The default*() config accessors
 * cache their first read, so these tests drive envUint() directly
 * against each real knob name — the exact call those accessors make.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "support/env.h"
#include "support/logging.h"

namespace gcassert {
namespace {

/** Every unsigned-integer environment knob the runtime reads. */
const std::vector<const char *> kUintKnobs = {
    "GCASSERT_MARK_THREADS",    "GCASSERT_SWEEP_THREADS",
    "GCASSERT_LAZY_SWEEP",      "GCASSERT_TLAB",
    "GCASSERT_GENERATIONAL",    "GCASSERT_NURSERY_KB",
    "GCASSERT_CENSUS_EVERY",    "GCASSERT_PAUSE_BUDGET_US",
};

class EnvParse : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        for (const char *name : kUintKnobs)
            ::unsetenv(name);
        envResetMalformedWarnings();
    }

    void
    TearDown() override
    {
        for (const char *name : kUintKnobs)
            ::unsetenv(name);
        envResetMalformedWarnings();
    }
};

TEST_F(EnvParse, UnsetFallsBackSilently)
{
    CaptureLogSink capture;
    for (const char *name : kUintKnobs)
        EXPECT_EQ(envUint(name, 7), 7u) << name;
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 0u);
}

TEST_F(EnvParse, EmptyFallsBackSilently)
{
    CaptureLogSink capture;
    for (const char *name : kUintKnobs) {
        ::setenv(name, "", 1);
        EXPECT_EQ(envUint(name, 9), 9u) << name;
    }
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 0u);
}

TEST_F(EnvParse, PlainDecimalParses)
{
    CaptureLogSink capture;
    for (const char *name : kUintKnobs) {
        ::setenv(name, "42", 1);
        EXPECT_EQ(envUint(name, 7), 42u) << name;
        ::setenv(name, "0", 1);
        EXPECT_EQ(envUint(name, 7), 0u) << name;
    }
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 0u);
}

TEST_F(EnvParse, MaxUint64Parses)
{
    CaptureLogSink capture;
    ::setenv("GCASSERT_NURSERY_KB", "18446744073709551615", 1);
    EXPECT_EQ(envUint("GCASSERT_NURSERY_KB", 7),
              18446744073709551615ull);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 0u);
}

TEST_F(EnvParse, GarbageFallsBackWithWarning)
{
    for (const char *name : kUintKnobs) {
        CaptureLogSink capture;
        envResetMalformedWarnings();
        ::setenv(name, "abc", 1);
        EXPECT_EQ(envUint(name, 3), 3u) << name;
        EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u) << name;
        EXPECT_TRUE(capture.contains(name)) << name;
    }
}

TEST_F(EnvParse, TrailingJunkFallsBackWithWarning)
{
    for (const char *name : kUintKnobs) {
        CaptureLogSink capture;
        envResetMalformedWarnings();
        ::setenv(name, "12abc", 1);
        EXPECT_EQ(envUint(name, 5), 5u) << name;
        EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u) << name;
    }
}

TEST_F(EnvParse, OverflowFallsBackWithWarning)
{
    for (const char *name : kUintKnobs) {
        CaptureLogSink capture;
        envResetMalformedWarnings();
        // One digit past max uint64.
        ::setenv(name, "18446744073709551616", 1);
        EXPECT_EQ(envUint(name, 11), 11u) << name;
        EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u) << name;
    }
}

TEST_F(EnvParse, NegativeFallsBackWithWarning)
{
    // strtoull would happily accept "-1" and wrap it to 2^64-1 —
    // the exact silent-zero-cousin bug the validator exists to stop.
    CaptureLogSink capture;
    ::setenv("GCASSERT_MARK_THREADS", "-1", 1);
    EXPECT_EQ(envUint("GCASSERT_MARK_THREADS", 2), 2u);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u);
}

TEST_F(EnvParse, PlusSignFallsBackWithWarning)
{
    CaptureLogSink capture;
    ::setenv("GCASSERT_TLAB", "+5", 1);
    EXPECT_EQ(envUint("GCASSERT_TLAB", 0), 0u);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u);
}

TEST_F(EnvParse, LeadingWhitespaceFallsBackWithWarning)
{
    CaptureLogSink capture;
    ::setenv("GCASSERT_CENSUS_EVERY", " 5", 1);
    EXPECT_EQ(envUint("GCASSERT_CENSUS_EVERY", 1), 1u);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u);
}

TEST_F(EnvParse, WarnsOncePerVariable)
{
    CaptureLogSink capture;
    ::setenv("GCASSERT_MARK_THREADS", "bogus", 1);
    ::setenv("GCASSERT_SWEEP_THREADS", "worse", 1);
    envUint("GCASSERT_MARK_THREADS", 1);
    envUint("GCASSERT_MARK_THREADS", 1);
    envUint("GCASSERT_MARK_THREADS", 1);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 1u);
    // A different malformed variable still gets its own warning.
    envUint("GCASSERT_SWEEP_THREADS", 1);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 2u);
}

TEST_F(EnvParse, ResetRearmsTheWarning)
{
    CaptureLogSink capture;
    ::setenv("GCASSERT_LAZY_SWEEP", "nope", 1);
    envUint("GCASSERT_LAZY_SWEEP", 0);
    envResetMalformedWarnings();
    envUint("GCASSERT_LAZY_SWEEP", 0);
    EXPECT_EQ(capture.countAt(LogLevel::Warn), 2u);
}

TEST_F(EnvParse, EnvStringReadsVerbatimOrEmpty)
{
    ::unsetenv("GCASSERT_TRACE_FILE");
    EXPECT_EQ(envString("GCASSERT_TRACE_FILE"), "");
    ::setenv("GCASSERT_TRACE_FILE", "/tmp/t.json", 1);
    EXPECT_EQ(envString("GCASSERT_TRACE_FILE"), "/tmp/t.json");
    ::unsetenv("GCASSERT_TRACE_FILE");
}

} // namespace
} // namespace gcassert
