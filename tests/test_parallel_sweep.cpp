/**
 * @file
 * Sequential-vs-parallel / eager-vs-lazy differential harness for
 * the sweep phase.
 *
 * The parallel and lazy sweeps claim to be *observationally
 * identical* to the sequential eager sweep: same freed and live
 * object multisets, same freed byte totals, same finalizer
 * invocation order, same detector (staleness / Cork) outputs, same
 * assertion violations. The harness builds randomized heap programs
 * spanning many size classes and the large-object space from a
 * deterministic seed, runs one runtime per sweep configuration, and
 * compares the outcomes over 100+ seeds.
 *
 * Two strengths of comparison apply:
 *
 *  - Across *thread counts* within one mode, the sweep callback
 *    stream must match exactly, in order: parallel workers buffer
 *    their dead sets and replay them in canonical (size-class,
 *    block, cell) order, which is precisely the sequential visit
 *    order. The per-GC freed-id *sequences* are compared.
 *  - Across *modes* (eager vs lazy), allocation placement legally
 *    diverges after the first collection (an eager sweep threads
 *    dead cells LIFO onto the existing free list; a lazy finish
 *    rebuilds the whole list in address order), so later sweeps
 *    visit isomorphic-but-reordered heaps. There the per-GC freed-id
 *    *multisets*, totals, finalizer order (registration-order
 *    driven, placement-independent) and detector outputs must agree.
 *
 * Objects carry an allocation-sequence id in their scalar payload,
 * so all keys are address-free.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "detectors/cork.h"
#include "detectors/staleness.h"
#include "runtime/runtime.h"
#include "support/logging.h"
#include "support/rng.h"

namespace gcassert {
namespace {

/** One sweep configuration under test. */
struct SweepConfig {
    uint32_t threads;
    bool lazy;
};

/** Address-free summary of one scenario run. */
struct Outcome {
    uint64_t marked = 0;
    uint64_t swept = 0;
    uint64_t sweptBytes = 0;
    uint64_t liveObjects = 0;
    uint64_t usedBytes = 0;
    uint64_t violationCount = 0;
    /** Freed "type:id" keys per GC, in callback order. */
    std::vector<std::vector<std::string>> freedPerGc;
    /** Finalized ids, in invocation order. */
    std::vector<uint64_t> finalized;
    /** Staleness reports: "type|staleForGcs", order-insensitive. */
    std::multiset<std::string> stale;
    /** Cork reports: "type|first|last|frac", order-insensitive. */
    std::multiset<std::string> growing;
    /** "kind|type|gc#|message" per violation, order-insensitive. */
    std::multiset<std::string> violations;

    /** Everything except the freed *order* within each GC. */
    bool
    equivalentTo(const Outcome &other) const
    {
        if (freedPerGc.size() != other.freedPerGc.size())
            return false;
        for (size_t gc = 0; gc < freedPerGc.size(); ++gc) {
            std::multiset<std::string> mine(freedPerGc[gc].begin(),
                                            freedPerGc[gc].end());
            std::multiset<std::string> theirs(
                other.freedPerGc[gc].begin(), other.freedPerGc[gc].end());
            if (mine != theirs)
                return false;
        }
        return marked == other.marked && swept == other.swept &&
               sweptBytes == other.sweptBytes &&
               liveObjects == other.liveObjects &&
               usedBytes == other.usedBytes &&
               violationCount == other.violationCount &&
               finalized == other.finalized && stale == other.stale &&
               growing == other.growing &&
               violations == other.violations;
    }

    /** Exact equality, including the freed order within each GC. */
    bool
    operator==(const Outcome &other) const
    {
        return freedPerGc == other.freedPerGc && equivalentTo(other);
    }
};

std::string
describe(const Outcome &o)
{
    std::string out;
    out += "marked=" + std::to_string(o.marked) +
           " swept=" + std::to_string(o.swept) +
           " sweptBytes=" + std::to_string(o.sweptBytes) +
           " live=" + std::to_string(o.liveObjects) +
           " usedBytes=" + std::to_string(o.usedBytes) +
           " violations=" + std::to_string(o.violationCount) + "\n";
    for (size_t gc = 0; gc < o.freedPerGc.size(); ++gc)
        out += "  gc" + std::to_string(gc) + ": freed " +
               std::to_string(o.freedPerGc[gc].size()) + "\n";
    out += "  finalized:";
    for (uint64_t id : o.finalized)
        out += " " + std::to_string(id);
    out += "\n";
    for (const std::string &s : o.stale)
        out += "  stale " + s + "\n";
    for (const std::string &g : o.growing)
        out += "  growing " + g + "\n";
    for (const std::string &v : o.violations)
        out += "  " + v + "\n";
    return out;
}

/**
 * Run the seed-determined heap program on a fresh runtime with the
 * given sweep configuration and summarize every sweep-observable
 * effect. All randomness is keyed off indices, never addresses.
 */
Outcome
runScenario(const SweepConfig &sweep, uint64_t seed)
{
    RuntimeConfig config;
    config.generational = false; // harness holds unrooted raw pointers
    config.infrastructure = true;
    config.recordPaths = false;
    config.markThreads = 1;
    config.sweepThreads = sweep.threads;
    config.lazySweep = sweep.lazy;
    config.tlab = false; // placement determinism for the harness
    Runtime rt(config);

    Outcome out;

    // Small fixed-shape nodes, mid-size records, ref arrays, weak
    // refs, and scalar blobs spanning every size class plus the
    // large-object space.
    TypeId node_type = rt.types()
                           .define("Node")
                           .refs({"left", "right"})
                           .scalars(8)
                           .build();
    TypeId record_type = rt.types()
                             .define("Record")
                             .refs({"a", "b", "c"})
                             .scalars(136)
                             .build();
    TypeId array_type = rt.types().define("Array").array().build();
    TypeId blob_type = rt.types().define("Blob").array().build();
    TypeId weak_type = rt.types()
                           .define("WeakRef")
                           .refs({"referent", "strong"})
                           .scalars(8)
                           .weak()
                           .build();

    StalenessDetector staleness(rt, /*threshold_gcs=*/2);
    CorkDetector cork(rt, /*window=*/3, /*growth_fraction=*/0.6);

    // Every object carries its allocation-sequence id in its scalar
    // payload (ref arrays have none and are keyed by length), making
    // the freed stream address-free.
    uint64_t next_id = 1;
    auto keyOf = [&](Object *obj) {
        const TypeDescriptor &desc = rt.types().get(obj->typeId());
        if (desc.isArray() && obj->scalarBytes() < 8)
            return desc.name() + ":len" + std::to_string(obj->numRefs());
        return desc.name() + ":" +
               std::to_string(obj->scalar<uint64_t>(0));
    };
    // Liveness tracking so staleness touches only hit live objects
    // (touching a freed address would make reports depend on address
    // reuse, which legally differs between placement modes). An
    // address maps to its *latest* occupant index; death order
    // matches across configurations because the heaps are
    // isomorphic.
    std::vector<char> alive;
    std::unordered_map<Object *, size_t> latest_idx;
    rt.addFreeHook([&](Object *obj) {
        // The hook observes the dying object's intact header and
        // payload regardless of sweep configuration.
        out.freedPerGc.back().push_back(keyOf(obj));
        auto it = latest_idx.find(obj);
        if (it != latest_idx.end())
            alive[it->second] = 0;
    });

    Rng rng(seed);
    const size_t num_nodes = rng.range(300, 700);
    const size_t num_records = rng.range(40, 120);
    const size_t num_arrays = rng.range(3, 10);
    const size_t num_blobs = rng.range(10, 40);
    const size_t num_weaks = rng.range(5, 20);

    std::vector<Object *> objs;
    auto stamp = [&](Object *obj) {
        if (obj->scalarBytes() >= 8)
            obj->setScalar<uint64_t>(0, next_id);
        ++next_id;
        objs.push_back(obj);
        alive.push_back(1);
        latest_idx[obj] = objs.size() - 1;
        return obj;
    };
    for (size_t i = 0; i < num_nodes; ++i)
        stamp(rt.allocRaw(node_type));
    for (size_t i = 0; i < num_records; ++i)
        stamp(rt.allocRaw(record_type));
    std::vector<uint32_t> array_lens;
    for (size_t i = 0; i < num_arrays; ++i) {
        array_lens.push_back(static_cast<uint32_t>(rng.range(1, 24)));
        stamp(rt.allocArrayRaw(array_type, array_lens.back()));
    }
    for (size_t i = 0; i < num_blobs; ++i) {
        // 24..12000 payload bytes: spans most size classes and
        // (past 8 KiB cells) the large-object space.
        uint32_t bytes = static_cast<uint32_t>(rng.range(24, 12000));
        stamp(rt.allocScalarRaw(blob_type, bytes));
    }
    for (size_t i = 0; i < num_weaks; ++i)
        stamp(rt.allocRaw(weak_type));

    // Wire edges (shared subtrees and cycles arise naturally).
    auto random_obj = [&]() { return objs[rng.below(objs.size())]; };
    for (size_t i = 0; i < num_nodes; ++i) {
        if (rng.chance(0.75))
            objs[i]->setRef(0, random_obj());
        if (rng.chance(0.55))
            objs[i]->setRef(1, random_obj());
    }
    for (size_t i = 0; i < num_records; ++i) {
        Object *rec = objs[num_nodes + i];
        for (uint32_t slot = 0; slot < 3; ++slot)
            if (rng.chance(0.5))
                rec->setRef(slot, random_obj());
    }
    for (size_t i = 0; i < num_arrays; ++i) {
        Object *arr = objs[num_nodes + num_records + i];
        for (uint32_t slot = 0; slot < array_lens[i]; ++slot)
            if (rng.chance(0.5))
                arr->setRef(slot, random_obj());
    }
    for (size_t i = 0; i < num_weaks; ++i) {
        Object *weak = objs[objs.size() - num_weaks + i];
        if (rng.chance(0.8))
            weak->setRef(0, random_obj()); // weak edge
        if (rng.chance(0.5))
            weak->setRef(1, random_obj()); // strong edge
    }

    // Roots.
    std::vector<Handle> roots;
    roots.emplace_back(rt, objs[0], "anchor");
    for (size_t i = 1; i < objs.size(); ++i)
        if (rng.chance(0.08))
            roots.emplace_back(rt, objs[i], "root");

    // Finalizers on a random sample; ids are recorded in invocation
    // order, which must be identical in every configuration.
    for (size_t i = 0; i < objs.size(); ++i) {
        if (objs[i]->scalarBytes() >= 8 && rng.chance(0.05)) {
            rt.setFinalizer(objs[i], [&](Object *obj) {
                out.finalized.push_back(obj->scalar<uint64_t>(0));
            });
        }
    }

    // A few assertions so violation reporting rides along.
    for (size_t i = 0, n = objs.size() / 40; i < n; ++i)
        rt.assertDead(objs[rng.below(objs.size())]);
    for (size_t i = 0, n = objs.size() / 50; i < n; ++i)
        rt.assertUnshared(objs[rng.below(objs.size())]);

    // Three collections with churn in between: drop roots, cut
    // edges, touch a staleness subset, allocate fresh garbage (in
    // lazy mode the allocations land in sweep-pending blocks and
    // finish them incrementally), and census with Cork.
    const size_t gcs = 3;
    for (size_t gc = 0; gc < gcs; ++gc) {
        // Draw the dice unconditionally (keeps the rng stream in
        // lockstep across configurations) but act only on objects
        // still alive — dead slots may have been handed to new
        // occupants in a placement-dependent way.
        for (size_t i = 0; i < objs.size(); ++i) {
            bool do_touch = rng.chance(0.15);
            if (do_touch && alive[i])
                staleness.touch(objs[i]);
        }

        out.freedPerGc.emplace_back();
        rt.collect();
        cork.sample();

        for (size_t i = 1; i < roots.size(); ++i)
            if (rng.chance(0.3))
                roots[i].reset();
        for (size_t i = 0; i < num_nodes; ++i) {
            bool do_cut = rng.chance(0.1);
            uint32_t slot = static_cast<uint32_t>(rng.below(2));
            if (do_cut && alive[i])
                objs[i]->setRef(slot, nullptr);
        }

        // Churn: some rooted survivors, some immediate garbage.
        for (size_t i = 0, n = rng.range(20, 80); i < n; ++i) {
            Object *fresh = stamp(rt.allocRaw(node_type));
            if (rng.chance(0.3))
                roots.emplace_back(rt, fresh, "churn");
        }
        for (size_t i = 0, n = rng.range(2, 8); i < n; ++i)
            stamp(rt.allocScalarRaw(blob_type,
                                    static_cast<uint32_t>(
                                        rng.range(24, 12000))));
    }
    out.freedPerGc.emplace_back();
    rt.collect();

    // Summarize.
    const GcStats &stats = rt.gcStats();
    out.marked = stats.objectsMarked;
    out.swept = stats.objectsSwept;
    out.sweptBytes = stats.bytesSwept;
    out.liveObjects = rt.heap().liveObjects();
    out.usedBytes = rt.heap().usedBytes();
    out.violationCount = stats.violations;
    for (const StaleReport &report : staleness.findStale())
        out.stale.insert(report.typeName + "|" +
                         std::to_string(report.staleForGcs));
    for (const GrowthReport &report : cork.findGrowing())
        out.growing.insert(report.typeName + "|" +
                           std::to_string(report.bytesFirst) + "|" +
                           std::to_string(report.bytesLast) + "|" +
                           std::to_string(report.growthSamples) + "/" +
                           std::to_string(report.windowSamples));
    for (const Violation &v : rt.violations())
        out.violations.insert(std::string(assertionKindName(v.kind)) +
                              "|" + v.offendingType + "|" +
                              std::to_string(v.gcNumber) + "|" +
                              v.message);
    return out;
}

TEST(ParallelSweepDifferential, MatchesSequentialAcrossSeedsAndModes)
{
    CaptureLogSink capture;
    const uint32_t thread_counts[] = {2, 4, 8};
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        Outcome eager = runScenario({1, false}, seed);
        Outcome lazy = runScenario({1, true}, seed);

        // Eager vs lazy: identical multisets, totals, finalizer
        // order and detector outputs (placement may legally differ).
        ASSERT_TRUE(lazy.equivalentTo(eager))
            << "eager/lazy divergence at seed " << seed
            << "\n--- eager ---\n" << describe(eager)
            << "--- lazy ---\n" << describe(lazy);

        for (uint32_t threads : thread_counts) {
            // Within a mode, the buffered parallel replay must
            // reproduce the sequential callback stream exactly.
            Outcome par_eager = runScenario({threads, false}, seed);
            ASSERT_TRUE(par_eager == eager)
                << "eager divergence at seed " << seed << " with "
                << threads << " sweep threads\n--- sequential ---\n"
                << describe(eager) << "--- parallel ---\n"
                << describe(par_eager);

            Outcome par_lazy = runScenario({threads, true}, seed);
            ASSERT_TRUE(par_lazy == lazy)
                << "lazy divergence at seed " << seed << " with "
                << threads << " sweep threads\n--- sequential ---\n"
                << describe(lazy) << "--- parallel ---\n"
                << describe(par_lazy);
        }
    }
}

TEST(ParallelSweepTest, StatsRecordConfiguration)
{
    CaptureLogSink capture;
    RuntimeConfig config;
    config.generational = false; // harness holds unrooted raw pointers
    config.recordPaths = false;
    config.sweepThreads = 4;
    config.lazySweep = true;
    Runtime rt(config);
    TypeId node = rt.types().define("Node").refs({"next"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    rt.allocRaw(node); // garbage
    rt.collect();
    EXPECT_EQ(rt.gcStats().parallelSweepPhases, 1u);
    EXPECT_EQ(rt.gcStats().lazySweepGcs, 1u);
}

TEST(ParallelSweepTest, LazyBlocksFinishInNextGcPrologue)
{
    CaptureLogSink capture;
    RuntimeConfig config;
    config.generational = false; // harness holds unrooted raw pointers
    config.recordPaths = false;
    config.lazySweep = true;
    Runtime rt(config);
    TypeId node = rt.types().define("Node").refs({"next"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    for (int i = 0; i < 100; ++i)
        rt.allocRaw(node); // garbage
    rt.collect();
    EXPECT_GT(rt.heap().lazyPendingBlocks(), 0u);
    // No allocation happens before the next GC, so the prologue does
    // the finishing. (The second GC's own lazy sweep re-flags the
    // blocks it visits, so the pending count is nonzero again
    // afterwards — the stat proves the prologue ran.)
    rt.collect();
    EXPECT_GT(rt.gcStats().lazyBlocksFinishedAtGc, 0u);
}

TEST(ParallelSweepTest, AllocationFinishesLazyPendingBlock)
{
    CaptureLogSink capture;
    RuntimeConfig config;
    config.generational = false; // harness holds unrooted raw pointers
    config.recordPaths = false;
    config.lazySweep = true;
    Runtime rt(config);
    TypeId node = rt.types().define("Node").refs({"next"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    for (int i = 0; i < 100; ++i)
        rt.allocRaw(node); // garbage, all in the one Node block
    rt.collect();
    ASSERT_GT(rt.heap().lazyPendingBlocks(), 0u);
    // The allocation slow path reaches the pending block and must
    // finish it before reusing its cells.
    Object *fresh = rt.allocRaw(node);
    EXPECT_TRUE(rt.heap().contains(fresh));
    EXPECT_EQ(rt.heap().lazyPendingBlocks(), 0u);
}

TEST(ParallelSweepTest, LegacyBlockSweepStillWorks)
{
    // Direct Block::sweep users (tests, tools) keep the dynamic
    // std::function signature.
    Block block(64);
    auto *obj = static_cast<Object *>(block.allocateCell());
    ASSERT_NE(obj, nullptr);
    obj->format(0, 2, 8);
    uint64_t freed = block.sweep(nullptr); // unmarked: freed
    EXPECT_EQ(freed, 64u);
    EXPECT_TRUE(block.empty());
}

} // namespace
} // namespace gcassert
