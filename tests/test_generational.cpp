/**
 * @file
 * Generational-vs-nongenerational differential harness.
 *
 * Generational mode claims full observational equivalence for every
 * assertion-relevant output: minor collections reclaim only objects
 * a full collection would also have reclaimed (in the same full-GC
 * window), never run assertion checks, and leave the full-GC cadence
 * untouched (minor frees are settled into the heap budget only at
 * the next full sweep, so the trigger points are bit-identical).
 *
 * Two comparisons enforce the claim:
 *
 *  - The shared rooted-contract heap program (tests/differential.h)
 *    over 100 seeds: per full-GC-window freed multisets, exact
 *    finalizer order, the violation multiset keyed by (kind,
 *    offending type, GC number), and the end-of-run heap census must
 *    all match.
 *  - Every registered workload runs generational on vs off with
 *    assertions enabled; the violation verdicts (kind and offending
 *    type) must be identical.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "differential.h"
#include "runtime/runtime.h"
#include "support/logging.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {
namespace {

using difftest::DiffOutcome;

DiffOutcome
runScenario(bool generational, uint64_t seed)
{
    RuntimeConfig config;
    config.infrastructure = true;
    config.recordPaths = false;
    config.tlab = false;
    config.generational = generational;
    config.nurseryKb = 32; // small: minors fire during churn
    return difftest::runRootedScenario(config, seed);
}

TEST(GenerationalDifferential, MatchesNonGenerationalAcross100Seeds)
{
    CaptureLogSink capture;
    uint64_t total_minors = 0;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        DiffOutcome off = runScenario(false, seed);
        DiffOutcome on = runScenario(true, seed);
        ASSERT_TRUE(difftest::equivalent(on, off))
            << "generational divergence at seed " << seed
            << "\n--- off ---\n" << difftest::describe(off)
            << "--- on ---\n" << difftest::describe(on);
        EXPECT_EQ(off.minorCollections, 0u);
        total_minors += on.minorCollections;
    }
    // The comparison is vacuous unless minors actually ran.
    EXPECT_GT(total_minors, 100u);
}

// ---------------------------------------------------------------------
// Per-workload verdict comparison
// ---------------------------------------------------------------------

/** Violation verdicts (kind and offending type) of one workload run. */
std::multiset<std::string>
runWorkload(const std::string &name, bool generational,
            uint64_t *minors_out)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    config.generational = generational;
    config.nurseryKb = 256;
    Runtime rt(config);

    workload->setup(rt);
    workload->enableAssertions(rt);
    for (uint32_t i = 0; i < 2; ++i)
        workload->iterate(rt);
    workload->teardown(rt);
    rt.collect();

    if (minors_out)
        *minors_out = rt.gcStats().minorCollections;
    std::multiset<std::string> verdicts;
    for (const Violation &v : rt.violations())
        verdicts.insert(std::string(assertionKindName(v.kind)) + "|" +
                        v.offendingType);
    return verdicts;
}

class GenerationalWorkloadTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GenerationalWorkloadTest, VerdictsMatchNonGenerational)
{
    CaptureLogSink capture;
    uint64_t minors = 0;
    std::multiset<std::string> off = runWorkload(GetParam(), false,
                                                 nullptr);
    std::multiset<std::string> on = runWorkload(GetParam(), true,
                                                &minors);
    auto join = [](const std::multiset<std::string> &set) {
        std::string out;
        for (const std::string &v : set)
            out += "  " + v + "\n";
        return out.empty() ? std::string("  (none)\n") : out;
    };
    EXPECT_EQ(on, off) << "verdicts diverged for " << GetParam()
                       << "\n--- off ---\n" << join(off)
                       << "--- on ---\n" << join(on);
    EXPECT_GT(minors, 0u)
        << GetParam() << " never triggered a minor collection";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GenerationalWorkloadTest,
    ::testing::ValuesIn(WorkloadRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace gcassert
