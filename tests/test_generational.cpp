/**
 * @file
 * Generational-vs-nongenerational differential harness.
 *
 * Generational mode claims full observational equivalence for every
 * assertion-relevant output: minor collections reclaim only objects
 * a full collection would also have reclaimed (in the same full-GC
 * window), never run assertion checks, and leave the full-GC cadence
 * untouched (minor frees are settled into the heap budget only at
 * the next full sweep, so the trigger points are bit-identical).
 *
 * Two comparisons enforce the claim:
 *
 *  - A randomized rooted-contract heap program over 100+ seeds: per
 *    full-GC-window freed multisets, exact finalizer order, the
 *    violation multiset keyed by (kind, offending type, GC number),
 *    and the end-of-run heap census must all match. The freed
 *    *order* within a window legally differs (a minor frees young
 *    garbage in roster order before the window's full sweep would
 *    have reached it), which is why windows compare as multisets —
 *    finalizer order stays exact because minors pin finalizables.
 *  - Every registered workload runs generational on vs off with
 *    assertions enabled; the violation verdicts (kind and offending
 *    type) must be identical.
 *
 * The scenario writes every reference through Runtime::writeRef and
 * keeps every live object rooted across allocations (the managed-
 * runtime contract), since generational mode may collect at any
 * allocation entry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/runtime.h"
#include "support/logging.h"
#include "support/rng.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace gcassert {
namespace {

/** Address-free summary of one scenario run. */
struct Outcome {
    uint64_t marked = 0;
    uint64_t swept = 0;
    uint64_t sweptBytes = 0;
    uint64_t liveObjects = 0;
    uint64_t usedBytes = 0;
    uint64_t fullCollections = 0;
    uint64_t minorCollections = 0;
    /** Freed "type:id" keys per full-GC window, as multisets: a
     *  window spans everything from after the previous collect() up
     *  to and including collect() number i. */
    std::vector<std::multiset<std::string>> freedPerWindow;
    /** Finalized ids, in invocation order (must match exactly). */
    std::vector<uint64_t> finalized;
    /** "kind|type|gc#" per violation, order-insensitive. */
    std::multiset<std::string> violations;

    bool
    equivalentTo(const Outcome &other) const
    {
        return freedPerWindow == other.freedPerWindow &&
               marked == other.marked && swept == other.swept &&
               sweptBytes == other.sweptBytes &&
               liveObjects == other.liveObjects &&
               usedBytes == other.usedBytes &&
               fullCollections == other.fullCollections &&
               finalized == other.finalized &&
               violations == other.violations;
    }
};

std::string
describe(const Outcome &o)
{
    std::string out;
    out += "marked=" + std::to_string(o.marked) +
           " swept=" + std::to_string(o.swept) +
           " sweptBytes=" + std::to_string(o.sweptBytes) +
           " live=" + std::to_string(o.liveObjects) +
           " usedBytes=" + std::to_string(o.usedBytes) +
           " fullGcs=" + std::to_string(o.fullCollections) +
           " minorGcs=" + std::to_string(o.minorCollections) + "\n";
    for (size_t w = 0; w < o.freedPerWindow.size(); ++w)
        out += "  window" + std::to_string(w) + ": freed " +
               std::to_string(o.freedPerWindow[w].size()) + "\n";
    out += "  finalized:";
    for (uint64_t id : o.finalized)
        out += " " + std::to_string(id);
    out += "\n";
    for (const std::string &v : o.violations)
        out += "  " + v + "\n";
    return out;
}

/**
 * Run the seed-determined heap program on a fresh runtime with
 * generational mode on or off and summarize every GC-observable
 * effect. The rng stream is drawn identically in both modes; only
 * root-ness (mode-independent) gates actions, never liveness.
 */
Outcome
runScenario(bool generational, uint64_t seed)
{
    RuntimeConfig config;
    config.infrastructure = true;
    config.recordPaths = false;
    config.tlab = false;
    config.generational = generational;
    config.nurseryKb = 32; // small: minors fire during churn
    Runtime rt(config);

    Outcome out;

    TypeId node_type = rt.types()
                           .define("Node")
                           .refs({"left", "right"})
                           .scalars(8)
                           .build();
    TypeId record_type = rt.types()
                             .define("Record")
                             .refs({"a", "b", "c"})
                             .scalars(136)
                             .build();
    TypeId blob_type = rt.types().define("Blob").array().build();
    TypeId weak_type = rt.types()
                           .define("WeakRef")
                           .refs({"referent", "strong"})
                           .scalars(8)
                           .weak()
                           .build();

    uint64_t next_id = 1;
    auto keyOf = [&](Object *obj) {
        return rt.types().get(obj->typeId()).name() + ":" +
               std::to_string(obj->scalar<uint64_t>(0));
    };
    out.freedPerWindow.emplace_back();
    rt.addFreeHook([&](Object *obj) {
        out.freedPerWindow.back().insert(keyOf(obj));
    });

    Rng rng(seed);

    // Every object is rooted at birth; `rooted` mirrors which
    // handles are still set. Rooted-ness is identical in both modes,
    // so it is the only predicate allowed to gate writes.
    std::vector<Handle> handles;
    std::vector<Object *> objs;
    std::vector<char> rooted;
    auto stamp = [&](Object *obj) {
        obj->setScalar<uint64_t>(0, next_id++);
        handles.emplace_back(rt, obj, "obj");
        objs.push_back(obj);
        rooted.push_back(1);
        return obj;
    };

    const size_t num_nodes = rng.range(150, 400);
    const size_t num_records = rng.range(20, 60);
    const size_t num_blobs = rng.range(4, 12);
    const size_t num_weaks = rng.range(4, 12);
    for (size_t i = 0; i < num_nodes; ++i)
        stamp(rt.allocRaw(node_type));
    for (size_t i = 0; i < num_records; ++i)
        stamp(rt.allocRaw(record_type));
    for (size_t i = 0; i < num_blobs; ++i)
        stamp(rt.allocScalarRaw(
            blob_type,
            static_cast<uint32_t>(rng.range(64, 12000))));
    for (size_t i = 0; i < num_weaks; ++i)
        stamp(rt.allocRaw(weak_type));

    auto slots_of = [&](size_t i) -> uint32_t {
        return objs[i]->numRefs();
    };
    auto rooted_index = [&]() -> size_t {
        // Draw until a rooted object comes up; the stream stays in
        // lockstep because rooted-ness is mode-independent.
        for (;;) {
            size_t i = rng.below(objs.size());
            if (rooted[i])
                return i;
        }
    };
    auto wire = [&](size_t src, uint32_t slot, size_t dst) {
        rt.writeRef(objs[src], slot, objs[dst]);
    };

    // Initial wiring: everything is still rooted.
    for (size_t i = 0; i < objs.size(); ++i)
        for (uint32_t s = 0; s < slots_of(i); ++s)
            if (rng.chance(0.6))
                wire(i, s, rng.below(objs.size()));

    // Finalizers on a sample; invocation order must match exactly.
    for (size_t i = 0; i < objs.size(); ++i)
        if (objs[i]->scalarBytes() >= 8 && rng.chance(0.08))
            rt.setFinalizer(objs[i], [&](Object *obj) {
                out.finalized.push_back(obj->scalar<uint64_t>(0));
            });

    // Assertions: shape limits plus per-object claims on rooted
    // objects (some will hold, some will be violated — identically
    // in both modes).
    rt.assertInstances(record_type, num_records / 2);
    rt.assertVolume(blob_type, 16 * 1024);
    for (size_t i = 0, n = objs.size() / 30; i < n; ++i)
        rt.assertUnshared(objs[rooted_index()]);
    for (size_t i = 0, n = objs.size() / 30; i < n; ++i) {
        size_t owner = rooted_index();
        size_t ownee = rooted_index();
        if (owner != ownee && slots_of(owner) > 0)
            rt.assertOwnedBy(objs[owner], objs[ownee]);
    }

    const size_t windows = 3;
    for (size_t w = 0; w < windows; ++w) {
        // Churn: fresh rooted allocations (young generation), wired
        // from rooted elders — the remset-feeding writes — plus
        // unreferenced scratch that dies young.
        size_t churn_begin = objs.size();
        for (size_t i = 0, n = rng.range(60, 160); i < n; ++i)
            stamp(rt.allocRaw(node_type));
        for (size_t i = 0, n = rng.range(1, 4); i < n; ++i)
            stamp(rt.allocScalarRaw(
                blob_type,
                static_cast<uint32_t>(rng.range(64, 12000))));
        for (size_t i = churn_begin; i < objs.size(); ++i) {
            size_t elder = rooted_index();
            if (slots_of(elder) > 0 && rng.chance(0.5))
                wire(elder,
                     static_cast<uint32_t>(rng.below(slots_of(elder))),
                     i);
        }

        // assert-dead on objects about to be unrooted: whether the
        // claim holds depends only on the (mode-independent) edge
        // structure.
        for (size_t i = 0, n = rng.range(3, 10); i < n; ++i) {
            size_t victim = rooted_index();
            if (rng.chance(0.5))
                rt.assertDead(objs[victim]);
            rooted[victim] = 0;
            handles[victim].reset();
        }

        rt.collect();
        out.freedPerWindow.emplace_back();
    }
    rt.collect();

    const GcStats &stats = rt.gcStats();
    out.marked = stats.objectsMarked;
    out.swept = stats.objectsSwept;
    out.sweptBytes = stats.bytesSwept;
    out.liveObjects = rt.heap().liveObjects();
    out.usedBytes = rt.heap().usedBytes();
    out.fullCollections = stats.collections;
    out.minorCollections = stats.minorCollections;
    for (const Violation &v : rt.violations())
        out.violations.insert(std::string(assertionKindName(v.kind)) +
                              "|" + v.offendingType + "|" +
                              std::to_string(v.gcNumber));
    return out;
}

TEST(GenerationalDifferential, MatchesNonGenerationalAcross100Seeds)
{
    CaptureLogSink capture;
    uint64_t total_minors = 0;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        Outcome off = runScenario(false, seed);
        Outcome on = runScenario(true, seed);
        ASSERT_TRUE(on.equivalentTo(off))
            << "generational divergence at seed " << seed
            << "\n--- off ---\n" << describe(off)
            << "--- on ---\n" << describe(on);
        EXPECT_EQ(off.minorCollections, 0u);
        total_minors += on.minorCollections;
    }
    // The comparison is vacuous unless minors actually ran.
    EXPECT_GT(total_minors, 100u);
}

// ---------------------------------------------------------------------
// Per-workload verdict comparison
// ---------------------------------------------------------------------

/** Violation verdicts (kind and offending type) of one workload run. */
std::multiset<std::string>
runWorkload(const std::string &name, bool generational,
            uint64_t *minors_out)
{
    auto workload = WorkloadRegistry::instance().create(name);
    RuntimeConfig config =
        RuntimeConfig::infra(2 * workload->minHeapBytes());
    config.generational = generational;
    config.nurseryKb = 256;
    Runtime rt(config);

    workload->setup(rt);
    workload->enableAssertions(rt);
    for (uint32_t i = 0; i < 2; ++i)
        workload->iterate(rt);
    workload->teardown(rt);
    rt.collect();

    if (minors_out)
        *minors_out = rt.gcStats().minorCollections;
    std::multiset<std::string> verdicts;
    for (const Violation &v : rt.violations())
        verdicts.insert(std::string(assertionKindName(v.kind)) + "|" +
                        v.offendingType);
    return verdicts;
}

class GenerationalWorkloadTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GenerationalWorkloadTest, VerdictsMatchNonGenerational)
{
    CaptureLogSink capture;
    uint64_t minors = 0;
    std::multiset<std::string> off = runWorkload(GetParam(), false,
                                                 nullptr);
    std::multiset<std::string> on = runWorkload(GetParam(), true,
                                                &minors);
    auto join = [](const std::multiset<std::string> &set) {
        std::string out;
        for (const std::string &v : set)
            out += "  " + v + "\n";
        return out.empty() ? std::string("  (none)\n") : out;
    };
    EXPECT_EQ(on, off) << "verdicts diverged for " << GetParam()
                       << "\n--- off ---\n" << join(off)
                       << "--- on ---\n" << join(on);
    EXPECT_GT(minors, 0u)
        << GetParam() << " never triggered a minor collection";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GenerationalWorkloadTest,
    ::testing::ValuesIn(WorkloadRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace gcassert
