/**
 * @file
 * Unit tests for the heap substrate: object layout, size classes,
 * blocks, allocation, sweep, budget accounting.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "heap/block.h"
#include "heap/heap.h"
#include "heap/object.h"
#include "heap/size_classes.h"
#include "support/logging.h"

namespace gcassert {
namespace {

TEST(ObjectLayout, SizeForRoundsToWords)
{
    EXPECT_EQ(Object::sizeFor(0, 0), 16u);
    EXPECT_EQ(Object::sizeFor(1, 0), 24u);
    EXPECT_EQ(Object::sizeFor(0, 1), 24u);
    EXPECT_EQ(Object::sizeFor(0, 8), 24u);
    EXPECT_EQ(Object::sizeFor(2, 12), 48u);
}

TEST(ObjectLayout, HeaderIsSixteenBytes)
{
    EXPECT_EQ(sizeof(Object), 16u);
}

TEST(SizeClasses, Monotone)
{
    for (size_t i = 1; i < kNumSizeClasses; ++i)
        EXPECT_LT(kSizeClassBytes[i - 1], kSizeClassBytes[i]);
}

TEST(SizeClasses, MappingIsTightestFit)
{
    EXPECT_EQ(sizeClassFor(1), 0u);
    EXPECT_EQ(sizeClassFor(16), 0u);
    EXPECT_EQ(sizeClassFor(17), 1u);
    EXPECT_EQ(sizeClassFor(24), 1u);
    EXPECT_EQ(sizeClassFor(8192), kNumSizeClasses - 1);
    EXPECT_EQ(sizeClassFor(8193), kNumSizeClasses);
}

TEST(BlockTest, CarvesCells)
{
    Block block(64);
    EXPECT_EQ(block.cellBytes(), 64u);
    EXPECT_EQ(block.numCells(), Block::kBlockBytes / 64);
    EXPECT_TRUE(block.empty());
    EXPECT_FALSE(block.full());
}

TEST(BlockTest, AllocatesDistinctAlignedCells)
{
    Block block(64);
    std::set<void *> cells;
    for (int i = 0; i < 100; ++i) {
        void *cell = block.allocateCell();
        ASSERT_NE(cell, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(cell) % 8, 0u);
        EXPECT_TRUE(block.contains(cell));
        EXPECT_TRUE(cells.insert(cell).second);
    }
    EXPECT_EQ(block.liveCells(), 100u);
}

TEST(BlockTest, ExhaustsAndReportsFull)
{
    Block block(8192);
    uint32_t n = block.numCells();
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_NE(block.allocateCell(), nullptr);
    EXPECT_TRUE(block.full());
    EXPECT_EQ(block.allocateCell(), nullptr);
}

TEST(BlockTest, SweepFreesUnmarkedAndUnmarksSurvivors)
{
    Block block(64);
    std::vector<Object *> objects;
    for (int i = 0; i < 10; ++i) {
        auto *obj = static_cast<Object *>(block.allocateCell());
        obj->format(0, 2, 8);
        objects.push_back(obj);
    }
    // Mark even-indexed objects.
    for (size_t i = 0; i < objects.size(); i += 2)
        objects[i]->setFlag(kMarkBit);

    std::vector<Object *> freed;
    uint64_t bytes = block.sweep([&](Object *obj) { freed.push_back(obj); });
    EXPECT_EQ(freed.size(), 5u);
    EXPECT_EQ(bytes, 5u * 64);
    EXPECT_EQ(block.liveCells(), 5u);
    for (size_t i = 0; i < objects.size(); i += 2)
        EXPECT_FALSE(objects[i]->marked()) << "survivor keeps mark";
}

TEST(BlockTest, FreedCellsAreReused)
{
    Block block(64);
    auto *first = static_cast<Object *>(block.allocateCell());
    first->format(0, 0, 0);
    block.sweep(nullptr); // unmarked: freed
    EXPECT_TRUE(block.empty());
    // The freed cell comes back.
    std::set<void *> seen;
    for (uint32_t i = 0; i < block.numCells(); ++i)
        seen.insert(block.allocateCell());
    EXPECT_TRUE(seen.count(first));
}

TEST(ObjectModel, RefSlotsAndScalars)
{
    Block block(128);
    auto *obj = static_cast<Object *>(block.allocateCell());
    obj->format(3, 2, 24);
    EXPECT_EQ(obj->typeId(), 3u);
    EXPECT_EQ(obj->numRefs(), 2u);
    EXPECT_EQ(obj->scalarBytes(), 24u);
    EXPECT_EQ(obj->ref(0), nullptr);
    EXPECT_EQ(obj->ref(1), nullptr);

    auto *other = static_cast<Object *>(block.allocateCell());
    other->format(3, 2, 24);
    obj->setRef(0, other);
    EXPECT_EQ(obj->ref(0), other);

    obj->setScalar<uint64_t>(0, 0x1122334455667788ull);
    obj->setScalar<uint32_t>(8, 42);
    EXPECT_EQ(obj->scalar<uint64_t>(0), 0x1122334455667788ull);
    EXPECT_EQ(obj->scalar<uint32_t>(8), 42u);
}

TEST(ObjectModel, OutOfRangeAccessPanics)
{
    CaptureLogSink capture;
    Block block(64);
    auto *obj = static_cast<Object *>(block.allocateCell());
    obj->format(0, 1, 8);
    EXPECT_THROW(obj->ref(1), PanicError);
    EXPECT_THROW(obj->setRef(2, nullptr), PanicError);
    EXPECT_THROW(obj->scalar<uint64_t>(4), PanicError);
}

TEST(ObjectModel, FlagsAreIndependent)
{
    Block block(64);
    auto *obj = static_cast<Object *>(block.allocateCell());
    obj->format(0, 0, 0);
    obj->setFlag(kDeadBit);
    obj->setFlag(kUnsharedBit);
    EXPECT_TRUE(obj->testFlag(kDeadBit));
    EXPECT_TRUE(obj->testFlag(kUnsharedBit));
    EXPECT_FALSE(obj->testFlag(kMarkBit));
    obj->clearFlag(kDeadBit);
    EXPECT_FALSE(obj->testFlag(kDeadBit));
    EXPECT_TRUE(obj->testFlag(kUnsharedBit));
}

TEST(HeapTest, AllocatesAndTracksUsage)
{
    Heap heap(HeapConfig{1024 * 1024, false, 1.5});
    Object *obj = heap.allocate(0, 2, 8);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(heap.liveObjects(), 1u);
    // Charged at the size-class granularity (48 bytes here).
    EXPECT_EQ(heap.usedBytes(), 48u);
    EXPECT_TRUE(heap.contains(obj));
}

TEST(HeapTest, ReturnsNullWhenBudgetExhausted)
{
    Heap heap(HeapConfig{1024, false, 1.5});
    std::vector<Object *> allocated;
    Object *obj;
    while ((obj = heap.allocate(0, 0, 0)) != nullptr)
        allocated.push_back(obj);
    EXPECT_EQ(heap.usedBytes(), 1024u);
    EXPECT_EQ(allocated.size(), 1024u / 16);
}

TEST(HeapTest, LargeObjectsGoToLos)
{
    Heap heap(HeapConfig{4 * 1024 * 1024, false, 1.5});
    Object *large = heap.allocate(0, 0, 100 * 1024);
    ASSERT_NE(large, nullptr);
    EXPECT_TRUE(heap.contains(large));
    EXPECT_GT(large->sizeBytes(), maxSmallObjectBytes());
    large->setScalar<uint64_t>(100 * 1024 - 8, 0xfeed);
    EXPECT_EQ(large->scalar<uint64_t>(100 * 1024 - 8), 0xfeedu);
}

TEST(HeapTest, SweepReclaimsUnmarked)
{
    Heap heap(HeapConfig{1024 * 1024, false, 1.5});
    Object *keep = heap.allocate(0, 1, 0);
    Object *drop = heap.allocate(0, 1, 0);
    Object *big_keep = heap.allocate(0, 0, 20000);
    Object *big_drop = heap.allocate(0, 0, 20000);
    keep->setFlag(kMarkBit);
    big_keep->setFlag(kMarkBit);

    std::unordered_set<Object *> freed;
    SweepStats stats = heap.sweep([&](Object *obj) { freed.insert(obj); });
    EXPECT_EQ(stats.freedObjects, 2u);
    EXPECT_TRUE(freed.count(drop));
    EXPECT_TRUE(freed.count(big_drop));
    EXPECT_FALSE(freed.count(keep));
    EXPECT_EQ(heap.liveObjects(), 2u);
    EXPECT_FALSE(keep->marked()) << "sweep clears marks";
    EXPECT_FALSE(big_keep->marked());
    EXPECT_TRUE(heap.contains(keep));
    EXPECT_FALSE(heap.contains(big_drop));
}

TEST(HeapTest, EmptyBlocksAreReleased)
{
    Heap heap(HeapConfig{8 * 1024 * 1024, false, 1.5});
    // Fill several blocks of one class, then free everything.
    for (int i = 0; i < 10000; ++i)
        heap.allocate(0, 0, 0);
    SweepStats stats = heap.sweep(nullptr);
    EXPECT_EQ(stats.freedObjects, 10000u);
    EXPECT_GT(stats.releasedBlocks, 0u);
    EXPECT_EQ(heap.usedBytes(), 0u);
}

TEST(HeapTest, ForEachObjectVisitsEverything)
{
    Heap heap(HeapConfig{1024 * 1024, false, 1.5});
    std::unordered_set<Object *> expected;
    for (int i = 0; i < 100; ++i)
        expected.insert(heap.allocate(0, 1, 8));
    expected.insert(heap.allocate(0, 0, 30000));

    std::unordered_set<Object *> seen;
    heap.forEachObject([&](Object *obj) { seen.insert(obj); });
    EXPECT_EQ(seen, expected);
}

TEST(HeapTest, LifetimeTotalsAreMonotonic)
{
    Heap heap(HeapConfig{1024 * 1024, false, 1.5});
    heap.allocate(0, 0, 0);
    heap.allocate(0, 0, 0);
    uint64_t bytes = heap.totalAllocatedBytes();
    EXPECT_EQ(heap.totalAllocatedObjects(), 2u);
    heap.sweep(nullptr);
    heap.allocate(0, 0, 0);
    EXPECT_EQ(heap.totalAllocatedObjects(), 3u);
    EXPECT_GT(heap.totalAllocatedBytes(), 0u);
    EXPECT_GE(heap.totalAllocatedBytes(), bytes);
}

TEST(HeapTest, MixedSizeClassesCoexist)
{
    Heap heap(HeapConfig{16 * 1024 * 1024, false, 1.5});
    std::vector<Object *> objects;
    for (uint32_t refs = 0; refs < 64; refs += 7)
        for (uint32_t scalars = 0; scalars < 4000; scalars += 997)
            objects.push_back(heap.allocate(1, refs, scalars));
    for (Object *obj : objects) {
        ASSERT_NE(obj, nullptr);
        EXPECT_TRUE(heap.contains(obj));
    }
    EXPECT_EQ(heap.liveObjects(), objects.size());
}

} // namespace
} // namespace gcassert
