/**
 * @file
 * Tests for the always-on why-alive backgraph (detectors/backgraph):
 * rootward paths at any time, in-degree saturation into pseudo-roots,
 * dead-edge pruning through both sweeps, allocation-site tagging,
 * growing-leak and find-leak trend reports, verdict-neutrality
 * differentials (100 seeds, on/off, plain + generational +
 * incremental), and the end-to-end server leak hunt with *no* armed
 * assertion regions.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "detectors/backgraph.h"
#include "differential.h"
#include "runtime/runtime.h"
#include "support/logging.h"
#include "test_util.h"
#include "workloads/server.h"

namespace gcassert {
namespace {

using difftest::DiffOutcome;

RuntimeConfig
backgraphConfig(uint32_t cap = 8, uint32_t window = 3)
{
    RuntimeConfig config;
    config.heap.budgetBytes = testutil::kTestHeapBytes;
    config.backgraph = true;
    config.backgraphInDegreeCap = cap;
    config.backgraphWindow = window;
    return config;
}

class BackgraphTest : public testutil::RuntimeTest {
  protected:
    BackgraphTest() : RuntimeTest(backgraphConfig()) {}
};

/** Standalone runtime + Node type for tests needing custom knobs. */
struct BgRig {
    Runtime rt;
    TypeId nodeType;

    explicit BgRig(const RuntimeConfig &config)
        : rt(config),
          nodeType(rt.types()
                       .define("Node")
                       .refs({"left", "right"})
                       .scalars(8)
                       .build())
    {
    }

    Object *
    node(uint64_t tag = 0)
    {
        Object *obj = rt.allocRaw(nodeType);
        obj->setScalar<uint64_t>(0, tag);
        return obj;
    }
};

TEST_F(BackgraphTest, WhyAliveWalksToTheRootAtAnyTime)
{
    Handle root = rootedNode(1, "bg-root");
    Object *mid = node(2);
    Object *leaf = node(3);
    root->setRef(0, mid);
    mid->setRef(0, leaf);

    // No collection needed: the barrier feed keeps the graph current.
    WhyAliveReport why = runtime_->whyAlive(leaf);
    ASSERT_TRUE(why.known);
    EXPECT_TRUE(why.rootReached);
    EXPECT_FALSE(why.saturated);
    ASSERT_EQ(why.path.size(), 3u);
    EXPECT_EQ(why.path.front().address, root.get());
    EXPECT_EQ(why.path.back().address, leaf);
    for (const PathEntry &hop : why.path)
        EXPECT_EQ(hop.typeName, "Node");
}

TEST_F(BackgraphTest, WhyAliveTracksRetargetedSlots)
{
    Handle a = rootedNode(1, "bg-a");
    Handle b = rootedNode(2, "bg-b");
    Object *leaf = node(3);
    a->setRef(0, leaf);
    ASSERT_EQ(runtime_->whyAlive(leaf).path.front().address, a.get());

    // Moving the only reference must move the rootward path with it:
    // the old backward edge is removed when the slot is overwritten.
    a->setRef(0, nullptr);
    b->setRef(0, leaf);
    WhyAliveReport why = runtime_->whyAlive(leaf);
    ASSERT_TRUE(why.known && why.rootReached);
    ASSERT_EQ(why.path.size(), 2u);
    EXPECT_EQ(why.path.front().address, b.get());
}

TEST_F(BackgraphTest, WhyAliveOffRuntimeReturnsUnknown)
{
    // Pin the knob off: this test runs under CI legs that arm the
    // backgraph for the whole suite via GCASSERT_BACKGRAPH=1.
    RuntimeConfig off = RuntimeTest::defaultConfig();
    off.backgraph = false;
    Runtime plain(off);
    TypeId t = plain.types().define("N").refs({"r"}).build();
    Object *obj = plain.allocRaw(t);
    EXPECT_EQ(plain.backgraph(), nullptr);
    EXPECT_FALSE(plain.whyAlive(obj).known);
    EXPECT_EQ(plain.allocSite("nope"), 0u);
}

TEST(BackgraphSaturation, CapExceededBecomesPseudoRoot)
{
    CaptureLogSink capture;
    BgRig fx(backgraphConfig(/*cap=*/2));

    Handle hub(fx.rt, fx.node(0), "bg-hub");
    Object *popular = fx.node(9);
    // Three referrers against a cap of two: the third record drops
    // the predecessor list and marks the node saturated.
    Object *p1 = fx.node(1);
    Object *p2 = fx.node(2);
    Object *p3 = fx.node(3);
    hub->setRef(0, p1);
    p1->setRef(1, p2);
    p2->setRef(1, p3);
    p1->setRef(0, popular);
    p2->setRef(0, popular);
    EXPECT_EQ(fx.rt.backgraph()->saturatedCount(), 0u);
    p3->setRef(0, popular);
    EXPECT_EQ(fx.rt.backgraph()->saturatedCount(), 1u);

    WhyAliveReport why = fx.rt.whyAlive(popular);
    ASSERT_TRUE(why.known);
    EXPECT_TRUE(why.rootReached);
    EXPECT_TRUE(why.saturated);
    // The saturated node is itself the rootward endpoint.
    ASSERT_EQ(why.path.size(), 1u);
    EXPECT_EQ(why.path.front().address, popular);
}

TEST_F(BackgraphTest, SweepPrunesDeadEdgesAndNodes)
{
    Handle root = rootedNode(1, "bg-root");
    Object *kept = node(2);
    root->setRef(0, kept);
    {
        Handle doomed = rootedNode(3, "bg-doomed");
        doomed->setRef(0, kept);
        EXPECT_EQ(runtime_->backgraph()->edgeCount(), 2u);
    }
    uint64_t nodes_before = runtime_->backgraph()->nodeCount();
    runtime_->collect();

    // The dying referrer's node and its edge into the survivor are
    // both gone; the survivor's path now has a single explanation.
    EXPECT_LT(runtime_->backgraph()->nodeCount(), nodes_before);
    EXPECT_EQ(runtime_->backgraph()->edgeCount(), 1u);
    EXPECT_GT(runtime_->backgraph()->prunedEdges(), 0u);
    WhyAliveReport why = runtime_->whyAlive(kept);
    ASSERT_TRUE(why.known && why.rootReached);
    ASSERT_EQ(why.path.size(), 2u);
    EXPECT_EQ(why.path.front().address, root.get());
}

TEST_F(BackgraphTest, AllocationSitesNameAndHash)
{
    uint32_t a = runtime_->allocSite("workload.list");
    uint32_t b = runtime_->allocSite("workload.cache");
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    // Re-registration is idempotent.
    EXPECT_EQ(runtime_->allocSite("workload.list"), a);
    EXPECT_EQ(runtime_->backgraph()->siteName(a), "workload.list");
    EXPECT_EQ(runtime_->backgraph()->siteName(0), "?");

    // Hashed return-address sites: deterministic, never 0, disjoint
    // from the registered-id space, stable rendering.
    int anchor1 = 0, anchor2 = 0;
    uint32_t h1 = Backgraph::siteFromAddress(&anchor1);
    uint32_t h2 = Backgraph::siteFromAddress(&anchor2);
    EXPECT_EQ(h1, Backgraph::siteFromAddress(&anchor1));
    EXPECT_NE(h1, 0u);
    EXPECT_NE(h1, h2);
    EXPECT_NE(h1 & 0x80000000u, 0u);
    EXPECT_EQ(runtime_->backgraph()->siteName(h1).rfind("site-0x", 0),
              0u);
}

TEST(BackgraphTrends, GrowingListIsReportedWithItsSite)
{
    CaptureLogSink capture;
    BgRig fx(backgraphConfig(8, /*window=*/2));

    uint32_t site = fx.rt.allocSite("test.leaky.list");
    Handle head(fx.rt, fx.node(0), "bg-list");
    Object *tail = head.get();
    // Grow the rooted list by a few hops between consecutive full
    // GCs: both the site's max root-path height and its survivor
    // count rise strictly every sample, so after the two-collection
    // window both trend detectors must name the site.
    for (uint64_t round = 0; round < 4; ++round) {
        for (int i = 0; i < 3; ++i) {
            Object *next = fx.rt.allocRaw(fx.nodeType, nullptr, site);
            tail->setRef(0, next);
            tail = next;
        }
        fx.rt.collect();
    }

    std::vector<Violation> reports;
    for (const Violation &v : fx.rt.violations())
        if (v.kind == AssertionKind::LeakGrowth)
            reports.push_back(v);
    ASSERT_FALSE(reports.empty());
    bool growth = false, findleak = false;
    for (const Violation &v : reports) {
        EXPECT_EQ(v.offendingType, "test.leaky.list");
        EXPECT_NE(v.message.find("test.leaky.list"), std::string::npos);
        EXPECT_GT(v.gcNumber, 0u);
        if (v.message.rfind("growing-leak:", 0) == 0)
            growth = true;
        if (v.message.rfind("find-leak:", 0) == 0)
            findleak = true;
    }
    EXPECT_TRUE(growth);
    EXPECT_TRUE(findleak);
    EXPECT_GT(fx.rt.backgraph()->growthReports(), 0u);
    EXPECT_GT(fx.rt.backgraph()->findLeakReports(), 0u);
}

TEST(BackgraphTrends, BoundedStructureStaysSilent)
{
    CaptureLogSink capture;
    BgRig fx(backgraphConfig(8, /*window=*/2));

    uint32_t site = fx.rt.allocSite("test.bounded.ring");
    Handle head(fx.rt, fx.node(0), "bg-ring");
    // A bounded structure: each round *replaces* the rooted chain
    // with a fresh one of the same depth, so neither height nor
    // survivor count ever rises two samples in a row.
    for (uint64_t round = 0; round < 5; ++round) {
        Object *tail = head.get();
        head->setRef(0, nullptr);
        for (int i = 0; i < 4; ++i) {
            Object *next = fx.rt.allocRaw(fx.nodeType, nullptr, site);
            tail->setRef(0, next);
            tail = next;
        }
        fx.rt.collect();
    }
    for (const Violation &v : fx.rt.violations())
        EXPECT_NE(v.kind, AssertionKind::LeakGrowth)
            << "bounded structure reported: " << v.message;
}

TEST_F(BackgraphTest, ViolationProvenanceCarriesWhyAlive)
{
    // An assert-dead violation on a still-reachable object must be
    // enriched with the backgraph's rootward path even though no
    // telemetry sink is configured.
    Handle root = rootedNode(1, "bg-prov-root");
    Object *pinned = node(2);
    root->setRef(0, pinned);
    runtime_->assertDead(pinned);
    runtime_->collect();

    auto dead = violationsOf(AssertionKind::Dead);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_NE(dead[0].provenanceJson.find("whyAlive"), std::string::npos)
        << dead[0].provenanceJson;
    EXPECT_NE(dead[0].provenanceJson.find("rootReached"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Verdict neutrality: backgraph on vs off over the rooted-contract
// scenario must leave verdicts, messages, freed sets, finalizer
// order and GC tallies bit-identical — in plain, generational and
// incremental collector modes.
// ---------------------------------------------------------------

DiffOutcome
runNeutralityScenario(const RuntimeConfig &config, uint64_t seed)
{
    difftest::ScenarioOptions opt;
    opt.includeMessages = true;
    // Context-only reports are the detector's *output* and naturally
    // differ on/off; everything else must match byte for byte.
    opt.ignoreKinds = {AssertionKind::PauseSlo, AssertionKind::LeakGrowth,
                       AssertionKind::Staleness,
                       AssertionKind::TypeGrowth};
    return difftest::runRootedScenario(config, seed, opt);
}

void
runOnOffDifferential(const char *mode,
                     void (*apply)(RuntimeConfig &))
{
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        RuntimeConfig off;
        off.heap.budgetBytes = testutil::kTestHeapBytes;
        off.backgraph = false;
        apply(off);
        RuntimeConfig on = off;
        on.backgraph = true;
        on.backgraphInDegreeCap = (seed % 2) ? 8 : 2;
        on.backgraphWindow = 2;
        DiffOutcome base = runNeutralityScenario(off, seed);
        DiffOutcome traced = runNeutralityScenario(on, seed);
        ASSERT_TRUE(difftest::equivalent(traced, base))
            << mode << " divergence at seed " << seed
            << " cap " << on.backgraphInDegreeCap
            << "\n--- off ---\n"
            << difftest::describe(base) << "--- on ---\n"
            << difftest::describe(traced);
    }
}

TEST(BackgraphDifferential, PlainOnOff100Seeds)
{
    CaptureLogSink capture;
    runOnOffDifferential("plain", [](RuntimeConfig &) {});
}

TEST(BackgraphDifferential, GenerationalOnOff100Seeds)
{
    CaptureLogSink capture;
    runOnOffDifferential("generational", [](RuntimeConfig &c) {
        c.generational = true;
        c.nurseryKb = 64;
    });
}

TEST(BackgraphDifferential, IncrementalOnOff100Seeds)
{
    CaptureLogSink capture;
    runOnOffDifferential("incremental", [](RuntimeConfig &c) {
        c.incrementalAssert = true;
    });
}

// ---------------------------------------------------------------
// End to end: the server workload leaks on a schedule and the
// backgraph names the leaking allocation site without a single
// armed assertion region; clean traffic stays silent.
// ---------------------------------------------------------------

RuntimeConfig
serverBackgraphConfig(const Workload &workload)
{
    RuntimeConfig config = RuntimeConfig::infra(4 * workload.minHeapBytes());
    config.backgraph = true;
    config.backgraphWindow = 3;
    return config;
}

TEST(BackgraphServer, LeakHuntNamesTheSiteWithoutArmedRegions)
{
    CaptureLogSink capture;
    ServerOptions options;
    options.threads = 2;
    options.requestsPerThread = 150;
    options.leakEveryN = 50;
    auto server = makeServerWithOptions(options);
    Runtime rt(serverBackgraphConfig(*server));
    server->setup(rt);
    // Deliberately NOT calling enableAssertions(): no regions are
    // armed, so the trend detector is the only thing watching.
    for (int round = 0; round < 5; ++round) {
        server->iterate(rt);
        rt.collect();
    }
    EXPECT_GT(server->leaksInjected(), 0u);

    bool named = false;
    for (const Violation &v : rt.violations()) {
        ASSERT_TRUE(assertionKindContextOnly(v.kind))
            << "verdict without an armed region: " << v.message;
        if (v.kind == AssertionKind::LeakGrowth &&
            v.message.find("srv.request.node") != std::string::npos)
            named = true;
    }
    EXPECT_TRUE(named)
        << "no LeakGrowth report names srv.request.node across "
        << rt.violations().size() << " reports";
    server->teardown(rt);
}

TEST(BackgraphServer, CleanTrafficRaisesNoLeakReports)
{
    CaptureLogSink capture;
    ServerOptions options;
    options.threads = 2;
    options.requestsPerThread = 150;
    options.leakEveryN = 0;
    auto server = makeServerWithOptions(options);
    Runtime rt(serverBackgraphConfig(*server));
    server->setup(rt);
    for (int round = 0; round < 5; ++round) {
        server->iterate(rt);
        rt.collect();
    }
    for (const Violation &v : rt.violations())
        EXPECT_NE(v.kind, AssertionKind::LeakGrowth)
            << "clean run reported: " << v.message;
    server->teardown(rt);
}

} // namespace
} // namespace gcassert
