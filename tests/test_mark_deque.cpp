/**
 * @file
 * MarkDeque unit tests: LIFO owner discipline, FIFO stealing, ring
 * growth, high-water tracking, and a multithreaded owner-vs-thieves
 * hammer that checks element conservation (every pushed entry is
 * consumed exactly once, nothing is lost, nothing is duplicated).
 *
 * The deque never dereferences its entries, so the tests use
 * synthetic Object pointers derived from a local array.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gc/mark_deque.h"

namespace gcassert {
namespace {

/** Distinct fake Object pointers; never dereferenced. */
class FakeObjects {
  public:
    explicit FakeObjects(size_t count) : storage_(count) {}

    Object *
    at(size_t i)
    {
        return reinterpret_cast<Object *>(&storage_[i]);
    }

    size_t size() const { return storage_.size(); }

  private:
    std::vector<uint64_t> storage_;
};

TEST(MarkDequeTest, StartsEmpty)
{
    MarkDeque deque;
    Object *out = nullptr;
    EXPECT_TRUE(deque.empty());
    EXPECT_EQ(deque.size(), 0u);
    EXPECT_FALSE(deque.pop(out));
    EXPECT_FALSE(deque.steal(out));
}

TEST(MarkDequeTest, OwnerPopIsLifo)
{
    FakeObjects objs(3);
    MarkDeque deque;
    deque.push(objs.at(0));
    deque.push(objs.at(1));
    deque.push(objs.at(2));
    EXPECT_EQ(deque.size(), 3u);

    Object *out = nullptr;
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, objs.at(2));
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, objs.at(1));
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, objs.at(0));
    EXPECT_FALSE(deque.pop(out));
}

TEST(MarkDequeTest, StealIsFifo)
{
    FakeObjects objs(3);
    MarkDeque deque;
    deque.push(objs.at(0));
    deque.push(objs.at(1));
    deque.push(objs.at(2));

    Object *out = nullptr;
    ASSERT_TRUE(deque.steal(out));
    EXPECT_EQ(out, objs.at(0));
    ASSERT_TRUE(deque.steal(out));
    EXPECT_EQ(out, objs.at(1));
    // The last entry can go to either end; take it with pop.
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, objs.at(2));
    EXPECT_FALSE(deque.steal(out));
}

TEST(MarkDequeTest, GrowthPreservesAllEntries)
{
    constexpr size_t kCount = 10000;
    FakeObjects objs(kCount);
    MarkDeque deque(4); // force many doublings
    for (size_t i = 0; i < kCount; ++i)
        deque.push(objs.at(i));
    EXPECT_EQ(deque.size(), kCount);

    Object *out = nullptr;
    for (size_t i = kCount; i-- > 0;) {
        ASSERT_TRUE(deque.pop(out));
        EXPECT_EQ(out, objs.at(i));
    }
    EXPECT_FALSE(deque.pop(out));
}

TEST(MarkDequeTest, HighWaterTracksDeepestSpan)
{
    FakeObjects objs(8);
    MarkDeque deque;
    EXPECT_EQ(deque.highWater(), 0u);
    for (size_t i = 0; i < 5; ++i)
        deque.push(objs.at(i));
    EXPECT_EQ(deque.highWater(), 5u);
    Object *out = nullptr;
    deque.pop(out);
    deque.pop(out);
    deque.push(objs.at(5));
    // Never deeper than 5 so far.
    EXPECT_EQ(deque.highWater(), 5u);
}

TEST(MarkDequeTest, ClearEmptiesAndKeepsWorking)
{
    FakeObjects objs(4);
    MarkDeque deque(4);
    for (size_t i = 0; i < 4; ++i)
        deque.push(objs.at(i));
    deque.clear();
    Object *out = nullptr;
    EXPECT_TRUE(deque.empty());
    EXPECT_FALSE(deque.pop(out));
    deque.push(objs.at(0));
    ASSERT_TRUE(deque.pop(out));
    EXPECT_EQ(out, objs.at(0));
}

TEST(MarkDequeTest, InterleavedPushPopSteal)
{
    FakeObjects objs(64);
    MarkDeque deque(4);
    Object *out = nullptr;
    size_t consumed = 0;
    for (size_t i = 0; i < objs.size(); ++i) {
        deque.push(objs.at(i));
        if (i % 3 == 0 && deque.pop(out))
            ++consumed;
        if (i % 5 == 0 && deque.steal(out))
            ++consumed;
    }
    while (deque.pop(out))
        ++consumed;
    EXPECT_EQ(consumed, objs.size());
    EXPECT_TRUE(deque.empty());
}

/**
 * Conservation hammer: one owner pushes kTotal distinct pointers
 * (popping some along the way), several thieves steal concurrently.
 * Afterwards every pointer must have been consumed exactly once.
 */
TEST(MarkDequeTest, MultithreadedConservation)
{
    constexpr size_t kTotal = 200000;
    constexpr size_t kThieves = 3;

    FakeObjects objs(kTotal);
    MarkDeque deque(8);
    std::atomic<size_t> consumed{0};
    std::atomic<bool> done_pushing{false};

    std::vector<std::vector<Object *>> taken(kThieves + 1);

    auto thief = [&](size_t id) {
        Object *out = nullptr;
        while (true) {
            if (deque.steal(out)) {
                taken[id].push_back(out);
                consumed.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            // After the owner stops, entries only leave the deque, so
            // empty-and-short means something was lost — exit and let
            // the conservation assertions report it instead of
            // spinning forever.
            if (done_pushing.load(std::memory_order_acquire) &&
                (consumed.load(std::memory_order_relaxed) >= kTotal ||
                 deque.empty()))
                break;
            std::this_thread::yield();
        }
    };

    std::vector<std::thread> thieves;
    for (size_t i = 0; i < kThieves; ++i)
        thieves.emplace_back(thief, i + 1);

    // Owner: push everything, popping now and then like a real
    // marker draining its own deque.
    Object *out = nullptr;
    for (size_t i = 0; i < kTotal; ++i) {
        deque.push(objs.at(i));
        if ((i & 7) == 0 && deque.pop(out)) {
            taken[0].push_back(out);
            consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    while (deque.pop(out)) {
        taken[0].push_back(out);
        consumed.fetch_add(1, std::memory_order_relaxed);
    }
    done_pushing.store(true, std::memory_order_release);

    for (std::thread &t : thieves)
        t.join();

    // Late entries lost to the owner-vs-thief race on the last
    // element would show up here as a shortfall.
    while (deque.pop(out)) {
        taken[0].push_back(out);
        consumed.fetch_add(1, std::memory_order_relaxed);
    }

    std::unordered_map<Object *, int> counts;
    size_t total_taken = 0;
    for (const auto &vec : taken) {
        total_taken += vec.size();
        for (Object *obj : vec)
            ++counts[obj];
    }
    EXPECT_EQ(total_taken, kTotal);
    EXPECT_EQ(counts.size(), kTotal) << "duplicate or missing entries";
    for (size_t i = 0; i < kTotal; ++i) {
        auto it = counts.find(objs.at(i));
        ASSERT_NE(it, counts.end()) << "entry " << i << " lost";
        EXPECT_EQ(it->second, 1) << "entry " << i << " duplicated";
    }
    EXPECT_TRUE(deque.empty());
}

} // namespace
} // namespace gcassert
