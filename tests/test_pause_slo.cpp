/**
 * @file
 * Pause-time SLO tracking: histogram correctness against a
 * sorted-vector oracle, deterministic budget-violation firing,
 * silence under a generous budget, and a 100-seed SLO-on/off
 * differential proving the tracker is observationally inert.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "differential.h"
#include "observe/pause_slo.h"
#include "runtime/runtime.h"
#include "support/logging.h"
#include "support/rng.h"

namespace gcassert {
namespace {

// ---------------------------------------------------------------------
// Histogram vs oracle
// ---------------------------------------------------------------------

/** Exact percentile: value of the ceil(p/100*n)-th smallest sample. */
uint64_t
oraclePercentile(std::vector<uint64_t> sorted, double p)
{
    auto rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank < 1)
        rank = 1;
    return sorted[rank - 1];
}

TEST(PauseHistogram, BucketsArePreciseBelow16)
{
    for (uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(PauseHistogram::bucketIndex(v), v);
        EXPECT_EQ(PauseHistogram::bucketHi(v), v);
    }
}

TEST(PauseHistogram, BucketBoundsAreContiguous)
{
    // Every bucket's hi + 1 must be the next bucket's lo; spot-check
    // by mapping each bucket's hi and hi+1 back to indices.
    for (size_t i = 0; i + 1 < PauseHistogram::kNumBuckets; ++i) {
        uint64_t hi = PauseHistogram::bucketHi(i);
        ASSERT_EQ(PauseHistogram::bucketIndex(hi), i) << "bucket " << i;
        ASSERT_EQ(PauseHistogram::bucketIndex(hi + 1), i + 1)
            << "bucket " << i;
    }
}

TEST(PauseHistogram, PercentilesTrackOracleWithinOneSixteenth)
{
    Rng rng(7);
    PauseHistogram hist;
    std::vector<uint64_t> samples;
    // Log-uniform spread covering ns..minutes, the realistic span of
    // pause durations.
    for (int i = 0; i < 20000; ++i) {
        uint64_t magnitude = rng.range(4, 36);
        uint64_t v = (uint64_t(1) << magnitude) +
                     rng.below(uint64_t(1) << magnitude);
        samples.push_back(v);
        hist.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
        uint64_t exact = oraclePercentile(samples, p);
        uint64_t approx = hist.percentile(p);
        // The histogram reports its bucket's inclusive upper bound,
        // so it can only over-report, by at most one sub-bucket
        // width = 1/16 of the value.
        EXPECT_GE(approx, exact) << "p" << p;
        EXPECT_LE(static_cast<double>(approx),
                  static_cast<double>(exact) * (1.0 + 1.0 / 16.0))
            << "p" << p;
    }
    EXPECT_EQ(hist.max(), samples.back());
    EXPECT_EQ(hist.count(), samples.size());
}

TEST(PauseHistogram, PercentileClampsToObservedMax)
{
    PauseHistogram hist;
    hist.record(1000);
    // One sample: every percentile is that sample, not its bucket
    // upper bound.
    EXPECT_EQ(hist.percentile(50.0), 1000u);
    EXPECT_EQ(hist.percentile(99.0), 1000u);
    EXPECT_EQ(hist.percentile(100.0), 1000u);
}

TEST(PauseHistogram, EmptyHistogramReportsZero)
{
    PauseHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.percentile(50.0), 0u);
    EXPECT_EQ(hist.max(), 0u);
}

TEST(PauseHistogram, MergeMatchesRecordingIntoOneHistogram)
{
    // Per-thread recorders merged afterwards (the server workload's
    // latency pattern) must be indistinguishable from one shared
    // histogram fed every sample.
    Rng rng(11);
    PauseHistogram combined;
    PauseHistogram parts[3];
    for (int i = 0; i < 9000; ++i) {
        uint64_t v = rng.below(uint64_t(1) << rng.range(1, 30));
        combined.record(v);
        parts[i % 3].record(v);
    }
    PauseHistogram merged;
    for (const PauseHistogram &part : parts)
        merged.merge(part);
    EXPECT_EQ(merged.count(), combined.count());
    EXPECT_EQ(merged.max(), combined.max());
    for (double p : {10.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(merged.percentile(p), combined.percentile(p)) << p;
}

TEST(PauseHistogram, MergeIntoEmptyAndWithEmpty)
{
    PauseHistogram a;
    a.record(500);
    PauseHistogram empty;
    PauseHistogram dst;
    dst.merge(a);
    dst.merge(empty);
    EXPECT_EQ(dst.count(), 1u);
    EXPECT_EQ(dst.percentile(50.0), 500u);
    EXPECT_EQ(dst.max(), 500u);
}

TEST(PauseSloTracker, BudgetZeroTracksWithoutViolations)
{
    PauseSloTracker slo(0);
    EXPECT_FALSE(slo.recordFull(1'000'000'000));
    EXPECT_FALSE(slo.recordMinor(1'000'000'000));
    EXPECT_EQ(slo.violationCount(), 0u);
    EXPECT_EQ(slo.full().count(), 1u);
    EXPECT_EQ(slo.minor().count(), 1u);
}

TEST(PauseSloTracker, OverBudgetPausesAreFlagged)
{
    PauseSloTracker slo(1000);
    EXPECT_FALSE(slo.recordFull(1000)); // at budget: fine
    EXPECT_TRUE(slo.recordFull(1001));
    EXPECT_TRUE(slo.recordMinor(5000));
    EXPECT_EQ(slo.violationCount(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end: violations through the runtime
// ---------------------------------------------------------------------

RuntimeConfig
sloConfig(uint64_t budgetNanos, bool generational = false)
{
    RuntimeConfig config;
    config.infrastructure = true;
    config.recordPaths = false;
    config.tlab = false;
    config.generational = generational;
    config.nurseryKb = 32;
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    config.observe.censusEvery = 0;
    config.observe.pauseBudgetNanos = budgetNanos;
    return config;
}

size_t
pauseSloViolations(const Runtime &rt)
{
    size_t n = 0;
    for (const Violation &v : rt.violations())
        if (v.kind == AssertionKind::PauseSlo)
            ++n;
    return n;
}

TEST(PauseSloRuntime, TinyBudgetFiresOnEveryFullGc)
{
    CaptureLogSink capture;
    // 1 ns: every real pause exceeds it.
    Runtime rt(sloConfig(1));
    ASSERT_NE(rt.telemetry(), nullptr);
    TypeId node = rt.types().define("Node").refs({"n"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    rt.collect();
    rt.collect();
    EXPECT_EQ(pauseSloViolations(rt), 2u);
    EXPECT_EQ(rt.telemetry()->pauseSlo().violationCount(), 2u);
    EXPECT_EQ(rt.telemetry()->pauseSlo().full().count(), 2u);
    EXPECT_TRUE(capture.contains("exceeded"));
    EXPECT_TRUE(capture.contains("SLO budget"));
}

TEST(PauseSloRuntime, ViolationCarriesProvenanceAndKind)
{
    CaptureLogSink capture;
    Runtime rt(sloConfig(1));
    TypeId node = rt.types().define("Node").refs({"n"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    rt.collect();
    ASSERT_GE(rt.violations().size(), 1u);
    const Violation &v = rt.violations().back();
    EXPECT_EQ(v.kind, AssertionKind::PauseSlo);
    EXPECT_EQ(std::string(assertionKindName(v.kind)), "pause-slo");
    // The regular observer enriched it with heap provenance.
    EXPECT_NE(v.provenanceJson.find("heapUsedBytes"), std::string::npos);
    EXPECT_EQ(v.gcNumber, 1u);
}

TEST(PauseSloRuntime, SloReportsDoNotPerturbPerGcViolationCounts)
{
    CaptureLogSink capture;
    Runtime rt(sloConfig(1));
    TypeId node = rt.types().define("Node").refs({"n"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    // The CollectionResult and GcStats violation counters cover
    // assertion verdicts only; the over-budget report lands after
    // they settle.
    CollectionResult r1 = rt.collect();
    EXPECT_EQ(r1.violations, 0u);
    EXPECT_EQ(rt.gcStats().violations, 0u);
    CollectionResult r2 = rt.collect();
    EXPECT_EQ(r2.violations, 0u);
    EXPECT_EQ(rt.gcStats().violations, 0u);
    EXPECT_EQ(pauseSloViolations(rt), 2u);
}

TEST(PauseSloRuntime, TinyBudgetFiresOnMinorCollections)
{
    CaptureLogSink capture;
    Runtime rt(sloConfig(1, /*generational=*/true));
    TypeId node = rt.types().define("Node").refs({"n"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    size_t before = pauseSloViolations(rt);
    rt.collectMinor();
    EXPECT_EQ(pauseSloViolations(rt), before + 1);
    EXPECT_EQ(rt.telemetry()->pauseSlo().minor().count(), 1u);
}

TEST(PauseSloRuntime, GenerousBudgetStaysSilent)
{
    CaptureLogSink capture;
    // One hour: nothing in a test run blows it, so the tracker
    // observes every pause and reports nothing.
    Runtime rt(sloConfig(3'600'000'000'000ull));
    TypeId node = rt.types().define("Node").refs({"n"}).build();
    Handle root(rt, rt.allocRaw(node), "root");
    for (int i = 0; i < 5; ++i)
        rt.collect();
    EXPECT_EQ(pauseSloViolations(rt), 0u);
    EXPECT_EQ(rt.telemetry()->pauseSlo().violationCount(), 0u);
    EXPECT_EQ(rt.telemetry()->pauseSlo().full().count(), 5u);
    EXPECT_GT(rt.telemetry()->pauseSlo().full().percentile(50.0), 0u);
}

// ---------------------------------------------------------------------
// SLO-on/off differential (the shared tests/differential.h harness)
// ---------------------------------------------------------------------

/**
 * The shared rooted scenario with the SLO armed at 1 ns (every pause
 * violates) or fully off. Identical rng streams; assertion verdicts,
 * freed multisets, and finalizer order must be bit-identical -- the
 * SLO only ever *adds* context-only PauseSlo reports, which the
 * comparison excludes via ScenarioOptions::ignoreKinds.
 */
difftest::DiffOutcome
runScenario(bool slo, uint64_t seed)
{
    RuntimeConfig config = sloConfig(slo ? 1 : 0);
    if (!slo)
        config.observe.pauseBudgetNanos = 0;
    difftest::ScenarioOptions opt;
    opt.ignoreKinds = {AssertionKind::PauseSlo};
    return difftest::runRootedScenario(config, seed, opt);
}

TEST(PauseSloDifferential, MatchesUnarmedAcross100Seeds)
{
    CaptureLogSink capture;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        difftest::DiffOutcome off = runScenario(false, seed);
        difftest::DiffOutcome on = runScenario(true, seed);
        ASSERT_TRUE(difftest::equivalent(on, off))
            << "pause-SLO divergence at seed " << seed
            << "\n--- off ---\n" << difftest::describe(off)
            << "--- on ---\n" << difftest::describe(on);
    }
}

} // namespace
} // namespace gcassert
