/**
 * @file
 * Live telemetry endpoint tests: route schemas over a real loopback
 * socket, snapshot-history/seq agreement with the teardown metrics
 * document, published why-alive answers for named allocation sites,
 * violation-ring bounding, the metrics atomic-rename sink, and the
 * on/off differential (plain, generational, incremental) proving an
 * armed endpoint is observationally inert.
 *
 * Every HTTP-level test uses the in-tree httpGet client against a
 * server bound to an ephemeral port (kAutoLivePort), so the suite
 * needs no free fixed port and can run in parallel with itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "differential.h"
#include "observe/live_server.h"
#include "observe/telemetry.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/net.h"

namespace gcassert {
namespace {

using difftest::DiffOutcome;

/** Parse @p doc or fail the test; returns the root value. */
JsonValue
mustParse(const std::string &doc)
{
    JsonValue root;
    std::string error;
    EXPECT_TRUE(jsonParse(doc, root, &error))
        << error << "\nin document: " << doc;
    return root;
}

/** GET @p target from the runtime's live endpoint or fail. */
std::string
mustGet(const Runtime &rt, const std::string &target,
        int expected_status = 200)
{
    EXPECT_NE(rt.livePort(), 0) << "endpoint not armed";
    std::string body, error;
    int status = 0;
    EXPECT_TRUE(httpGet(rt.livePort(), target, body, &status, &error))
        << target << ": " << error;
    EXPECT_EQ(status, expected_status) << target << " -> " << body;
    return body;
}

RuntimeConfig
armedConfig()
{
    RuntimeConfig config;
    config.infrastructure = true;
    config.recordPaths = false;
    config.tlab = false;
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    config.observe.censusEvery = 1;
    config.observe.livePort = kAutoLivePort;
    return config;
}

TEST(LiveServer, ServesRoutesAsValidJson)
{
    CaptureLogSink capture;
    Runtime rt(armedConfig());
    ASSERT_NE(rt.livePort(), 0);

    TypeId t = rt.types().define("T").refs({"next"}).scalars(16).build();
    Handle keep(rt, rt.allocRaw(t), "keep");
    for (int i = 0; i < 100; ++i)
        rt.allocRaw(t);
    rt.collect();

    // /metrics: the published snapshot carries seq/gc plus the same
    // counters/gauges split as the teardown document.
    JsonValue metrics = mustParse(mustGet(rt, "/metrics"));
    ASSERT_TRUE(metrics.isObject());
    const JsonValue *seq = metrics.find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GE(seq->number, 1.0);
    const JsonValue *gauges = metrics.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const JsonValue *collections = gauges->find("gc.collections");
    ASSERT_NE(collections, nullptr);
    EXPECT_EQ(collections->number,
              static_cast<double>(rt.gcStats().collections));
    // The pause percentiles ride along in the same gauge namespace.
    EXPECT_NE(gauges->find("gc.pause.full.p50_nanos"), nullptr);

    // /series: ring with one snapshot per full GC so far.
    JsonValue series = mustParse(mustGet(rt, "/series"));
    const JsonValue *snaps = series.find("snapshots");
    ASSERT_NE(snaps, nullptr);
    ASSERT_TRUE(snaps->isArray());
    EXPECT_EQ(snaps->array.size(), rt.gcStats().collections);
    EXPECT_NE(series.find("capacity"), nullptr);
    EXPECT_NE(series.find("dropped"), nullptr);

    // /census: the census-every-1 cadence produced rows.
    JsonValue census = mustParse(mustGet(rt, "/census"));
    EXPECT_NE(census.find("rows"), nullptr);

    // /violations: empty but well-formed.
    JsonValue violations = mustParse(mustGet(rt, "/violations"));
    const JsonValue *list = violations.find("violations");
    ASSERT_NE(list, nullptr);
    EXPECT_TRUE(list->array.empty());

    // Index and error routes.
    JsonValue index = mustParse(mustGet(rt, "/"));
    EXPECT_NE(index.find("routes"), nullptr);
    JsonValue missing = mustParse(mustGet(rt, "/nope", 404));
    EXPECT_NE(missing.find("error"), nullptr);
}

TEST(LiveServer, SeriesGrowsAndSeqMatchesTeardownSnapshot)
{
    CaptureLogSink capture;
    std::string sink =
        ::testing::TempDir() + "gcassert_live_teardown_metrics.json";
    std::remove(sink.c_str());

    uint64_t last_seq = 0;
    {
        RuntimeConfig config = armedConfig();
        config.observe.metricsSink = sink;
        Runtime rt(config);
        TypeId t = rt.types().define("T").refs({}).scalars(16).build();
        for (int round = 0; round < 3; ++round) {
            for (int i = 0; i < 50; ++i)
                rt.allocRaw(t);
            rt.collect();
            // The endpoint sees a strictly growing series mid-run.
            JsonValue series = mustParse(mustGet(rt, "/series"));
            EXPECT_EQ(series.find("snapshots")->array.size(),
                      static_cast<size_t>(round + 1));
        }
        // Mid-run publish outside the GC epilogue (the server
        // workload's publishEvery path uses the same entry point).
        rt.publishTelemetry();
        JsonValue metrics = mustParse(mustGet(rt, "/metrics"));
        last_seq = static_cast<uint64_t>(metrics.find("seq")->number);
        EXPECT_EQ(last_seq, 4u); // 3 GC publishes + 1 explicit
    }

    // Teardown publishes no new snapshot; the persisted document
    // names the exact sequence number the endpoint last served.
    FILE *f = std::fopen(sink.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string doc;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        doc.append(buf, n);
    std::fclose(f);
    std::remove(sink.c_str());

    JsonValue parsed = mustParse(doc);
    const JsonValue *seq = parsed.find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(seq->number), last_seq);
}

TEST(LiveServer, HistoryRingDropsOldestBeyondCapacity)
{
    CaptureLogSink capture;
    RuntimeConfig config = armedConfig();
    config.observe.liveHistory = 2;
    Runtime rt(config);
    TypeId t = rt.types().define("T").refs({}).scalars(16).build();
    for (int round = 0; round < 5; ++round) {
        rt.allocRaw(t);
        rt.collect();
    }
    JsonValue series = mustParse(mustGet(rt, "/series"));
    EXPECT_EQ(series.find("snapshots")->array.size(), 2u);
    EXPECT_EQ(series.find("dropped")->number, 3.0);
    // The retained tail is the *newest* two publishes.
    const JsonValue &tail = series.find("snapshots")->array.back();
    EXPECT_EQ(tail.find("seq")->number, 5.0);
}

TEST(LiveServer, WhyAliveAnswersPublishedNamedSite)
{
    CaptureLogSink capture;
    RuntimeConfig config = armedConfig();
    config.backgraph = true;
    Runtime rt(config);

    TypeId holder =
        rt.types().define("Holder").refs({"kept"}).scalars(8).build();
    TypeId leaf = rt.types().define("Leaf").refs({}).scalars(8).build();
    uint32_t site = rt.allocSite("test.leaf_site");
    ASSERT_NE(site, 0u);

    Handle root(rt, rt.allocRaw(holder), "root");
    Object *kept = rt.allocRaw(leaf, nullptr, site);
    rt.writeRef(root.get(), 0, kept);
    rt.collect();

    JsonValue record =
        mustParse(mustGet(rt, "/why_alive?site=test.leaf_site"));
    EXPECT_EQ(record.find("site")->string, "test.leaf_site");
    EXPECT_TRUE(record.find("known")->boolean);
    EXPECT_TRUE(record.find("rootReached")->boolean);
    const JsonValue *path = record.find("path");
    ASSERT_NE(path, nullptr);
    ASSERT_TRUE(path->isArray());
    ASSERT_FALSE(path->array.empty());
    // Rootmost-first: the holder precedes the queried leaf.
    EXPECT_EQ(path->array.back().string, "Leaf");

    // Missing parameter: 400 with the published-site index.
    JsonValue missing = mustParse(mustGet(rt, "/why_alive", 400));
    const JsonValue *sites = missing.find("sites");
    ASSERT_NE(sites, nullptr);
    bool listed = false;
    for (const JsonValue &name : sites->array)
        listed |= name.string == "test.leaf_site";
    EXPECT_TRUE(listed);

    // Unknown site: 404 with known:false.
    JsonValue unknown =
        mustParse(mustGet(rt, "/why_alive?site=no.such.site", 404));
    EXPECT_FALSE(unknown.find("known")->boolean);
}

TEST(LiveServer, ViolationRingBoundsAndCountsDrops)
{
    CaptureLogSink capture;
    RuntimeConfig config = armedConfig();
    config.observe.violationRingCap = 4;
    Runtime rt(config);
    TypeId t = rt.types().define("Zombie").refs({}).scalars(8).build();

    std::vector<Handle> keep;
    for (int i = 0; i < 10; ++i)
        keep.emplace_back(rt, rt.allocRaw(t), "z");
    for (Handle &h : keep)
        rt.assertDead(h.get());
    rt.collect();

    // The engine's verdict record stays complete and unbounded...
    EXPECT_EQ(rt.violations().size(), 10u);
    // ...while the endpoint's ring kept the newest 4 of 10.
    ASSERT_NE(rt.telemetry(), nullptr);
    const ViolationRing &ring = rt.telemetry()->violationRing();
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);

    JsonValue doc = mustParse(mustGet(rt, "/violations"));
    EXPECT_EQ(doc.find("capacity")->number, 4.0);
    EXPECT_EQ(doc.find("dropped")->number, 6.0);
    EXPECT_EQ(doc.find("total")->number, 10.0);
    const JsonValue *list = doc.find("violations");
    ASSERT_EQ(list->array.size(), 4u);
    for (const JsonValue &v : list->array)
        EXPECT_EQ(v.find("kind")->string, "assert-dead");

    // The drop count is also a gauge in the published snapshot.
    JsonValue metrics = mustParse(mustGet(rt, "/metrics"));
    const JsonValue *droppedGauge =
        metrics.find("gauges")->find("observe.violations_dropped");
    ASSERT_NE(droppedGauge, nullptr);
    EXPECT_EQ(droppedGauge->number, 6.0);
}

TEST(LiveServer, BindFailureFallsBackToNoEndpoint)
{
    CaptureLogSink capture;
    // Occupy a port, then ask the runtime for exactly that port: the
    // bind fails and the runtime must run fine without the endpoint.
    TcpListener squatter;
    ASSERT_TRUE(squatter.listenLoopback(0));
    RuntimeConfig config = armedConfig();
    config.observe.livePort = squatter.port();
    Runtime rt(config);
    EXPECT_EQ(rt.livePort(), 0);
    TypeId t = rt.types().define("T").refs({}).build();
    rt.allocRaw(t);
    rt.collect();
    EXPECT_TRUE(capture.contains("cannot bind"));
}

// ---------------------------------------------------------------------
// Satellite: metrics file sink is written via atomic rename
// ---------------------------------------------------------------------

TEST(MetricsSink, FileSinkIsAtomicallyRenamedIntoPlace)
{
    CaptureLogSink capture;
    std::string path =
        ::testing::TempDir() + "gcassert_metrics_atomic.json";
    std::string tmp = path + ".tmp";
    std::remove(path.c_str());
    std::remove(tmp.c_str());

    MetricsRegistry m;
    m.counter("unit.events")->add(3);
    ASSERT_TRUE(m.publish(path, /*seq=*/7));

    // The final document is in place and the temporary is gone.
    FILE *left = std::fopen(tmp.c_str(), "rb");
    EXPECT_EQ(left, nullptr);
    if (left)
        std::fclose(left);

    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string doc;
    char buf[1024];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        doc.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    JsonValue parsed = mustParse(doc);
    EXPECT_EQ(parsed.find("seq")->number, 7.0);
    EXPECT_EQ(parsed.find("counters")->find("unit.events")->number, 3.0);
}

TEST(MetricsSink, UnwritablePathWarnsAndReturnsFalse)
{
    CaptureLogSink capture;
    MetricsRegistry m;
    m.counter("unit.events")->increment();
    EXPECT_FALSE(m.publish("/nonexistent-dir/metrics.json"));
    EXPECT_GE(capture.countAt(LogLevel::Warn), 1u);
}

// ---------------------------------------------------------------------
// Time-based trace flushing (the live endpoint's trace cadence)
// ---------------------------------------------------------------------

TEST(TraceFlush, PeriodicFlushHonorsInterval)
{
    std::string path =
        ::testing::TempDir() + "gcassert_periodic_trace.json";
    std::remove(path.c_str());
    TraceRecorder rec(path);
    const uint64_t interval = 10ull * 1000000000; // 10 s
    rec.setFlushIntervalNanos(interval);
    rec.instant("tick", "t", 10);
    // Not elapsed yet relative to construction: no flush.
    EXPECT_FALSE(rec.maybePeriodicFlush(traceNowNanos()));
    // Past the interval: flush fires and resets the clock.
    EXPECT_TRUE(rec.maybePeriodicFlush(traceNowNanos() + interval + 1));
    EXPECT_EQ(rec.flushedCount(), 1u);
    // The flush reset the clock to the current wall time, so a
    // near-now recheck is below the interval again.
    EXPECT_FALSE(rec.maybePeriodicFlush(traceNowNanos() + 1000000));
    std::remove(path.c_str());
}

TEST(TraceFlush, ZeroIntervalNeverPeriodicallyFlushes)
{
    TraceRecorder rec("");
    rec.instant("tick", "t", 10);
    EXPECT_FALSE(rec.maybePeriodicFlush(traceNowNanos() + 1000000000));
}

// ---------------------------------------------------------------------
// On/off differential: an armed endpoint is observationally inert
// ---------------------------------------------------------------------

DiffOutcome
runScenario(bool live, uint64_t seed, bool generational,
            bool incremental)
{
    RuntimeConfig config;
    config.infrastructure = true;
    config.recordPaths = false;
    config.tlab = false;
    config.generational = generational;
    config.nurseryKb = 32;
    config.incrementalAssert = incremental;
    config.observe = ObserveConfig{};
    config.observe.traceFile.clear();
    config.observe.metricsSink.clear();
    config.observe.censusEvery = 0;
    config.observe.livePort = live ? kAutoLivePort : 0;
    return difftest::runRootedScenario(config, seed);
}

TEST(LiveServerDifferential, MatchesUnarmedAcross100Seeds)
{
    CaptureLogSink capture;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        DiffOutcome off = runScenario(false, seed, false, false);
        DiffOutcome on = runScenario(true, seed, false, false);
        ASSERT_TRUE(difftest::equivalent(on, off))
            << "live-endpoint divergence at seed " << seed
            << "\n--- off ---\n" << difftest::describe(off)
            << "--- on ---\n" << difftest::describe(on);
    }
}

TEST(LiveServerDifferential, MatchesUnarmedUnderGenerationalMode)
{
    CaptureLogSink capture;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        DiffOutcome off = runScenario(false, seed, true, false);
        DiffOutcome on = runScenario(true, seed, true, false);
        ASSERT_TRUE(difftest::equivalent(on, off))
            << "live-endpoint divergence (generational) at seed "
            << seed << "\n--- off ---\n" << difftest::describe(off)
            << "--- on ---\n" << difftest::describe(on);
    }
}

TEST(LiveServerDifferential, MatchesUnarmedUnderIncrementalRecheck)
{
    CaptureLogSink capture;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        DiffOutcome off = runScenario(false, seed, false, true);
        DiffOutcome on = runScenario(true, seed, false, true);
        ASSERT_TRUE(difftest::equivalent(on, off))
            << "live-endpoint divergence (incremental) at seed "
            << seed << "\n--- off ---\n" << difftest::describe(off)
            << "--- on ---\n" << difftest::describe(on);
    }
}

} // namespace
} // namespace gcassert
