/**
 * @file
 * Unit tests for the type registry and descriptors.
 */

#include <gtest/gtest.h>

#include "support/logging.h"
#include "types/type_registry.h"

namespace gcassert {
namespace {

TEST(TypeRegistry, DefinesTypesWithDenseIds)
{
    TypeRegistry registry;
    TypeId a = registry.define("A").refs({"x"}).scalars(8).build();
    TypeId b = registry.define("B").refCount(3).build();
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.get(a).name(), "A");
    EXPECT_EQ(registry.get(b).fixedRefs(), 3u);
    EXPECT_EQ(registry.get(a).scalarBytes(), 8u);
}

TEST(TypeRegistry, DuplicateNameIsFatal)
{
    CaptureLogSink capture;
    TypeRegistry registry;
    registry.define("Dup").build();
    EXPECT_THROW(registry.define("Dup").build(), FatalError);
}

TEST(TypeRegistry, InvalidIdPanics)
{
    CaptureLogSink capture;
    TypeRegistry registry;
    EXPECT_THROW(registry.get(7), PanicError);
}

TEST(TypeRegistry, FindByName)
{
    TypeRegistry registry;
    TypeId a = registry.define("Widget").build();
    EXPECT_EQ(registry.findByName("Widget")->id(), a);
    EXPECT_EQ(registry.findByName("Missing"), nullptr);
}

TEST(TypeDescriptor, NamedSlotLookup)
{
    TypeRegistry registry;
    TypeId t =
        registry.define("T").refs({"first", "second", "third"}).build();
    const TypeDescriptor &desc = registry.get(t);
    EXPECT_EQ(desc.slotIndex("first"), 0u);
    EXPECT_EQ(desc.slotIndex("third"), 2u);
    CaptureLogSink capture;
    EXPECT_THROW(desc.slotIndex("fourth"), FatalError);
}

TEST(TypeDescriptor, SlotNameCountMustMatch)
{
    CaptureLogSink capture;
    TypeId unused;
    (void)unused;
    // Constructing a descriptor directly with a name/count mismatch
    // is fatal.
    EXPECT_THROW(TypeDescriptor(0, "Bad", 3, 0, false, {"only", "two"}),
                 FatalError);
}

TEST(TypeDescriptor, ArrayFlag)
{
    TypeRegistry registry;
    TypeId arr = registry.define("Arr").array().build();
    TypeId fixed = registry.define("Fixed").refCount(2).build();
    EXPECT_TRUE(registry.get(arr).isArray());
    EXPECT_FALSE(registry.get(fixed).isArray());
}

TEST(InstanceTracking, LimitAndCountLifecycle)
{
    TypeRegistry registry;
    TypeId t = registry.define("Tracked").build();
    EXPECT_FALSE(registry.get(t).tracked());
    EXPECT_EQ(registry.get(t).instanceLimit(), kNoInstanceLimit);

    registry.trackInstances(t, 5);
    EXPECT_TRUE(registry.get(t).tracked());
    EXPECT_EQ(registry.get(t).instanceLimit(), 5u);
    ASSERT_EQ(registry.trackedTypes().size(), 1u);
    EXPECT_EQ(registry.trackedTypes()[0], t);

    registry.get(t).bumpInstanceCount();
    registry.get(t).bumpInstanceCount();
    EXPECT_EQ(registry.get(t).instanceCount(), 2u);

    registry.resetInstanceCounts();
    EXPECT_EQ(registry.get(t).instanceCount(), 0u);
}

TEST(InstanceTracking, TrackTwiceKeepsOneEntry)
{
    TypeRegistry registry;
    TypeId t = registry.define("T").build();
    registry.trackInstances(t, 5);
    registry.trackInstances(t, 3); // tighten the limit
    EXPECT_EQ(registry.trackedTypes().size(), 1u);
    EXPECT_EQ(registry.get(t).instanceLimit(), 3u);
}

TEST(InstanceTracking, Untrack)
{
    TypeRegistry registry;
    TypeId t = registry.define("T").build();
    registry.trackInstances(t, 5);
    registry.untrackInstances(t);
    EXPECT_FALSE(registry.get(t).tracked());
    EXPECT_TRUE(registry.trackedTypes().empty());
}

TEST(InstanceTracking, ZeroLimitMeansNoInstances)
{
    TypeRegistry registry;
    TypeId t = registry.define("T").build();
    registry.trackInstances(t, 0);
    EXPECT_TRUE(registry.get(t).tracked());
    EXPECT_EQ(registry.get(t).instanceLimit(), 0u);
}

} // namespace
} // namespace gcassert
