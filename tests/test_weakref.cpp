/**
 * @file
 * Tests for weak-reference types: slot 0 is not traced through, and
 * is cleared when the referent dies.
 */

#include "test_util.h"

namespace gcassert {
namespace {

class WeakRefTest : public testutil::RuntimeTest {
  protected:
    WeakRefTest()
    {
        weakType_ = runtime_->types()
                        .define("WeakRef")
                        .refs({"referent", "strong"})
                        .scalars(8)
                        .weak()
                        .build();
    }

    /** A rooted weak reference to @p target. */
    Handle
    weakRef(Object *target)
    {
        Object *weak = runtime_->allocRaw(weakType_);
        weak->setRef(0, target);
        return Handle(*runtime_, weak, "weak-root");
    }

    TypeId weakType_ = kInvalidTypeId;
};

TEST_F(WeakRefTest, DoesNotKeepReferentAlive)
{
    Object *target = node(1);
    Handle weak = weakRef(target);
    runtime_->collect();
    EXPECT_FALSE(alive(target)) << "weak edge must not retain";
    EXPECT_EQ(weak->ref(0), nullptr) << "edge cleared on reclamation";
}

TEST_F(WeakRefTest, ReferentSurvivesWhileStronglyReachable)
{
    Handle strong = rootedNode(1);
    Handle weak = weakRef(strong.get());
    runtime_->collect();
    EXPECT_TRUE(alive(strong.get()));
    EXPECT_EQ(weak->ref(0), strong.get()) << "edge intact while live";

    strong.reset();
    runtime_->collect();
    EXPECT_EQ(weak->ref(0), nullptr);
}

TEST_F(WeakRefTest, StrongSlotsOfWeakTypeStillTrace)
{
    // Only slot 0 is weak; slot 1 is a normal strong reference.
    Object *weak_target = node(1);
    Object *strong_target = node(2);
    Object *weak = runtime_->allocRaw(weakType_);
    Handle root(*runtime_, weak, "weak-root");
    weak->setRef(0, weak_target);
    weak->setRef(1, strong_target);
    runtime_->collect();
    EXPECT_FALSE(alive(weak_target));
    EXPECT_TRUE(alive(strong_target));
    EXPECT_EQ(weak->ref(0), nullptr);
    EXPECT_EQ(weak->ref(1), strong_target);
}

TEST_F(WeakRefTest, DeadWeakRefIsItselfCollected)
{
    Object *target = node(1);
    Object *weak = runtime_->allocRaw(weakType_);
    weak->setRef(0, target);
    runtime_->collect();
    EXPECT_FALSE(alive(weak));
    EXPECT_FALSE(alive(target));
}

TEST_F(WeakRefTest, WeakChainCollapses)
{
    // weak1 -(weak)-> weak2 -(weak)-> target: nothing retains
    // anything.
    Object *target = node(1);
    Object *weak2 = runtime_->allocRaw(weakType_);
    weak2->setRef(0, target);
    Object *weak1 = runtime_->allocRaw(weakType_);
    Handle root(*runtime_, weak1, "chain-root");
    weak1->setRef(0, weak2);
    runtime_->collect();
    EXPECT_TRUE(alive(weak1));
    EXPECT_FALSE(alive(weak2));
    EXPECT_FALSE(alive(target));
    EXPECT_EQ(weak1->ref(0), nullptr);
}

TEST_F(WeakRefTest, CacheIdiom)
{
    // Weak-valued cache: entries vanish once the strong owner drops
    // them, without explicit invalidation.
    Object *cache = runtime_->allocArrayRaw(arrayType_, 8);
    Handle cache_root(*runtime_, cache, "cache");
    std::vector<Handle> strong;
    for (uint32_t i = 0; i < 8; ++i) {
        strong.push_back(rootedNode(i));
        Object *weak = runtime_->allocRaw(weakType_);
        weak->setRef(0, strong.back().get());
        cache->setRef(i, weak);
    }
    runtime_->collect();
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_NE(cache->ref(i)->ref(0), nullptr);

    // Drop half the strong references.
    for (uint32_t i = 0; i < 8; i += 2)
        strong[i].reset();
    runtime_->collect();
    for (uint32_t i = 0; i < 8; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(cache->ref(i)->ref(0), nullptr) << i;
        else
            EXPECT_NE(cache->ref(i)->ref(0), nullptr) << i;
    }
}

TEST_F(WeakRefTest, WorksInBaseConfiguration)
{
    // Weak references are substrate, not assertion infrastructure:
    // they must behave identically with the checks compiled out.
    Runtime base(RuntimeConfig::base(testutil::kTestHeapBytes));
    TypeId n = base.types().define("N").refCount(1).build();
    TypeId w =
        base.types().define("W").refs({"referent"}).weak().build();
    Object *target = base.allocRaw(n);
    Object *weak = base.allocRaw(w);
    Handle root(base, weak, "weak");
    weak->setRef(0, target);
    base.collect();
    EXPECT_EQ(weak->ref(0), nullptr);
}

TEST_F(WeakRefTest, WeakTargetNotReportedDead)
{
    // An object reachable only through a weak edge is genuinely
    // collectable, so an assert-dead on it must be satisfied.
    Object *target = node(1);
    Handle weak = weakRef(target);
    runtime_->assertDead(target);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
    EXPECT_EQ(runtime_->assertionStats().deadAssertsSatisfied, 1u);
}

TEST_F(WeakRefTest, WeakRefsInsideOwnedStructures)
{
    // An ownee referenced weakly from elsewhere: the weak edge does
    // not count as a path for ownership purposes either.
    Handle owner = rootedNode(0, "owner");
    Object *element = node(1);
    owner->setRef(0, element);
    Handle weak = weakRef(element);
    runtime_->assertOwnedBy(owner.get(), element);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());

    // Remove from the owner: only the weak edge remains, so the
    // element dies (assertion satisfied) and the edge clears.
    owner->setRef(0, nullptr);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
    EXPECT_EQ(weak->ref(0), nullptr);
}

TEST_F(WeakRefTest, WeakTypeValidation)
{
    CaptureLogSink capture;
    EXPECT_THROW(
        runtime_->types().define("BadWeak0").refCount(0).weak().build(),
        FatalError)
        << "weak types need slot 0";
    EXPECT_THROW(
        runtime_->types().define("BadWeakArr").array().weak().build(),
        FatalError)
        << "array types cannot be weak";
}

} // namespace
} // namespace gcassert
