/**
 * @file
 * Tests for assert-ownedby (paper section 2.5.2): the two-phase
 * ownership trace, truncation at ownees, owner-region overlap
 * warnings, owner-liveness handling, and table pruning.
 */

#include "test_util.h"

namespace gcassert {
namespace {

using testutil::RuntimeTest;

class AssertOwnedByTest : public RuntimeTest {};

TEST_F(AssertOwnedByTest, OwneeReachableThroughOwnerIsSatisfied)
{
    Handle owner = rootedNode(0, "owner-root");
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, OwneeAlsoCachedElsewhereIsStillSatisfied)
{
    // The paper's canonical example: elements live in a container
    // and are also cached in a side table; the cache reference is
    // fine while the container path exists.
    Handle owner = rootedNode(0, "container");
    Handle cache = rootedNode(1, "cache");
    Object *element = node(2);
    owner->setRef(0, element);
    cache->setRef(0, element);
    runtime_->assertOwnedBy(owner.get(), element);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, OwneeOnlyReachableViaCacheIsViolation)
{
    Handle owner = rootedNode(0, "container");
    Handle cache = rootedNode(1, "cache");
    Object *element = node(2);
    owner->setRef(0, element);
    cache->setRef(0, element);
    runtime_->assertOwnedBy(owner.get(), element);
    // Remove from the container but forget the cache: the classic
    // managed-language leak.
    owner->setRef(0, nullptr);
    runtime_->collect();
    ASSERT_EQ(violations().size(), 1u);
    const Violation &v = violations()[0];
    EXPECT_EQ(v.kind, AssertionKind::OwnedBy);
    EXPECT_NE(v.message.find("without passing through its owner"),
              std::string::npos);
    EXPECT_EQ(v.offendingType, "Node");
}

TEST_F(AssertOwnedByTest, OwneeDiesBeforeOwnerIsSatisfied)
{
    Handle owner = rootedNode(0, "owner-root");
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    owner->setRef(0, nullptr); // properly removed everywhere
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
    EXPECT_FALSE(alive(ownee));
    EXPECT_EQ(runtime_->assertionStats().owneeAssertsSatisfied, 1u);
}

TEST_F(AssertOwnedByTest, DeepPathThroughOwnerCounts)
{
    // owner -> a -> b -> ownee : the path passes through the owner.
    Handle owner = rootedNode(0, "owner-root");
    Object *a = node(1);
    Object *b = node(2);
    Object *ownee = node(3);
    owner->setRef(0, a);
    a->setRef(0, b);
    b->setRef(0, ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, ManyOwneesMixedOutcome)
{
    Handle owner = rootedNode(0, "owner-root");
    Handle stray = rootedNode(9, "stray");
    Handle arr(*runtime_, runtime_->allocArrayRaw(arrayType_, 16),
               "elements");
    owner->setRef(0, arr.get());
    std::vector<Object *> ownees;
    for (uint32_t i = 0; i < 10; ++i) {
        Object *e = node(i);
        arr->setRef(i, e);
        runtime_->assertOwnedBy(owner.get(), e);
        ownees.push_back(e);
    }
    // Detach two: one kept via stray (violation), one fully dead.
    stray->setRef(0, ownees[3]);
    arr->setRef(3, nullptr);
    arr->setRef(7, nullptr);
    runtime_->collect();
    ASSERT_EQ(violationsOf(AssertionKind::OwnedBy).size(), 1u);
    EXPECT_EQ(runtime_->assertionStats().owneeAssertsSatisfied, 1u);
    EXPECT_FALSE(alive(ownees[7]));
}

TEST_F(AssertOwnedByTest, OwnerItselfUnreachableIsCollected)
{
    // The owner must not be kept alive just because it is an owner:
    // the ownership phase deliberately avoids marking the owner.
    Object *owner = node(0);
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner, ownee);
    runtime_->collect();
    EXPECT_FALSE(alive(owner)) << "unreachable owner must die";
    // The ownee was reachable only from the owner; the paper notes
    // such objects survive one extra collection (traced in the
    // ownership phase) and die at the next one.
    runtime_->collect();
    EXPECT_FALSE(alive(ownee));
}

TEST_F(AssertOwnedByTest, OrphanedOwneeIsReportedWhenOwnerDies)
{
    Handle keeper = rootedNode(9, "keeper");
    Object *owner = node(0);
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    keeper->setRef(0, ownee); // ownee outlives its owner
    runtime_->assertOwnedBy(owner, ownee);
    // First collection reclaims the owner and arms the orphan check;
    // the verdict is deferred to the next collection.
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
    runtime_->collect();
    auto orphaned = violationsOf(AssertionKind::OwnedBy);
    ASSERT_EQ(orphaned.size(), 1u);
    EXPECT_NE(orphaned[0].message.find("outlived its owner"),
              std::string::npos);
    EXPECT_FALSE(orphaned[0].path.empty()) << "full path is available";
}

TEST_F(AssertOwnedByTest, OrphanedOwneeThatDiesIsSatisfied)
{
    // The ownee was reachable only through its (dead) owner: it
    // survives one extra collection because the ownership phase
    // traced it, then dies quietly — no false positive.
    Object *owner = node(0);
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner, ownee);
    runtime_->collect();
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
    EXPECT_FALSE(alive(ownee));
    EXPECT_EQ(runtime_->assertionStats().owneeAssertsSatisfied, 1u);
}

TEST_F(AssertOwnedByTest, OrphanedOwneeSilentWhenOptionDisabled)
{
    RuntimeConfig config = defaultConfig();
    config.engine.orphanedOwneeIsViolation = false;
    Runtime quiet(config);
    TypeId t = quiet.types().define("N").refCount(2).build();
    Handle keeper(quiet, quiet.allocRaw(t), "keeper");
    Object *owner = quiet.allocRaw(t);
    Object *ownee = quiet.allocRaw(t);
    owner->setRef(0, ownee);
    keeper->setRef(0, ownee);
    quiet.assertOwnedBy(owner, ownee);
    quiet.collect();
    EXPECT_TRUE(quiet.violations().empty());
}

TEST_F(AssertOwnedByTest, SharedStructureWithBackEdges)
{
    // Container with internal back edges: nodes point back at the
    // owner and at each other. Truncation at ownees avoids the
    // back-edge problem (paper section 2.5.2).
    Handle owner = rootedNode(0, "owner-root");
    Object *e1 = node(1);
    Object *e2 = node(2);
    owner->setRef(0, e1);
    owner->setRef(1, e2);
    e1->setRef(0, owner.get()); // back edge to owner
    e1->setRef(1, e2);          // cross edge between ownees
    e2->setRef(0, e1);
    runtime_->assertOwnedBy(owner.get(), e1);
    runtime_->assertOwnedBy(owner.get(), e2);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, OwneeOnlyInsideAnotherOwneeIsViolation)
{
    // ownee1 -> ownee2: ownee2 is reachable only *through ownee1*,
    // not through the owner's own structure — i.e. it is no longer
    // an element of the owning container. This is the shape of the
    // paper's JBB leak (a removed Order reachable only via another
    // Order's Customer), and it is reported.
    Handle owner = rootedNode(0, "owner-root");
    Object *e1 = node(1);
    Object *e2 = node(2);
    owner->setRef(0, e1);
    e1->setRef(0, e2);
    runtime_->assertOwnedBy(owner.get(), e1);
    runtime_->assertOwnedBy(owner.get(), e2);
    runtime_->collect();
    ASSERT_EQ(violationsOf(AssertionKind::OwnedBy).size(), 1u);
    EXPECT_TRUE(alive(e2)) << "reported, but still traced live";

    // Making e2 a direct element again satisfies the assertion.
    owner->setRef(1, e2);
    runtime_->collect();
    EXPECT_EQ(violationsOf(AssertionKind::OwnedBy).size(), 1u)
        << "no new report once e2 is back in the owner's structure";
}

TEST_F(AssertOwnedByTest, DisjointOwnersCoexist)
{
    Handle o1 = rootedNode(1, "owner-1");
    Handle o2 = rootedNode(2, "owner-2");
    Object *e1 = node(11);
    Object *e2 = node(22);
    o1->setRef(0, e1);
    o2->setRef(0, e2);
    runtime_->assertOwnedBy(o1.get(), e1);
    runtime_->assertOwnedBy(o2.get(), e2);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, OverlappingOwnerRegionsWarn)
{
    // o1's region contains an ownee of o2: improper use per the
    // paper ("owner regions must be disjoint").
    Handle o1 = rootedNode(1, "owner-1");
    Handle o2 = rootedNode(2, "owner-2");
    Object *mid = node(3);
    Object *e2 = node(4);
    o1->setRef(0, mid);
    mid->setRef(0, e2); // e2 (ownee of o2) inside o1's region
    o2->setRef(0, e2);
    runtime_->assertOwnedBy(o1.get(), mid);
    runtime_->assertOwnedBy(o2.get(), e2);
    runtime_->collect();
    auto misuse = violationsOf(AssertionKind::OwnershipMisuse);
    // Whether the warning fires depends on scan order reaching e2
    // from o1 before o2 owns it; with truncation at `mid` (an ownee
    // of o1) the overlap is actually hidden. Rewire so the overlap
    // is direct.
    (void)misuse;
    o1->setRef(1, e2);
    runtime_->collect();
    EXPECT_GE(violationsOf(AssertionKind::OwnershipMisuse).size(), 1u);
}

TEST_F(AssertOwnedByTest, SelfOwnershipIsFatal)
{
    Handle obj = rootedNode(1);
    EXPECT_THROW(runtime_->assertOwnedBy(obj.get(), obj.get()),
                 FatalError);
}

TEST_F(AssertOwnedByTest, NullArgumentsAreFatal)
{
    Handle obj = rootedNode(1);
    EXPECT_THROW(runtime_->assertOwnedBy(nullptr, obj.get()), FatalError);
    EXPECT_THROW(runtime_->assertOwnedBy(obj.get(), nullptr), FatalError);
}

TEST_F(AssertOwnedByTest, DuplicatePairsAreIdempotent)
{
    Handle owner = rootedNode(0, "owner-root");
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    EXPECT_EQ(runtime_->engine().ownership().owneeCount(), 1u);
    runtime_->collect();
    EXPECT_TRUE(violations().empty());
}

TEST_F(AssertOwnedByTest, TablePrunesDeadPairs)
{
    Handle owner = rootedNode(0, "owner-root");
    for (int i = 0; i < 10; ++i) {
        Object *ownee = node(i);
        owner->setRef(0, ownee); // only the latest is retained
        runtime_->assertOwnedBy(owner.get(), ownee);
    }
    EXPECT_EQ(runtime_->engine().ownership().owneeCount(), 10u);
    runtime_->collect();
    // Nine ownees died; the table keeps only the live one.
    EXPECT_EQ(runtime_->engine().ownership().owneeCount(), 1u);
    EXPECT_EQ(runtime_->assertionStats().owneeAssertsSatisfied, 9u);
}

TEST_F(AssertOwnedByTest, OwnerWithNoLiveOwneesLeavesTable)
{
    Handle owner = rootedNode(0, "owner-root");
    Object *ownee = node(1);
    owner->setRef(0, ownee);
    runtime_->assertOwnedBy(owner.get(), ownee);
    owner->setRef(0, nullptr);
    runtime_->collect();
    EXPECT_TRUE(runtime_->engine().ownership().empty());
    EXPECT_FALSE(owner->testFlag(kOwnerBit));
}

TEST_F(AssertOwnedByTest, ViolationReportedOncePerGc)
{
    Handle owner = rootedNode(0, "owner");
    Handle c1 = rootedNode(1, "cache-1");
    Handle c2 = rootedNode(2, "cache-2");
    Object *element = node(3);
    owner->setRef(0, element);
    c1->setRef(0, element);
    c2->setRef(0, element);
    runtime_->assertOwnedBy(owner.get(), element);
    owner->setRef(0, nullptr);
    runtime_->collect();
    EXPECT_EQ(violationsOf(AssertionKind::OwnedBy).size(), 1u)
        << "two cache paths still yield one report per GC";
}

TEST_F(AssertOwnedByTest, OwneeChecksAreCounted)
{
    Handle owner = rootedNode(0, "owner-root");
    for (uint32_t i = 0; i < 5; ++i) {
        Object *ownee = node(i);
        owner->setRef(i % 2, ownee);
        runtime_->assertOwnedBy(owner.get(), ownee);
    }
    runtime_->collect();
    EXPECT_GT(runtime_->gcStats().owneeChecksLastGc, 0u);
    EXPECT_GE(runtime_->gcStats().owneeChecks,
              runtime_->gcStats().owneeChecksLastGc);
}

TEST_F(AssertOwnedByTest, ChurnScenarioOrderTable)
{
    // Simplified JBB pattern: orders owned by a table, removed and
    // destroyed over time; a rogue reference keeps one alive.
    Handle table(*runtime_, runtime_->allocArrayRaw(arrayType_, 32),
                 "order-table");
    Handle rogue = rootedNode(0, "rogue");
    std::vector<Object *> orders;
    for (uint32_t i = 0; i < 20; ++i) {
        Object *order = node(i);
        table->setRef(i, order);
        runtime_->assertOwnedBy(table.get(), order);
        orders.push_back(order);
    }
    runtime_->collect();
    EXPECT_TRUE(violations().empty());

    rogue->setRef(0, orders[5]);
    for (uint32_t i = 0; i < 10; ++i)
        table->setRef(i, nullptr); // process the first ten
    runtime_->collect();
    ASSERT_EQ(violationsOf(AssertionKind::OwnedBy).size(), 1u);
    EXPECT_EQ(runtime_->assertionStats().owneeAssertsSatisfied, 9u);
}

} // namespace
} // namespace gcassert
