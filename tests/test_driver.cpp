/**
 * @file
 * Tests for the benchmark driver: configuration mapping, sample
 * collection, and the Base/Infrastructure/WithAssertions contract.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "workloads/driver.h"

namespace gcassert {
namespace {

/**
 * A workload with deliberately slow setup and teardown and a
 * near-instant iterate that completes a fixed number of work units:
 * pins that the driver's measured window (and the units/s it
 * derives) brackets only the measured iterations.
 */
class SleepyWorkload : public Workload {
  public:
    static constexpr auto kSleep = std::chrono::milliseconds(80);
    static constexpr uint64_t kUnitsPerIterate = 10;

    const char *name() const override { return "test.sleepy"; }
    const char *description() const override
    {
        return "slow setup/teardown, instant iterate (driver test)";
    }
    uint64_t minHeapBytes() const override { return 1 << 20; }

    void
    setup(Runtime &runtime) override
    {
        (void)runtime;
        std::this_thread::sleep_for(kSleep);
    }

    void
    iterate(Runtime &runtime) override
    {
        (void)runtime;
        units_ += kUnitsPerIterate;
    }

    void
    teardown(Runtime &runtime) override
    {
        (void)runtime;
        std::this_thread::sleep_for(kSleep);
    }

    uint64_t workUnitsCompleted() const override { return units_; }

  private:
    uint64_t units_ = 0;
};

void
registerSleepy()
{
    static bool once = [] {
        WorkloadRegistry::instance().add("test.sleepy", [] {
            return std::unique_ptr<Workload>(new SleepyWorkload);
        });
        return true;
    }();
    (void)once;
}

DriverOptions
quickOptions()
{
    DriverOptions options;
    options.warmupIterations = 1;
    options.measuredIterations = 1;
    options.repeats = 2;
    return options;
}

TEST(Driver, ConfigNames)
{
    EXPECT_STREQ(benchConfigName(BenchConfig::Base), "Base");
    EXPECT_STREQ(benchConfigName(BenchConfig::Infrastructure),
                 "Infrastructure");
    EXPECT_STREQ(benchConfigName(BenchConfig::WithAssertions),
                 "WithAssertions");
}

TEST(Driver, CollectsRequestedSamples)
{
    RunSummary summary =
        runWorkload("binarytrees", BenchConfig::Base, quickOptions());
    EXPECT_EQ(summary.workload, "binarytrees");
    EXPECT_EQ(summary.totalSeconds.count(), 2u);
    EXPECT_EQ(summary.gcSeconds.count(), 2u);
    EXPECT_EQ(summary.mutatorSeconds.count(), 2u);
    EXPECT_GT(summary.totalSeconds.mean(), 0.0);
    EXPECT_GE(summary.totalSeconds.mean(), summary.gcSeconds.mean());
    EXPECT_GT(summary.heapBytes, 0u);
}

TEST(Driver, BaseConfigRecordsNoAssertionActivity)
{
    RunSummary summary =
        runWorkload("swapleak", BenchConfig::Base, quickOptions());
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_EQ(summary.assertStats.assertDeadCalls, 0u);
}

TEST(Driver, InfrastructureConfigAddsNoAssertions)
{
    RunSummary summary = runWorkload(
        "swapleak", BenchConfig::Infrastructure, quickOptions());
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_EQ(summary.assertStats.assertDeadCalls, 0u);
}

TEST(Driver, WithAssertionsActivatesWorkloadAssertions)
{
    RunSummary summary = runWorkload(
        "swapleak", BenchConfig::WithAssertions, quickOptions());
    EXPECT_GT(summary.assertStats.assertDeadCalls, 0u);
    EXPECT_GT(summary.violations, 0u) << "swapleak is a seeded leak";
}

TEST(Driver, MinidbWithAssertionsMatchesPaperShape)
{
    DriverOptions options = quickOptions();
    options.repeats = 1;
    options.warmupIterations = 2;
    RunSummary summary =
        runWorkload("minidb", BenchConfig::WithAssertions, options);
    // The paper quotes 695 assert-dead / 15,553 assert-ownedby calls
    // and ~15k ownees checked per GC for _209_db; our analog matches
    // in order of magnitude.
    EXPECT_GT(summary.assertStats.assertOwnedByCalls, 10000u);
    EXPECT_GT(summary.assertStats.assertDeadCalls, 50u);
    EXPECT_LT(summary.assertStats.assertDeadCalls, 5000u);
    EXPECT_GT(summary.owneeChecksPerGc, 5000.0);
    EXPECT_EQ(summary.violations, 0u);
}

TEST(Driver, MeasuredWindowExcludesSetupAndTeardown)
{
    registerSleepy();
    DriverOptions options;
    options.warmupIterations = 1;
    options.measuredIterations = 2;
    options.repeats = 1;
    RunSummary summary =
        runWorkload("test.sleepy", BenchConfig::Base, options);
    // Setup + teardown sleep 160 ms; the two measured iterations do
    // no work. A wall-clock that leaked any of the sleeps into the
    // window would blow straight past this bound.
    EXPECT_LT(summary.totalSeconds.mean(), 0.04)
        << "measured window included setup/teardown time";
    EXPECT_EQ(summary.workUnits,
              2 * SleepyWorkload::kUnitsPerIterate);
    ASSERT_EQ(summary.workUnitsPerSec.count(), 1u);
    EXPECT_GT(summary.workUnitsPerSec.mean(), 0.0);
}

TEST(Driver, WorkUnitsPerSecReflectsServerRequests)
{
    DriverOptions options;
    options.warmupIterations = 0;
    options.measuredIterations = 1;
    options.repeats = 1;
    RunSummary summary = runWorkload(
        "server", BenchConfig::WithAssertions, options);
    // One iterate = threads x requestsPerThread requests, all inside
    // the measured window.
    EXPECT_GT(summary.workUnits, 0u);
    EXPECT_EQ(summary.workUnitsPerSec.count(), 1u);
    EXPECT_GT(summary.workUnitsPerSec.mean(), 0.0);
    EXPECT_EQ(summary.violations, 0u);
}

TEST(Driver, HeapOverrideIsHonored)
{
    DriverOptions options = quickOptions();
    options.repeats = 1;
    options.heapBytesOverride = 48ull * 1024 * 1024;
    RunSummary summary =
        runWorkload("binarytrees", BenchConfig::Base, options);
    EXPECT_EQ(summary.heapBytes, 48ull * 1024 * 1024);
}

} // namespace
} // namespace gcassert
