/**
 * @file
 * Tests for the benchmark driver: configuration mapping, sample
 * collection, and the Base/Infrastructure/WithAssertions contract.
 */

#include <gtest/gtest.h>

#include "workloads/driver.h"

namespace gcassert {
namespace {

DriverOptions
quickOptions()
{
    DriverOptions options;
    options.warmupIterations = 1;
    options.measuredIterations = 1;
    options.repeats = 2;
    return options;
}

TEST(Driver, ConfigNames)
{
    EXPECT_STREQ(benchConfigName(BenchConfig::Base), "Base");
    EXPECT_STREQ(benchConfigName(BenchConfig::Infrastructure),
                 "Infrastructure");
    EXPECT_STREQ(benchConfigName(BenchConfig::WithAssertions),
                 "WithAssertions");
}

TEST(Driver, CollectsRequestedSamples)
{
    RunSummary summary =
        runWorkload("binarytrees", BenchConfig::Base, quickOptions());
    EXPECT_EQ(summary.workload, "binarytrees");
    EXPECT_EQ(summary.totalSeconds.count(), 2u);
    EXPECT_EQ(summary.gcSeconds.count(), 2u);
    EXPECT_EQ(summary.mutatorSeconds.count(), 2u);
    EXPECT_GT(summary.totalSeconds.mean(), 0.0);
    EXPECT_GE(summary.totalSeconds.mean(), summary.gcSeconds.mean());
    EXPECT_GT(summary.heapBytes, 0u);
}

TEST(Driver, BaseConfigRecordsNoAssertionActivity)
{
    RunSummary summary =
        runWorkload("swapleak", BenchConfig::Base, quickOptions());
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_EQ(summary.assertStats.assertDeadCalls, 0u);
}

TEST(Driver, InfrastructureConfigAddsNoAssertions)
{
    RunSummary summary = runWorkload(
        "swapleak", BenchConfig::Infrastructure, quickOptions());
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_EQ(summary.assertStats.assertDeadCalls, 0u);
}

TEST(Driver, WithAssertionsActivatesWorkloadAssertions)
{
    RunSummary summary = runWorkload(
        "swapleak", BenchConfig::WithAssertions, quickOptions());
    EXPECT_GT(summary.assertStats.assertDeadCalls, 0u);
    EXPECT_GT(summary.violations, 0u) << "swapleak is a seeded leak";
}

TEST(Driver, MinidbWithAssertionsMatchesPaperShape)
{
    DriverOptions options = quickOptions();
    options.repeats = 1;
    options.warmupIterations = 2;
    RunSummary summary =
        runWorkload("minidb", BenchConfig::WithAssertions, options);
    // The paper quotes 695 assert-dead / 15,553 assert-ownedby calls
    // and ~15k ownees checked per GC for _209_db; our analog matches
    // in order of magnitude.
    EXPECT_GT(summary.assertStats.assertOwnedByCalls, 10000u);
    EXPECT_GT(summary.assertStats.assertDeadCalls, 50u);
    EXPECT_LT(summary.assertStats.assertDeadCalls, 5000u);
    EXPECT_GT(summary.owneeChecksPerGc, 5000.0);
    EXPECT_EQ(summary.violations, 0u);
}

TEST(Driver, HeapOverrideIsHonored)
{
    DriverOptions options = quickOptions();
    options.repeats = 1;
    options.heapBytesOverride = 48ull * 1024 * 1024;
    RunSummary summary =
        runWorkload("binarytrees", BenchConfig::Base, options);
    EXPECT_EQ(summary.heapBytes, 48ull * 1024 * 1024);
}

} // namespace
} // namespace gcassert
