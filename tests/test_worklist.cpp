/**
 * @file
 * Unit tests for the tagged worklist and the path recorder — the
 * section 2.7 mechanism in isolation.
 */

#include <gtest/gtest.h>

#include "gc/path_recorder.h"
#include "gc/worklist.h"
#include "heap/heap.h"

namespace gcassert {
namespace {

/** A tiny heap to mint word-aligned objects for tagging tests. */
class WorklistTest : public ::testing::Test {
  protected:
    WorklistTest() : heap_(HeapConfig{1024 * 1024, false, 1.5}) {}

    Object *
    obj()
    {
        return heap_.allocate(0, 2, 8);
    }

    Heap heap_;
    Worklist list_;
    PathRecorder paths_;
};

TEST_F(WorklistTest, TaggingRoundTrips)
{
    Object *o = obj();
    uintptr_t plain = Worklist::plain(o);
    uintptr_t tagged = Worklist::tagged(o);
    EXPECT_FALSE(Worklist::isTagged(plain));
    EXPECT_TRUE(Worklist::isTagged(tagged));
    EXPECT_EQ(Worklist::objectOf(plain), o);
    EXPECT_EQ(Worklist::objectOf(tagged), o);
    EXPECT_NE(plain, tagged);
}

TEST_F(WorklistTest, ObjectsAreWordAligned)
{
    // The whole scheme depends on bit 0 being free.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(reinterpret_cast<uintptr_t>(obj()) & 1u, 0u);
}

TEST_F(WorklistTest, LifoOrder)
{
    Object *a = obj();
    Object *b = obj();
    list_.push(a);
    list_.push(b);
    EXPECT_EQ(list_.size(), 2u);
    EXPECT_EQ(Worklist::objectOf(list_.pop()), b);
    EXPECT_EQ(Worklist::objectOf(list_.pop()), a);
    EXPECT_TRUE(list_.empty());
}

TEST_F(WorklistTest, MixedTaggedAndPlainEntries)
{
    Object *a = obj();
    Object *b = obj();
    list_.pushTagged(a);
    list_.push(b);
    uintptr_t top = list_.pop();
    EXPECT_FALSE(Worklist::isTagged(top));
    uintptr_t bottom = list_.pop();
    EXPECT_TRUE(Worklist::isTagged(bottom));
    EXPECT_EQ(Worklist::objectOf(bottom), a);
}

TEST_F(WorklistTest, EntriesExposeTheStackBottomToTop)
{
    Object *a = obj();
    Object *b = obj();
    Object *c = obj();
    list_.pushTagged(a);
    list_.push(b);
    list_.pushTagged(c);
    const auto &entries = list_.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(Worklist::objectOf(entries[0]), a);
    EXPECT_EQ(Worklist::objectOf(entries[2]), c);
}

TEST_F(WorklistTest, ClearEmptiesButKeepsCapacity)
{
    for (int i = 0; i < 100; ++i)
        list_.push(obj());
    size_t high = list_.highWater();
    EXPECT_GE(high, 100u);
    list_.clear();
    EXPECT_TRUE(list_.empty());
    EXPECT_GE(list_.highWater(), high) << "capacity is retained";
}

TEST_F(WorklistTest, BuildPathCollectsOnlyTaggedEntries)
{
    // Simulate the DFS invariant: tagged entries are the current
    // root-to-parent chain, untagged entries are pending siblings.
    Object *root = obj();
    Object *mid = obj();
    Object *sibling = obj();
    Object *current = obj();
    list_.pushTagged(root);
    list_.push(sibling); // pending, not on the path
    list_.pushTagged(mid);

    auto path = paths_.buildPath(list_, current);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], root);
    EXPECT_EQ(path[1], mid);
    EXPECT_EQ(path[2], current);
}

TEST_F(WorklistTest, OriginAttributionKeepsTheFirstRecord)
{
    Object *o = obj();
    paths_.noteOrigin(o, "first-root");
    paths_.noteOrigin(o, "second-root");
    EXPECT_EQ(paths_.originOf(o), "first-root");
    paths_.reset();
    EXPECT_EQ(paths_.originOf(o), "");
    paths_.noteOrigin(o, "second-root");
    EXPECT_EQ(paths_.originOf(o), "second-root");
}

TEST_F(WorklistTest, UnknownOriginIsEmpty)
{
    EXPECT_EQ(paths_.originOf(obj()), "");
}

} // namespace
} // namespace gcassert
