/**
 * @file
 * Tests for the managed vector and string helpers used by the
 * workloads.
 */

#include "test_util.h"
#include "workloads/managed_util.h"

namespace gcassert {
namespace {

class ManagedVectorTest : public testutil::RuntimeTest {
  protected:
    ManagedVectorTest() : vec_(*runtime_, "Test") {}

    ManagedVectorOps vec_;
};

TEST_F(ManagedVectorTest, StartsEmpty)
{
    Handle v(*runtime_, vec_.create(), "vec");
    EXPECT_EQ(vec_.size(v.get()), 0u);
}

TEST_F(ManagedVectorTest, PushAndGet)
{
    Handle v(*runtime_, vec_.create(2), "vec");
    Object *a = node(1);
    Object *b = node(2);
    vec_.push(v.get(), a);
    vec_.push(v.get(), b);
    EXPECT_EQ(vec_.size(v.get()), 2u);
    EXPECT_EQ(vec_.get(v.get(), 0), a);
    EXPECT_EQ(vec_.get(v.get(), 1), b);
}

TEST_F(ManagedVectorTest, GrowthPreservesContents)
{
    Handle v(*runtime_, vec_.create(1), "vec");
    std::vector<Object *> elements;
    for (uint64_t i = 0; i < 100; ++i) {
        Object *e = node(i);
        elements.push_back(e);
        vec_.push(v.get(), e);
    }
    EXPECT_EQ(vec_.size(v.get()), 100u);
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(vec_.get(v.get(), i), elements[i]);
}

TEST_F(ManagedVectorTest, GrowthIsGcSafe)
{
    // Force collections during growth by using a tight heap.
    RuntimeConfig config;
    config.heap.budgetBytes = 128 * 1024;
    Runtime tight(config);
    ManagedVectorOps ops(tight, "Tight");
    TypeId t = tight.types().define("E").refCount(0).scalars(8).build();
    Handle v(tight, ops.create(1), "vec");
    for (uint64_t i = 0; i < 1000; ++i) {
        Object *e = tight.allocRaw(t);
        Handle guard(tight, e, "tmp");
        e->setScalar<uint64_t>(0, i);
        ops.push(v.get(), e);
    }
    ASSERT_EQ(ops.size(v.get()), 1000u);
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(ops.get(v.get(), i)->scalar<uint64_t>(0), i);
}

TEST_F(ManagedVectorTest, SetReplaces)
{
    Handle v(*runtime_, vec_.create(), "vec");
    vec_.push(v.get(), node(1));
    Object *replacement = node(2);
    vec_.set(v.get(), 0, replacement);
    EXPECT_EQ(vec_.get(v.get(), 0), replacement);
}

TEST_F(ManagedVectorTest, RemoveAtShifts)
{
    Handle v(*runtime_, vec_.create(), "vec");
    std::vector<Object *> elements;
    for (uint64_t i = 0; i < 5; ++i) {
        elements.push_back(node(i));
        vec_.push(v.get(), elements.back());
    }
    vec_.removeAt(v.get(), 1);
    EXPECT_EQ(vec_.size(v.get()), 4u);
    EXPECT_EQ(vec_.get(v.get(), 0), elements[0]);
    EXPECT_EQ(vec_.get(v.get(), 1), elements[2]);
    EXPECT_EQ(vec_.get(v.get(), 3), elements[4]);
}

TEST_F(ManagedVectorTest, SwapRemoveAt)
{
    Handle v(*runtime_, vec_.create(), "vec");
    std::vector<Object *> elements;
    for (uint64_t i = 0; i < 5; ++i) {
        elements.push_back(node(i));
        vec_.push(v.get(), elements.back());
    }
    vec_.swapRemoveAt(v.get(), 1);
    EXPECT_EQ(vec_.size(v.get()), 4u);
    EXPECT_EQ(vec_.get(v.get(), 1), elements[4]);
}

TEST_F(ManagedVectorTest, RemovedElementsAreCollectable)
{
    Handle v(*runtime_, vec_.create(), "vec");
    Object *e = node(1);
    vec_.push(v.get(), e);
    runtime_->collect();
    EXPECT_TRUE(alive(e));
    vec_.swapRemoveAt(v.get(), 0);
    runtime_->collect();
    EXPECT_FALSE(alive(e)) << "removed slot must be nulled";
}

TEST_F(ManagedVectorTest, ClearDropsEverything)
{
    Handle v(*runtime_, vec_.create(), "vec");
    Object *a = node(1);
    Object *b = node(2);
    vec_.push(v.get(), a);
    vec_.push(v.get(), b);
    vec_.clear(v.get());
    EXPECT_EQ(vec_.size(v.get()), 0u);
    runtime_->collect();
    EXPECT_FALSE(alive(a));
    EXPECT_FALSE(alive(b));
}

TEST_F(ManagedVectorTest, OutOfRangePanics)
{
    Handle v(*runtime_, vec_.create(), "vec");
    vec_.push(v.get(), node(1));
    EXPECT_THROW(vec_.get(v.get(), 1), PanicError);
    EXPECT_THROW(vec_.set(v.get(), 1, nullptr), PanicError);
    EXPECT_THROW(vec_.removeAt(v.get(), 1), PanicError);
}

class ManagedStringTest : public testutil::RuntimeTest {
  protected:
    ManagedStringTest() : str_(*runtime_, "TestString") {}

    ManagedStringOps str_;
};

TEST_F(ManagedStringTest, RoundTrip)
{
    Object *s = str_.create("hello world");
    EXPECT_EQ(str_.read(s), "hello world");
    EXPECT_EQ(str_.length(s), 11u);
}

TEST_F(ManagedStringTest, EmptyString)
{
    Object *s = str_.create("");
    EXPECT_EQ(str_.read(s), "");
    EXPECT_EQ(str_.length(s), 0u);
}

TEST_F(ManagedStringTest, LargeStringGoesToLos)
{
    std::string big(100000, 'x');
    Object *s = str_.create(big);
    EXPECT_EQ(str_.read(s), big);
    EXPECT_GT(s->sizeBytes(), 8192u);
}

TEST_F(ManagedStringTest, EmbeddedNulBytesSurvive)
{
    std::string text("a\0b\0c", 5);
    Object *s = str_.create(text);
    EXPECT_EQ(str_.read(s), text);
    EXPECT_EQ(str_.length(s), 5u);
}

TEST_F(ManagedStringTest, StringsAreCollectable)
{
    Object *s = str_.create("transient");
    runtime_->collect();
    EXPECT_FALSE(alive(s));
}

} // namespace
} // namespace gcassert
